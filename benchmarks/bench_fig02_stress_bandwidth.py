"""Bench: Fig. 2 — average bandwidth vs simultaneous connections."""

import numpy as np


def test_fig02_stress_bandwidth(run_figure):
    result = run_figure("fig02")
    ks, bw = result.series["Average bandwidth"]
    # Shape assertions the paper's figure shows: near-NIC bandwidth for
    # one connection, hyperbolic decay under saturation.
    assert bw[0] > 80.0  # MB/s, single connection near line rate
    assert bw[-1] < bw[0] / 3.0  # strong decay by k=60
    assert np.all(np.diff(bw) <= 1e-6)  # monotone non-increasing
