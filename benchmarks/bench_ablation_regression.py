"""Ablation: regression method (OLS vs GLS/FGLS) for signature fitting.

The paper prescribes Generalized Least Squares; this bench quantifies
how much the method matters for signature stability on noisy samples.
"""

import numpy as np

from repro.clusters.profiles import gigabit_ethernet
from repro.core.signature import fit_signature
from repro.experiments.common import SCALES, reference_hockney, sample_sizes_for
from repro.measure.alltoall import sweep_sizes


def test_ablation_regression_method(benchmark):
    scale = SCALES["bench"]
    cluster = gigabit_ethernet()

    def ablation():
        hockney = reference_hockney(cluster, scale, seed=0)
        samples = sweep_sizes(
            cluster, 40, sample_sizes_for(scale), reps=2, seed=21
        )
        fits = {}
        for method in ("ols", "gls", "fgls"):
            fits[method] = fit_signature(
                samples, hockney, method=method
            ).signature
        return fits

    fits = benchmark.pedantic(ablation, rounds=1, iterations=1)
    print("\n[ablation] regression method for (gamma, delta)")
    for method, sig in fits.items():
        print(f"  {method:<5} gamma={sig.gamma:.4f} delta={sig.delta * 1e3:.2f} ms M={sig.threshold}")
    gammas = np.array([sig.gamma for sig in fits.values()])
    # All methods must agree on the contention regime (same gamma within
    # a factor well under 2); GLS is the paper's choice, not a necessity.
    assert gammas.max() / gammas.min() < 1.75
