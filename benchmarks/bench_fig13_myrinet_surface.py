"""Bench: Fig. 13 — Myrinet prediction surface."""

import numpy as np

from repro.core.errors import relative_error_percent


def test_fig13_myrinet_surface(run_figure):
    result = run_figure("fig13")
    measured = result.surfaces["Direct Exchange"]
    predicted = result.surfaces["Prediction"]
    err = relative_error_percent(measured, predicted)
    # Around the sample size (24) predictions hold reasonably.
    near_sample = (result.n_values >= 20) & (result.n_values <= 40)
    assert np.median(np.abs(err[near_sample])) < 35.0
    assert np.all(np.diff(measured, axis=1) > 0)
