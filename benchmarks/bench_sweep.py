"""Bench: sweep-executor throughput (serial vs process, cold vs warm).

Runs one fixed 64-point multi-pattern grid three times through the
sweep engine with caching disabled — the simulation cost itself is the
measured workload — and writes ``benchmarks/output/BENCH_sweep.json``:

* ``serial``        — the in-process executor (baseline);
* ``process_cold``  — the persistent-pool executor's **first**
  ``run_points`` on a fresh runner (includes pool spin-up);
* ``process_warm``  — a second ``run_points`` on the *same* runner,
  reusing the warm pool (the steady-state of consecutive sweeps).

The three runs must produce bit-identical rows (every point derives
its random streams by name from its own coordinates), so the entry
doubles as an executor-equivalence check; ``identical_rows`` records
it.  Speedups are whatever the hardware gives: on a single-core
container the process executor cannot beat serial, so consumers should
read ``cpu_count`` alongside ``speedup_*``.

Runs standalone (``python benchmarks/bench_sweep.py``) or under
pytest; honours ``REPRO_BENCH_WORKERS`` (default: all cores, max 8).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from record import finish, make_metric, per_fluid_unit

from repro.sweeps import SweepRunner, SweepSpec

OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_sweep.json"

#: 4 patterns x 2 process counts x 4 sizes x 2 seeds = 64 points.
SPEC = dict(
    clusters=("gigabit-ethernet",),
    nprocs=(4, 6),
    sizes=(2_048, 8_192, 32_768, 131_072),
    algorithms=("direct",),
    patterns=(
        None,  # the regular All-to-All
        {"name": "hotspot", "params": {"targets": 2, "factor": 8.0}},
        {"name": "zipf", "params": {"exponent": 1.2}},
        {"name": "block-sparse", "params": {"block": 2}},
    ),
    seeds=(0, 1),
    reps=1,
)


def _bench_workers() -> int:
    env = os.environ.get("REPRO_BENCH_WORKERS")
    if env:
        return max(1, int(env))
    return max(2, min(os.cpu_count() or 1, 8))


def _timed_run(runner: SweepRunner, points) -> tuple[float, list[dict]]:
    """One uncached pass over *points*: (elapsed seconds, result rows)."""
    start = time.perf_counter()
    result = runner.run_points(points)
    elapsed = time.perf_counter() - start
    _, rows = result.to_rows()
    return elapsed, rows


def run_sweep_bench(output_path: Path = OUTPUT_PATH) -> dict:
    """Execute the three passes; write and return the bench entry."""
    spec = SweepSpec(**SPEC)
    points = spec.points()
    assert spec.n_points == 64, spec.describe()
    workers = _bench_workers()

    serial = SweepRunner(workers=1, cache=None, executor="serial")
    serial_s, serial_rows = _timed_run(serial, points)

    with SweepRunner(workers=workers, cache=None, executor="process") as pooled:
        cold_s, cold_rows = _timed_run(pooled, points)      # pool spin-up
        assert pooled.executor.warm
        warm_s, warm_rows = _timed_run(pooled, points)      # pool reuse

    def leg(elapsed: float) -> dict:
        return {
            "elapsed_s": round(elapsed, 4),
            "points_per_sec": round(len(points) / elapsed, 2),
        }

    identical = serial_rows == cold_rows == warm_rows
    entry = {
        "bench": "sweep_executor_throughput",
        "points": len(points),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial": leg(serial_s),
        "process_cold": leg(cold_s),
        "process_warm": leg(warm_s),
        "speedup_cold": round(serial_s / cold_s, 2),
        "speedup_warm": round(serial_s / warm_s, 2),
        "identical_rows": identical,
    }
    # Tracked metrics: executor-equivalence (hard invariant), warm-pool
    # reuse vs cold spin-up (a same-machine ratio), and the serial
    # pipeline's throughput in fluid units (machine-normalized).
    metrics = {
        "identical_rows": make_metric(
            1.0 if identical else 0.0, direction="higher", tolerance=0.0
        ),
        "warm_vs_cold": make_metric(
            round(warm_s / cold_s, 3), direction="lower", tolerance=0.50,
            unit="x",
        ),
        "serial_points_per_fluid_unit": make_metric(
            round(per_fluid_unit(len(points) / serial_s), 3),
            direction="higher", tolerance=0.50,
        ),
    }
    return finish("sweep_executor_throughput", metrics, entry, output_path)


def test_bench_sweep():
    """Pytest entry: all three legs complete, agree, and land on disk."""
    entry = run_sweep_bench()
    assert entry["points"] == 64
    assert entry["identical_rows"] is True
    for leg in ("serial", "process_cold", "process_warm"):
        assert entry[leg]["points_per_sec"] > 0
    # Warm-pool reuse must at least not regress vs cold start.
    assert entry["process_warm"]["elapsed_s"] <= entry["process_cold"]["elapsed_s"] * 1.5
    if (os.cpu_count() or 1) >= 2:
        # With real parallel hardware the pooled executor must win.
        assert entry["speedup_warm"] > 1.0, entry
    assert json.loads(OUTPUT_PATH.read_text()) == entry
    print(
        f"\nsweep bench: serial {entry['serial']['points_per_sec']} pt/s, "
        f"process warm {entry['process_warm']['points_per_sec']} pt/s "
        f"({entry['speedup_warm']}x, {entry['workers']} workers)"
    )


if __name__ == "__main__":
    print(json.dumps(run_sweep_bench(), indent=2))
