"""Ablation: All-to-All algorithm under contention.

The paper models the Direct Exchange used by LAM/MPICH; this bench runs
the four implemented algorithms on the same saturated Gigabit Ethernet
cluster, showing why the simultaneous direct exchange is both the common
choice (bandwidth-optimal per Proposition 1) and the contention-maker.
"""

from repro.clusters.profiles import gigabit_ethernet
from repro.measure.alltoall import measure_alltoall
from repro.registry import ALGORITHMS
from repro.simmpi.collectives import MATRIX_ALGORITHMS

#: Scalar algorithms only — the alltoallv-* entries take a byte matrix
#: (benchmarks/bench_traffic.py covers the irregular pipeline).
SCALAR_ALGORITHMS = [
    name for name in ALGORITHMS.names() if name not in MATRIX_ALGORITHMS
]


def test_ablation_algorithms(benchmark):
    cluster = gigabit_ethernet()
    n = 16

    def ablation():
        large = {
            name: measure_alltoall(
                cluster, n, 524_288, reps=1, seed=41, algorithm=name
            ).mean_time
            for name in SCALAR_ALGORITHMS
        }
        small = {
            name: measure_alltoall(
                cluster, n, 256, reps=1, seed=42, algorithm=name
            ).mean_time
            for name in SCALAR_ALGORITHMS
        }
        return large, small

    large, small = benchmark.pedantic(ablation, rounds=1, iterations=1)
    print(f"\n[ablation] algorithms on gigabit-ethernet, n={n}")
    print(f"  {'algorithm':<10} {'512 KiB':>12} {'256 B':>12}")
    for name in SCALAR_ALGORITHMS:
        print(f"  {name:<10} {large[name]:>10.4f} s {small[name]:>10.6f} s")
    # Bandwidth regime: store-and-forward ring must lose to direct (§4).
    assert large["direct"] < large["ring"]
    # Latency regime: Bruck's log rounds beat the n-1 sendrecv rounds.
    assert small["bruck"] < small["rounds"]
