"""Bench: traffic-pattern sweep throughput (points/sec).

Runs a fixed 64-point irregular-pattern grid (4 patterns x 2 process
counts x 4 sizes x 2 seeds) through the sweep engine with caching
disabled — the simulation cost itself is the measured workload — and
writes the throughput entry ``benchmarks/output/BENCH_traffic.json``
so the perf trajectory tracks the pattern pipeline across PRs.

Runs standalone (``python benchmarks/bench_traffic.py``) or under
pytest; honours ``REPRO_BENCH_WORKERS``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from record import finish, make_metric, per_fluid_unit

from repro.sweeps import SweepRunner, SweepSpec

OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_traffic.json"

SPEC = dict(
    clusters=("gigabit-ethernet",),
    nprocs=(4, 6),
    sizes=(1_024, 2_048, 8_192, 32_768),
    algorithms=("direct",),
    patterns=(
        {"name": "hotspot", "params": {"targets": 2, "factor": 8.0}},
        {"name": "zipf", "params": {"exponent": 1.2}},
        {"name": "permutation"},
        {"name": "random-sparse", "params": {"density": 0.5}},
    ),
    seeds=(0, 1),
    reps=1,
)


def run_traffic_bench(output_path: Path = OUTPUT_PATH) -> dict:
    """Execute the 64-point pattern sweep; write and return the entry."""
    spec = SweepSpec(**SPEC)
    assert spec.n_points == 64, spec.describe()
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    runner = SweepRunner(workers=workers, cache=None)
    start = time.perf_counter()
    result = runner.run(spec)
    elapsed = time.perf_counter() - start
    entry = {
        "bench": "traffic_pattern_sweep",
        "points": result.n_points,
        "workers": workers,
        "elapsed_s": round(elapsed, 4),
        "points_per_sec": round(result.n_points / elapsed, 2),
        "mean_time_sum_s": round(
            sum(s.mean_time for s in result.samples), 6
        ),
    }
    # The absolute points/sec is container-speed-dependent; the tracked
    # value is scaled into fluid units so baselines travel.
    metrics = {
        "points_per_fluid_unit": make_metric(
            round(per_fluid_unit(result.n_points / elapsed), 3),
            direction="higher", tolerance=0.50,
        ),
    }
    return finish("traffic_pattern_sweep", metrics, entry, output_path)


def test_bench_traffic():
    """Pytest entry: the sweep completes and the JSON entry lands."""
    entry = run_traffic_bench()
    assert entry["points"] == 64
    assert entry["points_per_sec"] > 0
    assert json.loads(OUTPUT_PATH.read_text()) == entry
    print(f"\ntraffic bench: {entry['points_per_sec']} points/sec")


if __name__ == "__main__":
    print(json.dumps(run_traffic_bench(), indent=2))
