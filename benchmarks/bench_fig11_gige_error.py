"""Bench: Fig. 11 — Gigabit Ethernet estimation error vs process count."""

import numpy as np


def test_fig11_gige_error(run_figure):
    result = run_figure("fig11")
    for label, (ns, errors) in result.series.items():
        ns = np.asarray(ns)
        errors = np.asarray(errors)
        # Small n: strong over-prediction (paper reaches ~ -80%).
        assert errors[ns <= 5].mean() < -40.0, label
        # At the fit size (40), error is small by construction.
        assert abs(errors[ns == 40]).min() < 30.0, label
