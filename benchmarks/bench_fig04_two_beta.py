"""Bench: Fig. 4 — two-beta synthetic prediction vs measurement."""

import numpy as np


def test_fig04_two_beta(run_figure):
    result = run_figure("fig04")
    m, measured = result.series["Direct Exchange"]
    _, predicted = result.series["Prediction (synthetic beta)"]
    _, bound = result.series["Lower bound"]
    # The paper's ordering for large messages: bound < prediction,
    # and the prediction lands in the right magnitude of the measurement.
    large = m >= 262_144
    assert np.all(bound[large] < predicted[large])
    ratio = predicted[large] / measured[large]
    assert 0.3 < float(ratio.mean()) < 3.0
    # The two contention states must be well separated (paper: ~10x).
    assert result.params["beta_contended"] > 3.0 * result.params["beta_free"]
