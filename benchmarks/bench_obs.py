"""Bench: observability overhead on the default (uninstrumented) path.

The obs subsystem is opt-in by design: engines accept ``trace=`` /
``timeline=`` keywords, and when neither is given the only added work
is a handful of ``is not None`` checks per resolve.  This bench pins
that property with numbers, writing
``benchmarks/output/BENCH_obs.json``:

* ``baseline`` / ``observed`` legs per engine — best-of-rounds seconds
  for the same All-to-All point with ``observe`` off and on;
* ``overhead`` per engine — observed / baseline (instrumentation cost,
  informational: tracing every flow event is allowed to cost real
  time);
* ``disabled_overhead`` per engine — a second uninstrumented run
  raced against the first, the acceptance metric: the *default* path
  must stay within ``MAX_DISABLED_OVERHEAD`` of itself, i.e. the
  hooks are free when unused.

Runs standalone (``python benchmarks/bench_obs.py``) or under pytest.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from record import finish, make_metric

from repro.clusters.profiles import get_cluster
from repro.measure.alltoall import measure_alltoall

OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_obs.json"

MSG_SIZE = 16_384
NPROCS = 16
ENGINES = ("fluid", "vector")
#: Timing rounds per leg; the minimum is reported (noise-resistant on
#: shared CI runners).
ROUNDS = 5
#: Rounds of the interleaved disabled-path race (the acceptance
#: metric needs the tighter estimate).
RACE_ROUNDS = 9
#: Acceptance bar: the uninstrumented path may not slow down by more
#: than 5% from the observability hooks (measured as the ratio of two
#: interleaved uninstrumented runs, so fixture drift cancels out).
MAX_DISABLED_OVERHEAD = 1.05


def _bench_cluster():
    """Lossless Gigabit Ethernet: the configuration both engines run,
    so one bench covers the fluid resolver hook and the vector epoch
    hook alike."""
    return get_cluster("gigabit-ethernet").with_overrides(
        loss=None, max_hosts=1024
    )


def _one(cluster, engine: str, observe: bool) -> float:
    """Wall seconds of one measured point."""
    start = time.perf_counter()
    measure_alltoall(
        cluster, NPROCS, MSG_SIZE, reps=1, seed=0,
        algorithm="direct", engine=engine, observe=observe,
    )
    return time.perf_counter() - start


def _timed(cluster, engine: str, observe: bool) -> float:
    """Best-of-rounds wall seconds for one measured point."""
    return min(_one(cluster, engine, observe) for _ in range(ROUNDS))


def _race_disabled(cluster, engine: str) -> float:
    """Median paired ratio of two uninstrumented runs (the acceptance
    metric).  Each round times the default path twice back-to-back and
    takes the ratio, so machine drift hits both sides of every pair;
    the median across rounds shrugs off load spikes that wreck min- or
    mean-based estimates on shared CI runners.  The A/B order flips
    every round so ordering bias cancels too.  The true hook cost is
    structurally zero (two ``is not None`` checks per resolve)."""
    ratios = []
    for round_index in range(RACE_ROUNDS):
        first = _one(cluster, engine, observe=False)
        second = _one(cluster, engine, observe=False)
        ratios.append(second / first if round_index % 2 else first / second)
    ratios.sort()
    return ratios[len(ratios) // 2]


def run_obs_bench(output_path: Path = OUTPUT_PATH) -> dict:
    """Time baseline vs observed per engine; write and return the entry."""
    cluster = _bench_cluster()
    legs: dict[str, dict] = {}
    for engine in ENGINES:
        # Untimed warm-up: first-touch costs (route caches, lazy
        # imports) land here, not in whichever leg happens to go first.
        measure_alltoall(
            cluster, NPROCS, MSG_SIZE, reps=1, seed=0,
            algorithm="direct", engine=engine,
        )
        baseline = _timed(cluster, engine, observe=False)
        observed = _timed(cluster, engine, observe=True)
        legs[engine] = {
            "baseline_s": round(baseline, 5),
            "observed_s": round(observed, 5),
            "overhead": round(observed / baseline, 3),
            "disabled_overhead": round(_race_disabled(cluster, engine), 3),
        }
    entry = {
        "bench": "obs_overhead",
        "cluster": "gigabit-ethernet (loss=None)",
        "algorithm": "direct",
        "n_processes": NPROCS,
        "msg_size": MSG_SIZE,
        "rounds": ROUNDS,
        "race_rounds": RACE_ROUNDS,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "legs": legs,
    }
    # Tracked overheads are ratios of two runs on the same machine —
    # inherently machine-normalized.  Tolerance matches the existing
    # 1.05 acceptance bar around the 1.0 ideal.
    metrics = {
        f"disabled_overhead_{engine}": make_metric(
            legs[engine]["disabled_overhead"],
            direction="lower", tolerance=0.05, unit="x",
        )
        for engine in ENGINES
    }
    return finish("obs_overhead", metrics, entry, output_path)


def test_bench_obs():
    """Pytest entry: the default path pays nothing for the obs hooks."""
    entry = run_obs_bench()
    for engine, leg in entry["legs"].items():
        assert leg["disabled_overhead"] <= MAX_DISABLED_OVERHEAD, (
            engine, leg,
        )
        # Sanity: the instrumented leg actually ran (and took time).
        assert leg["observed_s"] > 0
    assert json.loads(OUTPUT_PATH.read_text()) == entry
    print(
        "\nobs bench: disabled-path overhead "
        + ", ".join(
            f"{engine} {leg['disabled_overhead']}x"
            for engine, leg in entry["legs"].items()
        )
    )


if __name__ == "__main__":
    print(json.dumps(run_obs_bench(), indent=2))
