"""Benchmark harness support.

Each bench runs one paper experiment once (simulations are themselves
the measured workload), prints the same series/rows the paper's figure
reports, and persists the rendered figure + CSV under
``benchmarks/output/``.

The experiment grids route through the sweep engine
(:mod:`repro.sweeps`), so the harness honours:

* ``REPRO_BENCH_WORKERS`` — fan sweep points out over N worker
  processes (results are bit-identical to serial runs);
* ``REPRO_BENCH_EXECUTOR`` — execution backend (``serial`` /
  ``process`` / ``futures``); the default pool persists across
  figures, so later grids start on warm workers;
* ``REPRO_BENCH_CACHE`` — serve repeated points from an on-disk result
  cache at the given directory.  Leave unset when the *simulation cost
  itself* is what you are benchmarking.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.registry import run_experiment
from repro.sweeps import configure_default_runner

OUTPUT_DIR = Path(__file__).parent / "output"

#: scale used by the benchmark harness (default-size grids, 1 repetition).
BENCH_SCALE = "bench"


@pytest.fixture(scope="session", autouse=True)
def sweep_engine():
    """Configure the process-wide sweep runner from the bench env vars."""
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    runner = configure_default_runner(
        workers=workers,
        cache_dir=cache_dir,
        enable_cache=cache_dir is not None,
        executor=os.environ.get("REPRO_BENCH_EXECUTOR") or None,
    )
    yield runner
    if runner.cache is not None:
        print(
            f"\nsweep cache: {runner.cache.root} "
            f"(hits={runner.cache.hits}, misses={runner.cache.misses})"
        )


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def run_figure(benchmark, output_dir):
    """Run a registered experiment under pytest-benchmark and report it."""

    def _run(exp_id: str, *, seed: int = 0, scale: str = BENCH_SCALE):
        result = benchmark.pedantic(
            run_experiment,
            args=(exp_id,),
            kwargs={"scale": scale, "seed": seed},
            rounds=1,
            iterations=1,
        )
        rendered = result.render()
        print()
        print(rendered)
        (output_dir / f"{exp_id}.txt").write_text(rendered + "\n")
        result.save_csv(output_dir / f"{exp_id}.csv")
        for key in ("gamma", "delta", "threshold"):
            if key in result.params:
                benchmark.extra_info[key] = result.params[key]
        return result

    return _run
