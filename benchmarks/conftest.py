"""Benchmark harness support.

Each bench runs one paper experiment once (simulations are themselves
the measured workload), prints the same series/rows the paper's figure
reports, and persists the rendered figure + CSV under
``benchmarks/output/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.registry import run_experiment

OUTPUT_DIR = Path(__file__).parent / "output"

#: scale used by the benchmark harness (default-size grids, 1 repetition).
BENCH_SCALE = "bench"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def run_figure(benchmark, output_dir):
    """Run a registered experiment under pytest-benchmark and report it."""

    def _run(exp_id: str, *, seed: int = 0, scale: str = BENCH_SCALE):
        result = benchmark.pedantic(
            run_experiment,
            args=(exp_id,),
            kwargs={"scale": scale, "seed": seed},
            rounds=1,
            iterations=1,
        )
        rendered = result.render()
        print()
        print(rendered)
        (output_dir / f"{exp_id}.txt").write_text(rendered + "\n")
        result.save_csv(output_dir / f"{exp_id}.csv")
        for key in ("gamma", "delta", "threshold"):
            if key in result.params:
                benchmark.extra_info[key] = result.params[key]
        return result

    return _run
