"""Ablation: the ρ blend of the §6 two-β model (paper fixes ρ = 0.5).

"Supposing that at most one of each two connections will be delayed due
to contention" motivates ρ = 0.5; this bench sweeps ρ and reports the
prediction error at 40 processes, showing the §6 model's sensitivity to
its one free parameter (a weakness the §7 signature model removes).
"""

import numpy as np

from repro.clusters.profiles import gigabit_ethernet
from repro.core.errors import mean_absolute_percentage_error
from repro.core.throughput import extract_two_beta
from repro.experiments.common import SCALES, reference_hockney
from repro.measure.alltoall import sweep_sizes
from repro.measure.stress import run_stress


def test_ablation_rho(benchmark):
    scale = SCALES["bench"]
    cluster = gigabit_ethernet()
    sizes = [262_144, 524_288, 1_048_576]

    def ablation():
        hockney = reference_hockney(cluster, scale, seed=0)
        unloaded = run_stress(cluster, 1, 32 * 1024 * 1024, seed=31)
        saturated = run_stress(cluster, 40, 32 * 1024 * 1024, seed=32)
        times = np.concatenate([unloaded.times, saturated.times])
        samples = sweep_sizes(cluster, 40, sizes, reps=1, seed=33)
        measured = np.array([s.mean_time for s in samples])
        mapes = {}
        for rho in (0.25, 0.5, 0.75):
            model = extract_two_beta(
                32 * 1024 * 1024, times, alpha=hockney.alpha, rho=rho
            )
            predicted = model.predict(40, np.array(sizes, dtype=float))
            mapes[rho] = mean_absolute_percentage_error(measured, predicted)
        return mapes

    mapes = benchmark.pedantic(ablation, rounds=1, iterations=1)
    print("\n[ablation] two-beta rho blend, GigE, 40 procs")
    for rho, mape in mapes.items():
        print(f"  rho={rho:<5} MAPE={mape:.1f}%")
    assert min(mapes.values()) < 80.0
