"""Bench: Fig. 10 — Gigabit Ethernet prediction surface."""

import numpy as np

from repro.core.errors import relative_error_percent


def test_fig10_gige_surface(run_figure):
    result = run_figure("fig10")
    measured = result.surfaces["Direct Exchange"]
    predicted = result.surfaces["Prediction"]
    err = relative_error_percent(measured, predicted)
    saturated_rows = result.n_values >= 30
    assert np.median(np.abs(err[saturated_rows])) < 30.0
    # Unsaturated small-n rows must be strongly over-predicted
    # (negative error), the paper's hallmark.
    small_rows = result.n_values <= 10
    assert np.median(err[small_rows]) < -30.0
