"""Ablation: the sample size n′ used to fit the signature.

The paper attributes its Myrinet error to fitting at n′ = 24 while the
fabric "becomes really saturate only when there are more than 40
communicating processes".  This bench fits the Myrinet signature at
several n′ and evaluates each at a saturated probe point.
"""

from repro.clusters.profiles import myrinet
from repro.core.errors import relative_error_percent
from repro.experiments.common import SCALES, reference_signature
from repro.measure.alltoall import measure_alltoall


def test_ablation_sample_size(benchmark):
    scale = SCALES["bench"]
    cluster = myrinet()
    probe_n, probe_m = 44, 524_288

    def ablation():
        probe = measure_alltoall(cluster, probe_n, probe_m, reps=1, seed=51)
        rows = []
        for n_prime in (8, 16, 24, 40):
            sig = reference_signature(cluster, n_prime, scale, seed=0)
            err = relative_error_percent(
                probe.mean_time, sig.predict(probe_n, probe_m)
            )
            rows.append((n_prime, sig.gamma, err))
        return rows

    rows = benchmark.pedantic(ablation, rounds=1, iterations=1)
    print(f"\n[ablation] signature sample size n' (myrinet, probe n={probe_n})")
    print(f"  {'n_prime':>8} {'gamma':>8} {'error at probe %':>17}")
    for n_prime, gamma, err in rows:
        print(f"  {n_prime:>8} {gamma:>8.3f} {err:>17.1f}")
    gammas = {n: g for n, g, _ in rows}
    # Tiny samples under-estimate contention (the paper's point).
    assert gammas[8] < gammas[40] * 1.25
