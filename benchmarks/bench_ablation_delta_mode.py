"""Ablation: δ parenthesisation — per-round vs global (DESIGN.md §7.1).

Eq. 5 of the paper is typographically ambiguous about whether δ is paid
once or once per round.  This bench fits both variants on the same
Gigabit Ethernet samples and shows the per-round reading generalises
across n while the global reading cannot (its single offset is tied to
the sample size).
"""

import numpy as np

from repro.clusters.profiles import gigabit_ethernet
from repro.core.errors import relative_error_percent
from repro.experiments.common import SCALES, reference_signature
from repro.measure.alltoall import measure_alltoall


def test_ablation_delta_mode(benchmark):
    scale = SCALES["bench"]
    cluster = gigabit_ethernet()

    def ablation():
        per_round = reference_signature(
            cluster, 40, scale, seed=0, delta_mode="per_round"
        )
        global_delta = reference_signature(
            cluster, 40, scale, seed=0, delta_mode="global"
        )
        probes = [(10, 524_288), (20, 524_288), (30, 262_144)]
        rows = []
        for n, m in probes:
            sample = measure_alltoall(cluster, n, m, reps=1, seed=11)
            rows.append(
                (
                    n,
                    m,
                    relative_error_percent(sample.mean_time, per_round.predict(n, m)),
                    relative_error_percent(sample.mean_time, global_delta.predict(n, m)),
                )
            )
        return per_round, global_delta, rows

    per_round, global_delta, rows = benchmark.pedantic(
        ablation, rounds=1, iterations=1
    )
    print("\n[ablation] delta parenthesisation (per-round vs global)")
    print(f"  per-round: {per_round}")
    print(f"  global   : {global_delta}")
    print(f"  {'n':>4} {'m':>9} {'err per-round %':>16} {'err global %':>14}")
    for n, m, err_pr, err_gl in rows:
        print(f"  {n:>4} {m:>9} {err_pr:>16.1f} {err_gl:>14.1f}")
    # Both fit the sample size by construction; the question is off-n
    # generalisation. The per-round reading should not be catastrophically
    # worse anywhere.
    per_round_mape = np.mean([abs(r[2]) for r in rows])
    assert per_round_mape < 100.0
