"""Bench: cost-model zoo fit + predict throughput per model.

Builds a deterministic synthetic sample set from the paper's GigE
signature (no simulation — the fitting/eval machinery itself is the
measured workload), then per registered built-in model measures

* fit throughput   — fits/second over the 32-sample set;
* predict throughput — vectorised predictions/second over a 10k grid;

asserts every fitted parameter is finite and that two independent
model-comparison runs rank identically (the selection pipeline is
deterministic by construction), and writes
``benchmarks/output/BENCH_models.json``.

Runs standalone (``python benchmarks/bench_models.py``) or under pytest.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np

from record import finish, make_metric, per_fluid_unit

from repro.core import AlltoallSample, ContentionSignature, HockneyParams
from repro.models import DEFAULT_MODELS, compare_models, get_model

OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_models.json"

HOCKNEY = HockneyParams(alpha=50e-6, beta=8.5e-9)
SIGNATURE = ContentionSignature(
    gamma=4.3628, delta=4.93e-3, threshold=8_192, hockney=HOCKNEY
)

FIT_REPEATS = 25
PREDICT_GRID = 10_000


def synthetic_samples() -> list[AlltoallSample]:
    """32 deterministic samples drawn from the paper-reported signature."""
    rng = np.random.default_rng(2006)
    samples = []
    for n in (4, 8, 16, 32):
        for m in (2_048, 8_192, 32_768, 131_072, 262_144, 524_288,
                  786_432, 1_048_576):
            t = float(SIGNATURE.predict(n, m)) * (
                1.0 + 0.02 * float(rng.standard_normal())
            )
            samples.append(
                AlltoallSample(
                    n_processes=n, msg_size=m, mean_time=abs(t),
                    std_time=abs(t) * 0.01, reps=3,
                )
            )
    return samples


def run_models_bench(output_path: Path = OUTPUT_PATH) -> dict:
    """Fit/predict throughput per model; write and return the entry."""
    samples = synthetic_samples()
    gige = None
    try:
        from repro.clusters.profiles import get_cluster

        gige = get_cluster("gigabit-ethernet")
    except Exception:  # pragma: no cover - bench must run even degraded
        pass

    per_model = {}
    for name in DEFAULT_MODELS:
        model = get_model(name)
        fitted = model.fit(samples, hockney=HOCKNEY, cluster=gige)
        assert all(
            math.isfinite(v) for v in fitted.params.values()
            if isinstance(v, float)
        ), f"{name}: non-finite params {fitted.params}"

        start = time.perf_counter()
        for _ in range(FIT_REPEATS):
            model.fit(samples, hockney=HOCKNEY, cluster=gige)
        fit_elapsed = time.perf_counter() - start

        n_grid = np.linspace(4, 64, PREDICT_GRID)
        m_grid = np.linspace(1_024, 1_048_576, PREDICT_GRID)
        start = time.perf_counter()
        predictions = np.asarray(fitted.predict(n_grid, m_grid))
        predict_elapsed = time.perf_counter() - start
        assert predictions.shape == (PREDICT_GRID,)
        assert np.all(np.isfinite(predictions))

        per_model[name] = {
            "fits_per_sec": round(FIT_REPEATS / fit_elapsed, 2),
            "predict_points_per_sec": round(PREDICT_GRID / predict_elapsed, 0),
            "params_finite": True,
        }

    first = compare_models(samples, hockney=HOCKNEY, cluster=gige)
    second = compare_models(samples, hockney=HOCKNEY, cluster=gige)
    assert first.ranking == second.ranking, (first.ranking, second.ranking)
    assert first.ranking.index("signature") < first.ranking.index("hockney")

    entry = {
        "bench": "cost_model_zoo",
        "samples": len(samples),
        "fit_repeats": FIT_REPEATS,
        "predict_grid": PREDICT_GRID,
        "models": per_model,
        "ranking": first.ranking,
        "ranking_deterministic": True,
    }
    # Tracked: the paper's headline ordering (signature beats hockney),
    # selection determinism, and the signature model's fit throughput
    # in fluid units.
    beats = first.ranking.index("signature") < first.ranking.index("hockney")
    metrics = {
        "ranking_deterministic": make_metric(
            1.0, direction="higher", tolerance=0.0
        ),
        "signature_beats_hockney": make_metric(
            1.0 if beats else 0.0, direction="higher", tolerance=0.0
        ),
        "signature_fits_per_fluid_unit": make_metric(
            round(per_fluid_unit(per_model["signature"]["fits_per_sec"]), 3),
            direction="higher", tolerance=0.50,
        ),
    }
    return finish("cost_model_zoo", metrics, entry, output_path)


def test_models_bench(tmp_path):
    """Pytest entry: the bench must complete with finite throughputs."""
    entry = run_models_bench(tmp_path / "BENCH_models.json")
    for name, stats in entry["models"].items():
        assert stats["fits_per_sec"] > 0, name
        assert stats["predict_points_per_sec"] > 0, name


if __name__ == "__main__":
    print(json.dumps(run_models_bench(), indent=2))
