"""Bench: Table S — fitted signatures vs paper values, all networks."""


def test_table_signatures(run_figure):
    result = run_figure("tableS")
    rows = {r["network"]: r for r in result.params["rows"]}
    fe = rows["fast-ethernet"]
    gige = rows["gigabit-ethernet"]
    myri = rows["myrinet"]
    # The paper's qualitative signature ordering (the headline claim):
    assert gige["gamma_fitted"] > myri["gamma_fitted"] > fe["gamma_fitted"]
    # FE is essentially contention-ratio-free.
    assert abs(fe["gamma_fitted"] - 1.0) < 0.3
    # delta ordering: FE > GigE >> Myrinet ~ 0.
    assert fe["delta_fitted_ms"] > gige["delta_fitted_ms"] > myri["delta_fitted_ms"]
    assert myri["delta_fitted_ms"] < 2.0
    # Quantitative proximity to the paper's parameters (generous bands:
    # the substrate is a calibrated simulator, not the 2006 testbed).
    assert abs(gige["gamma_fitted"] - gige["gamma_paper"]) / gige["gamma_paper"] < 0.4
    assert abs(myri["gamma_fitted"] - myri["gamma_paper"]) / myri["gamma_paper"] < 0.4
