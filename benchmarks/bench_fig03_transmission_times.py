"""Bench: Fig. 3 — individual transmission times under flood."""


def test_fig03_transmission_times(run_figure):
    result = run_figure("fig03")
    ks, avg = result.series["average"]
    # Average transfer time rises strongly from k=1 to saturation
    # (paper: ~0.3 s to ~1.5 s).
    assert avg[-1] > 3.0 * avg[0]
    xs, ys = result.scatter_xy
    assert len(xs) == len(ys) > 0
    # The tail: slowest transfer visibly above the average at max k.
    at_max = ys[xs == xs.max()]
    assert at_max.max() >= avg[-1]
