"""Bench: placement-optimizer throughput and predicted-MED improvement.

Runs both registered placement optimizers (greedy swap descent,
simulated annealing) on the edge-core GigE stress fabric under the
cross-switch ``shift`` workload at n = 16 and n = 64 and writes
``benchmarks/output/BENCH_placement.json``:

* one leg per (optimizer, n) with its wall-clock, objective
  evaluations, and evaluations/sec (the search is pure objective
  arithmetic — no simulation — so this is the cost of the MED
  matrix-permutation inner loop);
* the predicted-MED improvement ratio (identity / optimized) per leg.

Every leg must end at or below the identity objective — the built-in
optimizers cannot regress past their identity start by construction,
and this bench is the regression net for that invariant.

Runs standalone (``python benchmarks/bench_placement.py``) or under
pytest.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from record import finish, make_metric, per_fluid_unit

from repro.experiments.table_placement import SHIFT_OFFSET, stress_scenario
from repro.placement import optimize_placement

OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_placement.json"

MSG_SIZE = 524_288
NPROCS = (16, 64)
OPTIMIZERS = ("greedy", "anneal")
#: Annealing budget: enough to reach the n=16 optimum, bounded so the
#: n=64 leg stays a few seconds of pure numpy.
ANNEAL_ITERATIONS = 4_000


def run_placement_bench(output_path: Path = OUTPUT_PATH) -> dict:
    """Time both optimizers over the n ladder; write and return the entry."""
    profile = stress_scenario().profile
    pattern = {"name": "shift", "params": {"offset": SHIFT_OFFSET}}
    legs: dict[str, dict] = {}
    never_regressed = True
    for n in NPROCS:
        for optimizer in OPTIMIZERS:
            params = (
                {"iterations": ANNEAL_ITERATIONS}
                if optimizer == "anneal" else None
            )
            start = time.perf_counter()
            result = optimize_placement(
                profile, n, MSG_SIZE,
                pattern=pattern, optimizer=optimizer, seed=0, params=params,
            )
            elapsed = time.perf_counter() - start
            if result.objective > result.identity_objective:
                never_regressed = False  # pragma: no cover - invariant net
            legs[f"{optimizer}/{n}"] = {
                "elapsed_s": round(elapsed, 4),
                "evaluations": result.evaluations,
                "evaluations_per_sec": round(result.evaluations / elapsed, 1),
                "identity_objective_s": result.identity_objective,
                "optimized_objective_s": result.objective,
                "improvement_ratio": round(result.ratio, 3),
            }
    entry = {
        "bench": "placement_optimizers",
        "cluster": "edge-core-gige-placed",
        "pattern": f"shift(offset={SHIFT_OFFSET})",
        "msg_size": MSG_SIZE,
        "nprocs": list(NPROCS),
        "optimizers": list(OPTIMIZERS),
        "legs": legs,
        "never_regressed": never_regressed,
    }
    # Tracked: the no-regression invariant, both optimizers' predicted
    # improvement ratios at n=16 (pure model arithmetic — already
    # machine-independent), and greedy search throughput in fluid units.
    metrics = {
        "never_regressed": make_metric(
            1.0 if never_regressed else 0.0, direction="higher",
            tolerance=0.0,
        ),
        "greedy_improvement_n16": make_metric(
            legs["greedy/16"]["improvement_ratio"],
            direction="higher", tolerance=0.25, unit="x",
        ),
        "anneal_improvement_n16": make_metric(
            legs["anneal/16"]["improvement_ratio"],
            direction="higher", tolerance=0.25, unit="x",
        ),
        "greedy_evals_per_fluid_unit": make_metric(
            round(per_fluid_unit(legs["greedy/16"]["evaluations_per_sec"]), 1),
            direction="higher", tolerance=0.60,
        ),
    }
    return finish("placement_optimizers", metrics, entry, output_path)


def test_bench_placement():
    """Pytest entry: optimized <= identity everywhere, real wins at n=16."""
    entry = run_placement_bench()
    assert entry["never_regressed"] is True
    for leg_name, leg in entry["legs"].items():
        assert leg["optimized_objective_s"] <= leg["identity_objective_s"], leg_name
        assert leg["evaluations_per_sec"] > 0
    # The cross-switch shift workload has real avoidable contention:
    # both optimizers must find a strictly better mapping at n=16.
    for optimizer in entry["optimizers"]:
        assert entry["legs"][f"{optimizer}/16"]["improvement_ratio"] > 1.5
    assert json.loads(OUTPUT_PATH.read_text()) == entry
    greedy = entry["legs"]["greedy/16"]
    print(
        f"\nplacement bench: greedy n=16 {greedy['evaluations_per_sec']} "
        f"eval/s, {greedy['improvement_ratio']}x predicted improvement"
    )


if __name__ == "__main__":
    print(json.dumps(run_placement_bench(), indent=2))
