"""Bench: Fig. 14 — Myrinet estimation error vs process count."""

import numpy as np


def test_fig14_myrinet_error(run_figure):
    result = run_figure("fig14")
    for label, (ns, errors) in result.series.items():
        ns = np.asarray(ns)
        errors = np.asarray(errors)
        # Reasonable error near the fit size n' = 24.
        near = (ns >= 20) & (ns <= 30)
        assert np.abs(errors[near]).min() < 35.0, label
