"""Bench: Fig. 9 — Gigabit Ethernet fit (gamma ~ 4.4, delta ~ 5 ms)."""

import numpy as np


def test_fig09_gige_fit(run_figure):
    result = run_figure("fig09")
    gamma = result.params["gamma"]
    delta = result.params["delta"]
    # Paper: gamma = 4.3628, delta = 4.93 ms above 8 kB.
    assert 3.0 <= gamma <= 6.0
    assert 2e-3 <= delta <= 9e-3
    m, measured = result.series["Direct Exchange"]
    _, bound = result.series["Lower bound"]
    # The defining feature of the GigE figure: measurement far above the
    # contention-free bound (unlike Fast Ethernet).
    large = m >= 262_144
    assert np.all(measured[large] > 2.0 * bound[large])
