"""Bench: Fig. 8 — Fast Ethernet estimation error vs process count."""

import numpy as np


def test_fig08_fe_error(run_figure):
    result = run_figure("fig08")
    # Paper: error usually < 10% once the network is saturated; FE is the
    # best-behaved of the three networks.
    for label, (ns, errors) in result.series.items():
        saturated = np.asarray(ns) >= 20
        assert np.median(np.abs(np.asarray(errors)[saturated])) < 25.0, label
