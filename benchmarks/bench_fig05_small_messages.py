"""Bench: Fig. 5 — small-message non-linearity surface."""

import numpy as np


def test_fig05_small_messages(run_figure):
    result = run_figure("fig05")
    grid = result.surfaces["Direct Exchange"]
    # Completion time grows with node count at fixed m.
    assert np.all(grid[-1] >= grid[0] - 1e-12)
    # Non-linearity: the largest-n curve deviates from the straight line
    # through its endpoints (the whole point of the figure).
    times = grid[-1]
    m = result.m_values.astype(float)
    straight = times[0] + (times[-1] - times[0]) * (m - m[0]) / (m[-1] - m[0])
    deviation = np.max(np.abs(times - straight) / np.abs(straight))
    assert deviation > 0.02
