"""Bench: Fig. 12 — Myrinet fit (gamma ~ 2.5, delta ~ 0)."""

import numpy as np


def test_fig12_myrinet_fit(run_figure):
    result = run_figure("fig12")
    gamma = result.params["gamma"]
    delta = result.params["delta"]
    # Paper: gamma = 2.49754, delta below 1 us (dropped by the fit).
    assert 1.8 <= gamma <= 3.5
    assert delta <= 2e-3
    m, measured = result.series["Direct Exchange"]
    _, bound = result.series["Lower bound"]
    large = m >= 262_144
    # Contention present (well above bound) but milder than GigE.
    assert np.all(measured[large] > 1.3 * bound[large])
