"""Shared benchmark-record schema adapter for the ``bench_*.py`` suite.

Every bench emitter builds its legacy entry dict exactly as before,
then routes it through :func:`finish` with a ``metrics`` dict of
tracked, **machine-normalized** values — speedups and overheads are
already ratios against the fluid reference engine; absolute
throughputs are scaled by :func:`fluid_unit_seconds`, one calibration
point measured on this machine, so the committed baselines in
``benchmarks/baselines/`` gate runs on any container speed.

The schema itself (and the regression gate reading it) lives in
:mod:`repro.obs.bench`; this module is the thin bridge the bench
scripts import — they always run with ``repro`` importable.
"""

from __future__ import annotations

import functools
import json
import time
from pathlib import Path

from repro.obs.bench import SCHEMA, make_metric, make_record

__all__ = [
    "SCHEMA",
    "make_metric",
    "make_record",
    "fluid_unit_seconds",
    "finish",
]

#: Calibration point: fluid engine, lossless GigE, n=8, 4 KiB, one rep.
_CAL_N = 8
_CAL_MSG = 4_096
_CAL_ROUNDS = 3


@functools.lru_cache(maxsize=1)
def fluid_unit_seconds() -> float:
    """Best-of-3 wall seconds of one fluid reference simulation.

    The machine-speed yardstick: a throughput of ``X`` per second on
    this machine is ``X * fluid_unit_seconds()`` per *fluid unit* —
    a dimensionless rate two machines of different speeds agree on
    (both numerator and denominator scale with the machine).
    """
    from repro.clusters.profiles import get_cluster
    from repro.measure.alltoall import measure_alltoall

    cluster = get_cluster("gigabit-ethernet").with_overrides(loss=None)
    best = float("inf")
    for _ in range(_CAL_ROUNDS):
        start = time.perf_counter()
        measure_alltoall(
            cluster, _CAL_N, _CAL_MSG, reps=1, seed=0,
            algorithm="direct", engine="fluid",
        )
        best = min(best, time.perf_counter() - start)
    return best


def per_fluid_unit(rate_per_sec: float) -> float:
    """Normalize an absolute per-second rate into per-fluid-unit."""
    return rate_per_sec * fluid_unit_seconds()


def finish(
    bench: str,
    metrics: dict[str, dict],
    legacy: dict,
    output_path: Path,
) -> dict:
    """Assemble the schema record, write it, and return it."""
    record = make_record(bench, metrics, legacy)
    output_path = Path(output_path)
    output_path.parent.mkdir(parents=True, exist_ok=True)
    output_path.write_text(json.dumps(record, indent=2) + "\n")
    return record
