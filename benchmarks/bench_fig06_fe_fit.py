"""Bench: Fig. 6 — Fast Ethernet fit (gamma ~ 1, delta ~ 8 ms)."""

import numpy as np


def test_fig06_fe_fit(run_figure):
    result = run_figure("fig06")
    gamma = result.params["gamma"]
    delta = result.params["delta"]
    # Paper: gamma = 1.0195 (wire time dwarfs retransmission penalty),
    # delta = 8.23 ms. Bands are generous: the substrate is a simulator.
    assert 0.9 <= gamma <= 1.3
    assert 4e-3 <= delta <= 14e-3
    m, measured = result.series["Direct Exchange"]
    _, bound = result.series["Lower bound"]
    _, predicted = result.series["Prediction"]
    assert np.all(measured >= bound * 0.95)
    # Prediction tracks measurement far better than the bound does.
    pred_err = np.abs(measured - predicted).mean()
    bound_err = np.abs(measured - bound).mean()
    assert pred_err < bound_err
