"""Bench: Fig. 7 — Fast Ethernet prediction surface."""

import numpy as np

from repro.core.errors import relative_error_percent


def test_fig07_fe_surface(run_figure):
    result = run_figure("fig07")
    measured = result.surfaces["Direct Exchange"]
    predicted = result.surfaces["Prediction"]
    err = relative_error_percent(measured, predicted)
    # Saturated region (n >= fit size 24): errors stay small on FE.
    saturated_rows = result.n_values >= 24
    assert np.median(np.abs(err[saturated_rows])) < 25.0
    # Time grows with n and with m.
    assert np.all(np.diff(measured, axis=0) > -1e-9)
    assert np.all(np.diff(measured, axis=1) > 0)
