"""Bench: simulation-engine throughput (fluid vs vector).

Three ladders, all written to ``benchmarks/output/BENCH_engine.json``:

* **lossless** — the same All-to-All point with both engines on a
  lossless Gigabit Ethernet fabric (the configuration where the engines
  are provably equivalent): one leg per (engine, n) with wall-clock and
  points/sec, ``speedup`` per n, and ``equivalent`` (measured times
  within 1e-6 relative on every n both ran).
* **lossy** — the paper's headline configurations: the *stock* gige and
  fast-ethernet profiles with the TCP loss overlay enabled.  Lossy runs
  are statistically (not bit-) equivalent, so these legs record each
  engine's measured time and loss count alongside the speedup; the
  acceptance bar is >= 5x points/sec at n=64 on both clusters.
* **scale** — one n=1024 lossless vector point with jitter and start
  skew disabled (desynchronized completions would make the epoch count
  quadratic; with them off the whole grid collapses to a handful of
  epochs and the cost is per-message protocol work).  Records the
  wall-clock so CI can hold it to a budget.

The fluid engine's event loop is O(flows x epochs) in pure Python, so
it is only run up to n=64 (n=256 would take tens of minutes); the
vector engine runs the full ladder, which is the point of the exercise:
the batched epoch loop is what makes n=256..1024 grids tractable.

Runs standalone (``python benchmarks/bench_engine.py``) or under
pytest.
"""

from __future__ import annotations

import dataclasses
import json
import math
import time
from pathlib import Path

from record import finish, make_metric

from repro.clusters.profiles import get_cluster
from repro.measure.alltoall import measure_alltoall

OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_engine.json"

MSG_SIZE = 4_096
NPROCS = (16, 64, 256)
#: Largest n the pure-Python fluid loop is asked to simulate here.
FLUID_MAX_N = 64
#: Relative tolerance of the cross-engine equivalence check (lossless).
REL_TOL = 1e-6
#: The lossless acceptance bar: vector >= 10x fluid at n=64.
REQUIRED_SPEEDUP_N64 = 10.0
#: The lossy acceptance bar: vector >= 5x fluid at n=64 on the stock
#: (loss-enabled) gige and fast-ethernet profiles.
REQUIRED_LOSSY_SPEEDUP_N64 = 5.0
#: Lossy ladder: paper clusters with the loss overlay left ON.
LOSSY_CLUSTERS = ("gigabit-ethernet", "fast-ethernet")
LOSSY_NPROCS = (16, 64)
#: Thousand-rank rung: n and the wall-clock ceiling CI enforces.
SCALE_N = 1_024
SCALE_BUDGET_S = 420.0
#: Timing rounds per leg; the minimum is reported (the standard
#: noise-resistant estimator — shared CI runners jitter badly).  The
#: fluid n=64 legs cost ~15 s per round, so they get one; legs above
#: FLUID_MAX_N run once (minutes long, no fluid baseline to race).
ROUNDS = {"fluid": 2, "vector": 3}
LOSSY_ROUNDS = {"fluid": 1, "vector": 2}


def _bench_cluster():
    """Gigabit Ethernet without the loss overlay, capped high enough
    for the n=256 leg (the stock profile models a 216-port fabric).
    Jitter and start skew stay on: their desynchronized completions are
    exactly the workload that makes the fluid event loop expensive, and
    both engines replay the same RNG streams, so equivalence holds
    regardless.
    """
    cluster = get_cluster("gigabit-ethernet")
    return cluster.with_overrides(loss=None, max_hosts=1024)


def _lossy_cluster(name: str):
    """Stock paper profile (loss overlay ON), capped for the ladder."""
    return get_cluster(name).with_overrides(max_hosts=1024)


def _scale_cluster():
    """n=1024 rung: lossless gige with jitter and start skew disabled.

    With synchronized starts the ~1M flows inject at one timestamp and
    the grid resolves in a handful of epochs; with jitter on, every
    completion lands at a distinct time and the epoch count grows
    quadratically — intractable at this n on any engine.
    """
    cluster = get_cluster("gigabit-ethernet")
    transport = dataclasses.replace(cluster.transport, jitter_scale=0.0)
    return cluster.with_overrides(
        loss=None, max_hosts=2048, transport=transport,
        start_skew_scale=0.0,
    )


def _timed_point(cluster, engine: str, n: int, *, rounds_table=ROUNDS):
    """(best-of-rounds elapsed seconds, measured time, total losses).

    Loss counts ride on the ``REPRO_SIM_STATS`` counters (plain ints —
    they do not perturb the timing the way a recording trace would);
    when the flag is off the loss count reads 0.
    """
    rounds = 1 if n > FLUID_MAX_N else rounds_table[engine]
    best = math.inf
    sample = None
    for _ in range(rounds):
        start = time.perf_counter()
        sample = measure_alltoall(
            cluster, n, MSG_SIZE, reps=1, seed=0,
            algorithm="direct", engine=engine,
        )
        best = min(best, time.perf_counter() - start)
    stats = getattr(sample, "sim_stats", None)
    losses = 0 if stats is None else stats.losses
    return best, sample.mean_time, losses


def _lossless_ladder() -> tuple[dict, dict, bool]:
    cluster = _bench_cluster()
    legs: dict[str, dict] = {}
    speedups: dict[str, float] = {}
    equivalent = True
    for n in NPROCS:
        fluid_s = fluid_t = None
        if n <= FLUID_MAX_N:
            fluid_s, fluid_t, _ = _timed_point(cluster, "fluid", n)
        vector_s, vector_t, _ = _timed_point(cluster, "vector", n)
        leg: dict[str, object] = {
            "vector": {
                "elapsed_s": round(vector_s, 4),
                "points_per_sec": round(1.0 / vector_s, 3),
            },
        }
        if fluid_s is not None:
            leg["fluid"] = {
                "elapsed_s": round(fluid_s, 4),
                "points_per_sec": round(1.0 / fluid_s, 3),
            }
            speedups[str(n)] = round(fluid_s / vector_s, 2)
            if abs(vector_t - fluid_t) > REL_TOL * abs(fluid_t):
                equivalent = False
        legs[str(n)] = leg
    return legs, speedups, equivalent


def _lossy_ladder() -> dict:
    import os

    out: dict[str, dict] = {}
    prev = os.environ.get("REPRO_SIM_STATS")
    os.environ["REPRO_SIM_STATS"] = "1"
    try:
        out.update(_lossy_ladder_inner())
    finally:
        if prev is None:
            os.environ.pop("REPRO_SIM_STATS", None)
        else:
            os.environ["REPRO_SIM_STATS"] = prev
    return out


def _lossy_ladder_inner() -> dict:
    out: dict[str, dict] = {}
    for name in LOSSY_CLUSTERS:
        cluster = _lossy_cluster(name)
        assert cluster.loss is not None and cluster.loss.enabled
        legs: dict[str, dict] = {}
        speedups: dict[str, float] = {}
        for n in LOSSY_NPROCS:
            fluid_s, fluid_t, fluid_losses = _timed_point(
                cluster, "fluid", n, rounds_table=LOSSY_ROUNDS
            )
            vector_s, vector_t, vector_losses = _timed_point(
                cluster, "vector", n, rounds_table=LOSSY_ROUNDS
            )
            legs[str(n)] = {
                "fluid": {
                    "elapsed_s": round(fluid_s, 4),
                    "points_per_sec": round(1.0 / fluid_s, 3),
                    "mean_time": round(fluid_t, 6),
                    "losses": fluid_losses,
                },
                "vector": {
                    "elapsed_s": round(vector_s, 4),
                    "points_per_sec": round(1.0 / vector_s, 3),
                    "mean_time": round(vector_t, 6),
                    "losses": vector_losses,
                },
            }
            speedups[str(n)] = round(fluid_s / vector_s, 2)
        out[name] = {"legs": legs, "speedup": speedups}
    return out


def _scale_rung() -> dict:
    cluster = _scale_cluster()
    start = time.perf_counter()
    sample = measure_alltoall(
        cluster, SCALE_N, MSG_SIZE, reps=1, seed=0,
        algorithm="direct", engine="vector",
    )
    elapsed = time.perf_counter() - start
    return {
        "n": SCALE_N,
        "engine": "vector",
        "jitter": "disabled",
        "elapsed_s": round(elapsed, 2),
        "budget_s": SCALE_BUDGET_S,
        "within_budget": elapsed <= SCALE_BUDGET_S,
        "mean_time": round(float(sample.mean_time), 6),
    }


def run_engine_bench(output_path: Path = OUTPUT_PATH) -> dict:
    """Run all three ladders; write and return the schema record."""
    legs, speedups, equivalent = _lossless_ladder()
    lossy = _lossy_ladder()
    scale = _scale_rung()
    entry = {
        "bench": "engine_throughput",
        "cluster": "gigabit-ethernet (loss=None)",
        "algorithm": "direct",
        "msg_size": MSG_SIZE,
        "nprocs": list(NPROCS),
        "fluid_max_n": FLUID_MAX_N,
        "rounds": dict(ROUNDS),
        "legs": legs,
        "speedup": speedups,
        "equivalent": equivalent,
        "lossy": lossy,
        "scale": scale,
    }
    # Tracked, machine-normalized metrics: every value is a ratio
    # against the fluid reference engine on this same machine, so a
    # committed baseline gates runs on any container speed.  Tolerances
    # mirror the existing CI bars (10x/5x floors vs ~14x/~8x typical).
    fluid_64_s = legs[str(FLUID_MAX_N)]["fluid"]["elapsed_s"]
    metrics = {
        "lossless_speedup_n64": make_metric(
            speedups["64"], direction="higher", tolerance=0.30, unit="x"
        ),
        "lossy_speedup_gige_n64": make_metric(
            lossy["gigabit-ethernet"]["speedup"]["64"],
            direction="higher", tolerance=0.40, unit="x",
        ),
        "lossy_speedup_fast_ethernet_n64": make_metric(
            lossy["fast-ethernet"]["speedup"]["64"],
            direction="higher", tolerance=0.40, unit="x",
        ),
        "scale_n1024_vs_fluid_n64": make_metric(
            round(scale["elapsed_s"] / fluid_64_s, 3),
            direction="lower", tolerance=0.60, unit="x",
        ),
        "equivalent": make_metric(
            1.0 if equivalent else 0.0, direction="higher", tolerance=0.0
        ),
    }
    return finish("engine_throughput", metrics, entry, output_path)


def test_bench_engine():
    """Pytest entry: equivalence, the 10x lossless and 5x lossy bars,
    and the thousand-rank rung inside its wall-clock budget."""
    entry = run_engine_bench()
    assert entry["equivalent"] is True
    assert entry["speedup"]["64"] >= REQUIRED_SPEEDUP_N64, entry["speedup"]
    # The n=256 leg exists at all only because of the vector engine.
    assert entry["legs"]["256"]["vector"]["points_per_sec"] > 0
    for name in LOSSY_CLUSTERS:
        lossy = entry["lossy"][name]
        assert (
            lossy["speedup"]["64"] >= REQUIRED_LOSSY_SPEEDUP_N64
        ), (name, lossy["speedup"])
    assert entry["scale"]["within_budget"], entry["scale"]
    assert json.loads(OUTPUT_PATH.read_text()) == entry
    print(
        f"\nengine bench: n=64 lossless "
        f"{entry['speedup']['64']}x, lossy "
        + ", ".join(
            f"{name} {entry['lossy'][name]['speedup']['64']}x"
            for name in LOSSY_CLUSTERS
        )
        + f"; n={SCALE_N} in {entry['scale']['elapsed_s']}s"
    )


if __name__ == "__main__":
    print(json.dumps(run_engine_bench(), indent=2))
