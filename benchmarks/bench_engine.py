"""Bench: simulation-engine throughput (fluid vs vector).

Measures the same All-to-All point with both registered engines on a
lossless Gigabit Ethernet fabric — the configuration where the engines
are provably equivalent — and writes
``benchmarks/output/BENCH_engine.json``:

* one leg per (engine, n) with its wall-clock and points/sec;
* ``speedup`` per n (fluid seconds / vector seconds);
* ``equivalent`` — the two engines' measured times agree within 1e-6
  relative on every n both ran.

The fluid engine's event loop is O(flows x epochs) in pure Python, so
it is only run up to n=64 (n=256 would take tens of minutes); the
vector engine runs the full ladder, which is the point of the exercise:
the batched epoch loop is what makes n=256 grids tractable at all.

Runs standalone (``python benchmarks/bench_engine.py``) or under
pytest.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from repro.clusters.profiles import get_cluster
from repro.measure.alltoall import measure_alltoall

OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_engine.json"

MSG_SIZE = 4_096
NPROCS = (16, 64, 256)
#: Largest n the pure-Python fluid loop is asked to simulate here.
FLUID_MAX_N = 64
#: Relative tolerance of the cross-engine equivalence check.
REL_TOL = 1e-6
#: The acceptance bar: vector must beat fluid by >= 10x at n=64.
REQUIRED_SPEEDUP_N64 = 10.0
#: Timing rounds per leg; the minimum is reported (the standard
#: noise-resistant estimator — shared CI runners jitter badly).  The
#: fluid n=64 leg costs ~15 s per round, so it gets fewer; the n=256
#: leg runs once (it is minutes long and has no fluid baseline to race).
ROUNDS = {"fluid": 2, "vector": 3}


def _bench_cluster():
    """Gigabit Ethernet without the loss overlay (the one fluid-only
    feature), capped high enough for the n=256 leg (the stock profile
    models a 216-port fabric).  Jitter and start skew stay on: their
    desynchronized completions are exactly the workload that makes the
    fluid event loop expensive, and both engines replay the same RNG
    streams, so equivalence holds regardless.
    """
    cluster = get_cluster("gigabit-ethernet")
    return cluster.with_overrides(loss=None, max_hosts=1024)


def _timed_point(cluster, engine: str, n: int) -> tuple[float, float]:
    """(best-of-rounds elapsed seconds, measured All-to-All time)."""
    rounds = 1 if n > FLUID_MAX_N else ROUNDS[engine]
    best = math.inf
    sample = None
    for _ in range(rounds):
        start = time.perf_counter()
        sample = measure_alltoall(
            cluster, n, MSG_SIZE, reps=1, seed=0,
            algorithm="direct", engine=engine,
        )
        best = min(best, time.perf_counter() - start)
    return best, sample.mean_time


def run_engine_bench(output_path: Path = OUTPUT_PATH) -> dict:
    """Run both engines over the n ladder; write and return the entry."""
    cluster = _bench_cluster()
    legs: dict[str, dict] = {}
    speedups: dict[str, float] = {}
    equivalent = True
    for n in NPROCS:
        fluid_s = fluid_t = None
        if n <= FLUID_MAX_N:
            fluid_s, fluid_t = _timed_point(cluster, "fluid", n)
        vector_s, vector_t = _timed_point(cluster, "vector", n)
        leg: dict[str, object] = {
            "vector": {
                "elapsed_s": round(vector_s, 4),
                "points_per_sec": round(1.0 / vector_s, 3),
            },
        }
        if fluid_s is not None:
            leg["fluid"] = {
                "elapsed_s": round(fluid_s, 4),
                "points_per_sec": round(1.0 / fluid_s, 3),
            }
            speedups[str(n)] = round(fluid_s / vector_s, 2)
            if abs(vector_t - fluid_t) > REL_TOL * abs(fluid_t):
                equivalent = False
        legs[str(n)] = leg
    entry = {
        "bench": "engine_throughput",
        "cluster": "gigabit-ethernet (loss=None)",
        "algorithm": "direct",
        "msg_size": MSG_SIZE,
        "nprocs": list(NPROCS),
        "fluid_max_n": FLUID_MAX_N,
        "rounds": dict(ROUNDS),
        "legs": legs,
        "speedup": speedups,
        "equivalent": equivalent,
    }
    output_path.parent.mkdir(parents=True, exist_ok=True)
    output_path.write_text(json.dumps(entry, indent=2) + "\n")
    return entry


def test_bench_engine():
    """Pytest entry: both engines agree and vector clears the 10x bar."""
    entry = run_engine_bench()
    assert entry["equivalent"] is True
    assert entry["speedup"]["64"] >= REQUIRED_SPEEDUP_N64, entry["speedup"]
    # The n=256 leg exists at all only because of the vector engine.
    assert entry["legs"]["256"]["vector"]["points_per_sec"] > 0
    assert json.loads(OUTPUT_PATH.read_text()) == entry
    print(
        f"\nengine bench: n=64 fluid "
        f"{entry['legs']['64']['fluid']['points_per_sec']} pt/s, vector "
        f"{entry['legs']['64']['vector']['points_per_sec']} pt/s "
        f"({entry['speedup']['64']}x)"
    )


if __name__ == "__main__":
    print(json.dumps(run_engine_bench(), indent=2))
