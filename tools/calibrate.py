"""Calibration probe: sweep mechanism knobs, report fitted signatures.

Used during development to tune cluster profiles so that the fitted
(γ, δ) signatures land near the paper's reported values.  Not part of
the installed package.

Usage: python tools/calibrate.py [gige|myrinet|fe|stress] ...
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import clusters
from repro.core import alltoall_lower_bound, fit_signature
from repro.measure import (
    hockney_from_pingpong,
    measure_pingpong,
    run_stress,
    sweep_sizes,
)
from repro.simnet.entities import LinkKind
from repro.simnet.loss import LossParams
from repro.simnet.penalty import HolPenalty


def signature_for(cluster, nprocs, reps=2, seed=7):
    pp = measure_pingpong(cluster, sizes=[1, 65536, 1048576], reps=2, seed=1)
    hockney = hockney_from_pingpong(pp).params
    sizes = [131072, 262144, 524288, 786432, 1048576]
    samples = sweep_sizes(cluster, nprocs, sizes, reps=reps, seed=seed)
    fit = fit_signature(samples, hockney)
    return hockney, fit.signature, samples


def probe_myrinet():
    base = clusters.myrinet()
    for eta in [0.0, 0.1, 0.2, 0.4]:
        for skew in [0.5e-3, 1.5e-3]:
            cluster = base.with_overrides(
                hol=HolPenalty(eta={LinkKind.HOST_RX: eta}),
                start_skew_scale=skew,
            )
            t0 = time.time()
            hockney, sig, _ = signature_for(cluster, 24)
            print(
                f"eta={eta:<4} skew={skew * 1e3:.1f}ms -> gamma={sig.gamma:.3f} "
                f"delta={sig.delta * 1e3:.2f}ms M={sig.threshold} "
                f"({time.time() - t0:.1f}s)"
            )


def probe_gige():
    base = clusters.gigabit_ethernet()
    for coeff in [2e-9, 4e-9, 7e-9]:
        for factor in [0.0, 2.0]:
            cluster = base.with_overrides(
                loss=LossParams(
                    coeff_per_byte=coeff,
                    sat_flows=base.loss.sat_flows,
                    rto_min=0.200,
                    rto_max=3.200,
                    backoff_hazard_factor=factor,
                )
            )
            t0 = time.time()
            hockney, sig, _ = signature_for(cluster, 40)
            print(
                f"coeff={coeff:.1e} bf={factor} -> gamma={sig.gamma:.3f} "
                f"delta={sig.delta * 1e3:.2f}ms M={sig.threshold} "
                f"({time.time() - t0:.1f}s)"
            )


def probe_fe():
    cluster = clusters.fast_ethernet()
    hockney, sig, _ = signature_for(cluster, 24)
    print(f"FE: {hockney} gamma={sig.gamma:.4f} delta={sig.delta * 1e3:.2f}ms M={sig.threshold}")


def probe_stress():
    base = clusters.gigabit_ethernet()
    for coeff in [4e-9, 1e-8]:
        for factor in [0.0, 2.0, 4.0]:
            cluster = base.with_overrides(
                loss=LossParams(
                    coeff_per_byte=coeff,
                    sat_flows=base.loss.sat_flows,
                    rto_min=0.200,
                    rto_max=3.200,
                    backoff_hazard_factor=factor,
                )
            )
            r = run_stress(cluster, 60, 32 * 1024 * 1024, seed=5)
            t = np.sort(r.times)
            print(
                f"coeff={coeff:.0e} bf={factor}: mean={t.mean():.2f} "
                f"p10={t[6]:.2f} max={t[-1]:.2f} ratio={t[-1] / t[6]:.1f} "
                f"losses={r.losses}"
            )


if __name__ == "__main__":
    which = sys.argv[1] if len(sys.argv) > 1 else "all"
    if which in ("myrinet", "all"):
        probe_myrinet()
    if which in ("gige", "all"):
        probe_gige()
    if which in ("fe", "all"):
        probe_fe()
    if which in ("stress", "all"):
        probe_stress()
