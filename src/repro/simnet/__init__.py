"""Fluid discrete-event network simulator (substrate).

Replaces the paper's physical Grid'5000 clusters.  See DESIGN.md §2/§5
for the substitution argument and contention mechanisms.
"""

from .engine import Engine, EventHandle
from .entities import Host, Link, LinkKind, Switch
from .fairness import AllocationResult, FlowPaths, max_min_allocation
from .fluid import Flow, FlowState, FluidNetwork
from .loss import LossModel, LossParams
from .penalty import HolPenalty
from .resources import SerialResource
from .rng import RngFactory
from .stats import SimStats, Summary, stats_enabled, summarize
from .topology import Topology, edge_core, single_switch
from .trace import NullTrace, Trace, TraceRecord
from .vector import VectorSimulator

__all__ = [
    "Engine",
    "EventHandle",
    "Host",
    "Link",
    "LinkKind",
    "Switch",
    "AllocationResult",
    "FlowPaths",
    "max_min_allocation",
    "Flow",
    "FlowState",
    "FluidNetwork",
    "LossModel",
    "LossParams",
    "HolPenalty",
    "SerialResource",
    "RngFactory",
    "SimStats",
    "Summary",
    "stats_enabled",
    "summarize",
    "VectorSimulator",
    "Topology",
    "edge_core",
    "single_switch",
    "NullTrace",
    "Trace",
    "TraceRecord",
]
