"""Cluster topologies and routing.

Provides the :class:`Topology` container plus builders for the two shapes
used in the paper's evaluation:

* :func:`single_switch` — all hosts on one switch (GdX Gigabit Ethernet,
  icluster2 Myrinet M3-E128), optionally with a finite backplane;
* :func:`edge_core` — several edge switches star-connected to one core
  switch (icluster2 Fast Ethernet: 5 FE edge switches, 20 nodes each,
  interconnected by a Gigabit core).

Routes are computed once at build time.  For general graphs the switch
fabric is a :mod:`networkx` graph and paths come from shortest-path; the
two builders above also exercise that code path so custom topologies
behave identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..exceptions import RoutingError
from ..registry import register_topology
from .entities import Host, Link, LinkKind, Switch

__all__ = ["Topology", "single_switch", "edge_core"]


@dataclass
class Topology:
    """A routed cluster network.

    Use :func:`single_switch` / :func:`edge_core` (or build hosts,
    switches and links by hand) and then call :meth:`finalize` to compute
    routes.  After finalisation the object is logically immutable.
    """

    hosts: list[Host] = field(default_factory=list)
    switches: list[Switch] = field(default_factory=list)
    links: list[Link] = field(default_factory=list)
    name: str = "topology"
    _switch_paths: dict[tuple[int, int], tuple[int, ...]] = field(
        default_factory=dict, repr=False
    )
    _finalized: bool = field(default=False, repr=False)

    # -- construction -------------------------------------------------

    def add_link(self, capacity: float, kind: LinkKind, name: str) -> int:
        """Append a directed link; returns its dense index."""
        link = Link(len(self.links), capacity, kind, name)
        self.links.append(link)
        return link.index

    def add_switch(self, *, backplane_capacity: float | None = None) -> int:
        """Append a switch, optionally with a finite backplane."""
        idx = len(self.switches)
        backplane = -1
        if backplane_capacity is not None:
            backplane = self.add_link(
                backplane_capacity, LinkKind.BACKPLANE, f"switch{idx}.backplane"
            )
        self.switches.append(Switch(idx, backplane_link=backplane))
        return idx

    def add_host(self, switch: int, *, nic_bandwidth: float) -> int:
        """Append a host cabled to *switch* with a full-duplex NIC."""
        if not 0 <= switch < len(self.switches):
            raise ValueError(f"no such switch: {switch}")
        idx = len(self.hosts)
        tx = self.add_link(nic_bandwidth, LinkKind.HOST_TX, f"host{idx}.tx")
        rx = self.add_link(nic_bandwidth, LinkKind.HOST_RX, f"host{idx}.rx")
        self.hosts.append(Host(idx, switch, tx_link=tx, rx_link=rx))
        return idx

    def connect_switches(self, a: int, b: int, *, bandwidth: float) -> None:
        """Cable two switches with a full-duplex trunk."""
        ab = self.add_link(bandwidth, LinkKind.TRUNK, f"trunk{a}->{b}")
        ba = self.add_link(bandwidth, LinkKind.TRUNK, f"trunk{b}->{a}")
        self.switches[a].trunks[b] = ab
        self.switches[b].trunks[a] = ba

    def finalize(self) -> "Topology":
        """Compute inter-switch routes; must be called before routing."""
        graph = nx.Graph()
        graph.add_nodes_from(range(len(self.switches)))
        for sw in self.switches:
            for neighbour in sw.trunks:
                graph.add_edge(sw.index, neighbour)
        for src in range(len(self.switches)):
            try:
                paths = nx.single_source_shortest_path(graph, src)
            except nx.NetworkXError as exc:  # pragma: no cover - defensive
                raise RoutingError(str(exc)) from exc
            for dst, node_path in paths.items():
                self._switch_paths[(src, dst)] = tuple(node_path)
        self._finalized = True
        return self

    # -- queries -------------------------------------------------------

    @property
    def n_hosts(self) -> int:
        """Number of hosts."""
        return len(self.hosts)

    @property
    def n_links(self) -> int:
        """Number of directed links (fluid solver dimension)."""
        return len(self.links)

    def capacities(self) -> list[float]:
        """Capacity vector aligned with link indices."""
        return [link.capacity for link in self.links]

    def route(self, src: int, dst: int) -> tuple[int, ...]:
        """Directed link indices crossed by a flow from host *src* to *dst*.

        The route is: source TX NIC, then for every switch on the switch
        path its backplane (when finite), the trunks between consecutive
        switches, and finally the destination RX NIC.  Same-host routes
        are empty (local copies never enter the network).
        """
        if not self._finalized:
            raise RoutingError("topology not finalized; call finalize() first")
        if src == dst:
            return ()
        try:
            h_src, h_dst = self.hosts[src], self.hosts[dst]
        except IndexError as exc:
            raise RoutingError(f"no such host pair ({src}, {dst})") from exc
        key = (h_src.switch, h_dst.switch)
        switch_path = self._switch_paths.get(key)
        if switch_path is None:
            raise RoutingError(
                f"no switch path between {h_src.name} and {h_dst.name}"
            )
        path: list[int] = [h_src.tx_link]
        for position, sw_idx in enumerate(switch_path):
            switch = self.switches[sw_idx]
            if switch.has_backplane:
                path.append(switch.backplane_link)
            if position + 1 < len(switch_path):
                nxt = switch_path[position + 1]
                path.append(switch.trunks[nxt])
        path.append(h_dst.rx_link)
        return tuple(path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology({self.name!r}, hosts={len(self.hosts)}, "
            f"switches={len(self.switches)}, links={len(self.links)})"
        )


@register_topology("single-switch", aliases=("star",))
def single_switch(
    n_hosts: int,
    *,
    nic_bandwidth: float,
    backplane_capacity: float | None = None,
    name: str = "single-switch",
) -> Topology:
    """All *n_hosts* on one switch (GdX GigE / icluster2 Myrinet shape)."""
    if n_hosts < 1:
        raise ValueError("need at least one host")
    topo = Topology(name=name)
    sw = topo.add_switch(backplane_capacity=backplane_capacity)
    for _ in range(n_hosts):
        topo.add_host(sw, nic_bandwidth=nic_bandwidth)
    return topo.finalize()


@register_topology("edge-core", aliases=("tree",))
def edge_core(
    n_hosts: int,
    *,
    nic_bandwidth: float,
    hosts_per_edge: int,
    trunk_bandwidth: float,
    edge_backplane: float | None = None,
    core_backplane: float | None = None,
    name: str = "edge-core",
) -> Topology:
    """Edge switches star-connected to a core (icluster2 FE shape).

    Hosts fill edge switches in blocks of *hosts_per_edge* (matching
    "5 Fast Ethernet switches - 20 nodes per switch - interconnected by
    1 Gigabit Ethernet switch").
    """
    if n_hosts < 1:
        raise ValueError("need at least one host")
    if hosts_per_edge < 1:
        raise ValueError("hosts_per_edge must be >= 1")
    topo = Topology(name=name)
    core = topo.add_switch(backplane_capacity=core_backplane)
    n_edges = -(-n_hosts // hosts_per_edge)  # ceil division
    for _ in range(n_edges):
        edge = topo.add_switch(backplane_capacity=edge_backplane)
        topo.connect_switches(edge, core, bandwidth=trunk_bandwidth)
    for h in range(n_hosts):
        edge_switch = 1 + h // hosts_per_edge
        topo.add_host(edge_switch, nic_bandwidth=nic_bandwidth)
    return topo.finalize()
