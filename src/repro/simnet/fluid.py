"""Event-driven fluid (flow-level) network simulation — the reference engine.

Flows are fluid streams that share link bandwidth max-min fairly
(:mod:`repro.simnet.fairness`).  Whenever the set of active flows changes
(injection, completion, RTO stall, resume) the allocation is re-solved and
the next completion / loss events are rescheduled.  Between events every
flow progresses linearly at its allocated rate.

Layering: this module is one of two *engines* behind the ``ENGINES``
registry (see :mod:`repro.engines`).  It serves the generator-driven
reference runtime (:mod:`repro.simmpi.runtime`), which injects flows one
at a time as rank programs progress; the batched alternative
(:mod:`repro.simnet.vector`) executes statically lowered schedules
(:mod:`repro.simmpi.lowering`) instead and re-uses this module's epsilon
and event-priority conventions to stay equivalent.  This engine is the
default and the correctness oracle: the vector engine's loss overlay is
validated statistically against this one, and cache keys are defined by
its behaviour.

Design notes (performance and the engine split):

* per-flow state that the hot loop touches (remaining bytes, rates) lives
  in NumPy arrays indexed by *slot*; Python ``Flow`` objects are only
  touched on state transitions;
* the allocation structure (flow→link CSR) is rebuilt only when the
  active set changes, not on pure re-samples — but the rebuild itself is
  a per-flow Python loop plus ``FlowPaths.from_lists``, which is what
  caps this engine at tens of ranks (the vector engine replaces exactly
  this step with a precomputed per-pair CSR gather);
* event cascades within one timestamp are collapsed: completion handlers
  fire user callbacks, which typically inject follow-up flows at the same
  timestamp; those coalesce into a single follow-up resolve.

The loss overlay implements the TCP RTO mechanism described in
:mod:`repro.simnet.loss`; pass ``loss_params=None`` (or params with
``coeff_per_byte=0``) for lossless fabrics (Myrinet/gm).
"""

from __future__ import annotations

import enum
import itertools
import math
from typing import Callable

import numpy as np

from ..exceptions import SimulationError
from .engine import Engine, EventHandle
from .fairness import FlowPaths, max_min_allocation
from .loss import LossModel, LossParams
from .penalty import HolPenalty
from .topology import Topology
from .trace import NullTrace, Trace

__all__ = ["FlowState", "Flow", "FluidNetwork"]

_BYTE_EPS = 0.5  # flows within half a byte of zero are complete
_RESOLVE_PRIORITY = 100  # resolves run after all same-timestamp events


class FlowState(enum.Enum):
    """Lifecycle of a fluid flow."""

    PENDING = "pending"  #: injected, not yet incorporated in a resolve
    ACTIVE = "active"  #: progressing at its allocated rate
    STALLED = "stalled"  #: waiting out an RTO after a loss
    DONE = "done"  #: all bytes delivered


class Flow:
    """One fluid transfer between two hosts.

    Authoritative ``remaining`` is held in the network's slot arrays while
    the flow is ACTIVE; the attribute on this object is synchronised on
    every state transition.
    """

    __slots__ = (
        "fid",
        "src",
        "dst",
        "nbytes",
        "remaining",
        "path",
        "path_array",
        "state",
        "on_complete",
        "label",
        "start_time",
        "end_time",
        "losses",
        "backoff",
        "remaining_at_last_loss",
        "slot",
        "last_rate",
        "inbound_at_completion",
    )

    def __init__(
        self,
        fid: int,
        src: int,
        dst: int,
        nbytes: float,
        path: tuple[int, ...],
        on_complete: Callable[["Flow"], None] | None,
        label: str,
        start_time: float,
    ) -> None:
        self.fid = fid
        self.src = src
        self.dst = dst
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.path = path
        self.path_array = np.asarray(path, dtype=np.int64)
        self.state = FlowState.PENDING
        self.on_complete = on_complete
        self.label = label
        self.start_time = start_time
        self.end_time = math.nan
        self.losses = 0
        self.backoff = 0
        self.remaining_at_last_loss = float(nbytes)
        self.slot = -1
        self.last_rate = 0.0
        # Inbound streams open at the destination when this flow finished
        # (including itself); the receiver demux model reads this.
        self.inbound_at_completion = 1

    @property
    def duration(self) -> float:
        """Wall-clock transfer time (NaN until complete)."""
        return self.end_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Flow({self.label or self.fid}, {self.src}->{self.dst}, "
            f"{self.nbytes:.0f}B, {self.state.value})"
        )


class FluidNetwork:
    """Fluid traffic simulation over a :class:`Topology`.

    Parameters
    ----------
    engine:
        Shared event engine (the MPI runtime schedules on the same one).
    topology:
        Finalised topology; routes are looked up per flow at injection.
    loss_params:
        TCP loss/RTO behaviour; ``None`` disables losses.
    rng:
        Generator for the loss process (required when losses enabled).
    trace:
        Optional structured trace.
    timeline:
        Optional :class:`~repro.obs.timeline.LinkTimeline` (or anything
        with its ``record_active(now, paths, rates)`` shape) fed on
        every allocation resolve; ``None`` (default) records nothing.
    """

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        *,
        loss_params: LossParams | None = None,
        hol_penalty: HolPenalty | None = None,
        rng: np.random.Generator | None = None,
        trace: Trace | None = None,
        timeline=None,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.trace = trace if trace is not None else NullTrace()
        self._timeline = timeline
        self._capacities = np.asarray(topology.capacities(), dtype=np.float64)
        self._fid = itertools.count()
        if hol_penalty is not None and hol_penalty.enabled:
            self._hol = hol_penalty
            self._hol_eta = hol_penalty.eta_vector(
                [link.kind for link in topology.links]
            )
        else:
            self._hol = None
            self._hol_eta = None

        if loss_params is not None and loss_params.enabled:
            if rng is None:
                raise ValueError("loss process requires an rng")
            kinds = [link.kind for link in topology.links]
            self._loss_model: LossModel | None = LossModel(loss_params, kinds)
            self._loss_params = loss_params
        else:
            self._loss_model = None
            self._loss_params = loss_params
        self._rng = rng

        # Slot arrays for ACTIVE flows.
        self._slot_flows: list[Flow] = []
        self._remaining = np.empty(0, dtype=np.float64)
        self._rates = np.empty(0, dtype=np.float64)
        self._hazards = np.empty(0, dtype=np.float64)
        self._paths: FlowPaths | None = None

        self._pending: list[Flow] = []
        self._structure_dirty = False
        self._last_advance = 0.0
        self._resolve_event: EventHandle | None = None
        self._completion_event: EventHandle | None = None
        self._loss_event: EventHandle | None = None

        self._inbound_open: dict[int, int] = {}
        self._outbound_open: dict[int, int] = {}

        # Aggregate statistics.
        self.flows_completed = 0
        self.total_losses = 0
        self.stalls = 0
        self.max_concurrent = 0
        self.resolves = 0
        self.epochs = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def inject(
        self,
        src: int,
        dst: int,
        nbytes: float,
        *,
        on_complete: Callable[[Flow], None] | None = None,
        label: str = "",
    ) -> Flow:
        """Start a transfer of *nbytes* from host *src* to host *dst*.

        Raises for same-host traffic (local copies must bypass the
        network) and for non-positive sizes.
        """
        if nbytes <= 0:
            raise ValueError(f"flow size must be positive, got {nbytes!r}")
        if src == dst:
            raise SimulationError(
                "same-host flow: local traffic must not enter the fluid model"
            )
        path = self.topology.route(src, dst)
        flow = Flow(
            next(self._fid),
            src,
            dst,
            nbytes,
            path,
            on_complete,
            label,
            self.engine.now,
        )
        self._pending.append(flow)
        self._inbound_open[dst] = self._inbound_open.get(dst, 0) + 1
        self._outbound_open[src] = self._outbound_open.get(src, 0) + 1
        self._mark_dirty()
        self.trace.emit(
            self.engine.now, "flow.inject", fid=flow.fid, src=src, dst=dst,
            nbytes=nbytes, label=label,
        )
        return flow

    def inbound_open_count(self, host: int) -> int:
        """Inbound flows injected and not yet complete for *host*.

        Counts PENDING flows as well as ACTIVE and STALLED ones: a flow
        is "open" at the receiver from the instant it is injected (the
        receiver's stack is already committed to it; pending flows are
        admitted by the same-timestamp resolve, so the distinction is
        only visible mid-cascade).  The demux-concurrency snapshot taken
        at flow completion relies on exactly this semantics.
        """
        return self._inbound_open.get(host, 0)

    def outbound_open_count(self, host: int) -> int:
        """Outbound flows injected and not yet complete for *host*.

        Same open-from-injection semantics as :meth:`inbound_open_count`
        (PENDING, ACTIVE, or STALLED).
        """
        return self._outbound_open.get(host, 0)

    @property
    def active_count(self) -> int:
        """Number of flows currently progressing."""
        return len(self._slot_flows)

    def current_rate(self, flow: Flow) -> float:
        """Instantaneous allocated rate of *flow* (0 unless ACTIVE)."""
        if flow.state is FlowState.ACTIVE and 0 <= flow.slot < len(self._rates):
            return float(self._rates[flow.slot])
        return 0.0

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------

    def _mark_dirty(self) -> None:
        self._structure_dirty = True
        if self._resolve_event is None or self._resolve_event.cancelled:
            self._resolve_event = self.engine.schedule(
                self.engine.now, self._resolve, priority=_RESOLVE_PRIORITY
            )

    def _advance(self) -> None:
        """Progress all active flows to the current time."""
        now = self.engine.now
        dt = now - self._last_advance
        if dt > 0 and len(self._slot_flows):
            self._remaining -= self._rates * dt
            self.epochs += 1
        self._last_advance = now

    def _complete_finished(self) -> list[Flow]:
        """Mark flows whose bytes are exhausted as DONE; return them."""
        if not len(self._slot_flows):
            return []
        finished_mask = self._remaining <= _BYTE_EPS
        if not finished_mask.any():
            return []
        finished: list[Flow] = []
        now = self.engine.now
        slots = np.nonzero(finished_mask)[0]
        # Snapshot receiver concurrency before decrementing, so flows
        # that finish in the same batch all observe each other (the
        # receiver is demultiplexing them together).
        snapshot = {
            self._slot_flows[slot].dst: self._inbound_open[self._slot_flows[slot].dst]
            for slot in slots
        }
        for slot in slots:
            flow = self._slot_flows[slot]
            flow.remaining = 0.0
            flow.state = FlowState.DONE
            flow.end_time = now
            flow.slot = -1
            flow.inbound_at_completion = snapshot[flow.dst]
            finished.append(flow)
            self._inbound_open[flow.dst] -= 1
            self._outbound_open[flow.src] -= 1
            self.flows_completed += 1
            self.trace.emit(
                now, "flow.complete", fid=flow.fid, src=flow.src, dst=flow.dst,
                duration=flow.duration, losses=flow.losses, label=flow.label,
            )
        self._structure_dirty = True
        return finished

    def _rebuild(self) -> None:
        """Compact slot arrays: drop non-active flows, admit pending ones."""
        survivors: list[Flow] = []
        survivor_remaining: list[float] = []
        for slot, flow in enumerate(self._slot_flows):
            if flow.state is FlowState.ACTIVE:
                survivors.append(flow)
                survivor_remaining.append(float(self._remaining[slot]))
            else:
                # Synchronise authoritative remaining back onto the object.
                if flow.state is not FlowState.DONE:
                    flow.remaining = max(float(self._remaining[slot]), 0.0)
        admitted = []
        for flow in self._pending:
            if flow.state in (FlowState.PENDING, FlowState.STALLED):
                flow.state = FlowState.ACTIVE
                admitted.append(flow)
        self._pending.clear()
        self._slot_flows = survivors + admitted
        self._remaining = np.array(
            survivor_remaining + [f.remaining for f in admitted], dtype=np.float64
        )
        for slot, flow in enumerate(self._slot_flows):
            flow.slot = slot
        self._rates = np.zeros(len(self._slot_flows), dtype=np.float64)
        if self._slot_flows:
            self._paths = FlowPaths.from_lists([f.path for f in self._slot_flows])
        else:
            self._paths = None
        self._structure_dirty = False
        self.max_concurrent = max(self.max_concurrent, len(self._slot_flows))

    def _resolve(self) -> None:
        """Re-solve rates and reschedule the next completion/loss events."""
        self._resolve_event = None
        self.resolves += 1
        self._advance()
        finished = self._complete_finished()

        if self._structure_dirty:
            self._rebuild()

        if self._slot_flows:
            assert self._paths is not None
            capacities = self._capacities
            if self._hol is not None:
                counts = np.bincount(
                    self._paths.link_ids, minlength=len(capacities)
                )
                capacities = self._hol.effective(capacities, self._hol_eta, counts)
            alloc = max_min_allocation(capacities, self._paths)
            self._rates = alloc.rates
            for slot, flow in enumerate(self._slot_flows):
                flow.last_rate = float(alloc.rates[slot])
            if self._loss_model is not None:
                backoffs = np.fromiter(
                    (f.backoff for f in self._slot_flows),
                    dtype=np.float64,
                    count=len(self._slot_flows),
                )
                self._hazards = self._loss_model.flow_hazards(
                    self._paths.link_ids,
                    self._paths.indptr,
                    alloc.rates,
                    alloc.link_flow_count,
                    alloc.saturated,
                    backoffs,
                )
            else:
                self._hazards = np.zeros(len(self._slot_flows))
        else:
            self._hazards = np.empty(0)

        if self._timeline is not None:
            self._timeline.record_active(
                self.engine.now,
                self._paths if self._slot_flows else None,
                self._rates,
            )

        self._schedule_completion()
        self._schedule_loss()

        # Completion callbacks run last: they may inject follow-up flows,
        # which coalesce into a single new resolve at this timestamp.
        for flow in finished:
            if flow.on_complete is not None:
                flow.on_complete(flow)

    def _schedule_completion(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not len(self._slot_flows):
            return
        positive = self._rates > 0
        if not positive.any():  # pragma: no cover - defensive
            raise SimulationError("active flows with zero allocated rate")
        with np.errstate(divide="ignore"):
            ttc = np.where(positive, self._remaining / self._rates, np.inf)
        dt = float(max(ttc.min(), 0.0))
        self._completion_event = self.engine.schedule_after(
            dt, self._on_completion_due, priority=_RESOLVE_PRIORITY - 1
        )

    def _on_completion_due(self) -> None:
        self._completion_event = None
        self._structure_dirty = True
        self._resolve()

    def _schedule_loss(self) -> None:
        if self._loss_event is not None:
            self._loss_event.cancel()
            self._loss_event = None
        if self._loss_model is None or not len(self._hazards):
            return
        total = float(self._hazards.sum())
        if total <= 0.0:
            return
        assert self._rng is not None
        dt = float(self._rng.exponential(1.0 / total))
        self._loss_event = self.engine.schedule_after(
            dt, self._on_loss_due, priority=_RESOLVE_PRIORITY - 2
        )

    def _on_loss_due(self) -> None:
        """A congestion loss fires: stall one flow for an RTO."""
        self._loss_event = None
        assert self._rng is not None and self._loss_params is not None
        total = float(self._hazards.sum())
        if total <= 0 or not len(self._slot_flows):  # pragma: no cover
            return
        probabilities = self._hazards / total
        victim_slot = int(self._rng.choice(len(self._slot_flows), p=probabilities))
        self._advance()
        flow = self._slot_flows[victim_slot]
        flow.remaining = max(float(self._remaining[victim_slot]), 0.0)

        moved = flow.remaining_at_last_loss - flow.remaining
        if moved >= self._loss_params.backoff_reset_bytes:
            flow.backoff = 0
        penalty = self._loss_params.rto(flow.backoff)
        flow.backoff += 1
        flow.losses += 1
        self.total_losses += 1
        # Chained timeouts: the retransmission may itself be dropped,
        # doubling the backoff before any data moves (Fig. 3 outliers).
        # Probability decays per chain: congestion drains while the flow
        # is silent, so deep chains are rare (see LossParams.chain_decay).
        chain = self._loss_params.chain_probability
        chained = 0
        while (
            chain > 0
            and chained < self._loss_params.chain_max
            and self._rng.random() < chain
        ):
            penalty += self._loss_params.rto(flow.backoff)
            flow.backoff += 1
            flow.losses += 1
            self.total_losses += 1
            chained += 1
            chain *= self._loss_params.chain_decay
        flow.remaining_at_last_loss = flow.remaining

        flow.state = FlowState.STALLED
        flow.slot = -1
        self.stalls += 1
        self._structure_dirty = True
        self.trace.emit(
            self.engine.now, "flow.loss", fid=flow.fid, src=flow.src,
            dst=flow.dst, penalty=penalty, backoff=flow.backoff,
            remaining=flow.remaining, label=flow.label,
        )
        self.engine.schedule_after(penalty, lambda: self._resume(flow))
        self._resolve()

    def _resume(self, flow: Flow) -> None:
        """RTO expired: the flow re-enters the active set."""
        if flow.state is not FlowState.STALLED:  # pragma: no cover - defensive
            return
        self._pending.append(flow)
        self.trace.emit(
            self.engine.now, "flow.resume", fid=flow.fid, src=flow.src,
            dst=flow.dst, remaining=flow.remaining, label=flow.label,
        )
        self._mark_dirty()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FluidNetwork(active={len(self._slot_flows)}, "
            f"completed={self.flows_completed}, losses={self.total_losses})"
        )
