"""TCP-style congestion loss process.

The paper attributes the All-to-All slowdown "almost exclusively" to
network saturation causing packet loss, whose cost is dominated by the
time to *detect* the loss — the TCP retransmission timeout (RTO) — and
cites Grove's analysis of message drops on bottleneck devices (§3).

We model that mechanism at flow level:

* while a flow crosses at least one *overloaded* link (more concurrent
  flows than the device's buffering can absorb), it is exposed to loss
  events drawn from a Poisson process;
* the hazard of a flow is ``coeff_per_byte * rate * overload`` so that the
  *expected number of losses scales with the bytes pushed through the
  congested device* (per-byte drop probability growing with
  oversubscription) — this is what makes the fitted contention ratio γ
  message-size independent, as the paper observes;
* a loss stalls the flow for an RTO; consecutive losses back off
  exponentially (Linux min RTO 200 ms in the 2006-era kernels used on
  GdX/icluster2), which produces the ~6x heavy-tail outliers of Fig. 3;
* the backoff counter resets after the flow manages to move
  ``backoff_reset_bytes`` without a loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .entities import LinkKind

__all__ = ["LossParams", "LossModel"]


@dataclass(frozen=True)
class LossParams:
    """Parameters of the congestion loss process.

    Attributes
    ----------
    coeff_per_byte:
        Loss hazard per byte per unit overload.  ``0`` disables losses
        (lossless fabrics such as Myrinet/gm use exactly that).
    sat_flows:
        Per link kind: how many concurrent flows a device of that kind
        can buffer before drops begin (overload = flows/sat_flows - 1).
    rto_min / rto_max:
        First retransmission timeout and its exponential-backoff cap.
    backoff_reset_bytes:
        Bytes a flow must move loss-free before its backoff resets.
    backoff_hazard_factor:
        Loss-spiral coupling: a flow that has already timed out is more
        likely to time out again (its congestion window is tiny, so a
        single further drop re-triggers the RTO).  Hazard is multiplied
        by ``1 + factor * backoff``.
    chain_probability:
        Probability that the *retransmission itself* is lost, chaining
        another timeout at doubled backoff before any data moves.  This
        produces the few-but-extreme outliers of the paper's Fig. 3 —
        most connections finish near the average, a handful much slower
        ("recurrent phenomenon of packet loss that affects a reduced
        number of connections", §3).
    chain_decay:
        Per-chain multiplier on the chain probability (the longer the
        flow has been silent, the more the congestion episode has
        drained, so successive retransmissions are ever more likely to
        get through).  Keeps deep chains rare so the completion time of
        a many-flow collective — a max-statistic over all its flows —
        is not dominated by a single pathological connection.
    chain_max:
        Hard cap on chained timeouts per loss event.
    """

    coeff_per_byte: float = 0.0
    sat_flows: dict[LinkKind, int] | None = None
    rto_min: float = 0.200
    rto_max: float = 3.200
    backoff_reset_bytes: float = 262_144.0
    backoff_hazard_factor: float = 0.0
    chain_probability: float = 0.0
    chain_decay: float = 0.5
    chain_max: int = 4

    def __post_init__(self) -> None:
        if self.coeff_per_byte < 0:
            raise ValueError("coeff_per_byte must be >= 0")
        if self.rto_min <= 0 or self.rto_max < self.rto_min:
            raise ValueError("need 0 < rto_min <= rto_max")
        if not 0.0 <= self.chain_probability < 1.0:
            raise ValueError("chain_probability must be in [0, 1)")
        if not 0.0 <= self.chain_decay <= 1.0:
            raise ValueError("chain_decay must be in [0, 1]")
        if self.chain_max < 0:
            raise ValueError("chain_max must be >= 0")

    @property
    def enabled(self) -> bool:
        """Whether the loss process is active at all."""
        return self.coeff_per_byte > 0.0

    def sat_flows_for(self, kind: LinkKind) -> int:
        """Buffered-flow threshold for a link kind (default: generous)."""
        table = self.sat_flows or {}
        return int(table.get(kind, 1_000_000))

    def rto(self, backoff: int) -> float:
        """Timeout duration for the given consecutive-loss count."""
        return float(min(self.rto_min * (2.0 ** max(backoff, 0)), self.rto_max))


class LossModel:
    """Computes per-flow loss hazards from an allocation snapshot."""

    def __init__(self, params: LossParams, link_kinds: list[LinkKind]) -> None:
        self.params = params
        self._sat_flows = np.array(
            [params.sat_flows_for(kind) for kind in link_kinds], dtype=np.float64
        )

    def overloads(self, link_flow_count: np.ndarray, saturated: np.ndarray) -> np.ndarray:
        """Per-link overload factor (0 when within buffering capacity).

        A link only drops when it is both bandwidth-saturated and carrying
        more flows than its device can buffer.
        """
        with np.errstate(divide="ignore", invalid="ignore"):
            over = link_flow_count / self._sat_flows - 1.0
        over = np.where(saturated, np.maximum(over, 0.0), 0.0)
        return over

    def flow_hazards(
        self,
        paths_link_ids: np.ndarray,
        paths_indptr: np.ndarray,
        rates: np.ndarray,
        link_flow_count: np.ndarray,
        saturated: np.ndarray,
        backoffs: np.ndarray | None = None,
    ) -> np.ndarray:
        """Poisson hazard (events/second) per active flow.

        hazard_f = coeff_per_byte * rate_f * max_path_overload
                   * (1 + backoff_hazard_factor * backoff_f)
        """
        n_flows = len(rates)
        if not self.params.enabled or n_flows == 0:
            return np.zeros(n_flows)
        over = self.overloads(link_flow_count, saturated)
        per_entry = over[paths_link_ids]
        # Max overload along each flow's path (vectorised segmented max).
        worst = np.zeros(n_flows)
        row_lengths = np.diff(paths_indptr)
        flow_of_entry = np.repeat(np.arange(n_flows), row_lengths)
        np.maximum.at(worst, flow_of_entry, per_entry)
        hazards = self.params.coeff_per_byte * rates * worst
        if backoffs is not None and self.params.backoff_hazard_factor > 0:
            hazards = hazards * (
                1.0 + self.params.backoff_hazard_factor * backoffs
            )
        return hazards
