"""Head-of-line (HoL) capacity penalties for cut-through fabrics.

Myrinet is lossless: instead of dropping packets it exerts backpressure,
and a packet blocked on a busy output port holds buffers upstream,
degrading the *effective* capacity of contended ports (tree saturation).
At flow level we model this as a per-link efficiency that decreases with
the number of flows sharing the link:

    effective_capacity = capacity / (1 + eta * max(0, k - 1))

with ``k`` the number of flows crossing the link and ``eta`` a per-link-kind
coefficient.  ``eta = 0`` (the default, and the value for store-and-forward
Ethernet switches) recovers ideal fair sharing.  This is the mechanism
behind the Myrinet contention ratio γ ≈ 2.5 (DESIGN.md §5): transient
many-to-one bursts not only share a port but *slow the port itself*,
which sustains the convoys that desynchronised Direct Exchange creates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .entities import LinkKind

__all__ = ["HolPenalty"]


@dataclass(frozen=True)
class HolPenalty:
    """Per-link-kind head-of-line blocking coefficients.

    Attributes
    ----------
    eta:
        Mapping link kind -> blocking coefficient (absent kinds get 0).
    """

    eta: dict[LinkKind, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for kind, value in self.eta.items():
            if value < 0:
                raise ValueError(f"eta[{kind}] must be >= 0")

    @property
    def enabled(self) -> bool:
        """Whether any kind carries a non-zero penalty."""
        return any(v > 0 for v in self.eta.values())

    def eta_vector(self, kinds: list[LinkKind]) -> np.ndarray:
        """Per-link eta aligned with link indices."""
        return np.array([self.eta.get(kind, 0.0) for kind in kinds])

    def effective(
        self, capacities: np.ndarray, eta_vector: np.ndarray, flow_count: np.ndarray
    ) -> np.ndarray:
        """Effective capacities under the current flow counts."""
        crowd = np.maximum(flow_count - 1, 0)
        return capacities / (1.0 + eta_vector * crowd)
