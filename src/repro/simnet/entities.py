"""Network entities: hosts, links, switches.

The topology model is deliberately close to the paper's §4 assumptions:

* **hosts** own one full-duplex NIC, modelled as a pair of directed links
  (transmit and receive) — this *is* the 1-port full-duplex restriction:
  a host's aggregate send rate can never exceed its TX link capacity, and
  likewise for receive;
* **switches** forward between ports; a switch may have a finite
  *backplane* capacity, modelled as one shared directed resource crossed
  by every flow traversing the switch (this is how a formally
  "non-blocking" 2006 stack of edge switches with oversubscribed uplinks
  is approximated at flow level);
* **trunks** (inter-switch cables) are directed link pairs.

All capacities are bytes/second; all link objects are flyweight records
indexed by integer id inside a :class:`~repro.simnet.topology.Topology`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["LinkKind", "Link", "Host", "Switch"]


class LinkKind(enum.Enum):
    """Role of a directed link inside the topology."""

    HOST_TX = "host_tx"  #: host NIC, host -> switch direction
    HOST_RX = "host_rx"  #: host NIC, switch -> host direction
    TRUNK = "trunk"  #: inter-switch cable (one direction)
    BACKPLANE = "backplane"  #: shared switch fabric capacity


@dataclass(frozen=True)
class Link:
    """A directed capacity-constrained resource.

    Attributes
    ----------
    index:
        Dense integer id (row in the fluid solver's capacity vector).
    capacity:
        Bytes per second.
    kind:
        Structural role (NIC direction, trunk, backplane).
    name:
        Human-readable identifier for traces and error messages.
    """

    index: int
    capacity: float
    kind: LinkKind
    name: str

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.name!r}: capacity must be > 0")


@dataclass
class Host:
    """A compute node with a single full-duplex NIC.

    Attributes
    ----------
    index:
        Dense host id (MPI ranks map onto hosts by index).
    switch:
        Index of the edge switch the NIC is cabled to.
    tx_link / rx_link:
        Link indices of the NIC's two directions.
    """

    index: int
    switch: int
    tx_link: int = -1
    rx_link: int = -1
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"host{self.index}"


@dataclass
class Switch:
    """A switch with optional finite backplane and trunk ports.

    Attributes
    ----------
    index:
        Dense switch id.
    backplane_link:
        Link index of the shared fabric resource, or ``-1`` when the
        switch is modelled as ideally non-blocking.
    trunks:
        Mapping neighbour switch index -> link index (direction: this
        switch towards the neighbour).
    """

    index: int
    backplane_link: int = -1
    trunks: dict[int, int] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"switch{self.index}"

    @property
    def has_backplane(self) -> bool:
        """Whether the switch models a finite shared fabric."""
        return self.backplane_link >= 0
