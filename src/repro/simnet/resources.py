"""Serial host resources (CPU-side FIFO service).

Models the per-message host processing that a kernel network stack pays
when demultiplexing many concurrent inbound streams: requests queue and
are served one at a time.  This is the mechanism behind the paper's δ
parameter (see DESIGN.md §5) — with n-1 simultaneous arrivals the queue
serialises, contributing an affine per-round overhead, while a single
ping-pong message (queue of one) pays only its own service time.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from .engine import Engine

__all__ = ["SerialResource"]


class SerialResource:
    """A FIFO server with deterministic service order.

    Examples
    --------
    >>> eng = Engine()
    >>> cpu = SerialResource(eng, name="host0.cpu")
    >>> done = []
    >>> cpu.request(0.5, lambda: done.append(eng.now))
    >>> cpu.request(0.25, lambda: done.append(eng.now))
    >>> eng.run()
    >>> done
    [0.5, 0.75]
    """

    def __init__(self, engine: Engine, *, name: str = "resource") -> None:
        self._engine = engine
        self._queue: deque[tuple[float, Callable[[], None]]] = deque()
        self._busy = False
        self.name = name
        self.total_busy_time = 0.0
        self.served = 0

    @property
    def queue_length(self) -> int:
        """Number of requests waiting (not counting the one in service)."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """Whether a request is currently in service."""
        return self._busy

    def request(self, duration: float, callback: Callable[[], None]) -> None:
        """Enqueue a service request of *duration* seconds.

        *callback* fires when service completes.  Zero-duration requests
        still respect FIFO ordering.
        """
        if duration < 0:
            raise ValueError(f"negative service duration {duration!r}")
        self._queue.append((duration, callback))
        if not self._busy:
            self._serve_next()

    def _serve_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        duration, callback = self._queue.popleft()
        self.total_busy_time += duration
        self.served += 1

        def _finish() -> None:
            callback()
            self._serve_next()

        self._engine.schedule_after(duration, _finish)
