"""Batched vector engine: epoch-synchronized flow simulation.

The reference stack interprets rank programs as Python generators and
pays per-flow Python work on every allocation resolve
(:mod:`repro.simnet.fluid` rebuilds its slot arrays and CSR paths one
flow at a time).  This module executes a *lowered* schedule
(:mod:`repro.simmpi.lowering`) instead, advancing **all active flows in
synchronized epochs**:

* one max-min solve (:func:`repro.simnet.fairness.max_min_allocation`),
* one vectorized minimum time-to-completion,
* one array subtraction per epoch,

with completions handled as batches that feed the next phase of the
schedule.  The flow → link CSR is never rebuilt from Python lists: the
route of every (src, dst) pair is encoded once at startup, and the
active set's :class:`~repro.simnet.fairness.FlowPaths` is assembled per
epoch with a vectorized ragged gather.

The protocol timeline (submit costs, eager/rendezvous handshakes,
per-pair FIFO wire channels, sender concurrency caps, receiver demux)
replays the reference runtime's arithmetic event for event on the same
:class:`~repro.simnet.engine.Engine` kernel, so with jitter disabled
the two engines agree to floating-point roundoff; the fluid engine
remains the correctness oracle (see ``repro.engines``).

The TCP loss overlay (:mod:`repro.simnet.loss`) is vectorized over the
flow batch instead of replayed per flow.  Each flow carries a unit-rate
Poisson *budget* — an Exp(1) draw decremented by ``hazard * dt`` every
epoch — and loses a packet when the budget crosses zero (the standard
time-rescaling construction of an inhomogeneous Poisson process, equal
in law to the fluid engine's global competing-exponential clock).  Loss
state is array-resident (``stalled_until``, ``backoff``,
``bytes_since_loss`` vectors indexed by message id); RTO expiries are
ordinary epoch boundaries: a stalled flow drops out of the max-min
solve and re-enters through the pending queue when its penalty elapses.
Determinism comes from the named :class:`~repro.simnet.rng.RngFactory`
stream discipline — initial budgets from one vectorized
``"net/loss/budget"`` draw indexed by message id, post-loss chain and
budget draws from a lazily created ``"net/loss/flow/<mid>"`` stream per
flow — so loss sequences are stable across processes and epoch
orderings.

Equivalence contract: with losses disabled the two engines agree to
floating-point roundoff (the fluid engine remains the correctness
oracle).  With losses enabled the engines sample the *same stochastic
process* through different random-number streams, so individual runs
differ but distributions match — lossy equivalence is asserted
statistically (mean completion time over paired seeds), not bit-exact.

Observability: pass ``trace=`` to record ``flow.inject`` /
``flow.complete`` (same categories as the fluid engine) plus
``flow.stall`` / ``flow.resume`` around every RTO gap, the
vector-specific ``vector.epoch`` (one per resolve, with the active-set
size) and ``vector.phase`` (one per posted schedule segment) records;
pass ``timeline=`` (a :class:`~repro.obs.timeline.LinkTimeline`) to
collect per-link concurrency/bandwidth.  All default to off with zero
overhead.

Not supported: programs that cannot be lowered (wildcards,
``ctx.now``).
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import DeadlockError, SimulationError
from .engine import Engine, EventHandle
from .fairness import FlowPaths, max_min_allocation
from .fluid import _BYTE_EPS, _RESOLVE_PRIORITY
from .loss import LossModel, LossParams
from .penalty import HolPenalty
from .resources import SerialResource
from .rng import RngFactory
from .stats import SimStats
from .topology import Topology
from .trace import NullTrace, Trace

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from ..simmpi.lowering import LoweredProgram
    from ..simmpi.runtime import RunResult
    from ..simmpi.transport import TransportParams

__all__ = ["VectorSimulator"]

#: Relative tolerance for freezing near-tied bottleneck links in one
#: filling iteration (see ``max_min_allocation(tie_eps=...)``).  Keeps
#: allocations within ~1e-9 of the reference solve — far inside the
#: engines' 1e-6 equivalence contract — while collapsing the symmetric
#: steady-state of an All-to-All to a couple of iterations per epoch.
_ALLOC_TIE_EPS = 1e-9

#: Tie tolerance for *lossy* runs, where the contract is statistical
#: (mean within 10% of fluid over paired seeds) rather than bit-exact.
#: Mid-run, completions desynchronise per-link flow counts, so exact
#: filling walks one freeze level per distinct count (dozens per epoch
#: on hierarchical fabrics); batching levels within a few percent
#: collapses that tail.  Each flow's rate lands within ``tie_eps``
#: relative of its exact fair share, biasing durations by at most the
#: same factor — far inside the statistical-equivalence budget.
_LOSSY_TIE_EPS = 0.05

#: A flow's Poisson loss budget is "spent" when it falls to this close
#: to zero.  Budgets are Exp(1) draws (mean 1.0), and the epoch horizon
#: lands exactly on the crossing, so only accumulated float roundoff
#: (~1e-16 per epoch) has to fit under the epsilon.
_BUDGET_EPS = 1e-9


class _HostScheduler:
    """Per-host wire admission: pair-FIFO channels + concurrency cap.

    Mirrors the reference runtime's sender scheduler, dispatching
    message ids instead of message objects.
    """

    __slots__ = ("_sim", "_limit", "_queue", "_busy_pairs", "_in_flight")

    def __init__(self, sim: "VectorSimulator", concurrency: int | None) -> None:
        self._sim = sim
        self._limit = concurrency if concurrency is not None else math.inf
        self._queue: deque[int] = deque()
        self._busy_pairs: set[int] = set()
        self._in_flight = 0

    def submit(self, mid: int) -> None:
        self._queue.append(mid)
        self._pump()

    def release(self, mid: int) -> None:
        self._in_flight -= 1
        self._busy_pairs.discard(self._sim._msg_dst[mid])
        self._pump()

    def _pump(self) -> None:
        if not self._queue:
            return
        blocked: deque[int] = deque()
        while self._queue and self._in_flight < self._limit:
            mid = self._queue.popleft()
            dst = self._sim._msg_dst[mid]
            if dst in self._busy_pairs:
                blocked.append(mid)
                continue
            self._busy_pairs.add(dst)
            self._in_flight += 1
            self._sim._inject(mid)
        blocked.extend(self._queue)
        self._queue = blocked


class _RankState:
    __slots__ = ("next_segment", "finished", "finish_time", "waiting")

    def __init__(self) -> None:
        self.next_segment = 0
        self.finished = False
        self.finish_time = math.nan
        self.waiting = 0


class VectorSimulator:
    """Executes a :class:`~repro.simmpi.lowering.LoweredProgram`.

    Constructor parameters mirror :class:`~repro.simmpi.runtime.Runtime`
    so cluster profiles drive both engines identically.
    """

    def __init__(
        self,
        topology: Topology,
        transport: "TransportParams",
        *,
        nprocs: int | None = None,
        loss_params: LossParams | None = None,
        hol_penalty: HolPenalty | None = None,
        start_skew_scale: float = 0.0,
        seed: int = 0,
        trace: Trace | None = None,
        timeline=None,
    ) -> None:
        self.nprocs = topology.n_hosts if nprocs is None else int(nprocs)
        if self.nprocs < 1:
            raise ValueError("need at least one rank")
        if self.nprocs > topology.n_hosts:
            raise ValueError(
                f"nprocs={self.nprocs} exceeds hosts={topology.n_hosts}"
            )
        if start_skew_scale < 0:
            raise ValueError("start_skew_scale must be >= 0")
        self.topology = topology
        self.transport = transport
        self.trace = trace if trace is not None else NullTrace()
        self._tracing = self.trace.enabled
        self._timeline = timeline
        self._inject_time: dict[int, float] = {}
        self.engine = Engine()
        rng_factory = RngFactory(seed)
        self._rng_factory = rng_factory
        self._jitter_rng = rng_factory.stream("mpi/jitter")
        self._skew_rng = rng_factory.stream("mpi/skew")
        self._start_skew_scale = start_skew_scale
        self._capacities = np.asarray(topology.capacities(), dtype=np.float64)
        if loss_params is not None and loss_params.enabled:
            kinds = [link.kind for link in topology.links]
            self._loss_model: LossModel | None = LossModel(loss_params, kinds)
            self._loss_params = loss_params
        else:
            self._loss_model = None
            self._loss_params = loss_params
        if hol_penalty is not None and hol_penalty.enabled:
            self._hol = hol_penalty
            self._hol_eta = hol_penalty.eta_vector(
                [link.kind for link in topology.links]
            )
        else:
            self._hol = None
            self._hol_eta = None
        self._started = False

        # Filled by _setup() once the lowered schedule is known.
        self._segments: tuple = ()
        self._msg_src: list[int] = []
        self._msg_dst: list[int] = []
        self._msg_nbytes: list[int] = []
        self._msg_seq: list[int] = []
        self._msg_local: list[bool] = []
        self._msg_eager: list[bool] = []
        self._msg_submit: list[float] = []
        self._msg_wire: np.ndarray = np.empty(0)
        self._msg_pair: np.ndarray = np.empty(0, dtype=np.int64)
        self._msg_dst_arr: np.ndarray = np.empty(0, dtype=np.int64)
        self._msg_src_arr: np.ndarray = np.empty(0, dtype=np.int64)
        self._pair_indptr: np.ndarray = np.empty(0, dtype=np.int64)
        self._pair_links: np.ndarray = np.empty(0, dtype=np.int64)
        self._pair_len: np.ndarray = np.empty(0, dtype=np.int64)
        self._pair_links2d: "np.ndarray | None" = None

        # Flow core (active set, slot order = injection order).
        self._act_mids = np.empty(0, dtype=np.int64)
        self._act_remaining = np.empty(0, dtype=np.float64)
        self._act_rates = np.empty(0, dtype=np.float64)
        self._act_hazards = np.empty(0, dtype=np.float64)
        self._pending: list[int] = []

        # Warm-start cache: when a resolve sees the exact same active
        # set as the previous solve (rates-only epoch — e.g. a coalesced
        # resume cascade), the CSR, rates and hazards are reused and the
        # max-min solve is skipped entirely.
        self._solve_mids: "np.ndarray | None" = None
        self._solve_paths: "FlowPaths | None" = None
        self._solve_rates = np.empty(0, dtype=np.float64)
        self._solve_hazards = np.empty(0, dtype=np.float64)

        # Loss-overlay state, allocated per message id in _setup() when
        # the profile enables losses.
        self._loss_budget = np.empty(0, dtype=np.float64)
        self._backoff = np.empty(0, dtype=np.int64)
        self._bytes_since_loss = np.empty(0, dtype=np.float64)
        self._stalled_until = np.empty(0, dtype=np.float64)
        self._flow_losses = np.empty(0, dtype=np.int64)
        self._flow_remaining = np.empty(0, dtype=np.float64)
        self._flow_rngs: dict[int, np.random.Generator] = {}
        self._inbound_open = np.zeros(self.nprocs, dtype=np.int64)
        self._outbound_open = np.zeros(self.nprocs, dtype=np.int64)
        self._structure_dirty = False
        self._last_advance = 0.0
        self._resolve_event: EventHandle | None = None
        self._completion_event: EventHandle | None = None

        # Protocol state.
        self._ranks = [_RankState() for _ in range(self.nprocs)]
        self._schedulers = [
            _HostScheduler(self, transport.sender_concurrency)
            for _ in range(self.nprocs)
        ]
        self._mux = [
            SerialResource(self.engine, name=f"host{h}.rxcpu")
            for h in range(self.nprocs)
        ]
        self._send_done: list[bool] = []
        self._recv_done: list[bool] = []
        self._recv_posted: list[bool] = []
        self._env_processed: list[bool] = []
        self._matched: list[bool] = []
        self._watchers: dict[tuple[str, int], list[int]] = {}
        self._recv_next: dict[tuple[int, int], int] = {}
        self._reorder: dict[tuple[int, int], dict[int, int]] = {}

        # Aggregate statistics.
        self.flows_completed = 0
        self.max_concurrent = 0
        self.resolves = 0
        self.epochs = 0
        self.total_losses = 0
        self.stalls = 0
        self.solves = 0
        self.solve_reuses = 0

    # ------------------------------------------------------------------
    # Schedule setup
    # ------------------------------------------------------------------

    def _setup(self, lowered: "LoweredProgram") -> None:
        transport = self.transport
        self._segments = lowered.segments
        n_messages = len(lowered.messages)
        pair_ids: dict[tuple[int, int], int] = {}
        routes: list[tuple[int, ...]] = []
        wire = np.zeros(n_messages, dtype=np.float64)
        pair = np.zeros(n_messages, dtype=np.int64)
        for m in lowered.messages:
            self._msg_src.append(m.src)
            self._msg_dst.append(m.dst)
            self._msg_nbytes.append(m.nbytes)
            self._msg_seq.append(m.seq)
            self._msg_local.append(m.local)
            self._msg_eager.append(transport.is_eager(m.nbytes))
            self._msg_submit.append(transport.submit_cost(m.nbytes))
            if not m.local:
                key = (m.src, m.dst)
                pid = pair_ids.get(key)
                if pid is None:
                    pid = len(routes)
                    pair_ids[key] = pid
                    routes.append(self.topology.route(m.src, m.dst))
                pair[m.mid] = pid
                wire[m.mid] = transport.wire_bytes(m.nbytes)
        self._msg_wire = wire
        self._msg_pair = pair
        self._msg_dst_arr = np.asarray(self._msg_dst, dtype=np.int64)
        self._msg_src_arr = np.asarray(self._msg_src, dtype=np.int64)
        lengths = np.fromiter(
            (len(r) for r in routes), dtype=np.int64, count=len(routes)
        )
        self._pair_indptr = np.zeros(len(routes) + 1, dtype=np.int64)
        np.cumsum(lengths, out=self._pair_indptr[1:])
        self._pair_len = lengths
        if routes and self._pair_indptr[-1]:
            self._pair_links = np.concatenate(
                [np.asarray(r, dtype=np.int64) for r in routes]
            )
        else:
            self._pair_links = np.empty(0, dtype=np.int64)
        if len(lengths) and int(lengths.min()) == int(lengths.max()):
            # Uniform route length (true on single-switch and other
            # symmetric fabrics): the per-pair routes form a dense
            # matrix, so the per-epoch CSR assembly reduces to one fancy
            # index instead of a ragged gather.
            self._pair_links2d = self._pair_links.reshape(
                len(routes), int(lengths[0])
            )
        if self._loss_model is not None:
            # One vectorized Exp(1) draw, indexed by message id, seeds
            # every flow's first loss budget; post-loss draws come from
            # per-flow named streams (see _flow_rng).  Keying by mid —
            # stable across processes and epoch orderings — is what
            # makes the loss sequence deterministic.
            self._loss_budget = self._rng_factory.stream(
                "net/loss/budget"
            ).exponential(size=n_messages)
            self._backoff = np.zeros(n_messages, dtype=np.int64)
            self._bytes_since_loss = np.zeros(n_messages, dtype=np.float64)
            self._stalled_until = np.zeros(n_messages, dtype=np.float64)
            self._flow_losses = np.zeros(n_messages, dtype=np.int64)
            self._flow_remaining = wire.copy()
        self._send_done = [False] * n_messages
        self._recv_done = [False] * n_messages
        self._recv_posted = [False] * n_messages
        self._env_processed = [False] * n_messages
        self._matched = [False] * n_messages

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(
        self, lowered: "LoweredProgram", *, max_events: int | None = None
    ) -> "RunResult":
        """Execute the schedule; returns the reference-shaped result."""
        from ..simmpi.runtime import RunResult

        if lowered.nprocs != self.nprocs:
            raise ValueError(
                f"schedule has {lowered.nprocs} ranks, simulator has "
                f"{self.nprocs}"
            )
        if self._started:
            raise SimulationError("VectorSimulator.run may only be called once")
        self._started = True
        self._setup(lowered)
        for rank in range(self.nprocs):
            skew = (
                float(self._skew_rng.uniform(0.0, self._start_skew_scale))
                if self._start_skew_scale > 0
                else 0.0
            )
            self.engine.schedule(skew, lambda r=rank: self._advance(r))
        self.engine.run(max_events=max_events)
        unfinished = [r for r, s in enumerate(self._ranks) if not s.finished]
        if unfinished:
            raise DeadlockError(
                f"ranks {unfinished} blocked with no pending events "
                "(mismatched sends/receives?)"
            )
        finish = [s.finish_time for s in self._ranks]
        return RunResult(
            duration=max(finish),
            rank_finish_times=finish,
            events_processed=self.engine.events_processed,
            flows_completed=self.flows_completed,
            total_losses=self.total_losses,
            max_concurrent_flows=self.max_concurrent,
            trace=self.trace,
            stats=SimStats(
                engine="vector",
                resolves=self.resolves,
                epochs=self.epochs,
                events=self.engine.events_processed,
                losses=self.total_losses,
                stalls=self.stalls,
                solve_reuses=self.solve_reuses,
            ),
        )

    def _advance(self, rank: int) -> None:
        """Post segments until one blocks (the lowered ``Waitall`` loop)."""
        state = self._ranks[rank]
        segments = self._segments[rank]
        while True:
            segment = segments[state.next_segment]
            if self._tracing:
                self.trace.emit(
                    self.engine.now, "vector.phase", rank=rank,
                    segment=state.next_segment, ops=len(segment.ops),
                )
            state.next_segment += 1
            for op in segment.ops:
                kind = op[0]
                if kind == "send":
                    self._post_send(op[1])
                elif kind == "recv":
                    self._post_recv(op[1])
                # "copy": zero simulated time, nothing to schedule.
            if segment.gate is None:
                state.finished = True
                state.finish_time = self.engine.now
                return
            pending = [tok for tok in segment.gate if not self._token_done(tok)]
            if pending:
                state.waiting = len(pending)
                for token in pending:
                    self._watchers.setdefault(token, []).append(rank)
                return
            # Gate already satisfied: keep advancing within this event.

    def _token_done(self, token: tuple[str, int]) -> bool:
        kind, mid = token
        return self._send_done[mid] if kind == "send" else self._recv_done[mid]

    def _notify(self, token: tuple[str, int]) -> None:
        watchers = self._watchers.pop(token, None)
        if not watchers:
            return
        for rank in watchers:
            state = self._ranks[rank]
            state.waiting -= 1
            if state.waiting == 0 and not state.finished:
                self.engine.schedule(
                    self.engine.now, lambda r=rank: self._advance(r)
                )

    # ------------------------------------------------------------------
    # Protocol timeline (mirrors the reference runtime arithmetic)
    # ------------------------------------------------------------------

    def _jitter(self) -> float:
        scale = self.transport.jitter_scale
        if scale <= 0:
            return 0.0
        return float(self._jitter_rng.exponential(scale))

    def _post_send(self, mid: int) -> None:
        if self._msg_local[mid]:
            delay = self.transport.local_copy_time(self._msg_nbytes[mid])
            self.engine.schedule_after(delay, lambda: self._local_deliver(mid))
            return
        submit_delay = self._jitter() + self._msg_submit[mid]
        if self._msg_eager[mid]:
            src = self._msg_src[mid]
            self.engine.schedule_after(
                submit_delay, lambda: self._schedulers[src].submit(mid)
            )
        else:
            rts_delay = (
                submit_delay
                + self.transport.ctrl_overhead
                + self.transport.base_latency
            )
            self.engine.schedule_after(
                rts_delay, lambda: self._envelope_in_order(mid)
            )

    def _post_recv(self, mid: int) -> None:
        self._recv_posted[mid] = True
        # The statically-paired envelope may already have arrived and be
        # waiting "unexpected"; claiming it now mirrors the runtime's
        # unexpected-queue scan at post time.
        if self._env_processed[mid] and not self._matched[mid]:
            self._match(mid)

    def _local_deliver(self, mid: int) -> None:
        self._complete_send(mid)
        self._envelope_in_order(mid)

    def _envelope_in_order(self, mid: int) -> None:
        """Process envelope arrivals strictly in per-pair send order."""
        key = (self._msg_src[mid], self._msg_dst[mid])
        expected = self._recv_next.get(key, 0)
        buffer = self._reorder.setdefault(key, {})
        buffer[self._msg_seq[mid]] = mid
        while expected in buffer:
            self._process_envelope(buffer.pop(expected))
            expected += 1
        self._recv_next[key] = expected

    def _process_envelope(self, mid: int) -> None:
        self._env_processed[mid] = True
        if self._recv_posted[mid] and not self._matched[mid]:
            self._match(mid)
        # Else: the envelope waits for its receive (unexpected queue).

    def _match(self, mid: int) -> None:
        self._matched[mid] = True
        if self._msg_eager[mid] or self._msg_local[mid]:
            self._complete_recv(mid)
        else:
            # Rendezvous: CTS travels back, then the payload is submitted.
            src = self._msg_src[mid]
            delay = self.transport.ctrl_overhead + self.transport.base_latency
            self.engine.schedule_after(
                delay, lambda: self._schedulers[src].submit(mid)
            )

    def _complete_send(self, mid: int) -> None:
        self._send_done[mid] = True
        self._notify(("send", mid))

    def _complete_recv(self, mid: int) -> None:
        self._recv_done[mid] = True
        self._notify(("recv", mid))

    def _wire_arrival(self, mid: int, inbound: int) -> None:
        if self.transport.mux_applies(self._msg_nbytes[mid], inbound):
            dst = self._msg_dst[mid]
            self._mux[dst].request(
                self.transport.mux_overhead, lambda: self._deliver(mid)
            )
        else:
            self._deliver(mid)

    def _deliver(self, mid: int) -> None:
        if self._msg_eager[mid]:
            self._envelope_in_order(mid)
        else:
            # Rendezvous payload: the receive was claimed at CTS time.
            self._complete_recv(mid)

    # ------------------------------------------------------------------
    # Batched flow core (the epoch loop)
    # ------------------------------------------------------------------

    def _inject(self, mid: int) -> None:
        self._pending.append(mid)
        self._inbound_open[self._msg_dst[mid]] += 1
        self._outbound_open[self._msg_src[mid]] += 1
        if self._tracing:
            self._inject_time[mid] = self.engine.now
            self.trace.emit(
                self.engine.now, "flow.inject", fid=mid,
                src=self._msg_src[mid], dst=self._msg_dst[mid],
                nbytes=self._msg_nbytes[mid], label="",
            )
        if self._resolve_event is None or self._resolve_event.cancelled:
            self._resolve_event = self.engine.schedule(
                self.engine.now, self._resolve, priority=_RESOLVE_PRIORITY
            )
        self._structure_dirty = True

    def _resolve(self) -> None:
        """One epoch: advance, batch completions, re-solve, reschedule."""
        self._resolve_event = None
        self.resolves += 1
        now = self.engine.now
        dt = now - self._last_advance
        n_active = len(self._act_mids)
        lossy = self._loss_model is not None
        if dt > 0 and n_active:
            moved = self._act_rates * dt
            self._act_remaining -= moved
            if lossy:
                # Time-rescaling: each flow's Exp(1) budget burns at its
                # instantaneous hazard; crossing zero is a packet loss.
                self._bytes_since_loss[self._act_mids] += moved
                self._loss_budget[self._act_mids] -= self._act_hazards * dt
            self.epochs += 1
        self._last_advance = now

        finished = np.empty(0, dtype=np.int64)
        finished_inbound = np.empty(0, dtype=np.int64)
        if n_active:
            mask = self._act_remaining <= _BYTE_EPS
            if mask.any():
                finished = self._act_mids[mask]
                dsts = self._msg_dst_arr[finished]
                srcs = self._msg_src_arr[finished]
                # Snapshot receiver concurrency before decrementing, so
                # flows finishing in the same batch all observe each
                # other (the receiver demultiplexes them together).
                finished_inbound = self._inbound_open[dsts]
                np.subtract.at(self._inbound_open, dsts, 1)
                np.subtract.at(self._outbound_open, srcs, 1)
                self.flows_completed += len(finished)
                keep = ~mask
                self._act_mids = self._act_mids[keep]
                self._act_remaining = self._act_remaining[keep]
                if lossy:
                    self._act_hazards = self._act_hazards[keep]
                self._structure_dirty = True
                if self._tracing:
                    for mid in finished:
                        mid = int(mid)
                        start = self._inject_time.pop(mid, now)
                        self.trace.emit(
                            now, "flow.complete", fid=mid,
                            src=self._msg_src[mid], dst=self._msg_dst[mid],
                            duration=now - start,
                            losses=int(self._flow_losses[mid]) if lossy else 0,
                            label="",
                        )

        if lossy and len(self._act_mids):
            # Spent budgets on surviving flows are this epoch's losses
            # (completions take precedence).  The hazard guard keeps a
            # pathologically tiny initial draw from firing before the
            # flow has ever seen congestion.
            lost_mask = (self._loss_budget[self._act_mids] <= _BUDGET_EPS) & (
                self._act_hazards > 0.0
            )
            if lost_mask.any():
                lost = self._act_mids[lost_mask]
                lost_remaining = self._act_remaining[lost_mask]
                keep = ~lost_mask
                self._act_mids = self._act_mids[keep]
                self._act_remaining = self._act_remaining[keep]
                self._act_hazards = self._act_hazards[keep]
                self._structure_dirty = True
                for mid, rem in zip(lost, lost_remaining):
                    self._stall(int(mid), max(float(rem), 0.0))

        if self._structure_dirty:
            if self._pending:
                admitted = np.asarray(self._pending, dtype=np.int64)
                self._pending.clear()
                remaining_src = (
                    self._flow_remaining if lossy else self._msg_wire
                )
                self._act_mids = np.concatenate([self._act_mids, admitted])
                self._act_remaining = np.concatenate(
                    [self._act_remaining, remaining_src[admitted]]
                )
            self._structure_dirty = False
            self.max_concurrent = max(self.max_concurrent, len(self._act_mids))

        n_active = len(self._act_mids)
        paths = None
        if n_active:
            if (
                self._solve_mids is not None
                and len(self._solve_mids) == n_active
                and np.array_equal(self._act_mids, self._solve_mids)
            ):
                # Warm start: identical flow set => identical solve (the
                # batched fill is deterministic) and identical hazards
                # (backoffs only change on a stall, which changes the
                # set).  Reuse the CSR, rates and hazards outright.
                paths = self._solve_paths
                self._act_rates = self._solve_rates
                self._act_hazards = self._solve_hazards
                self.solve_reuses += 1
            else:
                paths = self._active_paths()
                capacities = self._capacities
                if self._hol is not None:
                    counts = np.bincount(
                        paths.link_ids, minlength=len(capacities)
                    )
                    capacities = self._hol.effective(
                        capacities, self._hol_eta, counts
                    )
                # The loss model needs the saturation summary; the
                # batched fill fuses its accumulation into the solve.
                alloc = max_min_allocation(
                    capacities, paths,
                    tie_eps=_LOSSY_TIE_EPS if lossy else _ALLOC_TIE_EPS,
                    need_loads=lossy,
                )
                self._act_rates = alloc.rates
                if lossy:
                    backoffs = None
                    if self._loss_params.backoff_hazard_factor > 0:
                        backoffs = self._backoff[self._act_mids].astype(
                            np.float64
                        )
                    self._act_hazards = self._loss_model.flow_hazards(
                        paths.link_ids,
                        paths.indptr,
                        alloc.rates,
                        alloc.link_flow_count,
                        alloc.saturated,
                        backoffs,
                    )
                else:
                    self._act_hazards = np.empty(0, dtype=np.float64)
                self.solves += 1
                # _act_mids is replaced wholesale (never mutated in
                # place) on structure changes, so aliasing it is safe.
                self._solve_mids = self._act_mids
                self._solve_paths = paths
                self._solve_rates = self._act_rates
                self._solve_hazards = self._act_hazards
        else:
            self._act_rates = np.empty(0, dtype=np.float64)
            self._act_hazards = np.empty(0, dtype=np.float64)
            self._solve_mids = None
            self._solve_paths = None

        if self._timeline is not None:
            self._timeline.record_active(now, paths, self._act_rates)
        if self._tracing:
            self.trace.emit(
                now, "vector.epoch", active=n_active,
                completed=len(finished), dt=dt,
            )

        self._schedule_completion()

        # Completion handling runs last (slot order): released senders
        # pump follow-up flows, which coalesce into one resolve at this
        # timestamp — the same cascade discipline as the fluid engine.
        for mid, inbound in zip(finished, finished_inbound):
            self._on_flow_complete(int(mid), int(inbound))

    def _active_paths(self) -> FlowPaths:
        """Assemble the active set's CSR with a vectorized ragged gather."""
        pairs = self._msg_pair[self._act_mids]
        if self._pair_links2d is not None:
            width = self._pair_links2d.shape[1]
            indptr = np.arange(
                0, (len(pairs) + 1) * width, width, dtype=np.int64
            )
            return FlowPaths(
                indptr=indptr,
                link_ids=self._pair_links2d[pairs].reshape(-1),
            )
        counts = self._pair_len[pairs]
        indptr = np.zeros(len(pairs) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        if total == 0:  # pragma: no cover - remote routes are never empty
            return FlowPaths(indptr=indptr, link_ids=np.empty(0, dtype=np.int64))
        starts = self._pair_indptr[pairs]
        positions = np.ones(total, dtype=np.int64)
        positions[0] = starts[0]
        ends = np.cumsum(counts)[:-1]
        if len(ends):
            positions[ends] = starts[1:] - starts[:-1] - counts[:-1] + 1
        link_ids = self._pair_links[np.cumsum(positions)]
        return FlowPaths(indptr=indptr, link_ids=link_ids)

    def _schedule_completion(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not len(self._act_mids):
            return
        rates = self._act_rates
        if float(rates.min()) > 0.0:
            dt = float(max((self._act_remaining / rates).min(), 0.0))
        else:
            positive = rates > 0
            if not positive.any():  # pragma: no cover - defensive
                raise SimulationError("active flows with zero allocated rate")
            with np.errstate(divide="ignore"):
                ttc = np.where(positive, self._act_remaining / rates, np.inf)
            dt = float(max(ttc.min(), 0.0))
        if self._loss_model is not None and len(self._act_hazards):
            # Exponential waiting times fold into the epoch horizon: the
            # next loss (first budget to burn out at current hazards) is
            # an epoch boundary exactly like the next completion.
            hazards = self._act_hazards
            burning = hazards > 0.0
            if burning.any():
                budgets = self._loss_budget[self._act_mids]
                with np.errstate(divide="ignore"):
                    ttl = np.where(burning, budgets / hazards, np.inf)
                dt = min(dt, float(max(ttl.min(), 0.0)))
        self._completion_event = self.engine.schedule_after(
            dt, self._on_completion_due, priority=_RESOLVE_PRIORITY - 1
        )

    def _on_completion_due(self) -> None:
        self._completion_event = None
        self._structure_dirty = True
        self._resolve()

    # ------------------------------------------------------------------
    # Loss overlay (stall / resume)
    # ------------------------------------------------------------------

    def _flow_rng(self, mid: int) -> np.random.Generator:
        """Per-flow named stream for post-loss draws (chains, budgets).

        Created lazily — losses are rare relative to flows — and keyed
        by message id, so the draw sequence a flow sees is independent
        of when other flows lose.
        """
        rng = self._flow_rngs.get(mid)
        if rng is None:
            rng = self._rng_factory.stream(f"net/loss/flow/{mid}")
            self._flow_rngs[mid] = rng
        return rng

    def _stall(self, mid: int, remaining: float) -> None:
        """A loss fired for *mid*: apply RTO backoff and park the flow.

        Mirrors the fluid engine's per-flow loss arithmetic (backoff
        reset after loss-free progress, exponential RTO, chained
        timeouts) over the array-resident state.
        """
        params = self._loss_params
        assert params is not None
        self._flow_remaining[mid] = remaining
        if self._bytes_since_loss[mid] >= params.backoff_reset_bytes:
            self._backoff[mid] = 0
        backoff = int(self._backoff[mid])
        penalty = params.rto(backoff)
        backoff += 1
        losses = 1
        rng = self._flow_rng(mid)
        # Chained timeouts: the retransmission may itself be dropped,
        # doubling the backoff before any data moves (Fig. 3 outliers).
        chain = params.chain_probability
        chained = 0
        while (
            chain > 0
            and chained < params.chain_max
            and rng.random() < chain
        ):
            penalty += params.rto(backoff)
            backoff += 1
            losses += 1
            chained += 1
            chain *= params.chain_decay
        self._backoff[mid] = backoff
        self._bytes_since_loss[mid] = 0.0
        self._flow_losses[mid] += losses
        self.total_losses += losses
        self.stalls += 1
        # Fresh unit-rate budget for the flow's next loss (the Poisson
        # process is memoryless; the stalled interval burns nothing
        # because the flow leaves the active set).
        self._loss_budget[mid] = float(rng.exponential())
        self._stalled_until[mid] = self.engine.now + penalty
        if self._tracing:
            self.trace.emit(
                self.engine.now, "flow.stall", fid=mid,
                src=self._msg_src[mid], dst=self._msg_dst[mid],
                penalty=penalty, backoff=backoff, remaining=remaining,
                label="",
            )
        self.engine.schedule_after(penalty, lambda: self._resume_flow(mid))

    def _resume_flow(self, mid: int) -> None:
        """RTO expired: the flow re-enters through the pending queue."""
        self._stalled_until[mid] = 0.0
        self._pending.append(mid)
        if self._tracing:
            self.trace.emit(
                self.engine.now, "flow.resume", fid=mid,
                src=self._msg_src[mid], dst=self._msg_dst[mid],
                remaining=float(self._flow_remaining[mid]), label="",
            )
        if self._resolve_event is None or self._resolve_event.cancelled:
            self._resolve_event = self.engine.schedule(
                self.engine.now, self._resolve, priority=_RESOLVE_PRIORITY
            )
        self._structure_dirty = True

    def _on_flow_complete(self, mid: int, inbound: int) -> None:
        self._schedulers[self._msg_src[mid]].release(mid)
        self._complete_send(mid)
        self.engine.schedule_after(
            self.transport.base_latency,
            lambda: self._wire_arrival(mid, inbound),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VectorSimulator(nprocs={self.nprocs}, "
            f"active={len(self._act_mids)}, completed={self.flows_completed})"
        )
