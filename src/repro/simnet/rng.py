"""Deterministic random-stream management for simulations.

Every stochastic element of the simulator (loss processes, host jitter,
measurement repetitions) draws from a *named child stream* derived from a
single root seed, so that

* a whole experiment is reproducible from one integer seed,
* adding a new consumer of randomness does not perturb existing streams,
* repetitions use disjoint, statistically independent streams.

This follows NumPy's recommended ``SeedSequence.spawn``-style discipline but
keys children by *name* so the mapping is stable across code reorderings.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory"]


class RngFactory:
    """Factory of named, reproducible :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed for the experiment.  Two factories with the same seed
        produce identical streams for identical names.

    Examples
    --------
    >>> f = RngFactory(42)
    >>> g1 = f.stream("loss/host3")
    >>> g2 = RngFactory(42).stream("loss/host3")
    >>> float(g1.random()) == float(g2.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """Root seed this factory derives all streams from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name* (same name → same stream)."""
        digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
        # 4 x 64-bit words of entropy keyed by (seed, name).
        words = [int.from_bytes(digest[i : i + 8], "little") for i in range(0, 32, 8)]
        return np.random.Generator(np.random.PCG64(np.random.SeedSequence(words)))

    def child(self, name: str) -> "RngFactory":
        """Derive a sub-factory (e.g. one per repetition) keyed by *name*."""
        digest = hashlib.sha256(f"{self._seed}/{name}".encode()).digest()
        return RngFactory(int.from_bytes(digest[:8], "little"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFactory(seed={self._seed})"
