"""Vectorised max-min fair bandwidth allocation (progressive filling).

This is the heart of the fluid network model: given the set of active
flows and the directed links each one crosses, allocate rates such that

* no link's capacity is exceeded,
* no flow can be given more rate without taking rate away from a flow
  with an equal or smaller allocation (max-min fairness).

The classic *progressive filling* (water-filling) algorithm is used, but
implemented over NumPy arrays so one allocation solve costs a handful of
vector operations per bottleneck level rather than Python-loop time per
flow (see the optimisation guidance in the project coding guides:
vectorise the hot loop, avoid per-element Python work).

TCP's AIMD converges to rates close to max-min fair share on a LAN, and
flow-level simulators (SimGrid's LV08, LogGOPSim variants) use the same
approximation; §3 of the paper explicitly appeals to TCP "trying to
evenly share the bandwidth among the connections".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FlowPaths", "AllocationResult", "max_min_allocation"]

_EPS = 1e-12


@dataclass(frozen=True)
class FlowPaths:
    """CSR encoding of flow → link incidence.

    ``link_ids[indptr[f]:indptr[f+1]]`` are the directed links crossed by
    flow ``f``.  Build once per allocation solve via :meth:`from_lists`.
    """

    indptr: np.ndarray  # (F+1,) int64
    link_ids: np.ndarray  # (nnz,) int64

    @classmethod
    def from_lists(cls, paths: list[tuple[int, ...]]) -> "FlowPaths":
        """Build from a list of per-flow link tuples."""
        lengths = np.fromiter((len(p) for p in paths), dtype=np.int64, count=len(paths))
        indptr = np.zeros(len(paths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        if indptr[-1]:
            link_ids = np.concatenate([np.asarray(p, dtype=np.int64) for p in paths])
        else:
            link_ids = np.empty(0, dtype=np.int64)
        return cls(indptr=indptr, link_ids=link_ids)

    @property
    def n_flows(self) -> int:
        """Number of flows encoded."""
        return len(self.indptr) - 1

    def gather_rows(self, flows: np.ndarray) -> np.ndarray:
        """Flat positions (into ``link_ids``) of all entries of *flows*.

        Vectorised ragged gather: O(total entries), no Python loop.
        """
        starts = self.indptr[flows]
        lengths = self.indptr[flows + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        out = np.ones(total, dtype=np.int64)
        out[0] = starts[0]
        ends = np.cumsum(lengths)[:-1]
        if len(ends):
            out[ends] = starts[1:] - starts[:-1] - lengths[:-1] + 1
        return np.cumsum(out)


@dataclass(frozen=True)
class AllocationResult:
    """Output of one max-min solve.

    Attributes
    ----------
    rates:
        Bytes/second granted to each flow, aligned with the input order.
    link_flow_count:
        Number of flows crossing each link.
    link_load:
        Total allocated rate per link.
    saturated:
        Boolean per link: allocated load equals capacity (within
        tolerance) — these are the bottleneck links.
    """

    rates: np.ndarray
    link_flow_count: np.ndarray
    link_load: np.ndarray
    saturated: np.ndarray


def max_min_allocation(
    capacities: np.ndarray,
    paths: FlowPaths,
) -> AllocationResult:
    """Progressive-filling max-min fair allocation.

    Parameters
    ----------
    capacities:
        ``(L,)`` link capacities in bytes/second.
    paths:
        Flow → link incidence (every flow must cross >= 1 link).

    Raises
    ------
    ValueError
        If a flow crosses no links (local traffic must bypass the fluid
        model) or references an unknown link.
    """
    capacities = np.asarray(capacities, dtype=np.float64)
    n_links = len(capacities)
    n_flows = paths.n_flows
    rates = np.zeros(n_flows, dtype=np.float64)
    link_flow_count = np.bincount(paths.link_ids, minlength=n_links).astype(np.int64)
    if n_flows == 0:
        return AllocationResult(
            rates=rates,
            link_flow_count=link_flow_count,
            link_load=np.zeros(n_links),
            saturated=np.zeros(n_links, dtype=bool),
        )
    if paths.link_ids.size and int(paths.link_ids.max()) >= n_links:
        raise ValueError("flow references link beyond capacity vector")
    row_lengths = np.diff(paths.indptr)
    if np.any(row_lengths == 0):
        raise ValueError("flow with empty path cannot be allocated")

    # Reverse (link -> flows) CSR for freezing whole bottleneck links at once.
    order = np.argsort(paths.link_ids, kind="stable")
    rev_indptr = np.zeros(n_links + 1, dtype=np.int64)
    np.cumsum(link_flow_count, out=rev_indptr[1:])
    flow_of_entry = np.repeat(np.arange(n_flows, dtype=np.int64), row_lengths)[order]

    residual = capacities.copy()
    unfrozen_count = link_flow_count.astype(np.float64)
    unfrozen = np.ones(n_flows, dtype=bool)
    remaining = n_flows
    # Each iteration freezes at least one flow => bounded, but guard anyway.
    for _ in range(n_links + n_flows + 1):
        if remaining == 0:
            break
        with np.errstate(divide="ignore", invalid="ignore"):
            fair = np.where(unfrozen_count > 0, residual / unfrozen_count, np.inf)
        bottleneck = int(np.argmin(fair))
        share = float(fair[bottleneck])
        if not np.isfinite(share):  # pragma: no cover - defensive
            break
        share = max(share, 0.0)
        entries = flow_of_entry[rev_indptr[bottleneck] : rev_indptr[bottleneck + 1]]
        newly = entries[unfrozen[entries]]
        if newly.size == 0:  # pragma: no cover - numeric guard
            unfrozen_count[bottleneck] = 0
            residual[bottleneck] = np.inf
            continue
        rates[newly] = share
        unfrozen[newly] = False
        remaining -= newly.size
        touched = paths.link_ids[paths.gather_rows(newly)]
        np.subtract.at(residual, touched, share)
        counts_removed = np.bincount(touched, minlength=n_links)
        unfrozen_count -= counts_removed
        np.maximum(residual, 0.0, out=residual)
        unfrozen_count[bottleneck] = 0  # fully frozen by construction

    link_load = np.zeros(n_links, dtype=np.float64)
    all_rows = paths.link_ids
    np.add.at(link_load, all_rows, np.repeat(rates, row_lengths))
    saturated = (link_flow_count > 0) & (
        link_load >= capacities * (1.0 - 1e-9) - _EPS
    )
    return AllocationResult(
        rates=rates,
        link_flow_count=link_flow_count,
        link_load=link_load,
        saturated=saturated,
    )
