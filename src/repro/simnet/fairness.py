"""Vectorised max-min fair bandwidth allocation (progressive filling).

This is the allocation core shared by *both* simulation engines — the
event-driven fluid reference (:mod:`repro.simnet.fluid`) and the batched
vector engine (:mod:`repro.simnet.vector`) call the same solve, which is
what makes their results comparable to floating-point roundoff.  Given
the set of active flows and the directed links each one crosses, it
allocates rates such that

* no link's capacity is exceeded,
* no flow can be given more rate without taking rate away from a flow
  with an equal or smaller allocation (max-min fairness).

The classic *progressive filling* (water-filling) algorithm is used, but
implemented over NumPy arrays so one allocation solve costs a handful of
vector operations per bottleneck level rather than Python-loop time per
flow (see the optimisation guidance in the project coding guides:
vectorise the hot loop, avoid per-element Python work).

TCP's AIMD converges to rates close to max-min fair share on a LAN, and
flow-level simulators (SimGrid's LV08, LogGOPSim variants) use the same
approximation; §3 of the paper explicitly appeals to TCP "trying to
evenly share the bandwidth among the connections".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FlowPaths", "AllocationResult", "max_min_allocation"]

_EPS = 1e-12


@dataclass(frozen=True)
class FlowPaths:
    """CSR encoding of flow → link incidence.

    ``link_ids[indptr[f]:indptr[f+1]]`` are the directed links crossed by
    flow ``f``.  Build once per allocation solve via :meth:`from_lists`.
    """

    indptr: np.ndarray  # (F+1,) int64
    link_ids: np.ndarray  # (nnz,) int64

    @classmethod
    def from_lists(cls, paths: list[tuple[int, ...]]) -> "FlowPaths":
        """Build from a list of per-flow link tuples."""
        lengths = np.fromiter((len(p) for p in paths), dtype=np.int64, count=len(paths))
        indptr = np.zeros(len(paths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        if indptr[-1]:
            link_ids = np.concatenate([np.asarray(p, dtype=np.int64) for p in paths])
        else:
            link_ids = np.empty(0, dtype=np.int64)
        return cls(indptr=indptr, link_ids=link_ids)

    @property
    def n_flows(self) -> int:
        """Number of flows encoded."""
        return len(self.indptr) - 1

    def gather_rows(self, flows: np.ndarray) -> np.ndarray:
        """Flat positions (into ``link_ids``) of all entries of *flows*.

        Vectorised ragged gather: O(total entries), no Python loop.
        """
        starts = self.indptr[flows]
        lengths = self.indptr[flows + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        out = np.ones(total, dtype=np.int64)
        out[0] = starts[0]
        ends = np.cumsum(lengths)[:-1]
        if len(ends):
            out[ends] = starts[1:] - starts[:-1] - lengths[:-1] + 1
        return np.cumsum(out)


@dataclass(frozen=True)
class AllocationResult:
    """Output of one max-min solve.

    Attributes
    ----------
    rates:
        Bytes/second granted to each flow, aligned with the input order.
    link_flow_count:
        Number of flows crossing each link.
    link_load:
        Total allocated rate per link (``None`` when the solve was asked
        to skip the summary via ``need_loads=False``).
    saturated:
        Boolean per link: allocated load equals capacity (within
        tolerance) — these are the bottleneck links (``None`` when
        skipped, as above).
    """

    rates: np.ndarray
    link_flow_count: np.ndarray
    link_load: "np.ndarray | None"
    saturated: "np.ndarray | None"


def max_min_allocation(
    capacities: np.ndarray,
    paths: FlowPaths,
    *,
    tie_eps: float = 0.0,
    need_loads: bool = True,
) -> AllocationResult:
    """Progressive-filling max-min fair allocation.

    Parameters
    ----------
    capacities:
        ``(L,)`` link capacities in bytes/second.
    paths:
        Flow → link incidence (every flow must cross >= 1 link).
    tie_eps:
        ``0.0`` (the default) freezes exactly one bottleneck link per
        filling iteration — the reference behaviour the fluid engine
        depends on bit-for-bit.  A positive value enables the batched
        variant used by the vector engine: every link whose fair share
        is within ``tie_eps`` (relative) of the minimum freezes in the
        same iteration, which collapses the many symmetric-NIC
        iterations of an All-to-All steady state into one and skips the
        reverse-CSR sort entirely.  Rates then differ from the reference
        by at most ~``tie_eps`` relative per bottleneck level.
    need_loads:
        ``False`` skips the per-link load/saturation summary (the
        result's ``link_load`` and ``saturated`` are ``None``) — the
        vector engine's epoch loop only consumes ``rates``, and the
        summary is a meaningful fraction of a small solve's cost.

    Raises
    ------
    ValueError
        If a flow crosses no links (local traffic must bypass the fluid
        model) or references an unknown link.
    """
    capacities = np.asarray(capacities, dtype=np.float64)
    n_links = len(capacities)
    n_flows = paths.n_flows
    rates = np.zeros(n_flows, dtype=np.float64)
    link_flow_count = np.bincount(paths.link_ids, minlength=n_links).astype(np.int64)
    if n_flows == 0:
        return AllocationResult(
            rates=rates,
            link_flow_count=link_flow_count,
            link_load=np.zeros(n_links),
            saturated=np.zeros(n_links, dtype=bool),
        )
    if paths.link_ids.size and int(paths.link_ids.max()) >= n_links:
        raise ValueError("flow references link beyond capacity vector")
    row_lengths = np.diff(paths.indptr)
    if np.any(row_lengths == 0):
        raise ValueError("flow with empty path cannot be allocated")

    if tie_eps > 0.0:
        rates, link_load = _batched_fill(
            capacities, paths, link_flow_count, row_lengths, rates, tie_eps,
            need_loads=need_loads,
        )
        if not need_loads:
            return AllocationResult(
                rates=rates,
                link_flow_count=link_flow_count,
                link_load=None,
                saturated=None,
            )
        # A link frozen as part of a tie batch is allocated the batch's
        # minimum share, leaving it up to ~tie_eps under capacity — it
        # is still a bottleneck physically, so the saturation test
        # widens by the same tolerance (the loss model keys off this).
        saturated = (link_flow_count > 0) & (
            link_load >= capacities * (1.0 - 1e-9 - tie_eps) - _EPS
        )
        return AllocationResult(
            rates=rates,
            link_flow_count=link_flow_count,
            link_load=link_load,
            saturated=saturated,
        )

    # Reverse (link -> flows) CSR for freezing whole bottleneck links at once.
    order = np.argsort(paths.link_ids, kind="stable")
    rev_indptr = np.zeros(n_links + 1, dtype=np.int64)
    np.cumsum(link_flow_count, out=rev_indptr[1:])
    flow_of_entry = np.repeat(np.arange(n_flows, dtype=np.int64), row_lengths)[order]

    residual = capacities.copy()
    unfrozen_count = link_flow_count.astype(np.float64)
    unfrozen = np.ones(n_flows, dtype=bool)
    remaining = n_flows
    # Each iteration freezes at least one flow => bounded, but guard anyway.
    for _ in range(n_links + n_flows + 1):
        if remaining == 0:
            break
        with np.errstate(divide="ignore", invalid="ignore"):
            fair = np.where(unfrozen_count > 0, residual / unfrozen_count, np.inf)
        bottleneck = int(np.argmin(fair))
        share = float(fair[bottleneck])
        if not np.isfinite(share):  # pragma: no cover - defensive
            break
        share = max(share, 0.0)
        entries = flow_of_entry[rev_indptr[bottleneck] : rev_indptr[bottleneck + 1]]
        newly = entries[unfrozen[entries]]
        if newly.size == 0:  # pragma: no cover - numeric guard
            unfrozen_count[bottleneck] = 0
            residual[bottleneck] = np.inf
            continue
        rates[newly] = share
        unfrozen[newly] = False
        remaining -= newly.size
        touched = paths.link_ids[paths.gather_rows(newly)]
        np.subtract.at(residual, touched, share)
        counts_removed = np.bincount(touched, minlength=n_links)
        unfrozen_count -= counts_removed
        np.maximum(residual, 0.0, out=residual)
        unfrozen_count[bottleneck] = 0  # fully frozen by construction

    link_load = np.zeros(n_links, dtype=np.float64)
    all_rows = paths.link_ids
    np.add.at(link_load, all_rows, np.repeat(rates, row_lengths))
    saturated = (link_flow_count > 0) & (
        link_load >= capacities * (1.0 - 1e-9) - _EPS
    )
    return AllocationResult(
        rates=rates,
        link_flow_count=link_flow_count,
        link_load=link_load,
        saturated=saturated,
    )


def _batched_fill(
    capacities: np.ndarray,
    paths: FlowPaths,
    link_flow_count: np.ndarray,
    row_lengths: np.ndarray,
    rates: np.ndarray,
    tie_eps: float,
    *,
    need_loads: bool = False,
) -> "tuple[np.ndarray, np.ndarray | None]":
    """Progressive filling that freezes all near-tied bottlenecks at once.

    Sort-free: instead of a reverse (link -> flows) CSR it keeps flat
    entry arrays (link id, flow id) and finds the flows hit by the tied
    links with two gathers per iteration.  Symmetric fabrics (every NIC
    equally loaded) collapse to one or two iterations total.  The entry
    arrays are *compacted* after each freeze batch — a frozen flow's
    entries are dropped rather than masked — so on heterogeneous
    fabrics with long freeze tails (hierarchical Fast Ethernet mid-run,
    where completions desynchronise the per-flow remaining bytes and
    each solve walks dozens of distinct bottleneck levels) the
    per-iteration cost tracks the shrinking live set, not the full CSR.

    With ``need_loads=True`` the per-link allocated load is accumulated
    inside the fill (``share * flows_removed`` per freeze batch), so
    callers that want the load/saturation summary don't pay a second
    pass over the CSR after the solve.
    """
    n_links = len(capacities)
    n_flows = paths.n_flows
    # Compacted as flows freeze: ent_flow only ever holds unfrozen flows
    # (all of a flow's entries die in the batch that freezes it).
    ent_link = paths.link_ids
    ent_flow = np.repeat(np.arange(n_flows, dtype=np.int64), row_lengths)
    residual = capacities.copy()
    unfrozen_count = link_flow_count.astype(np.float64)
    newly_mask = np.zeros(n_flows, dtype=bool)
    remaining = n_flows
    fair = np.empty(n_links, dtype=np.float64)
    link_load = np.zeros(n_links, dtype=np.float64) if need_loads else None
    for _ in range(n_links + n_flows + 1):
        if remaining == 0:
            break
        fair.fill(np.inf)
        np.divide(residual, unfrozen_count, out=fair, where=unfrozen_count > 0)
        share = float(fair.min())
        if not np.isfinite(share):  # pragma: no cover - defensive
            break
        share = max(share, 0.0)
        tied = fair <= share * (1.0 + tie_eps)
        hit_flows = ent_flow[tied[ent_link]]
        if hit_flows.size == 0:  # pragma: no cover - numeric guard
            unfrozen_count[tied] = 0
            continue
        newly_mask[hit_flows] = True
        n_new = int(np.count_nonzero(newly_mask))
        rates[hit_flows] = share
        remaining -= n_new
        if remaining == 0 and link_load is None:
            # Everything froze this round (the common symmetric-fabric
            # case) — the bookkeeping below only feeds the next
            # iteration.
            break
        dead = newly_mask[ent_flow]
        newly_mask[hit_flows] = False
        removed = np.bincount(ent_link[dead], minlength=n_links)
        if link_load is not None:
            link_load += share * removed
        if remaining == 0:
            break
        keep = ~dead
        ent_link = ent_link[keep]
        ent_flow = ent_flow[keep]
        residual -= share * removed
        unfrozen_count -= removed
        np.maximum(residual, 0.0, out=residual)
        unfrozen_count[tied] = 0  # fully frozen by construction
    return rates, link_load
