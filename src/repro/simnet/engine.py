"""Discrete-event simulation kernel.

A minimal but production-hardened event engine: a binary heap of
``(time, priority, sequence, callback)`` entries with

* deterministic FIFO tie-breaking at equal timestamps (the ``sequence``
  counter), which keeps whole simulations bit-reproducible,
* cancellable event handles,
* defensive monotonicity checks (scheduling into the past is a bug in the
  caller and raises immediately rather than corrupting causality).

The fluid network model (:mod:`repro.simnet.fluid`) and the MPI runtime
(:mod:`repro.simmpi.runtime`) are both built on this kernel.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable

from ..exceptions import SimulationError

__all__ = ["Engine", "EventHandle"]


class _Entry:
    """Heap entry ordered by (time, priority, seq); callback excluded.

    Hand-rolled rather than ``@dataclass(order=True)``: the generated
    ``__lt__`` materialises a field tuple per comparison, and the heap
    comparison is the single hottest non-numpy call in large
    simulations.
    """

    __slots__ = ("time", "priority", "seq", "callback")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None] | None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback

    def __lt__(self, other: "_Entry") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq


class EventHandle:
    """Handle returned by :meth:`Engine.schedule`; supports cancellation."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        """Scheduled firing time of this event."""
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called (or the event fired)."""
        return self._entry.callback is None

    def cancel(self) -> None:
        """Cancel the event; firing a cancelled event is a no-op."""
        self._entry.callback = None


class Engine:
    """Event-driven simulation clock.

    Examples
    --------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(1.5, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [1.5]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for diagnostics/benchmarks)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return len(self._heap)

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule *callback* at absolute simulation *time*.

        Lower *priority* fires first among events at the same timestamp;
        equal priorities fire in scheduling (FIFO) order.
        """
        if not math.isfinite(time):
            raise SimulationError(f"non-finite event time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time!r} < now={self._now!r}"
            )
        entry = _Entry(time, priority, next(self._seq), callback)
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule *callback* after a relative *delay* (must be >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule(self._now + delay, callback, priority=priority)

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if none remained."""
        self._drop_cancelled()
        if not self._heap:
            return False
        entry = heapq.heappop(self._heap)
        callback = entry.callback
        entry.callback = None
        self._now = entry.time
        self._events_processed += 1
        assert callback is not None
        callback()
        return True

    def run(self, until: float = math.inf, *, max_events: int | None = None) -> None:
        """Run until the queue drains, *until* is reached, or *max_events*.

        *max_events* is a guard against runaway simulations; exceeding it
        raises :class:`SimulationError` rather than hanging the caller.
        """
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None:
                return
            if next_time > until:
                self._now = until
                return
            self.step()
            executed += 1
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} (simulation runaway?)"
                )

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].callback is None:
            heapq.heappop(heap)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Engine(now={self._now:.6g}, pending={len(self._heap)})"
