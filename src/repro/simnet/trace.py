"""Structured event tracing for simulations.

A lightweight append-only trace that modules opt into.  Traces are the
ground truth for integration tests (e.g. "no flow ever exceeded its NIC
rate", "every RTO stall eventually resumed") and for debugging
calibration runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TraceRecord", "Trace", "NullTrace"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: a timestamped, categorised event with payload."""

    time: float
    category: str
    payload: dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]


@dataclass
class Trace:
    """Recording trace (use :class:`NullTrace` to disable with zero cost)."""

    records: list[TraceRecord] = field(default_factory=list)
    enabled: bool = True

    def emit(self, time: float, category: str, **payload: Any) -> None:
        """Append a record."""
        if self.enabled:
            self.records.append(TraceRecord(time, category, payload))

    def by_category(self, category: str) -> list[TraceRecord]:
        """All records of one category, in emission order."""
        return [r for r in self.records if r.category == category]

    def categories(self) -> set[str]:
        """Distinct categories present."""
        return {r.category for r in self.records}

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)


class NullTrace(Trace):
    """A trace that drops everything (default: tracing off)."""

    def __init__(self) -> None:
        super().__init__(records=[], enabled=False)

    def emit(self, time: float, category: str, **payload: Any) -> None:  # noqa: D102
        return None
