"""Summary statistics helpers for simulation outputs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample of durations/throughputs."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.6g} std={self.std:.6g} "
            f"min={self.minimum:.6g} p50={self.p50:.6g} "
            f"p95={self.p95:.6g} max={self.maximum:.6g}"
        )


def summarize(values) -> Summary:
    """Compute a :class:`Summary` of a non-empty sequence."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
    )
