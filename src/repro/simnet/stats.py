"""Summary statistics helpers and per-simulation cost counters.

:class:`Summary` condenses samples of durations/throughputs;
:class:`SimStats` counts what one simulation *cost* (allocation
resolves, advance epochs, engine events) so engine regressions are
visible in sweep output.  Collection is always cheap (plain counters);
*surfacing* the counters on measurement rows is gated behind the
``REPRO_SIM_STATS`` environment flag (see :func:`stats_enabled`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize", "SimStats", "stats_enabled"]

#: Environment flag gating the sim_* columns on measurement rows.
STATS_ENV = "REPRO_SIM_STATS"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def stats_enabled() -> bool:
    """Whether ``REPRO_SIM_STATS`` asks for per-simulation cost columns."""
    raw = os.environ.get(STATS_ENV, "")
    return raw.strip().lower() in _TRUTHY


@dataclass(frozen=True)
class SimStats:
    """Cost counters of one simulation (or a sum over repetitions).

    Attributes
    ----------
    engine:
        Name of the simulation engine that produced the run.
    resolves:
        Bandwidth-allocation solves (max-min re-solves) performed.
    epochs:
        Flow-advance epochs: distinct timesteps at which active flows
        actually progressed (``dt > 0`` with a non-empty active set).
    events:
        Discrete events executed by the event kernel.
    losses:
        TCP loss events (RTO detections) sampled by the loss overlay.
    stalls:
        Flow stalls: how many times a flow left the active set to sit
        out an RTO penalty.  One stall may cover several chained losses,
        so ``stalls <= losses`` whenever the loss overlay is enabled.
    solve_reuses:
        Allocation solves skipped because a warm-started solution was
        still valid (the vector engine's reuse optimization; always 0
        for the fluid engine, which re-solves every epoch).
    """

    engine: str
    resolves: int
    epochs: int
    events: int
    losses: int = 0
    stalls: int = 0
    solve_reuses: int = 0

    def merged(self, other: "SimStats") -> "SimStats":
        """Counter-wise sum (for aggregating repetitions of one point)."""
        return SimStats(
            engine=self.engine,
            resolves=self.resolves + other.resolves,
            epochs=self.epochs + other.epochs,
            events=self.events + other.events,
            losses=self.losses + other.losses,
            stalls=self.stalls + other.stalls,
            solve_reuses=self.solve_reuses + other.solve_reuses,
        )


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample of durations/throughputs."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.6g} std={self.std:.6g} "
            f"min={self.minimum:.6g} p50={self.p50:.6g} "
            f"p95={self.p95:.6g} max={self.maximum:.6g}"
        )


def summarize(values) -> Summary:
    """Compute a :class:`Summary` of a non-empty sequence."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
    )
