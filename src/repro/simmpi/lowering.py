"""Lowering: compile rank programs into static phase schedules.

The reference interpreter (:class:`repro.simmpi.runtime.Runtime`) drives
every rank's generator step by step, matching sends to receives with
runtime queues.  For the collectives this repo studies that generality
is unused: the communication structure of ``direct``, ``rounds``,
``bruck``, ``ring`` and the ``alltoallv_*`` variants depends only on
``(n, msg_size/matrix)`` — never on wildcards, message contents, or the
simulation clock.  This module exploits that: it *records* one dry run
of each rank's generator and emits a :class:`LoweredProgram`, a static
schedule of

* **messages** — every send with its (src, dst, tag, payload) and the
  receive it pairs with, resolved at compile time (the runtime's FIFO
  matching reduces to positional pairing when both sides use concrete
  source/tag keys and delivery is per-pair in-order);
* **segments** — the spans of each rank's program between ``yield``
  points, each with its ordered operation list and the *gate* (the set
  of requests the yield blocks on) that must complete before the next
  segment posts.

Segment k+1 of a rank depends on gate k; a message edges from its send
segment on the source rank to its receive segment on the destination —
together these are the phase dependency graph that batched engines
(:mod:`repro.simnet.vector`) execute without ever resuming a Python
generator mid-simulation.

Programs whose behaviour cannot be known statically — wildcard receives
(``ANY_SOURCE``/``ANY_TAG``), reads of ``ctx.now``, or send/receive
counts that do not pair up — raise :class:`~repro.exceptions.LoweringError`;
callers fall back to the reference interpreter for those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Iterable

import numpy as np

from ..exceptions import LoweringError
from .request import ANY_SOURCE, ANY_TAG

__all__ = [
    "LoweredMessage",
    "Segment",
    "LoweredProgram",
    "lower_program",
]


@dataclass(frozen=True)
class LoweredMessage:
    """One matched point-to-point transfer of the schedule.

    ``seq`` is the per-ordered-pair (src, dst) sequence number — the
    same numbering the runtime uses for its non-overtaking guarantee.
    ``local`` transfers (src == dst) never touch the wire; they model
    the rank's message to itself.
    """

    mid: int
    src: int
    dst: int
    tag: int
    nbytes: int
    seq: int
    send_segment: int
    recv_segment: int
    local: bool


@dataclass(frozen=True)
class Segment:
    """One span of a rank's program between two yields.

    ``ops`` is the ordered list of operations the span executes:
    ``("send", mid)``, ``("recv", mid)`` or ``("copy", nbytes)``.  The
    op order is semantically load-bearing — it fixes per-pair sequence
    numbers, jitter draws and submit-queue arrival order.  ``gate`` is
    the tuple of ``(kind, mid)`` requests the terminating yield blocks
    on, or ``None`` for the trailing segment (program runs to
    ``StopIteration``).
    """

    rank: int
    index: int
    ops: tuple[tuple, ...]
    gate: tuple[tuple[str, int], ...] | None


@dataclass(frozen=True)
class LoweredProgram:
    """A rank program compiled to a static phase schedule."""

    nprocs: int
    messages: tuple[LoweredMessage, ...]
    segments: tuple[tuple[Segment, ...], ...]  # [rank][segment index]

    @property
    def n_phases(self) -> int:
        """Largest segment count over all ranks (phases of the schedule)."""
        return max(len(segs) for segs in self.segments)

    def flow_matrix(self, phase: int) -> np.ndarray:
        """(n, n) byte matrix of messages *posted* in segment *phase*.

        Row = source rank, column = destination; the diagonal holds
        local self-copies posted in that phase.  Ranks with fewer
        segments than *phase* contribute nothing.
        """
        matrix = np.zeros((self.nprocs, self.nprocs), dtype=np.int64)
        for message in self.messages:
            if message.send_segment == phase:
                matrix[message.src, message.dst] += message.nbytes
        return matrix

    def dependency_edges(self) -> list[tuple[tuple[int, int], tuple[int, int]]]:
        """Cross-rank dependency edges ``((src, send_seg), (dst, recv_seg))``.

        Together with the implicit intra-rank chain (segment k+1 waits
        on gate k) these are the full dependency structure of the
        schedule.
        """
        return [
            ((m.src, m.send_segment), (m.dst, m.recv_segment))
            for m in self.messages
            if not m.local
        ]

    def describe(self) -> str:
        """One-line shape summary."""
        remote = sum(1 for m in self.messages if not m.local)
        local = len(self.messages) - remote
        return (
            f"{self.nprocs} ranks, {self.n_phases} phases, "
            f"{remote} wire messages, {local} local copies"
        )


class _SendToken:
    __slots__ = ("mid",)

    def __init__(self, mid: int) -> None:
        self.mid = mid


class _RecvToken:
    __slots__ = ("rank", "index")

    def __init__(self, rank: int, index: int) -> None:
        self.rank = rank
        self.index = index


class _RecordedSend:
    __slots__ = ("mid", "src", "dst", "tag", "nbytes", "seq", "segment")

    def __init__(self, mid, src, dst, tag, nbytes, seq) -> None:
        self.mid = mid
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.seq = seq
        self.segment = -1


class _RecordedRecv:
    __slots__ = ("rank", "index", "src", "tag", "segment")

    def __init__(self, rank, index, src, tag) -> None:
        self.rank = rank
        self.index = index
        self.src = src
        self.tag = tag
        self.segment = -1


class _RecordingContext:
    """Stand-in for :class:`~repro.simmpi.runtime.RankContext` that records."""

    def __init__(self, recorder: "_Recorder", rank: int) -> None:
        self._recorder = recorder
        self.rank = rank

    @property
    def size(self) -> int:
        return self._recorder.nprocs

    def isend(self, dst: int, nbytes: int, *, tag: int = 0) -> _SendToken:
        return self._recorder.record_send(self.rank, int(dst), int(nbytes), int(tag))

    def irecv(self, src: int = ANY_SOURCE, *, tag: int = ANY_TAG) -> _RecvToken:
        return self._recorder.record_recv(self.rank, int(src), int(tag))

    def sendrecv(
        self, dst: int, nbytes: int, src: int, *, tag: int = 0
    ) -> Generator[Any, None, _RecvToken]:
        send_tok = self.isend(dst, nbytes, tag=tag)
        recv_tok = self.irecv(src, tag=tag)
        yield [send_tok, recv_tok]
        return recv_tok

    def local_copy(self, nbytes: int) -> None:
        self._recorder.record_copy(self.rank, int(nbytes))

    @property
    def now(self) -> float:
        raise LoweringError(
            "rank program reads ctx.now: time-dependent programs cannot "
            "be lowered to a static schedule (use the fluid engine)"
        )


class _Recorder:
    """Accumulates recorded operations while one rank's generator runs."""

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        self.sends: list[_RecordedSend] = []
        self.recvs_by_rank: list[list[_RecordedRecv]] = [[] for _ in range(nprocs)]
        self.copies: list[tuple[int, int]] = []
        self._send_seq: dict[tuple[int, int], int] = {}
        self._current_ops: list[tuple] = []

    def record_send(self, rank: int, dst: int, nbytes: int, tag: int) -> _SendToken:
        if nbytes < 0:
            raise ValueError("message size must be >= 0")
        if not 0 <= dst < self.nprocs:
            raise ValueError(f"destination rank {dst} out of range")
        key = (rank, dst)
        seq = self._send_seq.get(key, 0)
        self._send_seq[key] = seq + 1
        send = _RecordedSend(len(self.sends), rank, dst, tag, nbytes, seq)
        self.sends.append(send)
        self._current_ops.append(("send", send))
        return _SendToken(send.mid)

    def record_recv(self, rank: int, src: int, tag: int) -> _RecvToken:
        if src == ANY_SOURCE or tag == ANY_TAG:
            raise LoweringError(
                "rank program posts a wildcard receive (ANY_SOURCE/ANY_TAG): "
                "its matching depends on runtime arrival order and cannot "
                "be lowered (use the fluid engine)"
            )
        if not 0 <= src < self.nprocs:
            raise ValueError(f"source rank {src} out of range")
        recvs = self.recvs_by_rank[rank]
        recv = _RecordedRecv(rank, len(recvs), src, tag)
        recvs.append(recv)
        self._current_ops.append(("recv", recv))
        return _RecvToken(rank, recv.index)

    def record_copy(self, rank: int, nbytes: int) -> None:
        self.copies.append((rank, nbytes))
        self._current_ops.append(("copy", nbytes))

    def take_ops(self) -> tuple[tuple, ...]:
        ops = tuple(self._current_ops)
        self._current_ops = []
        return ops


def _as_tokens(yielded: Any) -> list:
    """Mirror ``Runtime._as_requests`` for recorded tokens."""
    if isinstance(yielded, (_SendToken, _RecvToken)):
        return [yielded]
    if isinstance(yielded, Iterable):
        tokens = list(yielded)
        if not all(isinstance(t, (_SendToken, _RecvToken)) for t in tokens):
            raise TypeError("programs must yield Request objects")
        return tokens
    raise TypeError(
        f"programs must yield Request or iterable of Request, got {yielded!r}"
    )


def lower_program(
    program, nprocs: int, *args: Any, **kwargs: Any
) -> LoweredProgram:
    """Compile *program* at *nprocs* ranks into a :class:`LoweredProgram`.

    The program is called exactly as the runtime would call it —
    ``program(ctx, *args, **kwargs)`` per rank — against a recording
    context.  Raises :class:`~repro.exceptions.LoweringError` for
    programs that cannot be scheduled statically, and mirrors the
    runtime's :class:`ValueError`/:class:`TypeError` contracts for
    malformed programs.
    """
    if nprocs < 1:
        raise ValueError("need at least one rank")
    recorder = _Recorder(nprocs)
    raw_segments: list[list[tuple]] = []  # [rank] -> [(ops, gate_tokens|None)]
    for rank in range(nprocs):
        ctx = _RecordingContext(recorder, rank)
        gen = program(ctx, *args, **kwargs)
        if not isinstance(gen, Generator):
            raise TypeError(
                "rank program must be a generator function "
                f"(got {type(gen).__name__})"
            )
        spans: list[tuple] = []
        while True:
            try:
                yielded = next(gen)
            except StopIteration:
                spans.append((recorder.take_ops(), None))
                break
            spans.append((recorder.take_ops(), tuple(_as_tokens(yielded))))
        raw_segments.append(spans)

    # Stamp send segments and receive segments on the recorded ops.
    for rank, spans in enumerate(raw_segments):
        for index, (ops, _gate) in enumerate(spans):
            for kind, payload in ops:
                if kind in ("send", "recv"):
                    payload.segment = index

    # Static matching: within each (src, dst, tag) class both sides are
    # FIFO (sends by per-pair seq, receives by post order), so the k-th
    # send pairs with the k-th receive — exactly what the runtime's
    # queue scan produces for concrete keys under in-order delivery.
    recv_classes: dict[tuple[int, int, int], list[_RecordedRecv]] = {}
    for rank in range(nprocs):
        for recv in recorder.recvs_by_rank[rank]:
            recv_classes.setdefault((recv.src, rank, recv.tag), []).append(recv)
    send_classes: dict[tuple[int, int, int], list[_RecordedSend]] = {}
    for send in recorder.sends:
        send_classes.setdefault((send.src, send.dst, send.tag), []).append(send)

    recv_of_send: dict[int, _RecordedRecv] = {}
    for key, sends in send_classes.items():
        recvs = recv_classes.pop(key, [])
        src, dst, tag = key
        if len(sends) != len(recvs):
            raise LoweringError(
                f"unmatched traffic {src}->{dst} tag={tag}: "
                f"{len(sends)} send(s) vs {len(recvs)} receive(s) "
                "(the reference runtime would deadlock)"
            )
        for send, recv in zip(sends, recvs):
            recv_of_send[send.mid] = recv
    if recv_classes:
        (src, dst, tag), recvs = next(iter(sorted(recv_classes.items())))
        raise LoweringError(
            f"unmatched traffic {src}->{dst} tag={tag}: "
            f"0 send(s) vs {len(recvs)} receive(s) "
            "(the reference runtime would deadlock)"
        )

    messages = tuple(
        LoweredMessage(
            mid=send.mid,
            src=send.src,
            dst=send.dst,
            tag=send.tag,
            nbytes=send.nbytes,
            seq=send.seq,
            send_segment=send.segment,
            recv_segment=recv_of_send[send.mid].segment,
            local=send.src == send.dst,
        )
        for send in recorder.sends
    )

    # Receives are identified by (rank, index); gates reference messages,
    # so map each receive token back to the message it pairs with.
    mid_of_recv: dict[tuple[int, int], int] = {
        (recv.rank, recv.index): mid for mid, recv in recv_of_send.items()
    }

    def _gate_entry(token) -> tuple[str, int]:
        if isinstance(token, _SendToken):
            return ("send", token.mid)
        return ("recv", mid_of_recv[(token.rank, token.index)])

    segments: list[tuple[Segment, ...]] = []
    for rank, spans in enumerate(raw_segments):
        rank_segments = []
        for index, (ops, gate_tokens) in enumerate(spans):
            baked_ops = []
            for kind, payload in ops:
                if kind == "send":
                    baked_ops.append(("send", payload.mid))
                elif kind == "recv":
                    baked_ops.append(
                        ("recv", mid_of_recv[(payload.rank, payload.index)])
                    )
                else:
                    baked_ops.append(("copy", payload))
            gate = (
                None
                if gate_tokens is None
                else tuple(_gate_entry(t) for t in gate_tokens)
            )
            rank_segments.append(
                Segment(rank=rank, index=index, ops=tuple(baked_ops), gate=gate)
            )
        segments.append(tuple(rank_segments))

    return LoweredProgram(
        nprocs=nprocs, messages=messages, segments=tuple(segments)
    )
