"""All-to-all algorithms (rank programs for the simulated runtime).

Implements the paper's Direct Exchange (Algorithm 1) in the two flavours
found in 2006-era MPI libraries, plus two classic baselines:

* :func:`alltoall_direct` — post **all** receives and sends at once, then
  wait for everything (LAM-MPI's basic linear algorithm; this realises the
  paper's premise that "all communications are started simultaneously"
  and is the algorithm measured throughout the evaluation);
* :func:`alltoall_rounds` — the literal Algorithm 1: n-1 rounds of
  ``sendrecv`` with destination rotation ``p_(i+t) mod n`` and blocking at
  each round (MPICH1-style pairwise progression);
* :func:`alltoall_bruck` — Bruck et al.'s log-round algorithm: ⌈log2 n⌉
  rounds exchanging aggregated blocks; latency-optimal, bandwidth-
  suboptimal (each item travels multiple hops);
* :func:`alltoall_ring` — store-and-forward neighbour ring: step s moves
  (n-s) blocks one hop right; the paper's §4 explains why such forwarding
  only wins when latency dominates bandwidth.

The direct and rounds progressions also exist in generalised
*alltoallv* form (:func:`alltoallv_direct`, :func:`alltoallv_rounds`):
they take a full (n, n) byte matrix — per-destination send counts, with
the diagonal as the local self-copy — and realise exactly the arcs of
the corresponding :class:`~repro.core.med.MED` (zero-weight pairs post
no message, as in MPI's alltoallv).  The uniform scalar algorithms are
thin wrappers lowering ``msg_size`` to the full matrix, so the two
paths are operation-for-operation identical on regular exchanges.

Scalar algorithms take ``(ctx, msg_size)``, alltoallv algorithms take
``(ctx, matrix)``; all are registered in the algorithm registry
(:data:`repro.registry.ALGORITHMS`); add new algorithms with
``@repro.api.register_algorithm("name")`` — no edit here required.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..registry import ALGORITHMS as _ALGORITHM_REGISTRY
from ..registry import DeprecatedMapping, register_algorithm
from .runtime import RankContext

__all__ = [
    "alltoall_direct",
    "alltoall_rounds",
    "alltoall_bruck",
    "alltoall_ring",
    "alltoallv_direct",
    "alltoallv_rounds",
    "ALLTOALLV_VARIANTS",
    "MATRIX_ALGORITHMS",
    "variant_for",
    "ALGORITHMS",
    "TAG_ALLTOALL",
]

TAG_ALLTOALL = 77


def _as_matrix(ctx: RankContext, matrix) -> np.ndarray:
    """Validate a per-pair byte matrix against the communicator size."""
    W = np.asarray(matrix)
    n = ctx.size
    if W.ndim != 2 or W.shape != (n, n):
        raise ValueError(
            f"alltoallv needs an ({n}, {n}) byte matrix, got shape {W.shape}"
        )
    if np.any(W < 0):
        raise ValueError("alltoallv matrix entries must be >= 0")
    return W


def _uniform_matrix(n: int, msg_size: int) -> np.ndarray:
    """Lower a scalar msg_size to the regular-All-to-All matrix."""
    if msg_size < 0:
        raise ValueError("message size must be >= 0")
    return np.full((n, n), int(msg_size), dtype=np.int64)


@register_algorithm("alltoallv-direct", aliases=("vdirect",))
def alltoallv_direct(ctx: RankContext, matrix) -> Generator[Any, None, None]:
    """Irregular direct exchange: all of the matrix's arcs at once.

    The generalisation of :func:`alltoall_direct` to per-pair byte
    counts: receives are pre-posted, destinations rotate by rank so
    round t pairs ``i -> i+t``, and nothing blocks until every posted
    transfer completes.  Pairs with zero weight exchange no message at
    all (they are not MED arcs); the diagonal is the local self-copy.
    """
    n, me = ctx.size, ctx.rank
    W = _as_matrix(ctx, matrix)
    requests = []
    for t in range(1, n):
        src = (me - t) % n
        if W[src, me] > 0:
            requests.append(ctx.irecv(src, tag=TAG_ALLTOALL))
    for t in range(1, n):
        dst = (me + t) % n
        if W[me, dst] > 0:
            requests.append(ctx.isend(dst, int(W[me, dst]), tag=TAG_ALLTOALL))
    ctx.local_copy(int(W[me, me]))
    if requests:
        yield requests


@register_algorithm("alltoallv-rounds", aliases=("vrounds", "vpairwise"))
def alltoallv_rounds(ctx: RankContext, matrix) -> Generator[Any, None, None]:
    """Irregular Algorithm 1: blocking pairwise rounds over matrix arcs.

    Round t exchanges with the rotated pair ``(me+t, me-t)``; a rank
    whose round carries no arc in either direction skips the round
    entirely (no barrier), matching pairwise alltoallv progressions.
    """
    n, me = ctx.size, ctx.rank
    W = _as_matrix(ctx, matrix)
    ctx.local_copy(int(W[me, me]))
    for t in range(1, n):
        dst = (me + t) % n
        src = (me - t) % n
        batch = []
        if W[me, dst] > 0:
            batch.append(ctx.isend(dst, int(W[me, dst]), tag=TAG_ALLTOALL + t))
        if W[src, me] > 0:
            batch.append(ctx.irecv(src, tag=TAG_ALLTOALL + t))
        if batch:
            yield batch


@register_algorithm("direct", aliases=("linear",))
def alltoall_direct(
    ctx: RankContext, msg_size: int
) -> Generator[Any, None, None]:
    """Direct exchange, all transfers simultaneous (LAM-style).

    Receives are posted before sends (standard practice: pre-posting
    avoids unexpected-queue traffic), destinations rotate by rank so that
    round t pairs ``i -> i+t`` — but nothing blocks between rounds, so the
    network sees all n-1 outbound messages of every process at once.
    Thin wrapper: lowers to :func:`alltoallv_direct` on the uniform
    matrix, which posts the identical operation sequence.
    """
    yield from alltoallv_direct(ctx, _uniform_matrix(ctx.size, msg_size))


@register_algorithm("rounds", aliases=("pairwise",))
def alltoall_rounds(
    ctx: RankContext, msg_size: int
) -> Generator[Any, None, None]:
    """Paper Algorithm 1, literally: blocking sendrecv per round.

    Thin wrapper over :func:`alltoallv_rounds` on the uniform matrix.
    """
    yield from alltoallv_rounds(ctx, _uniform_matrix(ctx.size, msg_size))


@register_algorithm("bruck")
def alltoall_bruck(
    ctx: RankContext, msg_size: int
) -> Generator[Any, None, None]:
    """Bruck algorithm: ⌈log2 n⌉ rounds of aggregated block exchange.

    In round k every rank sends, to ``me + 2^k``, the blocks whose
    relative destination offset has bit k set — ``count_k`` blocks of
    *msg_size* bytes each.  Items travel up to ⌈log2 n⌉ hops, trading
    bandwidth for start-ups.
    """
    n, me = ctx.size, ctx.rank
    ctx.local_copy(msg_size)
    if n == 1:
        return
    k = 0
    while (1 << k) < n:
        distance = 1 << k
        count = sum(1 for j in range(1, n) if (j >> k) & 1)
        dst = (me + distance) % n
        src = (me - distance) % n
        send_req = ctx.isend(dst, count * msg_size, tag=TAG_ALLTOALL + k)
        recv_req = ctx.irecv(src, tag=TAG_ALLTOALL + k)
        yield [send_req, recv_req]
        k += 1


@register_algorithm("ring")
def alltoall_ring(
    ctx: RankContext, msg_size: int
) -> Generator[Any, None, None]:
    """Store-and-forward neighbour ring.

    Step s (1..n-1) forwards the (n-s) blocks still in transit one hop to
    the right; blocks destined to the local rank drop out.  Total bytes
    per link: m·n(n-1)/2 — the bandwidth-hostile baseline of §4.
    """
    n, me = ctx.size, ctx.rank
    ctx.local_copy(msg_size)
    right = (me + 1) % n
    left = (me - 1) % n
    for step in range(1, n):
        payload = (n - step) * msg_size
        send_req = ctx.isend(right, payload, tag=TAG_ALLTOALL + step)
        recv_req = ctx.irecv(left, tag=TAG_ALLTOALL + step)
        yield [send_req, recv_req]


#: Scalar algorithm -> its matrix-driven generalisation (canonical
#: names).  The measurement layer lowers pattern-based points through
#: this map; algorithms absent here (bruck, ring — their forwarding
#: schedules assume uniform blocks) reject irregular patterns.
ALLTOALLV_VARIANTS = {
    "direct": "alltoallv-direct",
    "rounds": "alltoallv-rounds",
}

#: Algorithms whose rank programs take an (n, n) byte matrix instead of
#: a scalar msg_size.
MATRIX_ALGORITHMS = frozenset(ALLTOALLV_VARIANTS.values())


def variant_for(algorithm: str, *, irregular: bool) -> str:
    """The canonical program name serving an exchange of the given kind.

    *algorithm* must already be registry-canonical.  Regular exchanges
    return the scalar program; irregular ones lower through
    :data:`ALLTOALLV_VARIANTS` (matrix algorithms pass through).  The
    single source of the compatibility rules — raises :class:`ValueError`
    for unsupported combinations; callers re-wrap in their layer's
    exception type.
    """
    if not irregular:
        if algorithm in MATRIX_ALGORITHMS:
            raise ValueError(
                f"algorithm {algorithm!r} takes a byte matrix; give it an "
                "irregular traffic pattern or use its scalar counterpart"
            )
        return algorithm
    if algorithm in MATRIX_ALGORITHMS:
        return algorithm
    variant = ALLTOALLV_VARIANTS.get(algorithm)
    if variant is None:
        raise ValueError(
            f"algorithm {algorithm!r} has no alltoallv variant; irregular "
            f"patterns support: {', '.join(sorted(ALLTOALLV_VARIANTS))} "
            f"(or {', '.join(sorted(MATRIX_ALGORITHMS))} directly)"
        )
    return variant


#: Deprecated dict facade; the algorithm registry is the source of truth.
ALGORITHMS = DeprecatedMapping(
    _ALGORITHM_REGISTRY,
    "repro.simmpi.collectives.ALGORITHMS",
    "repro.registry.ALGORITHMS (or repro.api.list_algorithms())",
)
