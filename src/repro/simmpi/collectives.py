"""All-to-all algorithms (rank programs for the simulated runtime).

Implements the paper's Direct Exchange (Algorithm 1) in the two flavours
found in 2006-era MPI libraries, plus two classic baselines:

* :func:`alltoall_direct` — post **all** receives and sends at once, then
  wait for everything (LAM-MPI's basic linear algorithm; this realises the
  paper's premise that "all communications are started simultaneously"
  and is the algorithm measured throughout the evaluation);
* :func:`alltoall_rounds` — the literal Algorithm 1: n-1 rounds of
  ``sendrecv`` with destination rotation ``p_(i+t) mod n`` and blocking at
  each round (MPICH1-style pairwise progression);
* :func:`alltoall_bruck` — Bruck et al.'s log-round algorithm: ⌈log2 n⌉
  rounds exchanging aggregated blocks; latency-optimal, bandwidth-
  suboptimal (each item travels multiple hops);
* :func:`alltoall_ring` — store-and-forward neighbour ring: step s moves
  (n-s) blocks one hop right; the paper's §4 explains why such forwarding
  only wins when latency dominates bandwidth.

All take ``(ctx, msg_size)`` and are registered in the algorithm
registry (:data:`repro.registry.ALGORITHMS`); add new algorithms with
``@repro.api.register_algorithm("name")`` — no edit here required.
"""

from __future__ import annotations

from typing import Any, Generator

from ..registry import ALGORITHMS as _ALGORITHM_REGISTRY
from ..registry import DeprecatedMapping, register_algorithm
from .runtime import RankContext

__all__ = [
    "alltoall_direct",
    "alltoall_rounds",
    "alltoall_bruck",
    "alltoall_ring",
    "ALGORITHMS",
    "TAG_ALLTOALL",
]

TAG_ALLTOALL = 77


@register_algorithm("direct", aliases=("linear",))
def alltoall_direct(
    ctx: RankContext, msg_size: int
) -> Generator[Any, None, None]:
    """Direct exchange, all transfers simultaneous (LAM-style).

    Receives are posted before sends (standard practice: pre-posting
    avoids unexpected-queue traffic), destinations rotate by rank so that
    round t pairs ``i -> i+t`` — but nothing blocks between rounds, so the
    network sees all n-1 outbound messages of every process at once.
    """
    n, me = ctx.size, ctx.rank
    if n == 1:
        ctx.local_copy(msg_size)
        return
    requests = []
    for t in range(1, n):
        requests.append(ctx.irecv((me - t) % n, tag=TAG_ALLTOALL))
    for t in range(1, n):
        requests.append(ctx.isend((me + t) % n, msg_size, tag=TAG_ALLTOALL))
    ctx.local_copy(msg_size)
    yield requests


@register_algorithm("rounds", aliases=("pairwise",))
def alltoall_rounds(
    ctx: RankContext, msg_size: int
) -> Generator[Any, None, None]:
    """Paper Algorithm 1, literally: blocking sendrecv per round."""
    n, me = ctx.size, ctx.rank
    ctx.local_copy(msg_size)
    for t in range(1, n):
        send_req = ctx.isend((me + t) % n, msg_size, tag=TAG_ALLTOALL + t)
        recv_req = ctx.irecv((me - t) % n, tag=TAG_ALLTOALL + t)
        yield [send_req, recv_req]


@register_algorithm("bruck")
def alltoall_bruck(
    ctx: RankContext, msg_size: int
) -> Generator[Any, None, None]:
    """Bruck algorithm: ⌈log2 n⌉ rounds of aggregated block exchange.

    In round k every rank sends, to ``me + 2^k``, the blocks whose
    relative destination offset has bit k set — ``count_k`` blocks of
    *msg_size* bytes each.  Items travel up to ⌈log2 n⌉ hops, trading
    bandwidth for start-ups.
    """
    n, me = ctx.size, ctx.rank
    ctx.local_copy(msg_size)
    if n == 1:
        return
    k = 0
    while (1 << k) < n:
        distance = 1 << k
        count = sum(1 for j in range(1, n) if (j >> k) & 1)
        dst = (me + distance) % n
        src = (me - distance) % n
        send_req = ctx.isend(dst, count * msg_size, tag=TAG_ALLTOALL + k)
        recv_req = ctx.irecv(src, tag=TAG_ALLTOALL + k)
        yield [send_req, recv_req]
        k += 1


@register_algorithm("ring")
def alltoall_ring(
    ctx: RankContext, msg_size: int
) -> Generator[Any, None, None]:
    """Store-and-forward neighbour ring.

    Step s (1..n-1) forwards the (n-s) blocks still in transit one hop to
    the right; blocks destined to the local rank drop out.  Total bytes
    per link: m·n(n-1)/2 — the bandwidth-hostile baseline of §4.
    """
    n, me = ctx.size, ctx.rank
    ctx.local_copy(msg_size)
    right = (me + 1) % n
    left = (me - 1) % n
    for step in range(1, n):
        payload = (n - step) * msg_size
        send_req = ctx.isend(right, payload, tag=TAG_ALLTOALL + step)
        recv_req = ctx.irecv(left, tag=TAG_ALLTOALL + step)
        yield [send_req, recv_req]


#: Deprecated dict facade; the algorithm registry is the source of truth.
ALGORITHMS = DeprecatedMapping(
    _ALGORITHM_REGISTRY,
    "repro.simmpi.collectives.ALGORITHMS",
    "repro.registry.ALGORITHMS (or repro.api.list_algorithms())",
)
