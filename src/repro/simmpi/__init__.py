"""MPI-like simulated runtime (substrate).

Replaces LAM-MPI/MPICH on the paper's clusters; see DESIGN.md §2.
"""

from .collectives import (
    ALGORITHMS,
    ALLTOALLV_VARIANTS,
    MATRIX_ALGORITHMS,
    alltoall_bruck,
    alltoall_direct,
    alltoall_ring,
    alltoall_rounds,
    alltoallv_direct,
    alltoallv_rounds,
)
from .lowering import LoweredMessage, LoweredProgram, Segment, lower_program
from .request import ANY_SOURCE, ANY_TAG, RecvRequest, Request, SendRequest
from .runtime import RankContext, RankProgram, RunResult, Runtime
from .transport import TransportParams

__all__ = [
    "ALGORITHMS",
    "ALLTOALLV_VARIANTS",
    "MATRIX_ALGORITHMS",
    "alltoall_bruck",
    "alltoall_direct",
    "alltoall_ring",
    "alltoall_rounds",
    "alltoallv_direct",
    "alltoallv_rounds",
    "LoweredMessage",
    "LoweredProgram",
    "Segment",
    "lower_program",
    "ANY_SOURCE",
    "ANY_TAG",
    "RecvRequest",
    "Request",
    "SendRequest",
    "RankContext",
    "RankProgram",
    "RunResult",
    "Runtime",
    "TransportParams",
]
