"""Nonblocking communication requests (MPI_Request analogue).

Requests are created by :meth:`RankContext.isend` / :meth:`RankContext.irecv`
and completed by the transport layer.  Rank programs block on them by
yielding them (see :mod:`repro.simmpi.runtime`).
"""

from __future__ import annotations

import itertools
import math
from typing import Callable

__all__ = ["ANY_SOURCE", "ANY_TAG", "Request", "SendRequest", "RecvRequest"]

ANY_SOURCE = -1
ANY_TAG = -1

_req_ids = itertools.count()


class Request:
    """Base nonblocking request."""

    __slots__ = ("rid", "rank", "done", "completion_time", "_callbacks")

    def __init__(self, rank: int) -> None:
        self.rid = next(_req_ids)
        self.rank = rank
        self.done = False
        self.completion_time = math.nan
        self._callbacks: list[Callable[[], None]] = []

    def on_done(self, callback: Callable[[], None]) -> None:
        """Register *callback*; fires immediately if already complete."""
        if self.done:
            callback()
        else:
            self._callbacks.append(callback)

    def complete(self, time: float) -> None:
        """Mark complete at *time* and fire callbacks (transport use only)."""
        if self.done:
            raise RuntimeError(f"request {self.rid} completed twice")
        self.done = True
        self.completion_time = time
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(rid={self.rid}, rank={self.rank}, done={self.done})"


class SendRequest(Request):
    """A posted nonblocking send."""

    __slots__ = ("dst", "tag", "nbytes")

    def __init__(self, rank: int, dst: int, tag: int, nbytes: int) -> None:
        super().__init__(rank)
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes


class RecvRequest(Request):
    """A posted nonblocking receive.

    After completion, :attr:`source`, :attr:`tag` and :attr:`nbytes`
    describe the matched message (wildcards resolved).
    """

    __slots__ = ("source", "tag", "nbytes", "match_source", "match_tag")

    def __init__(self, rank: int, source: int, tag: int) -> None:
        super().__init__(rank)
        self.match_source = source
        self.match_tag = tag
        self.source = source
        self.tag = tag
        self.nbytes = 0

    def matches(self, src: int, tag: int) -> bool:
        """Whether an incoming (src, tag) envelope satisfies this post."""
        src_ok = self.match_source in (ANY_SOURCE, src)
        tag_ok = self.match_tag in (ANY_TAG, tag)
        return src_ok and tag_ok
