"""Transport protocol parameters (the "MPI + driver stack" of a profile).

One :class:`TransportParams` instance captures how a given interconnect
stack (LAM over TCP/Ethernet, LAM over gm/Myrinet) turns an MPI message
into wire traffic:

* **latency** — one-way start-up α (propagation + stack traversal);
* **eager vs rendezvous** — below ``eager_threshold`` messages are pushed
  immediately with an envelope; above it an RTS/CTS handshake precedes
  the payload (LAM's TCP long-message protocol switches at 64 KiB, which
  is where the paper observes cost "becoming linear");
* **segmentation** — payload is cut into MSS-sized segments, each paying
  wire framing bytes and host processing time; this is the source of the
  small-message staircase of Fig. 5;
* **sender discipline** — TCP sockets progress concurrently (the kernel
  multiplexes), gm serialises DMA sends (one outstanding message per
  host): ``sender_concurrency``;
* **receiver demultiplexing** — kernel stacks pay a serialized per-message
  service cost when many inbound streams complete concurrently (the δ
  mechanism, §5 of DESIGN.md); OS-bypass stacks (gm) pay none;
* **jitter** — random per-message submission noise that breaks the
  perfect symmetry of Algorithm 1's rotation (the convoy-effect seed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["TransportParams"]


@dataclass(frozen=True)
class TransportParams:
    """Protocol behaviour of one network stack.  Times in s, sizes bytes."""

    name: str = "tcp"
    base_latency: float = 50e-6
    eager_threshold: int = 65_536
    envelope_bytes: int = 64
    mss: int = 1_460
    per_segment_wire_bytes: int = 58
    per_segment_host_time: float = 0.0
    per_message_send_overhead: float = 5e-6
    ctrl_overhead: float = 5e-6
    sender_concurrency: int | None = None
    mux_overhead: float = 0.0
    mux_threshold: int = 0
    mux_min_inbound: int = 2
    jitter_scale: float = 0.0
    local_copy_bandwidth: float = 2e9

    def __post_init__(self) -> None:
        if self.base_latency < 0 or self.per_message_send_overhead < 0:
            raise ValueError("latencies must be non-negative")
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if self.sender_concurrency is not None and self.sender_concurrency < 1:
            raise ValueError("sender_concurrency must be None or >= 1")

    def segments(self, payload: int) -> int:
        """Number of MSS segments the payload occupies (>= 1)."""
        return max(1, math.ceil(max(payload, 1) / self.mss))

    def wire_bytes(self, payload: int) -> float:
        """Bytes put on the wire for a payload (envelope + framing)."""
        return float(
            payload + self.envelope_bytes + self.segments(payload) * self.per_segment_wire_bytes
        )

    def submit_cost(self, payload: int) -> float:
        """Host-side CPU time to push one message into the stack."""
        return self.per_message_send_overhead + self.segments(payload) * self.per_segment_host_time

    def is_eager(self, payload: int) -> bool:
        """Whether a payload uses the eager (no-handshake) path."""
        return payload < self.eager_threshold

    def local_copy_time(self, payload: int) -> float:
        """Time for the rank's message to itself (memcpy, never on wire)."""
        if self.local_copy_bandwidth <= 0:
            return 0.0
        return payload / self.local_copy_bandwidth

    def effective_beta(self, payload: int, link_capacity: float) -> float:
        """Seconds per *payload* byte through the framed wire.

        The raw link β is ``1/capacity``, but every payload also carries
        the envelope and per-segment framing (:meth:`wire_bytes`), so the
        β an MPI payload actually experiences is larger.  This is the β
        predictions and lower bounds must use to be consistent with the
        simulator.
        """
        if link_capacity <= 0:
            raise ValueError("link_capacity must be positive")
        payload = max(int(payload), 1)
        return self.wire_bytes(payload) / (payload * link_capacity)

    def mux_applies(self, payload: int, inbound_open: int) -> bool:
        """Whether receiver demultiplexing overhead is charged."""
        return (
            self.mux_overhead > 0.0
            and payload >= self.mux_threshold
            and inbound_open >= self.mux_min_inbound
        )
