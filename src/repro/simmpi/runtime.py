"""MPI-like runtime over the fluid network simulator.

Rank programs are generator coroutines: they call nonblocking context
methods (:meth:`RankContext.isend` / :meth:`RankContext.irecv`) and block
by *yielding* a request (or list of requests), resuming once all have
completed — the moral equivalent of ``MPI_Waitall``.

The runtime implements the semantics that matter for contention
modelling and for MPI correctness:

* **matching** — (source, tag) matching with wildcards, FIFO posted-receive
  and unexpected-message queues, and strict per-(src, dst) non-overtaking
  order enforced with per-pair sequence numbers;
* **protocols** — eager (immediate injection, envelope bytes) below the
  threshold, RTS/CTS rendezvous above it (control messages are modelled
  latency-only, the payload as a fluid flow);
* **sender discipline** — per-pair FIFO channels (one in-flight message
  per ordered host pair, as on a TCP socket), plus an optional per-host
  concurrency cap (gm's serialised DMA: ``sender_concurrency=1``);
* **receiver demultiplexing** — the serialized per-message service that
  produces the paper's δ (see :mod:`repro.simmpi.transport`);
* **jitter** — random submission noise seeding the convoy effect.

Every run is reproducible from ``(cluster, nprocs, seed)``.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable

from ..exceptions import DeadlockError, SimulationError
from ..simnet.engine import Engine
from ..simnet.fluid import Flow, FluidNetwork
from ..simnet.loss import LossParams
from ..simnet.penalty import HolPenalty
from ..simnet.resources import SerialResource
from ..simnet.rng import RngFactory
from ..simnet.stats import SimStats
from ..simnet.topology import Topology
from ..simnet.trace import NullTrace, Trace
from .request import ANY_SOURCE, ANY_TAG, RecvRequest, Request, SendRequest
from .transport import TransportParams

__all__ = ["RankContext", "Runtime", "RunResult", "RankProgram"]

RankProgram = Callable[..., Generator[Any, None, None]]

_msg_ids = itertools.count()


class _Message:
    """Internal wire message (eager payload, or rendezvous payload)."""

    __slots__ = (
        "mid", "src", "dst", "tag", "nbytes", "seq", "eager",
        "send_req", "recv_req", "flow",
    )

    def __init__(
        self, src: int, dst: int, tag: int, nbytes: int, seq: int,
        eager: bool, send_req: SendRequest,
    ) -> None:
        self.mid = next(_msg_ids)
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.seq = seq
        self.eager = eager
        self.send_req = send_req
        self.recv_req: RecvRequest | None = None
        self.flow: Flow | None = None


@dataclass
class _Envelope:
    """A matched-side arrival: eager data or a rendezvous RTS."""

    src: int
    tag: int
    nbytes: int
    message: _Message


class _SenderScheduler:
    """Per-host wire admission: pair-FIFO channels + concurrency cap."""

    def __init__(self, runtime: "Runtime", host: int, concurrency: int | None) -> None:
        self._runtime = runtime
        self._host = host
        self._limit = concurrency if concurrency is not None else math.inf
        self._queue: deque[_Message] = deque()
        self._busy_pairs: set[int] = set()
        self._in_flight = 0

    def submit(self, message: _Message) -> None:
        self._queue.append(message)
        self._pump()

    def release(self, message: _Message) -> None:
        self._in_flight -= 1
        self._busy_pairs.discard(message.dst)
        self._pump()

    def _pump(self) -> None:
        # Dispatch in FIFO order, skipping messages whose pair channel is
        # busy (per-pair order is still preserved: only the head message
        # of each pair can ever be eligible).
        if not self._queue:
            return
        blocked: deque[_Message] = deque()
        while self._queue and self._in_flight < self._limit:
            message = self._queue.popleft()
            if message.dst in self._busy_pairs:
                blocked.append(message)
                continue
            self._busy_pairs.add(message.dst)
            self._in_flight += 1
            self._runtime._start_flow(message)
        blocked.extend(self._queue)
        self._queue = blocked


@dataclass
class RunResult:
    """Outcome of one :meth:`Runtime.run`.

    ``duration`` is the paper's completion-time definition: "the
    difference between the start time and the time at which all processes
    are finished".  ``stats`` carries the engine's cost counters
    (:class:`~repro.simnet.stats.SimStats`).
    """

    duration: float
    rank_finish_times: list[float]
    events_processed: int
    flows_completed: int
    total_losses: int
    max_concurrent_flows: int
    trace: Trace = field(repr=False, default_factory=NullTrace)
    stats: SimStats | None = None


class RankContext:
    """Per-rank API visible to programs (an MPI communicator analogue)."""

    def __init__(self, runtime: "Runtime", rank: int) -> None:
        self._runtime = runtime
        self.rank = rank

    @property
    def size(self) -> int:
        """Number of ranks in the job."""
        return self._runtime.nprocs

    def isend(self, dst: int, nbytes: int, *, tag: int = 0) -> SendRequest:
        """Post a nonblocking send of *nbytes* to rank *dst*."""
        return self._runtime._post_send(self.rank, dst, int(nbytes), tag)

    def irecv(self, src: int = ANY_SOURCE, *, tag: int = ANY_TAG) -> RecvRequest:
        """Post a nonblocking receive from *src* (wildcards allowed)."""
        return self._runtime._post_recv(self.rank, src, tag)

    def sendrecv(
        self, dst: int, nbytes: int, src: int, *, tag: int = 0
    ) -> Generator[Any, None, RecvRequest]:
        """Blocking combined send+receive (one Algorithm-1 round)."""
        send_req = self.isend(dst, nbytes, tag=tag)
        recv_req = self.irecv(src, tag=tag)
        yield [send_req, recv_req]
        return recv_req

    def local_copy(self, nbytes: int) -> None:
        """Account for the rank's message to itself (never hits the wire)."""
        self._runtime._charge_local_copy(self.rank, int(nbytes))

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._runtime.engine.now


class _RankState:
    __slots__ = ("gen", "finished", "finish_time", "waiting", "started")

    def __init__(self) -> None:
        self.gen: Generator[Any, None, None] | None = None
        self.finished = False
        self.finish_time = math.nan
        self.waiting = 0
        self.started = False


class Runtime:
    """Executes rank programs over a cluster model.

    Parameters
    ----------
    topology:
        Finalised :class:`~repro.simnet.topology.Topology`; rank *i* runs
        on host *i*.
    transport:
        Protocol behaviour (:class:`~repro.simmpi.transport.TransportParams`).
    loss_params:
        TCP loss process; ``None`` for lossless fabrics.
    nprocs:
        Number of ranks (must not exceed hosts).
    seed:
        Root seed; all stochastic behaviour derives from it.
    trace:
        Optional structured trace shared with the fluid layer.
    timeline:
        Optional per-link collector handed to the fluid network (see
        :class:`repro.obs.LinkTimeline`).
    """

    def __init__(
        self,
        topology: Topology,
        transport: TransportParams,
        *,
        nprocs: int | None = None,
        loss_params: LossParams | None = None,
        hol_penalty: "HolPenalty | None" = None,
        start_skew_scale: float = 0.0,
        seed: int = 0,
        trace: Trace | None = None,
        timeline=None,
    ) -> None:
        self.nprocs = topology.n_hosts if nprocs is None else int(nprocs)
        if self.nprocs < 1:
            raise ValueError("need at least one rank")
        if self.nprocs > topology.n_hosts:
            raise ValueError(
                f"nprocs={self.nprocs} exceeds hosts={topology.n_hosts}"
            )
        self.topology = topology
        self.transport = transport
        self.trace = trace if trace is not None else NullTrace()
        self.engine = Engine()
        rng_factory = RngFactory(seed)
        self._jitter_rng = rng_factory.stream("mpi/jitter")
        if start_skew_scale < 0:
            raise ValueError("start_skew_scale must be >= 0")
        self._start_skew_scale = start_skew_scale
        self._skew_rng = rng_factory.stream("mpi/skew")
        self.network = FluidNetwork(
            self.engine,
            topology,
            loss_params=loss_params,
            hol_penalty=hol_penalty,
            rng=rng_factory.stream("net/loss"),
            trace=self.trace,
            timeline=timeline,
        )
        self._ranks = [_RankState() for _ in range(self.nprocs)]
        self._contexts = [RankContext(self, r) for r in range(self.nprocs)]
        self._schedulers = [
            _SenderScheduler(self, host, transport.sender_concurrency)
            for host in range(self.nprocs)
        ]
        self._mux = [
            SerialResource(self.engine, name=f"host{h}.rxcpu")
            for h in range(self.nprocs)
        ]
        # Matching state.
        self._posted: list[deque[RecvRequest]] = [deque() for _ in range(self.nprocs)]
        self._unexpected: list[deque[_Envelope]] = [deque() for _ in range(self.nprocs)]
        # Per ordered pair: next send seq / next seq to process at receiver,
        # plus the receiver-side reorder buffer (non-overtaking guarantee).
        self._send_seq: dict[tuple[int, int], int] = {}
        self._recv_next: dict[tuple[int, int], int] = {}
        self._reorder: dict[tuple[int, int], dict[int, _Envelope]] = {}

    # ------------------------------------------------------------------
    # Program execution
    # ------------------------------------------------------------------

    def run(
        self,
        program: RankProgram,
        *args: Any,
        max_events: int | None = None,
        **kwargs: Any,
    ) -> RunResult:
        """Run *program* on every rank until all finish.

        The program is called as ``program(ctx, *args, **kwargs)`` and
        must return a generator.  All ranks start at t=0 (the paper's
        synchronisation model: "all processes start the algorithm
        simultaneously").
        """
        for rank in range(self.nprocs):
            state = self._ranks[rank]
            if state.gen is not None:
                raise SimulationError("Runtime.run may only be called once")
            gen = program(self._contexts[rank], *args, **kwargs)
            if not isinstance(gen, Generator):
                raise TypeError(
                    "rank program must be a generator function "
                    f"(got {type(gen).__name__})"
                )
            state.gen = gen
            # Real clusters never enter a collective perfectly aligned:
            # OS noise and barrier exit skew stagger the ranks by a small
            # random amount (this seeds the Myrinet convoy effect).
            skew = (
                float(self._skew_rng.uniform(0.0, self._start_skew_scale))
                if self._start_skew_scale > 0
                else 0.0
            )
            self.engine.schedule(skew, lambda r=rank: self._advance(r))
        self.engine.run(max_events=max_events)
        unfinished = [r for r, s in enumerate(self._ranks) if not s.finished]
        if unfinished:
            raise DeadlockError(
                f"ranks {unfinished} blocked with no pending events "
                "(mismatched sends/receives?)"
            )
        finish = [s.finish_time for s in self._ranks]
        return RunResult(
            duration=max(finish),
            rank_finish_times=finish,
            events_processed=self.engine.events_processed,
            flows_completed=self.network.flows_completed,
            total_losses=self.network.total_losses,
            max_concurrent_flows=self.network.max_concurrent,
            trace=self.trace,
            stats=SimStats(
                engine="fluid",
                resolves=self.network.resolves,
                epochs=self.network.epochs,
                events=self.engine.events_processed,
                losses=self.network.total_losses,
                stalls=self.network.stalls,
            ),
        )

    def _advance(self, rank: int) -> None:
        state = self._ranks[rank]
        assert state.gen is not None
        while True:
            try:
                yielded = next(state.gen)
            except StopIteration:
                state.finished = True
                state.finish_time = self.engine.now
                return
            pending = [r for r in self._as_requests(yielded) if not r.done]
            if pending:
                state.waiting = len(pending)
                for request in pending:
                    request.on_done(lambda r=rank: self._request_done(r))
                return
            # All already complete: keep advancing within this event.

    @staticmethod
    def _as_requests(yielded: Any) -> list[Request]:
        if isinstance(yielded, Request):
            return [yielded]
        if isinstance(yielded, Iterable):
            requests = list(yielded)
            if not all(isinstance(r, Request) for r in requests):
                raise TypeError("programs must yield Request objects")
            return requests
        raise TypeError(
            f"programs must yield Request or iterable of Request, got {yielded!r}"
        )

    def _request_done(self, rank: int) -> None:
        state = self._ranks[rank]
        state.waiting -= 1
        if state.waiting == 0 and not state.finished:
            self.engine.schedule(self.engine.now, lambda: self._advance(rank))

    # ------------------------------------------------------------------
    # Point-to-point machinery
    # ------------------------------------------------------------------

    def _next_seq(self, src: int, dst: int) -> int:
        key = (src, dst)
        seq = self._send_seq.get(key, 0)
        self._send_seq[key] = seq + 1
        return seq

    def _jitter(self) -> float:
        scale = self.transport.jitter_scale
        if scale <= 0:
            return 0.0
        return float(self._jitter_rng.exponential(scale))

    def _post_send(self, rank: int, dst: int, nbytes: int, tag: int) -> SendRequest:
        if nbytes < 0:
            raise ValueError("message size must be >= 0")
        if not 0 <= dst < self.nprocs:
            raise ValueError(f"destination rank {dst} out of range")
        request = SendRequest(rank, dst, tag, nbytes)
        seq = self._next_seq(rank, dst)
        eager = self.transport.is_eager(nbytes)
        message = _Message(rank, dst, tag, nbytes, seq, eager, request)
        self.trace.emit(
            self.engine.now, "mpi.isend", src=rank, dst=dst, tag=tag,
            nbytes=nbytes, seq=seq, eager=eager,
        )
        if dst == rank:
            # Local message: memcpy cost, bypasses wire and protocols.
            delay = self.transport.local_copy_time(nbytes)
            self.engine.schedule_after(delay, lambda: self._local_deliver(message))
            return request
        submit_delay = self._jitter() + self.transport.submit_cost(nbytes)
        if eager:
            self.engine.schedule_after(
                submit_delay, lambda: self._schedulers[rank].submit(message)
            )
        else:
            # Rendezvous: RTS control message (latency-only).
            rts_delay = submit_delay + self.transport.ctrl_overhead + self.transport.base_latency
            self.engine.schedule_after(rts_delay, lambda: self._rts_arrives(message))
        return request

    def _post_recv(self, rank: int, src: int, tag: int) -> RecvRequest:
        if src != ANY_SOURCE and not 0 <= src < self.nprocs:
            raise ValueError(f"source rank {src} out of range")
        request = RecvRequest(rank, src, tag)
        self.trace.emit(self.engine.now, "mpi.irecv", rank=rank, src=src, tag=tag)
        # Try the unexpected queue first (FIFO).
        queue = self._unexpected[rank]
        for position, envelope in enumerate(queue):
            if request.matches(envelope.src, envelope.tag):
                del queue[position]
                self._match(request, envelope)
                return request
        self._posted[rank].append(request)
        return request

    def _local_deliver(self, message: _Message) -> None:
        envelope = _Envelope(message.src, message.tag, message.nbytes, message)
        message.send_req.complete(self.engine.now)
        self._envelope_in_order(message.dst, envelope)

    # -- wire path ------------------------------------------------------

    def _start_flow(self, message: _Message) -> None:
        wire = self.transport.wire_bytes(message.nbytes)
        message.flow = self.network.inject(
            message.src,
            message.dst,
            wire,
            on_complete=lambda flow, m=message: self._flow_done(m),
            label=f"msg{message.mid}",
        )

    def _flow_done(self, message: _Message) -> None:
        self._schedulers[message.src].release(message)
        message.send_req.complete(self.engine.now)
        self.engine.schedule_after(
            self.transport.base_latency, lambda: self._wire_arrival(message)
        )

    def _wire_arrival(self, message: _Message) -> None:
        """Last byte reached the destination host: demux then deliver."""
        # Concurrency the receiver's stack observed while this message
        # finished (snapshot taken at flow completion; includes itself).
        inbound = (
            message.flow.inbound_at_completion if message.flow is not None else 1
        )
        if self.transport.mux_applies(message.nbytes, inbound):
            self._mux[message.dst].request(
                self.transport.mux_overhead,
                lambda: self._deliver(message),
            )
        else:
            self._deliver(message)

    def _deliver(self, message: _Message) -> None:
        if message.eager:
            envelope = _Envelope(message.src, message.tag, message.nbytes, message)
            self._envelope_in_order(message.dst, envelope)
        else:
            # Rendezvous payload: the receive was claimed at CTS time.
            assert message.recv_req is not None
            self._complete_recv(message.recv_req, message)

    # -- rendezvous handshake --------------------------------------------

    def _rts_arrives(self, message: _Message) -> None:
        envelope = _Envelope(message.src, message.tag, message.nbytes, message)
        self._envelope_in_order(message.dst, envelope)

    def _cts_and_send(self, message: _Message) -> None:
        """Matched a rendezvous RTS: CTS travels back, data follows."""
        delay = self.transport.ctrl_overhead + self.transport.base_latency
        self.engine.schedule_after(
            delay, lambda: self._schedulers[message.src].submit(message)
        )

    # -- matching ---------------------------------------------------------

    def _envelope_in_order(self, dst: int, envelope: _Envelope) -> None:
        """Process envelope arrivals strictly in per-pair send order."""
        key = (envelope.message.src, dst)
        expected = self._recv_next.get(key, 0)
        buffer = self._reorder.setdefault(key, {})
        buffer[envelope.message.seq] = envelope
        while expected in buffer:
            self._process_envelope(dst, buffer.pop(expected))
            expected += 1
        self._recv_next[key] = expected

    def _process_envelope(self, dst: int, envelope: _Envelope) -> None:
        posted = self._posted[dst]
        for position, request in enumerate(posted):
            if request.matches(envelope.src, envelope.tag):
                del posted[position]
                self._match(request, envelope)
                return
        self._unexpected[dst].append(envelope)

    def _match(self, request: RecvRequest, envelope: _Envelope) -> None:
        message = envelope.message
        if message.eager or message.src == message.dst:
            self._complete_recv(request, message)
        else:
            message.recv_req = request
            self._cts_and_send(message)

    def _complete_recv(self, request: RecvRequest, message: _Message) -> None:
        request.source = message.src
        request.tag = message.tag
        request.nbytes = message.nbytes
        request.complete(self.engine.now)
        self.trace.emit(
            self.engine.now, "mpi.recv_complete", rank=request.rank,
            src=message.src, tag=message.tag, nbytes=message.nbytes,
        )

    def _charge_local_copy(self, rank: int, nbytes: int) -> None:
        # A synchronous memcpy: advance nothing (the generator keeps
        # running in zero simulated time) but record it for traces.  The
        # cost is charged through isend-to-self when programs use that
        # path; local_copy is the cheap accounting variant used by the
        # collectives, matching MPI implementations which memcpy in place.
        self.trace.emit(self.engine.now, "mpi.local_copy", rank=rank, nbytes=nbytes)
