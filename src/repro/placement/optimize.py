"""Placement optimizers: search the mapping space against the MED objective.

An optimizer is ``f(evaluate, n_processes, *, rng, **params) ->
permutation`` where *evaluate* maps a candidate permutation to its
predicted contention (seconds, lower is better) and *rng* is a seeded
:class:`numpy.random.Generator` — the only randomness allowed, so a
fixed seed reproduces the search bit-for-bit in any process.  Built-ins:

* ``greedy`` — steepest-compatible pairwise swap descent: sweep all
  (i, j) swaps, keep improvements, repeat until a full sweep finds
  none.  Deterministic even without the rng; cannot end above identity.
* ``anneal`` — simulated annealing over random swaps with geometric
  cooling, returning the best permutation *seen* (so it also never
  regresses past its identity start).

Add new ones with ``@repro.api.register_placement_optimizer``;
:func:`optimize_placement` is the high-level entry the api facade, CLI
and experiments call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..registry import PLACEMENT_OPTIMIZERS, register_placement_optimizer
from ..simnet.rng import RngFactory
from ..simnet.topology import Topology
from .objective import PlacementObjective, traffic_matrix
from .spec import PlacementSpec

__all__ = ["PlacementResult", "optimize_placement", "greedy", "anneal"]

#: Strict-improvement margin: a swap must beat the incumbent by more
#: than this relative slack to be kept, so float noise cannot cycle.
EPS = 1e-12


@register_placement_optimizer("greedy", aliases=("swap", "descent"))
def greedy(evaluate, n_processes: int, *, rng, max_rounds: int = 64):
    """Pairwise swap descent to a local optimum of *evaluate*."""
    n = int(n_processes)
    perm = list(range(n))
    best = evaluate(perm)
    for _ in range(int(max_rounds)):
        improved = False
        for i in range(n - 1):
            for j in range(i + 1, n):
                perm[i], perm[j] = perm[j], perm[i]
                score = evaluate(perm)
                if score < best * (1.0 - EPS):
                    best = score
                    improved = True
                else:
                    perm[i], perm[j] = perm[j], perm[i]
        if not improved:
            break
    return tuple(perm)


@register_placement_optimizer("anneal", aliases=("sa", "annealing"))
def anneal(
    evaluate,
    n_processes: int,
    *,
    rng,
    iterations: int = 4000,
    t0: float | None = None,
    cooling: float = 0.998,
):
    """Simulated annealing over random swaps; returns the best seen.

    The temperature starts at *t0* (default: half the identity
    objective, so early moves accept freely) and cools geometrically.
    """
    n = int(n_processes)
    perm = list(range(n))
    current = evaluate(perm)
    best, best_perm = current, tuple(perm)
    temp = (0.5 * current if t0 is None else float(t0)) or 1e-15
    for _ in range(int(iterations)):
        i = int(rng.integers(n))
        j = int(rng.integers(n - 1))
        if j >= i:
            j += 1
        perm[i], perm[j] = perm[j], perm[i]
        score = evaluate(perm)
        delta = score - current
        if delta <= 0 or rng.random() < math.exp(-delta / temp):
            current = score
            if score < best:
                best, best_perm = score, tuple(perm)
        else:
            perm[i], perm[j] = perm[j], perm[i]
        temp *= float(cooling)
    return best_perm


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of a placement search (all objectives in predicted seconds)."""

    placement: PlacementSpec  #: explicit spec of the best permutation found
    permutation: tuple
    objective: float
    identity_objective: float
    optimizer: str
    seed: int
    evaluations: int

    @property
    def improvement(self) -> float:
        """Predicted contention avoided, in seconds (>= 0)."""
        return self.identity_objective - self.objective

    @property
    def ratio(self) -> float:
        """identity / optimized — the predicted contention factor avoided."""
        return self.identity_objective / self.objective

    def to_dict(self) -> dict:
        return {
            "placement": self.placement.to_dict(),
            "objective": self.objective,
            "identity_objective": self.identity_objective,
            "improvement": self.improvement,
            "ratio": self.ratio,
            "optimizer": self.optimizer,
            "seed": self.seed,
            "evaluations": self.evaluations,
        }


def optimize_placement(
    cluster,
    n_processes: int,
    msg_size: int,
    *,
    pattern=None,
    optimizer: str = "greedy",
    seed: int = 0,
    params: dict | None = None,
) -> PlacementResult:
    """Search for a contention-minimising rank→host mapping.

    *cluster* is a :class:`~repro.clusters.profiles.ClusterProfile` (its
    fabric is built at *n_processes*) or a finalized
    :class:`~repro.simnet.topology.Topology`.  The objective is the MED
    of the placed traffic matrix — ``pattern`` (a
    :class:`~repro.traffic.spec.PatternSpec` or ``None`` for uniform)
    at (n, msg_size, seed) — routed over the fabric; see
    :mod:`repro.placement.objective`.  Deterministic given *seed*.
    """
    n = int(n_processes)
    topo = cluster if isinstance(cluster, (Topology,)) else cluster.topology(n)
    W = traffic_matrix(n, int(msg_size), pattern, seed=seed)
    score = PlacementObjective(topo, W)
    evaluations = 0

    def evaluate(perm) -> float:
        nonlocal evaluations
        evaluations += 1
        return score(perm)

    name = PLACEMENT_OPTIMIZERS.canonical(optimizer)
    search = PLACEMENT_OPTIMIZERS.get(name)
    rng = RngFactory(int(seed)).stream(f"placement/{name}/{n}")
    perm = tuple(search(evaluate, n, rng=rng, **dict(params or {})))
    identity_objective = score(None)
    objective = score(perm)
    if objective > identity_objective:  # pragma: no cover - optimizer bug guard
        perm, objective = tuple(range(n)), identity_objective
    return PlacementResult(
        placement=PlacementSpec(perm=perm),
        permutation=perm,
        objective=objective,
        identity_objective=identity_objective,
        optimizer=name,
        seed=int(seed),
        evaluations=evaluations,
    )
