"""Declarative rank placements: a registered strategy plus parameters.

A :class:`PlacementSpec` names a rank→host mapping — either a strategy
from the placement registry (:data:`repro.registry.PLACEMENTS`) together
with its keyword parameters, or an explicit permutation — canonicalised
so that equal specs hash and serialise identically, the property sweep
cache keys rely on.  It is the value carried by
``ScenarioSpec.placement``, ``SweepSpec.placements`` entries and
``SweepPoint.placement``.

The spec is *lazy*: the permutation is produced per n_processes by
:meth:`PlacementSpec.permutation`.  Rank *i* runs on host ``perm[i]``;
the identity mapping is the legacy behaviour and collapses to ``None``
everywhere downstream (see :func:`as_placement`), so pre-placement
cache keys and results stay byte-identical.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from ..exceptions import ScenarioError, UnknownNameError
from ..registry import PLACEMENTS

__all__ = ["PlacementSpec", "as_placement"]

_PARAM_TYPES = (int, float, str, bool)

#: Strategy name reserved for explicit permutations; never in the registry.
EXPLICIT = "explicit"


def _canonical_value(key, value):
    """One canonical spelling per parameter value (mirrors PatternSpec).

    ``4`` and ``4.0`` must be the *same* parameter — same key(), same
    cache payload — whether they arrived from TOML, the CLI or Python,
    so integral floats collapse to ints.  Bools stay bools (checked
    first: bool is an int subclass).
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, _PARAM_TYPES):
        return value
    raise ScenarioError(
        f"placement param {key!r} must be a scalar "
        f"(int/float/str/bool), got {type(value).__name__}"
    )


def _validate_permutation(perm) -> tuple[int, ...]:
    """Coerce *perm* to a tuple of ints and check it permutes ``range(n)``."""
    try:
        out = tuple(int(x) for x in perm)
    except (TypeError, ValueError):
        raise ScenarioError(
            f"placement permutation must be a sequence of ints, got {perm!r}"
        ) from None
    if sorted(out) != list(range(len(out))):
        raise ScenarioError(
            f"placement permutation must rearrange 0..{len(out) - 1} "
            f"exactly once each, got {out!r}"
        )
    return out


@dataclass(frozen=True)
class PlacementSpec:
    """A rank→host mapping: registered strategy + params, or explicit.

    ``params`` accepts a dict at construction and is canonicalised to a
    sorted tuple of ``(key, value)`` pairs, so specs are hashable and
    two spellings of the same placement compare (and cache) equal.  An
    explicit permutation is carried in ``perm`` (the strategy name is
    then the reserved ``"explicit"``) and is only valid at its own n.
    """

    name: str = "identity"
    params: tuple = field(default_factory=tuple)
    perm: tuple | None = None

    def __post_init__(self) -> None:
        if self.perm is not None:
            if self.params:
                raise ScenarioError(
                    "an explicit placement permutation takes no params"
                )
            object.__setattr__(self, "perm", _validate_permutation(self.perm))
            object.__setattr__(self, "name", EXPLICIT)
            object.__setattr__(self, "params", ())
            return
        try:
            object.__setattr__(self, "name", PLACEMENTS.canonical(self.name))
        except UnknownNameError as exc:
            raise ScenarioError(exc.args[0]) from None
        raw = self.params
        if isinstance(raw, dict):
            raw = tuple(raw.items())
        try:
            pairs = tuple(
                sorted((str(k), _canonical_value(k, v)) for k, v in raw)
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ScenarioError):
                raise
            raise ScenarioError(
                f"placement params must be a mapping, got {self.params!r}"
            ) from None
        object.__setattr__(self, "params", pairs)
        self._check_strategy_accepts(pairs)

    def _check_strategy_accepts(self, pairs: tuple) -> None:
        """Fail at spec-construction time, not mid-sweep in a worker."""
        signature = inspect.signature(PLACEMENTS.get(self.name))
        accepts_kwargs = any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in signature.parameters.values()
        )
        if accepts_kwargs:
            return
        # Parameters reachable as keywords: keyword-only ones plus any
        # positional-or-keyword beyond the leading n_processes — user
        # strategies need not use a `*` separator.
        positional = [
            p.name for p in signature.parameters.values()
            if p.kind in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            )
        ]
        known = {
            p.name for p in signature.parameters.values()
            if p.kind in (
                inspect.Parameter.KEYWORD_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            )
        } - set(positional[:1])
        unknown = sorted(key for key, _ in pairs if key not in known)
        if unknown:
            raise ScenarioError(
                f"unknown param(s) {unknown} for placement {self.name!r}; "
                f"known: {', '.join(sorted(known)) or '(none)'}"
            )

    # -- queries ---------------------------------------------------------

    @property
    def is_explicit(self) -> bool:
        """Whether this spec carries a literal permutation."""
        return self.perm is not None

    @property
    def is_identity(self) -> bool:
        """Whether this spec is the do-nothing rank→host mapping.

        Identity is special-cased everywhere: it follows the legacy
        no-placement path bit-for-bit (same routes, same RNG streams,
        same sweep cache keys).  An explicit permutation that happens to
        be ``0..n-1`` in order counts too.
        """
        if self.perm is not None:
            return self.perm == tuple(range(len(self.perm)))
        return self.name == "identity" and not self.params

    def key(self) -> str:
        """Canonical compact form, e.g. ``round-robin(groups=4)``.

        Used in row columns and log labels; parameter order (and the
        one-spelling-per-value rule — ``4.0`` renders as ``4``) is the
        canonical form ``__post_init__`` established.  Explicit
        permutations render as ``explicit[2,0,1,...]``.
        """
        if self.perm is not None:
            return f"{EXPLICIT}[{','.join(str(p) for p in self.perm)}]"
        if not self.params:
            return self.name
        inner = ",".join(f"{k}={v!r}" if isinstance(v, str) else f"{k}={v}"
                         for k, v in self.params)
        return f"{self.name}({inner})"

    # -- permutation construction ----------------------------------------

    def permutation(self, n_processes: int) -> tuple[int, ...]:
        """The rank→host permutation at one n (rank *i* → host ``[i]``)."""
        n = int(n_processes)
        if n < 1:
            raise ValueError("n_processes must be >= 1")
        if self.perm is not None:
            if len(self.perm) != n:
                raise ScenarioError(
                    f"explicit placement is for n={len(self.perm)}, "
                    f"cannot apply it to n={n}"
                )
            return self.perm
        strategy = PLACEMENTS.get(self.name)
        try:
            raw = strategy(n, **dict(self.params))
        except ValueError as exc:
            raise ScenarioError(
                f"placement {self.key()!r} failed at n={n}: {exc}"
            ) from None
        out = _validate_permutation(raw)
        if len(out) != n:
            raise ScenarioError(
                f"placement {self.name!r} returned {len(out)} entries, "
                f"expected {n}"
            )
        return out

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        if self.perm is not None:
            return {"perm": list(self.perm)}
        out: dict = {"name": self.name}
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data) -> "PlacementSpec":
        if isinstance(data, str):
            return cls(name=data)
        if isinstance(data, (list, tuple)):
            return cls(perm=tuple(data))
        if not isinstance(data, dict):
            raise ScenarioError(
                "placement must be a name, a permutation list, or a table/dict"
            )
        unknown = sorted(set(data) - {"name", "params", "perm"})
        if unknown:
            raise ScenarioError(
                f"unknown placement field(s) {unknown}; known: name, params, perm"
            )
        if "perm" in data:
            if "name" in data or "params" in data:
                raise ScenarioError(
                    "placement takes either perm or name/params, not both"
                )
            return cls(perm=tuple(data["perm"]))
        return cls(
            name=str(data.get("name", "identity")),
            params=dict(data.get("params", {})),
        )

    def cache_payload(self) -> dict:
        """JSON-stable identity for sweep cache keys (same as to_dict)."""
        if self.perm is not None:
            return {"perm": list(self.perm)}
        return {"name": self.name, "params": dict(self.params)}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.key()


def as_placement(value) -> "PlacementSpec | None":
    """Coerce a name/dict/perm/spec to a :class:`PlacementSpec` (``None`` passes).

    The identity spec is collapsed to ``None`` — the legacy no-placement
    path — so ``identity`` and "no placement" are one identity everywhere
    downstream (same routes, same cache keys).
    """
    if value is None:
        return None
    if isinstance(value, PlacementSpec):
        spec = value
    else:
        spec = PlacementSpec.from_dict(value)
    return None if spec.is_identity else spec
