"""Predicted-contention objective for placement search.

No simulation: the objective scores a candidate rank→host permutation
from the paper's §5 message-exchange digraph (MED) of the *placed*
traffic matrix and the fabric's static routes.  For each directed link
the placed byte load is the sum of the host-pair traffic routed over
it; the score is the bottleneck transfer time

    max_l  load_l / capacity_l        (seconds)

plus a vanishingly small total-utilisation term that breaks ties toward
mappings that also keep aggregate network work low.  This is the
saturated fluid bound: the time the most loaded link alone needs to
drain, which is exactly the contention the fluid/vector engines
converge to when that link saturates.

Evaluation is vectorised: :class:`PlacementObjective` precomputes the
(n², n_links) route-incidence matrix once, after which each candidate
costs one gather + one matvec (sub-millisecond at n=64), cheap enough
for thousands of optimizer iterations.
"""

from __future__ import annotations

import numpy as np

from ..core.med import MED
from ..traffic import as_pattern
from .spec import PlacementSpec, as_placement

__all__ = [
    "route_incidence",
    "traffic_matrix",
    "placed_matrix",
    "PlacementObjective",
    "contention_objective",
]

#: Weight of the total-utilisation tiebreak relative to the bottleneck.
TIEBREAK = 1e-9


def route_incidence(topology, n: int | None = None) -> np.ndarray:
    """(n², n_links) 0/1 matrix: row ``src*n + dst`` marks the links a
    flow from host *src* to host *dst* crosses (diagonal rows are zero).
    """
    n = topology.n_hosts if n is None else int(n)
    R = np.zeros((n * n, topology.n_links), dtype=np.float64)
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            R[src * n + dst, list(topology.route(src, dst))] = 1.0
    return R


def traffic_matrix(n_processes: int, msg_size: int, pattern=None, *, seed: int = 0) -> np.ndarray:
    """The (n, n) byte matrix of a workload, canonicalised through the MED.

    ``pattern=None`` is the regular All-to-All; otherwise anything
    :func:`~repro.traffic.spec.as_pattern` accepts (a
    :class:`~repro.traffic.spec.PatternSpec`, a name, a dict), whose
    matrix is taken at this coordinate.  Round-tripping through
    :class:`~repro.core.med.MED` zeroes the diagonal and integerises —
    the same digraph the signature models and the rank programs lower
    from.
    """
    pattern = as_pattern(pattern)
    if pattern is None:
        med = MED.alltoall(int(n_processes), int(msg_size))
    else:
        med = pattern.med(int(n_processes), int(msg_size), seed=seed)
    return med.to_matrix()


def placed_matrix(W: np.ndarray, perm) -> np.ndarray:
    """Host-pair byte matrix under a rank→host permutation.

    Rank *i* sits on host ``perm[i]``, so host pair (a, b) carries the
    bytes of rank pair (perm⁻¹(a), perm⁻¹(b)).
    """
    W = np.asarray(W)
    n = W.shape[0]
    perm = np.asarray(perm, dtype=np.intp)
    inv = np.empty(n, dtype=np.intp)
    inv[perm] = np.arange(n)
    return W[np.ix_(inv, inv)]


class PlacementObjective:
    """Reusable evaluator: permutation → predicted contention (seconds).

    Binds one (topology, traffic matrix) pair; call it with any
    permutation of ``range(n)`` (or ``None`` for identity).
    """

    def __init__(self, topology, W) -> None:
        W = np.asarray(W, dtype=np.float64)
        n = W.shape[0]
        if W.shape != (n, n):
            raise ValueError(f"traffic matrix must be square, got {W.shape}")
        if n > topology.n_hosts:
            raise ValueError(
                f"traffic for {n} ranks exceeds {topology.n_hosts} hosts"
            )
        self.n = n
        self.W = W.copy()
        np.fill_diagonal(self.W, 0.0)
        self.incidence = route_incidence(topology, n)
        self.capacities = np.asarray(topology.capacities(), dtype=np.float64)

    def link_loads(self, perm=None) -> np.ndarray:
        """Per-link byte loads of the placed matrix."""
        H = self.W if perm is None else placed_matrix(self.W, perm)
        return H.ravel() @ self.incidence

    def __call__(self, perm=None) -> float:
        util = self.link_loads(perm) / self.capacities
        return float(util.max() + TIEBREAK * util.sum())


def contention_objective(topology, W, placement=None) -> float:
    """One-shot convenience: objective of *placement* on (topology, W).

    *placement* may be ``None``/identity, a permutation sequence, or
    anything :func:`~repro.placement.spec.as_placement` accepts (a
    :class:`~repro.placement.spec.PlacementSpec`, name, or dict).
    """
    evaluate = PlacementObjective(topology, W)
    if placement is None or isinstance(placement, (PlacementSpec, str, dict)):
        spec = as_placement(placement)
        perm = None if spec is None else spec.permutation(evaluate.n)
        return evaluate(perm)
    return evaluate(placement)
