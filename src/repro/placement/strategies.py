"""Built-in rank-placement strategies.

A strategy is a pure function ``f(n_processes, **params) -> permutation``
where rank *i* runs on host ``perm[i]``.  Strategies must be
deterministic in (n, params) alone — randomised ones take an explicit
``seed`` parameter and draw from a named RNG stream, never from global
state — so two processes building the same spec always obtain the same
mapping.  Add new strategies with ``@repro.api.register_placement``;
validation (result really is a permutation of ``range(n)``) happens in
:meth:`~repro.placement.spec.PlacementSpec.permutation`.
"""

from __future__ import annotations

from ..registry import register_placement
from ..simnet.rng import RngFactory

__all__ = ["identity", "block", "round_robin", "random_placement"]


@register_placement("identity", aliases=("none",))
def identity(n_processes: int) -> tuple[int, ...]:
    """Rank *i* on host *i* — the legacy mapping, and the baseline."""
    return tuple(range(int(n_processes)))


@register_placement("block")
def block(n_processes: int, *, size: int, shift: int = 1) -> tuple[int, ...]:
    """Rotate contiguous rank blocks of *size* by *shift* block slots.

    Rank ``i`` lands on host ``((i//size + shift) % nblocks)*size +
    i%size``: block k's ranks move wholesale onto block k+shift's
    hosts.  With *size* equal to an edge switch's host count this walks
    whole switch populations around the fabric — the canonical
    "misaligned job fragments" stressor.  Requires ``size | n``.
    """
    n = int(n_processes)
    size = int(size)
    if size < 1:
        raise ValueError("block size must be >= 1")
    if n % size:
        raise ValueError(f"block size {size} must divide n={n}")
    nblocks = n // size
    step = int(shift) % nblocks
    return tuple(
        ((i // size + step) % nblocks) * size + i % size for i in range(n)
    )


@register_placement("round-robin", aliases=("rr", "cyclic"))
def round_robin(n_processes: int, *, groups: int) -> tuple[int, ...]:
    """Deal ranks across *groups* host blocks like cards: rank ``i`` →
    host ``(i % groups) * (n//groups) + i // groups``.

    Ranks congruent mod *groups* end up contiguous — the inverse of a
    strided communication pattern, so e.g. a ``shift(offset=g)`` pattern
    becomes entirely block-local under ``round_robin(groups=g)``.
    Requires ``groups | n``.
    """
    n = int(n_processes)
    groups = int(groups)
    if groups < 1:
        raise ValueError("groups must be >= 1")
    if n % groups:
        raise ValueError(f"groups {groups} must divide n={n}")
    width = n // groups
    return tuple((i % groups) * width + i // groups for i in range(n))


@register_placement("random", aliases=("shuffle",))
def random_placement(n_processes: int, *, seed: int = 0) -> tuple[int, ...]:
    """Seeded uniform random permutation (the no-information baseline).

    Draws from the ``placement/random/<n>`` stream of an
    :class:`~repro.simnet.rng.RngFactory` keyed by the explicit *seed*
    param — bit-identical across processes and independent of the
    measurement seed.
    """
    n = int(n_processes)
    rng = RngFactory(int(seed)).stream(f"placement/random/{n}")
    return tuple(int(x) for x in rng.permutation(n))
