"""Rank placement: contention-avoiding rank→host mappings.

The paper's model prices the contention a *fixed* rank→host mapping
incurs; on edge-core and oversubscribed fabrics much of it is avoidable
by choosing the mapping well (Oltchik & Schwartz, "Network Partitioning
and Avoidable Contention").  This package adds placement as a first-
class scenario axis:

* :class:`~repro.placement.spec.PlacementSpec` — a declarative mapping
  (registered strategy + params, or an explicit permutation) with the
  same dict/TOML round-trip and cache-identity guarantees as
  :class:`~repro.traffic.spec.PatternSpec`;
* built-in strategies (``identity``, ``block``, ``round-robin``,
  ``random``) behind :data:`repro.registry.PLACEMENTS`;
* a predicted-contention objective from the MED of the placed traffic
  matrix (:mod:`~repro.placement.objective`) and deterministic
  optimizers (``greedy``, ``anneal``) behind
  :data:`repro.registry.PLACEMENT_OPTIMIZERS`;
* :func:`~repro.placement.placed.apply_placement` — the one
  interception point: a route-remapping topology view both simulation
  engines see transparently.

Identity collapses to ``None`` everywhere (spec fields, sweep axes,
cache payloads), so pre-placement results and cache keys stay
byte-identical.
"""

from . import strategies  # noqa: F401  (registers built-in strategies)
from .objective import (
    PlacementObjective,
    contention_objective,
    placed_matrix,
    route_incidence,
    traffic_matrix,
)
from .optimize import PlacementResult, optimize_placement
from .placed import PlacedTopology, apply_placement
from .spec import PlacementSpec, as_placement

__all__ = [
    "PlacementSpec",
    "as_placement",
    "PlacedTopology",
    "apply_placement",
    "PlacementObjective",
    "contention_objective",
    "placed_matrix",
    "route_incidence",
    "traffic_matrix",
    "PlacementResult",
    "optimize_placement",
]
