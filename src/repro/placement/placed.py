"""Applying a placement: a route-remapping view over a topology.

Both simulation engines construct routes exclusively through
``topology.route(src, dst)`` with ranks as host indices (the fluid
network at injection, the vector engine at setup), so remapping ranks
onto hosts needs exactly one interception point:
:class:`PlacedTopology` shares the base topology's hosts, switches and
links — capacities, link kinds and fingerprint probes are untouched —
and answers ``route(src, dst)`` with ``base.route(perm[src],
perm[dst])``.

:func:`apply_placement` lifts this to a
:class:`~repro.clusters.profiles.ClusterProfile`: it returns a profile
whose ``topology_factory`` wraps every built fabric in the placed view,
which reaches both engines (``runtime()`` and ``topology()`` go through
the factory).  RNG streams are keyed by rank, not host, so a placed run
and an identity run replay the *same* jitter/skew draws — placements
change routes, nothing else.
"""

from __future__ import annotations

from .spec import PlacementSpec, as_placement

__all__ = ["PlacedTopology", "apply_placement"]


class PlacedTopology:
    """Read-only view of *base* with ranks permuted onto hosts.

    Rank *i*'s traffic enters and leaves the network at host
    ``perm[i]``; everything structural (hosts, switches, links,
    capacities) is the base object itself, shared, not copied.
    """

    __slots__ = ("base", "perm")

    def __init__(self, base, perm) -> None:
        perm = tuple(int(p) for p in perm)
        if len(perm) != base.n_hosts:
            raise ValueError(
                f"placement permutes {len(perm)} ranks but the fabric "
                f"has {base.n_hosts} hosts"
            )
        self.base = base
        self.perm = perm

    # -- structural delegation (shared with the base) -------------------

    @property
    def hosts(self):
        return self.base.hosts

    @property
    def switches(self):
        return self.base.switches

    @property
    def links(self):
        return self.base.links

    @property
    def name(self) -> str:
        return self.base.name

    @property
    def n_hosts(self) -> int:
        return self.base.n_hosts

    @property
    def n_links(self) -> int:
        return self.base.n_links

    def capacities(self):
        return self.base.capacities()

    # -- the one behavioural override -----------------------------------

    def route(self, src: int, dst: int):
        """Route of rank *src* → rank *dst* through their placed hosts."""
        return self.base.route(self.perm[src], self.perm[dst])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlacedTopology({self.base!r}, perm={self.perm})"


def apply_placement(cluster, placement):
    """Profile with *placement* baked into its topology factory.

    *placement* is anything :func:`~repro.placement.spec.as_placement`
    accepts; identity (or ``None``) returns *cluster* unchanged — the
    exact object, so the no-placement path is bit-identical.  The
    permutation is produced per built size via
    :meth:`PlacementSpec.permutation`, so one placed profile serves a
    whole sweep of n values (explicit permutations still pin their n).
    """
    spec: PlacementSpec | None = as_placement(placement)
    if spec is None:
        return cluster
    base_factory = cluster.topology_factory

    def placed_factory(n_hosts: int) -> PlacedTopology:
        return PlacedTopology(base_factory(n_hosts), spec.permutation(n_hosts))

    return cluster.with_overrides(topology_factory=placed_factory)
