"""Traffic patterns: irregular (alltoallv-style) exchanges as data.

The paper's §5 message-exchange-digraph formalism covers *arbitrary*
personalised exchanges; this package makes them first-class across the
whole pipeline.  A **pattern** is a registered generator producing an
(n, n) byte matrix from ``(n_processes, msg_size)`` plus parameters:

>>> from repro.traffic import PatternSpec
>>> spec = PatternSpec("hotspot", {"targets": 2, "factor": 8.0})
>>> W = spec.matrix(8, 32_768, seed=0)       # (8, 8) byte matrix
>>> med = spec.med(8, 32_768, seed=0)        # paper §5 digraph

Patterns flow through every layer: ``measure_alltoall(...,
pattern=spec)`` simulates the matrix with the alltoallv rank programs,
``SweepSpec(patterns=...)`` grids over them (cache keys include the
pattern identity), ``WorkloadSpec.pattern`` makes them declarative in
scenario TOML/JSON files, and ``repro-alltoall sweep --pattern
hotspot:targets=2`` drives them from the CLI.  The built-in generators
are in :mod:`repro.traffic.patterns`; add your own with
``@repro.api.register_pattern("name")``.

The parameterless ``uniform`` pattern *is* the legacy regular
All-to-All: it collapses to the scalar ``msg_size`` path bit-for-bit
(same rank programs, same RNG streams, same sweep cache keys).
"""

from . import patterns  # noqa: F401  (registers the built-in generators)
from .spec import PatternSpec, as_pattern

__all__ = ["PatternSpec", "as_pattern", "patterns"]
