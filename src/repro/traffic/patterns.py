"""Built-in traffic-pattern generators.

Every generator maps ``(n_processes, msg_size)`` plus pattern-specific
parameters to an ``(n, n)`` int64 byte matrix ``W``: entry ``W[i, j]``
(i ≠ j) is the number of bytes process *i* sends to process *j*, and
the diagonal ``W[i, i]`` is the data a process keeps for itself (the
paper counts "n data items per process, including itself" — the
diagonal never crosses the wire and lowers to a ``local_copy``).

``msg_size`` is the *scale* of the pattern: the ``uniform`` generator
reproduces the regular All-to-All exactly (every entry equals
``msg_size``), and the skewed/sparse generators are normalised around
the same per-pair scale so a message-size sweep remains meaningful
across patterns.

Randomised generators draw only from the ``rng`` keyword — a named
:class:`numpy.random.Generator` stream derived from the sweep point's
seed (see :meth:`repro.traffic.PatternSpec.matrix`) — so the same
``(pattern, n, msg_size, seed)`` coordinate yields a bit-identical
matrix in every process, which is what keeps the sweep result cache
sound.  Add new patterns with ``@repro.api.register_pattern("name")``;
no edit here required.
"""

from __future__ import annotations

import numpy as np

from ..registry import register_pattern

__all__ = [
    "uniform",
    "zipf",
    "hotspot",
    "shift",
    "permutation",
    "block_sparse",
    "random_sparse",
]


def _empty(n: int) -> np.ndarray:
    return np.zeros((n, n), dtype=np.int64)


@register_pattern("uniform", aliases=("alltoall", "regular"))
def uniform(n_processes: int, msg_size: int, *, rng=None) -> np.ndarray:
    """Regular All-to-All: every ordered pair exchanges ``msg_size`` bytes."""
    return np.full((n_processes, n_processes), int(msg_size), dtype=np.int64)


@register_pattern("zipf", aliases=("power-law",))
def zipf(
    n_processes: int, msg_size: int, *, rng, exponent: float = 1.0
) -> np.ndarray:
    """Zipf-skewed shuffle: destination popularity follows a power law.

    Destination ranks are assigned popularity ``(k+1)^-exponent`` under a
    seeded random permutation, then every sender splits the uniform
    pattern's per-sender volume ``(n-1)·msg_size`` across all peers in
    proportion to popularity — total traffic approximately matches
    ``uniform`` (floor rounding loses up to one byte per pair) while a
    few destinations absorb most of it (the skewed-shuffle regime of
    Bienz et al.'s irregular workloads).
    """
    n = int(n_processes)
    if exponent < 0:
        raise ValueError("zipf exponent must be >= 0")
    popularity = (np.arange(n, dtype=np.float64) + 1.0) ** -float(exponent)
    popularity = popularity[rng.permutation(n)]
    W = _empty(n)
    for i in range(n):
        weights = popularity.copy()
        weights[i] = 0.0
        share = weights / weights.sum()
        W[i] = np.floor((n - 1) * int(msg_size) * share).astype(np.int64)
        W[i, i] = int(msg_size)
    return W


@register_pattern("hotspot", aliases=("incast",))
def hotspot(
    n_processes: int,
    msg_size: int,
    *,
    rng=None,
    targets: int = 1,
    factor: float = 8.0,
) -> np.ndarray:
    """Incast stress: *targets* hot ranks receive ``factor``× the base.

    Ranks ``0 .. targets-1`` are the hotspots; every other rank sends
    ``factor·msg_size`` to each hotspot and ``msg_size`` to everyone
    else, concentrating receive-side load on the targets (the avoidable-
    contention hotspot of Oltchik et al.).
    """
    n = int(n_processes)
    if not 1 <= int(targets) <= n:
        raise ValueError(f"hotspot targets must be in 1..{n}, got {targets}")
    if factor < 1:
        raise ValueError("hotspot factor must be >= 1")
    W = np.full((n, n), int(msg_size), dtype=np.int64)
    W[:, : int(targets)] = int(round(float(factor) * int(msg_size)))
    np.fill_diagonal(W, int(msg_size))
    return W


@register_pattern("shift")
def shift(
    n_processes: int, msg_size: int, *, rng=None, offset: int = 1
) -> np.ndarray:
    """Static shift: rank *i* sends one ``msg_size`` block to ``i+offset``.

    The sparsest personalised exchange (Δs = Δr = 1); ``offset`` is taken
    modulo n and an offset of 0 degenerates to pure local copies.
    """
    n = int(n_processes)
    W = _empty(n)
    step = int(offset) % n
    for i in range(n):
        W[i, (i + step) % n] = int(msg_size)
    return W


@register_pattern("permutation")
def permutation(n_processes: int, msg_size: int, *, rng) -> np.ndarray:
    """Seeded random permutation: each rank sends one block, receives one.

    The destination map is a random *n*-cycle (a cyclic shift conjugated
    by a seeded permutation), so for n ≥ 2 no rank maps to itself.
    """
    n = int(n_processes)
    W = _empty(n)
    order = rng.permutation(n)
    for k in range(n):
        W[order[k], order[(k + 1) % n]] = int(msg_size)
    if n == 1:
        W[0, 0] = int(msg_size)
    return W


@register_pattern("block-sparse", aliases=("blocks",))
def block_sparse(
    n_processes: int, msg_size: int, *, rng=None, block: int = 4
) -> np.ndarray:
    """Block-local exchange: all-to-all inside blocks of ``block`` ranks.

    Ranks ``[k·block, (k+1)·block)`` exchange ``msg_size`` with every
    other member of their block and nothing across blocks — the sparse
    halo/sub-communicator workload.
    """
    n = int(n_processes)
    if block < 1:
        raise ValueError("block size must be >= 1")
    W = _empty(n)
    for i in range(n):
        base = (i // int(block)) * int(block)
        for j in range(base, min(base + int(block), n)):
            W[i, j] = int(msg_size)
    return W


@register_pattern("random-sparse", aliases=("sparse",))
def random_sparse(
    n_processes: int, msg_size: int, *, rng, density: float = 0.3
) -> np.ndarray:
    """Seeded sparse exchange: each ordered pair present with *density*.

    Present arcs carry a seeded random size in ``[1, msg_size]``;
    absent arcs (and the diagonal) carry nothing, so the matrix has
    genuine zero entries — and, at low density, whole zero rows/columns.
    """
    n = int(n_processes)
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    present = rng.random((n, n)) < float(density)
    sizes = rng.integers(1, int(msg_size) + 1, size=(n, n))
    W = np.where(present, sizes, 0).astype(np.int64)
    np.fill_diagonal(W, 0)
    return W
