"""Declarative traffic patterns: a registered generator plus parameters.

A :class:`PatternSpec` names a generator from the pattern registry
(:data:`repro.registry.PATTERNS`) together with its keyword parameters,
canonicalised so that equal specs hash and serialise identically — the
property sweep cache keys rely on.  It is the value carried by
``WorkloadSpec.pattern``, ``SweepSpec.patterns`` entries and
``SweepPoint.pattern``.

The spec is *lazy*: the byte matrix is produced per (n, msg_size, seed)
coordinate by :meth:`PatternSpec.matrix` and lowered to the paper's §5
message-exchange digraph by :meth:`PatternSpec.med`.  Randomised
generators draw from a named :class:`~repro.simnet.rng.RngFactory`
stream keyed by the full coordinate, so two processes building the same
coordinate always obtain bit-identical matrices.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

import numpy as np

from ..core.med import MED
from ..exceptions import ScenarioError, UnknownNameError
from ..registry import PATTERNS
from ..simnet.rng import RngFactory

__all__ = ["PatternSpec", "as_pattern"]

_PARAM_TYPES = (int, float, str, bool)


def _canonical_value(key, value):
    """One canonical spelling per parameter value.

    ``8`` and ``8.0`` must be the *same* parameter — same key(), same
    RNG stream, same cache payload — whether they arrived from TOML
    (``factor = 8.0``), the CLI (``factor=8``) or Python, so integral
    floats collapse to ints.  Bools stay bools (checked first: bool is
    an int subclass).
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, _PARAM_TYPES):
        return value
    raise ScenarioError(
        f"pattern param {key!r} must be a scalar "
        f"(int/float/str/bool), got {type(value).__name__}"
    )


@dataclass(frozen=True)
class PatternSpec:
    """A registered traffic-pattern generator plus its parameters.

    ``params`` accepts a dict at construction and is canonicalised to a
    sorted tuple of ``(key, value)`` pairs, so specs are hashable and
    two spellings of the same pattern compare (and cache) equal.
    """

    name: str = "uniform"
    params: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "name", PATTERNS.canonical(self.name))
        except UnknownNameError as exc:
            raise ScenarioError(exc.args[0]) from None
        raw = self.params
        if isinstance(raw, dict):
            raw = tuple(raw.items())
        try:
            pairs = tuple(
                sorted((str(k), _canonical_value(k, v)) for k, v in raw)
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ScenarioError):
                raise
            raise ScenarioError(
                f"pattern params must be a mapping, got {self.params!r}"
            ) from None
        object.__setattr__(self, "params", pairs)
        self._check_generator_accepts(pairs)

    def _check_generator_accepts(self, pairs: tuple) -> None:
        """Fail at spec-construction time, not mid-sweep in a worker."""
        signature = inspect.signature(PATTERNS.get(self.name))
        accepts_kwargs = any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in signature.parameters.values()
        )
        if accepts_kwargs:
            return
        # Parameters reachable as keywords: keyword-only ones plus any
        # positional-or-keyword beyond the leading (n_processes,
        # msg_size) pair — user generators need not use a `*` separator.
        positional = [
            p.name for p in signature.parameters.values()
            if p.kind in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            )
        ]
        known = {
            p.name for p in signature.parameters.values()
            if p.kind in (
                inspect.Parameter.KEYWORD_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            )
        } - set(positional[:2]) - {"rng"}
        unknown = sorted(key for key, _ in pairs if key not in known)
        if unknown:
            raise ScenarioError(
                f"unknown param(s) {unknown} for pattern {self.name!r}; "
                f"known: {', '.join(sorted(known)) or '(none)'}"
            )

    # -- queries ---------------------------------------------------------

    @property
    def is_uniform(self) -> bool:
        """Whether this spec is the parameterless regular All-to-All.

        The uniform pattern is special-cased everywhere: it lowers to
        the legacy scalar ``msg_size`` path bit-for-bit (same rank
        programs, same RNG stream names, same sweep cache keys).
        """
        return self.name == "uniform" and not self.params

    def key(self) -> str:
        """Canonical compact form, e.g. ``hotspot(factor=8,targets=2)``.

        Used in RNG stream names and log labels; parameter order (and
        the one-spelling-per-value rule — ``8.0`` renders as ``8``) is
        the canonical form ``__post_init__`` established.
        """
        if not self.params:
            return self.name
        inner = ",".join(f"{k}={v!r}" if isinstance(v, str) else f"{k}={v}"
                         for k, v in self.params)
        return f"{self.name}({inner})"

    # -- matrix construction ---------------------------------------------

    def matrix(self, n_processes: int, msg_size: int, *, seed: int = 0) -> np.ndarray:
        """The (n, n) byte matrix at one (n, msg_size, seed) coordinate."""
        if n_processes < 1:
            raise ValueError("n_processes must be >= 1")
        if msg_size < 1:
            raise ValueError("msg_size must be >= 1 byte")
        rng = RngFactory(seed).stream(
            f"traffic/{self.key()}/{n_processes}/{msg_size}"
        )
        generator = PATTERNS.get(self.name)
        W = np.asarray(
            generator(int(n_processes), int(msg_size), rng=rng, **dict(self.params))
        )
        if W.shape != (n_processes, n_processes):
            raise ScenarioError(
                f"pattern {self.name!r} returned shape {W.shape}, "
                f"expected ({n_processes}, {n_processes})"
            )
        if np.any(W < 0):
            raise ScenarioError(f"pattern {self.name!r} produced negative bytes")
        return W.astype(np.int64)

    def med(self, n_processes: int, msg_size: int, *, seed: int = 0) -> MED:
        """Lower the pattern to the paper's §5 message exchange digraph."""
        return MED.from_matrix(self.matrix(n_processes, msg_size, seed=seed))

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        out: dict = {"name": self.name}
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data) -> "PatternSpec":
        if isinstance(data, str):
            return cls(name=data)
        if not isinstance(data, dict):
            raise ScenarioError("pattern must be a name or a table/dict")
        unknown = sorted(set(data) - {"name", "params"})
        if unknown:
            raise ScenarioError(
                f"unknown pattern field(s) {unknown}; known: name, params"
            )
        return cls(
            name=str(data.get("name", "uniform")),
            params=dict(data.get("params", {})),
        )

    def cache_payload(self) -> dict:
        """JSON-stable identity for sweep cache keys (same as to_dict)."""
        return {"name": self.name, "params": dict(self.params)}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.key()


def as_pattern(value) -> "PatternSpec | None":
    """Coerce a name/dict/spec to a :class:`PatternSpec` (``None`` passes).

    The trivial uniform spec is collapsed to ``None`` — the legacy
    scalar path — so ``uniform`` and "no pattern" are one identity
    everywhere downstream (one simulation path, one cache key).
    """
    if value is None:
        return None
    if isinstance(value, PatternSpec):
        spec = value
    else:
        spec = PatternSpec.from_dict(value)
    return None if spec.is_uniform else spec
