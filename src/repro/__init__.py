"""repro — reproduction of Steffenel, "Modeling Network Contention
Effects on All-to-All Operations" (IEEE CLUSTER 2006).

Public API tour
---------------
* :mod:`repro.core` — the paper's models: Hockney α/β, MED lower bounds
  (Claims 1–3, Proposition 1), the two-β throughput model (§6) and the
  contention signature (γ, δ, M) model (§7) with GLS fitting.
* :mod:`repro.clusters` — calibrated virtual clusters standing in for
  the paper's Fast Ethernet / Gigabit Ethernet / Myrinet testbeds.
* :mod:`repro.measure` — the §8 measurement procedures (ping-pong,
  stress flood, All-to-All sweeps, full characterisation pipeline).
* :mod:`repro.simnet` / :mod:`repro.simmpi` — the substrates: a fluid
  discrete-event network simulator and an MPI-like runtime with four
  All-to-All algorithms.
* :mod:`repro.experiments` — one driver per paper figure/table.
* :mod:`repro.sweeps` — declarative measurement grids with on-disk
  result caching (the ``sweep`` CLI subcommand).
* :mod:`repro.exec` — pluggable sweep execution backends (serial /
  persistent process pool / futures) behind ``@register_executor``,
  per-point failure isolation, and streaming CSV/JSONL result sinks.
* :mod:`repro.traffic` — traffic patterns: irregular (alltoallv-style)
  exchanges as registered (n, n) byte-matrix generators, usable across
  measurements, sweeps, scenarios and the CLI.
* :mod:`repro.models` — the cost-model zoo: pluggable analytical
  performance models (Hockney, the contention signature, LogGP,
  max-rate, saturation-knee) behind ``@register_model``, with a
  fit / cross-validate / compare selection pipeline.
* :mod:`repro.api` — the facade: declarative :class:`~repro.api.Scenario`
  objects (TOML/JSON/dict), plugin registries and ``register_*``
  decorators for user-defined clusters, topologies, algorithms and
  backends.

Quickstart
----------
>>> from repro import clusters, measure
>>> gige = clusters.gigabit_ethernet()
>>> ch = measure.characterize_cluster(gige, sample_nprocs=8, reps=1,
...                                   pingpong_reps=1)
>>> t = ch.predictor.predict(16, 262_144)   # predict unseen (n, m)
>>> t > 0
True
"""

from . import clusters, core, measure, models, placement, registry, simmpi, simnet, sweeps, traffic
from . import exec as exec_  # noqa: F401 - "exec" shadows the builtin name
from . import api, engines, scenario
from ._version import __version__
from .api import Scenario
from .placement import PlacementSpec
from .scenario import ScenarioSpec, WorkloadSpec
from .traffic import PatternSpec
from .core import (
    MED,
    AlltoallPredictor,
    AlltoallSample,
    ContentionSignature,
    HockneyParams,
    alltoall_lower_bound,
    fit_signature,
)
from .clusters import fast_ethernet, get_cluster, gigabit_ethernet, myrinet
from .measure import characterize_cluster

__all__ = [
    "api",
    "clusters",
    "core",
    "engines",
    "exec",
    "measure",
    "models",
    "placement",
    "registry",
    "scenario",
    "simmpi",
    "simnet",
    "sweeps",
    "traffic",
    "__version__",
    "Scenario",
    "ScenarioSpec",
    "WorkloadSpec",
    "PatternSpec",
    "PlacementSpec",
    "AlltoallPredictor",
    "AlltoallSample",
    "ContentionSignature",
    "HockneyParams",
    "MED",
    "alltoall_lower_bound",
    "fit_signature",
    "fast_ethernet",
    "get_cluster",
    "gigabit_ethernet",
    "myrinet",
    "characterize_cluster",
]
