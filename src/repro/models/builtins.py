"""Built-in cost models: the paper's two plus the related-work zoo.

* ``hockney``   — the contention-blind Proposition-1 baseline (eq. 1);
  with ping-pong context it *is* the paper's Hockney pair, without it
  the α/β are regressed from the All-to-All samples themselves.
* ``signature`` — the paper's §7 contention signature (γ, δ, M); a thin
  port of :func:`repro.core.signature.fit_signature`, bit-identical.
* ``loggp``     — a LogGP-flavoured affine model with a standalone
  latency term and a per-message overhead separated from the per-byte
  gap (Alexandrov et al.; the "improved performance models" baseline of
  Bienz et al.).
* ``max-rate``  — a max-rate / min-bandwidth bottleneck model (Bienz et
  al.): the achievable per-node rate is the minimum of the NIC rate and
  the node's share of the fabric's shared capacity, both read from the
  cluster's :class:`~repro.simnet.topology.Topology` link capacities.
* ``knee``      — the piecewise saturation-knee signature (§9 future
  work), reusing :func:`repro.core.saturation.fit_knee` to place the
  contention ramp between the free and saturated regimes.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.bounds import (
    alltoall_lower_bound,
    combined_lower_bound,
    min_startups,
)
from ..core.hockney import HockneyParams
from ..core.med import MED
from ..core.regression import fit_linear
from ..core.saturation import SaturatedSignature, SaturationRamp, fit_knee
from ..core.signature import ContentionSignature, fit_signature
from ..exceptions import FittingError
from ..registry import register_model
from ..simnet.entities import LinkKind
from .base import CostModel, ParamSpec

__all__ = [
    "HockneyModel",
    "SignatureModel",
    "LogGPModel",
    "MaxRateModel",
    "KneeModel",
    "DEFAULT_MODELS",
    "fabric_rates",
]

#: The built-in comparison set, baseline first (selection pipelines and
#: the CLI default to fitting exactly these).
DEFAULT_MODELS = ("hockney", "loggp", "max-rate", "signature", "knee")


def _sample_arrays(samples):
    """(n, m, t, var) arrays from an AlltoallSample iterable (>= 1 row)."""
    samples = list(samples)
    if not samples:
        raise FittingError("no samples to fit")
    n = np.array([s.n_processes for s in samples], dtype=np.float64)
    m = np.array([s.msg_size for s in samples], dtype=np.float64)
    t = np.array([s.mean_time for s in samples], dtype=np.float64)
    var = np.array([s.variance_of_mean for s in samples], dtype=np.float64)
    return n, m, t, var


def _gls_variances(var: np.ndarray):
    """The fit_signature weighting convention: variances only when present."""
    return var if bool(np.any(var > 0)) else None


def _scalar_collapse(result, n_processes, msg_size):
    if np.isscalar(n_processes) and np.isscalar(msg_size):
        return float(result)
    return result


def fabric_rates(cluster, n_hosts: int) -> tuple[float, float | None]:
    """(NIC rate, shared-fabric capacity) from a profile's topology.

    The NIC rate is the host TX link capacity; the shared capacity is
    the narrower of the aggregate trunk and aggregate backplane
    capacities at *n_hosts* hosts (``None`` when the fabric has neither
    — an ideal non-blocking switch).  Trunks are full-duplex — two
    directed :data:`~repro.simnet.entities.LinkKind.TRUNK` links per
    cable — so their sum is halved to the per-direction capacity a flow
    actually competes for; backplanes are one shared link per switch.
    """
    topology = cluster.topology(int(n_hosts))
    nic = float(topology.links[topology.hosts[0].tx_link].capacity)
    sums: dict[LinkKind, float] = {}
    for link in topology.links:
        if link.kind in (LinkKind.TRUNK, LinkKind.BACKPLANE):
            sums[link.kind] = sums.get(link.kind, 0.0) + float(link.capacity)
    if LinkKind.TRUNK in sums:
        sums[LinkKind.TRUNK] /= 2.0
    capacity = min(sums.values()) if sums else None
    return nic, capacity


@register_model("hockney", aliases=("naive", "postal", "prop1"))
class HockneyModel(CostModel):
    """Contention-blind Hockney baseline ``T = (n-1)(α + m·β)`` (eq. 1)."""

    name = "hockney"
    param_schema = (
        ParamSpec("alpha", "s", "point-to-point start-up latency"),
        ParamSpec("beta", "s/B", "inverse link bandwidth"),
    )

    def fit(self, samples, *, hockney=None, cluster=None, method="gls", **_):
        """With *hockney* context, adopt the ping-pong α/β verbatim (the
        paper's usage: eq. 1 is parameterised by the point-to-point
        measure, never refitted on All-to-All data).  Without context,
        regress α/β from the samples through the Proposition-1 design.
        """
        if hockney is not None:
            return self.fitted(
                {"alpha": hockney.alpha, "beta": hockney.beta}
            )
        n, m, t, var = _sample_arrays(samples)
        if t.size < 2:
            raise FittingError("need at least two samples to fit alpha and beta")
        X = np.column_stack([n - 1.0, (n - 1.0) * m])
        fit = fit_linear(X, t, method=method, variances=_gls_variances(var))
        alpha = max(float(fit.params[0]), 0.0)
        beta = float(fit.params[1])
        if beta <= 0:
            raise FittingError(
                f"non-positive fitted beta ({beta:.3g}); samples do not "
                "look like a transmission curve"
            )
        return self.fitted({"alpha": alpha, "beta": beta}, diagnostics=fit)

    def _params(self, params: dict) -> HockneyParams:
        return HockneyParams(alpha=params["alpha"], beta=params["beta"])

    def predict(self, params, n_processes, msg_size):
        return alltoall_lower_bound(n_processes, msg_size, self._params(params))

    def predict_med(self, params, med: MED) -> float:
        return float(combined_lower_bound(med, self._params(params)))


@register_model("signature", aliases=("contention-signature", "gamma-delta"))
class SignatureModel(CostModel):
    """The paper's §7 contention signature ``T = LB·γ + δ·(n-1)·1[m>=M]``."""

    name = "signature"
    requires_hockney = True
    param_schema = (
        ParamSpec("alpha", "s", "Hockney start-up (ping-pong)"),
        ParamSpec("beta", "s/B", "Hockney inverse bandwidth (ping-pong)"),
        ParamSpec("gamma", "", "contention ratio over the lower bound"),
        ParamSpec("delta", "s", "per-round start-up above the threshold"),
        ParamSpec("threshold", "B", "affine threshold M", kind="int"),
        ParamSpec("delta_mode", "", "per_round or global", kind="str"),
    )

    def fit(
        self,
        samples,
        *,
        hockney=None,
        cluster=None,
        threshold="auto",
        method="gls",
        delta_mode="per_round",
        prune_delta=True,
        **_,
    ):
        if hockney is None:
            raise FittingError(
                "the contention signature fits (gamma, delta) against the "
                "Hockney lower bound; pass hockney= (ping-pong alpha/beta)"
            )
        fit = fit_signature(
            samples,
            hockney,
            threshold=threshold,
            method=method,
            delta_mode=delta_mode,
            prune_delta=prune_delta,
        )
        return self.fitted(self._to_params(fit.signature), diagnostics=fit)

    @staticmethod
    def _to_params(sig: ContentionSignature) -> dict:
        return {
            "alpha": sig.hockney.alpha,
            "beta": sig.hockney.beta,
            "gamma": sig.gamma,
            "delta": sig.delta,
            "threshold": sig.threshold,
            "delta_mode": sig.delta_mode,
        }

    def signature(self, params: dict) -> ContentionSignature:
        """Rebuild the :class:`ContentionSignature` a params dict encodes."""
        return ContentionSignature(
            gamma=params["gamma"],
            delta=params["delta"],
            threshold=params["threshold"],
            hockney=HockneyParams(alpha=params["alpha"], beta=params["beta"]),
            delta_mode=params["delta_mode"],
        )

    def predict(self, params, n_processes, msg_size):
        return self.signature(params).predict(n_processes, msg_size)

    def predict_med(self, params, med: MED) -> float:
        return self.signature(params).predict_med(med)


@register_model("loggp", aliases=("log-gp",))
class LogGPModel(CostModel):
    """LogGP-style affine model ``T = L + (n-1)·(o + m·G)``."""

    name = "loggp"
    param_schema = (
        ParamSpec("latency", "s", "end-to-end latency L (per collective)"),
        ParamSpec("overhead", "s", "per-message overhead o"),
        ParamSpec("gap", "s/B", "per-byte gap G"),
    )

    def fit(self, samples, *, hockney=None, cluster=None, method="gls", **_):
        n, m, t, var = _sample_arrays(samples)
        if len(set(n.tolist())) < 2:
            raise FittingError(
                "LogGP needs samples at >= 2 process counts to separate "
                "the latency L from the per-message overhead o"
            )
        if t.size < 3:
            raise FittingError("need at least three samples to fit L, o and G")
        X = np.column_stack([np.ones_like(n), n - 1.0, (n - 1.0) * m])
        fit = fit_linear(X, t, method=method, variances=_gls_variances(var))
        latency = max(float(fit.params[0]), 0.0)
        overhead = max(float(fit.params[1]), 0.0)
        gap = float(fit.params[2])
        if gap <= 0:
            raise FittingError(
                f"non-positive fitted gap ({gap:.3g}); samples do not look "
                "like a transmission curve"
            )
        return self.fitted(
            {"latency": latency, "overhead": overhead, "gap": gap},
            diagnostics=fit,
        )

    def predict(self, params, n_processes, msg_size):
        n = np.asarray(n_processes, dtype=np.float64)
        m = np.asarray(msg_size, dtype=np.float64)
        result = params["latency"] + (n - 1.0) * (
            params["overhead"] + m * params["gap"]
        )
        return _scalar_collapse(result, n_processes, msg_size)

    def predict_med(self, params, med: MED) -> float:
        rounds = min_startups(med)
        nbytes = max(med.max_send_bytes, med.max_recv_bytes)
        if rounds == 0:
            return 0.0
        return float(
            params["latency"] + rounds * params["overhead"] + nbytes * params["gap"]
        )


@register_model("max-rate", aliases=("maxrate", "min-bandwidth", "bottleneck"))
class MaxRateModel(CostModel):
    """Max-rate bottleneck model: per-node rate ``min(R_nic, C/n)``.

    Bienz et al.'s observation for irregular communication under
    contention: the achievable injection rate saturates at the node's
    share of the shared-fabric capacity, not at the NIC line rate.  Here
    ``T = (n-1)·α + κ·(n-1)·m / min(R, C/n)`` with R the NIC rate and C
    the shared capacity, both read from the cluster topology (and κ a
    fitted efficiency ratio absorbing protocol overhead).
    """

    name = "max-rate"
    param_schema = (
        ParamSpec("alpha", "s", "per-round start-up"),
        ParamSpec("kappa", "", "fitted inefficiency ratio (>= 0)"),
        ParamSpec("rate", "B/s", "per-NIC injection rate R"),
        ParamSpec("capacity", "B/s", "shared fabric capacity C (0 = unlimited)"),
    )

    def fit(
        self,
        samples,
        *,
        hockney=None,
        cluster=None,
        rate=None,
        capacity=None,
        method="gls",
        **_,
    ):
        n, m, t, var = _sample_arrays(samples)
        if t.size < 2:
            raise FittingError("need at least two samples to fit alpha and kappa")
        if rate is None and cluster is not None:
            rate, derived = fabric_rates(cluster, int(n.max()))
            if capacity is None:
                capacity = derived
        if rate is None and hockney is not None:
            rate = hockney.bandwidth
        if rate is None:
            raise FittingError(
                "max-rate needs a NIC rate: pass rate=, a cluster "
                "(topology link capacities), or hockney context"
            )
        rate = float(rate)
        capacity = 0.0 if capacity is None else float(capacity)
        if rate <= 0 or capacity < 0:
            raise FittingError("max-rate rate/capacity must be positive")
        inv_rate = self._inverse_rate(rate, capacity, n)
        X = np.column_stack([n - 1.0, (n - 1.0) * m * inv_rate])
        fit = fit_linear(X, t, method=method, variances=_gls_variances(var))
        alpha = max(float(fit.params[0]), 0.0)
        kappa = float(fit.params[1])
        if kappa <= 0:
            raise FittingError(
                f"non-positive fitted kappa ({kappa:.3g}); samples do not "
                "look like a bandwidth-bound exchange"
            )
        return self.fitted(
            {"alpha": alpha, "kappa": kappa, "rate": rate, "capacity": capacity},
            diagnostics=fit,
        )

    @staticmethod
    def _inverse_rate(rate: float, capacity: float, n):
        """Seconds per byte at the bottleneck: ``max(1/R, n/C)``."""
        n = np.asarray(n, dtype=np.float64)
        if capacity <= 0:  # unlimited shared fabric
            return np.full_like(n, 1.0 / rate)
        return np.maximum(1.0 / rate, n / capacity)

    def predict(self, params, n_processes, msg_size):
        n = np.asarray(n_processes, dtype=np.float64)
        m = np.asarray(msg_size, dtype=np.float64)
        inv_rate = self._inverse_rate(params["rate"], params["capacity"], n)
        result = (n - 1.0) * params["alpha"] + params["kappa"] * (
            n - 1.0
        ) * m * inv_rate
        return _scalar_collapse(result, n_processes, msg_size)

    def predict_med(self, params, med: MED) -> float:
        inv_rate = float(
            self._inverse_rate(params["rate"], params["capacity"], med.n_processes)
        )
        nbytes = max(med.max_send_bytes, med.max_recv_bytes)
        return float(
            min_startups(med) * params["alpha"]
            + params["kappa"] * nbytes * inv_rate
        )


@register_model("knee", aliases=("saturation", "piecewise-knee"))
class KneeModel(CostModel):
    """Saturation-knee signature: γ ramps from 1 to its saturated value.

    The §9 "intermediate performance model for half-saturate networks":
    a plain signature fit plus a :class:`~repro.core.SaturationRamp`
    located by :func:`~repro.core.fit_knee` from the signature's own
    error-vs-n curve.  Needs samples at >= 3 process counts.
    """

    name = "knee"
    requires_hockney = True
    param_schema = SignatureModel.param_schema + (
        ParamSpec("n_free", "", "largest contention-free process count"),
        ParamSpec("n_sat", "", "smallest fully-saturated process count"),
        ParamSpec("power", "", "ramp shape exponent"),
    )

    def fit(
        self,
        samples,
        *,
        hockney=None,
        cluster=None,
        power=1.0,
        threshold="auto",
        method="gls",
        delta_mode="per_round",
        prune_delta=True,
        **_,
    ):
        if hockney is None:
            raise FittingError(
                "the knee model ramps the contention signature; pass "
                "hockney= (ping-pong alpha/beta)"
            )
        samples = list(samples)
        sig_fit = fit_signature(
            samples, hockney,
            threshold=threshold, method=method, delta_mode=delta_mode,
            prune_delta=prune_delta,
        )
        size, curve = self._error_curve(samples, sig_fit.signature)
        sat = fit_knee(
            curve[:, 0], curve[:, 1], sig_fit.signature,
            msg_size=size, power=power,
        )
        params = dict(SignatureModel._to_params(sat.base))
        params.update(
            n_free=sat.ramp.n_free, n_sat=sat.ramp.n_sat, power=sat.ramp.power
        )
        return self.fitted(params, diagnostics=sig_fit)

    @staticmethod
    def _error_curve(samples, signature) -> tuple[float, np.ndarray]:
        """(msg size, (n, error%) rows) at the size with the most n values.

        Seeds/repetitions at the same (n, m) are averaged; ties between
        sizes break towards the largest (the paper's error figures use
        the large-message regime).
        """
        by_size: dict[int, dict[int, list[float]]] = {}
        for s in samples:
            by_size.setdefault(s.msg_size, {}).setdefault(
                s.n_processes, []
            ).append(s.mean_time)
        size = max(by_size, key=lambda m: (len(by_size[m]), m))
        if len(by_size[size]) < 3:
            raise FittingError(
                "the knee model needs samples at >= 3 process counts "
                f"(best message size has {len(by_size[size])})"
            )
        rows = []
        for n in sorted(by_size[size]):
            measured = float(np.mean(by_size[size][n]))
            estimated = float(signature.predict(n, size))
            rows.append((float(n), (measured / estimated - 1.0) * 100.0))
        return float(size), np.asarray(rows, dtype=np.float64)

    def _model(self, params: dict) -> SaturatedSignature:
        base = SignatureModel().signature(
            {k: params[k] for k in ("alpha", "beta", "gamma", "delta",
                                    "threshold", "delta_mode")}
        )
        ramp = SaturationRamp(
            n_free=params["n_free"], n_sat=params["n_sat"], power=params["power"]
        )
        return SaturatedSignature(base=base, ramp=ramp)

    def predict(self, params, n_processes, msg_size):
        return self._model(params).predict(n_processes, msg_size)

    def predict_med(self, params, med: MED) -> float:
        # The ramped signature at n processes IS a plain signature with
        # γ_eff(n) in place of γ — delegate the MED semantics to it.
        model = self._model(params)
        gamma_eff = float(model.gamma_effective(med.n_processes))
        return replace(model.base, gamma=gamma_eff).predict_med(med)
