"""Cost-model zoo: pluggable performance models with fit / compare.

The paper's contention signature is one member of a family of
analytical All-to-All cost models.  This package makes the family a
plugin axis (:data:`repro.registry.MODELS`, ``@register_model``):

>>> from repro.models import get_model
>>> model = get_model("hockney")
>>> sorted(p.name for p in model.param_schema)
['alpha', 'beta']

Built-ins: ``hockney`` (the contention-blind eq.-1 baseline),
``signature`` (the paper's §7 model, a bit-identical port of
:func:`repro.core.fit_signature`), ``loggp``, ``max-rate`` (Bienz
et al.'s bottleneck model, fed by topology link capacities) and
``knee`` (the §9 saturation-ramp signature).

:mod:`repro.models.selection` fits any set of them on one sample set
and ranks them by cross-validated error — see
``repro-alltoall compare-models`` and :meth:`repro.api.Scenario.compare_models`.
"""

from .base import CostModel, FittedModel, ParamSpec, get_model, list_models
from .builtins import (
    DEFAULT_MODELS,
    HockneyModel,
    KneeModel,
    LogGPModel,
    MaxRateModel,
    SignatureModel,
    fabric_rates,
)
from .selection import (
    ModelComparison,
    ModelReport,
    ModelScore,
    compare_for_sweep,
    compare_models,
    kfold_errors,
    leave_one_n_out_errors,
    samples_from_rows,
    score_fit,
)

__all__ = [
    "CostModel",
    "FittedModel",
    "ParamSpec",
    "get_model",
    "list_models",
    "DEFAULT_MODELS",
    "HockneyModel",
    "SignatureModel",
    "LogGPModel",
    "MaxRateModel",
    "KneeModel",
    "fabric_rates",
    "ModelComparison",
    "ModelReport",
    "ModelScore",
    "compare_models",
    "compare_for_sweep",
    "kfold_errors",
    "leave_one_n_out_errors",
    "samples_from_rows",
    "score_fit",
]
