"""Model selection: fit a zoo of cost models on one sample set, rank them.

The pipeline turns sweep output (live :class:`~repro.sweeps.SweepResult`
rows or CSV/JSONL files written by the streaming sinks) into
:class:`~repro.core.AlltoallSample` lists, fits any set of registered
models on them, scores each fit in-sample (RMSE and MAPE, the paper's
``|measured/estimated - 1|`` metric) and out-of-sample (deterministic
k-fold plus leave-one-n-out cross-validation), and emits a ranked
:class:`ModelComparison` — the machinery behind
``repro-alltoall compare-models`` and the tableM shootout experiment.

Everything here is deterministic: folds are assigned round-robin over a
canonical sample ordering, never drawn from an RNG, so the same samples
always produce the same ranking.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.signature import AlltoallSample
from ..exceptions import FittingError
from ..registry import MODELS
from .base import FittedModel, get_model
from .builtins import DEFAULT_MODELS

__all__ = [
    "ModelScore",
    "ModelReport",
    "ModelComparison",
    "samples_from_rows",
    "score_fit",
    "kfold_errors",
    "leave_one_n_out_errors",
    "compare_models",
    "compare_for_sweep",
]


@dataclass(frozen=True)
class ModelScore:
    """Error of one fitted model against one sample set."""

    rmse: float
    mape: float
    n_samples: int


@dataclass(frozen=True)
class ModelReport:
    """One model's outcome in a comparison (fit, scores — or the failure)."""

    model: str
    fitted: FittedModel | None
    fit_seconds: float
    score: ModelScore | None = None
    cv_mape: float | None = None
    cv_rmse: float | None = None
    lono_mape: float | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.fitted is not None


@dataclass
class ModelComparison:
    """Ranked model reports over one sample set (best first).

    ``ranked_by`` records which error the ranking used: ``"cv-mape"``
    when every fitted model could be cross-validated, ``"mape"``
    (in-sample) otherwise — CV scores of some models are never compared
    against optimistic in-sample scores of others.
    """

    reports: list[ModelReport]
    k: int
    n_samples: int
    cluster: str | None = None
    ranked_by: str = "cv-mape"
    options: dict = field(default_factory=dict)

    def rank_metric_of(self, report: ModelReport) -> float:
        """The value the ranking actually used for *report*."""
        if not report.ok or report.score is None:
            return float("inf")
        if self.ranked_by == "cv-mape" and report.cv_mape is not None:
            return report.cv_mape
        return report.score.mape

    @property
    def ranking(self) -> list[str]:
        """Model names, best first (failed fits last, by name)."""
        return [r.model for r in self.reports]

    @property
    def best(self) -> ModelReport:
        if not self.reports or not self.reports[0].ok:
            raise FittingError("no model could be fitted on these samples")
        return self.reports[0]

    def report(self, model: str) -> ModelReport:
        """The report for one model (canonical or alias name)."""
        name = MODELS.canonical(model)
        for r in self.reports:
            if r.model == name:
                return r
        raise KeyError(f"model {model!r} is not part of this comparison")

    def render(self) -> str:
        """Deterministic ranked table (no timings — diff-stable output)."""
        header = (
            f"{'model':<12} {'mape%':>9} {'cv-mape%':>9} {'lono%':>9} "
            f"{'rmse':>10}  params"
        )
        lines = [header, "-" * len(header)]

        def fmt(value, spec=".2f"):
            return "-" if value is None else format(value, spec)

        for r in self.reports:
            if r.ok:
                detail = str(r.fitted)
                detail = detail[detail.index("(") :]  # params only
            else:
                detail = f"unfittable: {r.error}"
            lines.append(
                f"{r.model:<12} "
                f"{fmt(r.score.mape if r.score else None):>9} "
                f"{fmt(r.cv_mape):>9} {fmt(r.lono_mape):>9} "
                f"{fmt(r.score.rmse if r.score else None, '.3e'):>10}  {detail}"
            )
        lines.append(
            "ranking: " + " > ".join(self.ranking)
            + f"  (by {self.ranked_by})"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-able summary (CI artifacts, bench entries)."""
        return {
            "cluster": self.cluster,
            "n_samples": self.n_samples,
            "k": self.k,
            "ranking": self.ranking,
            "ranked_by": self.ranked_by,
            "reports": [
                {
                    "model": r.model,
                    "params": None if r.fitted is None else r.fitted.to_dict()["params"],
                    "mape": None if r.score is None else r.score.mape,
                    "rmse": None if r.score is None else r.score.rmse,
                    "cv_mape": r.cv_mape,
                    "cv_rmse": r.cv_rmse,
                    "lono_mape": r.lono_mape,
                    "fit_seconds": r.fit_seconds,
                    "error": r.error,
                }
                for r in self.reports
            ],
        }


# ----------------------------------------------------------------------
# Samples from rows
# ----------------------------------------------------------------------


def samples_from_rows(rows, *, cluster: str | None = None) -> list[AlltoallSample]:
    """Sweep rows (dicts, e.g. from :func:`repro.analysis.io.read_rows`)
    → :class:`AlltoallSample` list.

    Error rows, rows carrying a non-uniform traffic pattern or a
    non-identity placement (the zoo models predict the regular
    All-to-All under the default mapping) and rows with a missing or
    non-finite ``mean_time`` are skipped.  With *cluster* set, rows
    labelled with a *different* cluster are dropped; rows with no
    ``cluster`` column at all are trusted as-is (files written by the
    sweep sinks always carry the column — only hand-rolled rows can be
    unlabelled).  Without *cluster*, rows spanning several clusters are
    rejected (fit one network at a time).
    """
    samples = []
    clusters_seen = set()
    for row in rows:
        if row.get("error"):
            continue
        pattern = row.get("pattern")
        if pattern not in (None, "", "uniform"):
            continue
        placement = row.get("placement")
        if placement not in (None, "", "identity"):
            continue
        mean_time = row.get("mean_time")
        if mean_time in (None, ""):
            continue
        name = row.get("cluster")
        if cluster is not None and name is not None and str(name) != cluster:
            continue
        try:
            mean_time = float(mean_time)
            std = row.get("std_time")
            std = 0.0 if std in (None, "") else float(std)
            if not np.isfinite(mean_time):
                # One poisoned cell (NaN/inf) must not make every model
                # unfittable; drop the row like any other unusable one.
                continue
            sample = AlltoallSample(
                n_processes=int(float(row["n_processes"])),
                msg_size=int(float(row["msg_size"])),
                mean_time=mean_time,
                std_time=std if np.isfinite(std) else 0.0,
                reps=int(float(row.get("reps", 1) or 1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FittingError(f"malformed sweep row {row!r}: {exc}") from None
        if name is not None:
            clusters_seen.add(str(name))
        samples.append(sample)
    if cluster is None and len(clusters_seen) > 1:
        raise FittingError(
            f"rows span several clusters {sorted(clusters_seen)}; "
            "pass cluster= to pick one"
        )
    return samples


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------


def _prediction_errors(
    fitted: FittedModel, samples
) -> tuple[np.ndarray, np.ndarray]:
    """Per-sample (|measured/estimated - 1|·100, squared error), one
    ``predict`` pass — the paper's MAPE metric and the RMSE numerator."""
    n = np.array([s.n_processes for s in samples], dtype=np.float64)
    m = np.array([s.msg_size for s in samples], dtype=np.float64)
    t = np.array([s.mean_time for s in samples], dtype=np.float64)
    estimated = np.asarray(fitted.predict(n, m), dtype=np.float64)
    if np.any(estimated <= 0) or not np.all(np.isfinite(estimated)):
        raise FittingError(
            f"model {fitted.model!r} produced non-positive predictions"
        )
    return np.abs(t / estimated - 1.0) * 100.0, (t - estimated) ** 2


def score_fit(fitted: FittedModel, samples) -> ModelScore:
    """In-sample RMSE (seconds) and MAPE (%) of a fitted model."""
    samples = list(samples)
    if not samples:
        raise FittingError("no samples to score against")
    abs_err, sq_err = _prediction_errors(fitted, samples)
    return ModelScore(
        rmse=float(np.sqrt(sq_err.mean())),
        mape=float(abs_err.mean()),
        n_samples=len(samples),
    )


def _canonical_order(samples) -> list[int]:
    """Deterministic sample ordering for fold assignment.

    Size-major: round-robin fold assignment then spreads the samples of
    one message size across folds, so every training split spans the
    full size ladder (a fold holding *all* samples of one size would
    force threshold models to extrapolate outside their scanned range).
    """
    return sorted(
        range(len(samples)),
        key=lambda i: (
            samples[i].msg_size,
            samples[i].n_processes,
            samples[i].mean_time,
        ),
    )


def _held_out_errors(model_name, folds, samples, context):
    """Fit on each fold's train split, collect test-split errors.

    *folds* is a list of (train indices, test indices).  Folds whose
    training split cannot fit the model are skipped; returns
    ``(abs error % array, squared error array)`` over every scored
    held-out sample, or ``None`` when no fold could be scored.
    """
    model = get_model(model_name)
    abs_errors: list[np.ndarray] = []
    sq_errors: list[np.ndarray] = []
    for train_idx, test_idx in folds:
        if not train_idx or not test_idx:
            continue
        train = [samples[i] for i in train_idx]
        test = [samples[i] for i in test_idx]
        try:
            fitted = model.fit(train, **context)
            abs_err, sq_err = _prediction_errors(fitted, test)
        except FittingError:
            continue
        abs_errors.append(abs_err)
        sq_errors.append(sq_err)
    if not abs_errors:
        return None
    return np.concatenate(abs_errors), np.concatenate(sq_errors)


def kfold_errors(model_name: str, samples, *, k: int = 4, **context):
    """Deterministic k-fold CV: ``(mape, rmse)`` over held-out samples.

    Folds are assigned round-robin over the canonical (n, m, time)
    ordering — no RNG, so rankings are reproducible.  Returns ``None``
    when fewer than two samples exist or no fold could be fitted.
    """
    samples = list(samples)
    k = min(int(k), len(samples))
    if k < 2:
        return None
    order = _canonical_order(samples)
    folds = []
    for fold in range(k):
        test = [idx for pos, idx in enumerate(order) if pos % k == fold]
        train = [idx for pos, idx in enumerate(order) if pos % k != fold]
        folds.append((train, test))
    result = _held_out_errors(model_name, folds, samples, context)
    if result is None:
        return None
    abs_err, sq_err = result
    return float(abs_err.mean()), float(np.sqrt(sq_err.mean()))


def leave_one_n_out_errors(model_name: str, samples, **context):
    """Leave-one-n-out CV: hold out every process count in turn.

    The harshest test of a model's *extrapolation* over the saturation
    axis (the paper's figures 8/11/14 question).  Returns the held-out
    MAPE, or ``None`` with fewer than two distinct process counts.
    """
    samples = list(samples)
    ns = sorted({s.n_processes for s in samples})
    if len(ns) < 2:
        return None
    folds = []
    for held in ns:
        test = [i for i, s in enumerate(samples) if s.n_processes == held]
        train = [i for i, s in enumerate(samples) if s.n_processes != held]
        folds.append((train, test))
    result = _held_out_errors(model_name, folds, samples, context)
    if result is None:
        return None
    abs_err, _ = result
    return float(abs_err.mean())


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------


def compare_models(
    samples,
    models=None,
    *,
    hockney=None,
    cluster=None,
    k: int = 4,
    options: dict | None = None,
) -> ModelComparison:
    """Fit *models* (default: every built-in) on *samples* and rank them.

    *hockney* / *cluster* are the fit context handed to every model
    (ping-pong α/β, topology link capacities); *options* are extra
    per-fit keyword arguments (``delta_mode=...`` etc.).  Models that
    cannot fit (missing context, too few distinct n, …) are kept in the
    comparison as failed reports, ranked last — a comparison never
    crashes because one zoo member is unfittable on this sample set.

    Ranking: successful fits first, by cross-validated MAPE; when any
    fitted model could not be cross-validated (too few samples for its
    folds), *every* model is ranked by in-sample MAPE instead — a model
    must never win just because its CV folds failed.  Ties break by
    name.
    """
    samples = list(samples)
    if not samples:
        raise FittingError("no samples to compare models on")
    # Canonicalise and deduplicate (an alias plus its canonical name is
    # one model — same policy as SweepSpec.models).
    names: list[str] = []
    for model in models or DEFAULT_MODELS:
        resolved = MODELS.canonical(model)
        if resolved not in names:
            names.append(resolved)
    context = {"hockney": hockney, "cluster": cluster, **(options or {})}
    reports = []
    for name in names:
        model = get_model(name)
        start = time.perf_counter()
        try:
            fitted = model.fit(samples, **context)
        except FittingError as exc:
            reports.append(
                ModelReport(
                    model=name,
                    fitted=None,
                    fit_seconds=time.perf_counter() - start,
                    error=str(exc),
                )
            )
            continue
        fit_seconds = time.perf_counter() - start
        try:
            score = score_fit(fitted, samples)
        except FittingError as exc:
            reports.append(
                ModelReport(
                    model=name, fitted=None, fit_seconds=fit_seconds,
                    error=str(exc),
                )
            )
            continue
        cv = kfold_errors(name, samples, k=k, **context)
        lono = leave_one_n_out_errors(name, samples, **context)
        reports.append(
            ModelReport(
                model=name,
                fitted=fitted,
                fit_seconds=fit_seconds,
                score=score,
                cv_mape=None if cv is None else cv[0],
                cv_rmse=None if cv is None else cv[1],
                lono_mape=lono,
            )
        )
    fitted_reports = [r for r in reports if r.ok]
    use_cv = bool(fitted_reports) and all(
        r.cv_mape is not None for r in fitted_reports
    )
    comparison = ModelComparison(
        reports=reports,
        k=k,
        n_samples=len(samples),
        cluster=getattr(cluster, "name", None),
        ranked_by="cv-mape" if use_cv else "mape",
        options=dict(options or {}),
    )
    reports.sort(
        key=lambda r: (not r.ok, comparison.rank_metric_of(r), r.model)
    )
    return comparison


def compare_for_sweep(
    result,
    models,
    *,
    k: int = 4,
    seed: int = 0,
    pingpong_reps: int = 3,
) -> dict[str, "ModelComparison"]:
    """Per-cluster model comparison over a finished sweep.

    Groups the sweep's successful uniform-pattern points by cluster;
    for registry-resolvable cluster names the fit context (ping-pong
    Hockney α/β, topology capacities) is derived from the profile,
    otherwise models fit context-free.  Returns ``{cluster name:
    ModelComparison}`` for every cluster with enough samples.
    """
    from ..clusters.profiles import get_cluster
    from ..measure.pingpong import hockney_from_pingpong, measure_pingpong
    from ..registry import CLUSTERS

    by_cluster: dict[str, list[AlltoallSample]] = {}
    for point_result in result.results:
        if not point_result.ok or point_result.point.pattern is not None:
            continue
        by_cluster.setdefault(point_result.point.cluster, []).append(
            point_result.sample
        )
    comparisons: dict[str, ModelComparison] = {}
    for name in sorted(by_cluster):
        profile = get_cluster(name) if name in CLUSTERS else None
        hockney = None
        if profile is not None:
            pingpong = measure_pingpong(profile, reps=pingpong_reps, seed=seed)
            hockney = hockney_from_pingpong(pingpong).params
        comparison = compare_models(
            by_cluster[name], models, hockney=hockney, cluster=profile, k=k
        )
        comparison.cluster = name
        comparisons[name] = comparison
    return comparisons
