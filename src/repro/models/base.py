"""Cost-model zoo foundations: the :class:`CostModel` protocol.

A *cost model* is an analytical formula ``T(n, m)`` for the completion
time of an All-to-All (or, through the MED generalisation, any
personalised exchange) whose parameters are learned from measured
samples.  The paper's contention signature is one such model; Hockney's
postal model is the baseline it is judged against; LogGP and max-rate /
min-bandwidth bottleneck models (Bienz et al.) are the related-work
alternatives.  Putting them behind one protocol lets the selection
pipeline (:mod:`repro.models.selection`) fit *any* set of models on the
*same* samples and rank them — the repo's operationalisation of the
paper's claim that contention-aware models beat contention-blind ones.

Models are classes registered in :data:`repro.registry.MODELS` with
``@register_model``; each implements:

* :attr:`~CostModel.param_schema` — the learned parameters, described;
* :meth:`~CostModel.fit` — samples (+ optional context) → :class:`FittedModel`;
* :meth:`~CostModel.predict` / :meth:`~CostModel.predict_med` — evaluate
  a parameter dict at (n, m) or on an arbitrary exchange digraph;
* dict round-trip via :meth:`FittedModel.to_dict` /
  :meth:`FittedModel.from_dict` (cache keys, scenario TOML).

A :class:`FittedModel` is a plain ``(model name, params dict)`` pair —
JSON-able, hashable through its canonical dict, and evaluable without
the fitting context that produced it.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

from ..core.med import MED
from ..exceptions import FittingError
from ..registry import MODELS

__all__ = [
    "ParamSpec",
    "FittedModel",
    "CostModel",
    "get_model",
    "list_models",
]


@dataclass(frozen=True)
class ParamSpec:
    """One learned parameter of a cost model.

    ``kind`` is the canonical Python type of the value in a params dict:
    ``"float"`` (default), ``"int"`` or ``"str"``.
    """

    name: str
    unit: str = ""
    description: str = ""
    kind: str = "float"

    def __post_init__(self) -> None:
        if self.kind not in ("float", "int", "str"):
            raise ValueError(f"unknown param kind {self.kind!r}")

    def coerce(self, value):
        """Validate and canonicalise one value for this parameter."""
        if self.kind == "str":
            return str(value)
        if self.kind == "int":
            return int(value)
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"param {self.name!r} must be finite, got {value!r}")
        return value


@dataclass(frozen=True)
class FittedModel:
    """A cost model bound to learned parameters.

    ``params`` is a plain dict of scalars matching the model's
    :attr:`~CostModel.param_schema`; ``diagnostics`` optionally carries
    the fit object that produced it (regression output, chosen
    threshold, …) and is excluded from equality and serialization.
    """

    model: str
    params: dict
    diagnostics: object | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        spec = get_model(self.model)
        object.__setattr__(self, "model", spec.name)
        object.__setattr__(self, "params", spec.validate_params(self.params))

    def predict(self, n_processes, msg_size):
        """Predicted completion time (vectorised over n and m)."""
        return get_model(self.model).predict(self.params, n_processes, msg_size)

    def predict_med(self, med: MED) -> float:
        """Predicted completion time for an arbitrary exchange digraph."""
        return get_model(self.model).predict_med(self.params, med)

    def to_dict(self) -> dict:
        """Plain-JSON form, canonical key order (cache keys, TOML)."""
        return {
            "model": self.model,
            "params": {k: self.params[k] for k in sorted(self.params)},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FittedModel":
        """Rebuild from :meth:`to_dict` output (bit-exact round-trip)."""
        if not isinstance(data, dict):
            raise FittingError("FittedModel.from_dict needs a dict")
        unknown = sorted(set(data) - {"model", "params"})
        if unknown:
            raise FittingError(
                f"unknown FittedModel field(s) {unknown}; known: model, params"
            )
        if "model" not in data:
            raise FittingError("FittedModel dict is missing 'model'")
        return cls(model=str(data["model"]), params=dict(data.get("params", {})))

    def __str__(self) -> str:
        inner = ", ".join(
            f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sorted(self.params.items())
        )
        return f"{self.model}({inner})"


class CostModel(abc.ABC):
    """An analytical All-to-All performance model (fit + evaluate).

    Subclasses set :attr:`name` / :attr:`param_schema` and implement
    :meth:`fit`, :meth:`predict` and :meth:`predict_med`.  Instances are
    stateless — all learned state lives in :class:`FittedModel` param
    dicts, so one instance may fit any number of sample sets.
    """

    #: Canonical registry name (must match the ``@register_model`` name).
    name: str = ""

    #: The learned parameters, in canonical order.
    param_schema: tuple[ParamSpec, ...] = ()

    #: Whether :meth:`fit` needs ping-pong Hockney α/β context to work.
    #: Pipelines consult this to skip the simulated ping-pong for
    #: offline fits (e.g. ``Scenario.fit_model(samples=...)``).
    requires_hockney: bool = False

    # -- protocol -------------------------------------------------------

    @abc.abstractmethod
    def fit(self, samples, *, hockney=None, cluster=None, **options) -> FittedModel:
        """Learn parameters from :class:`~repro.core.AlltoallSample` rows.

        *hockney* (a :class:`~repro.core.HockneyParams`) is the
        point-to-point context the paper's pipeline always has;
        *cluster* (a :class:`~repro.clusters.profiles.ClusterProfile`)
        lets fabric-aware models read link capacities from the topology.
        Models raise :class:`~repro.exceptions.FittingError` when the
        samples (or missing context) cannot identify their parameters.
        """

    @abc.abstractmethod
    def predict(self, params: dict, n_processes, msg_size):
        """Evaluate a parameter dict at (n, m) (vectorised)."""

    @abc.abstractmethod
    def predict_med(self, params: dict, med: MED) -> float:
        """Evaluate a parameter dict on an arbitrary exchange digraph."""

    # -- shared plumbing ------------------------------------------------

    def validate_params(self, params: dict) -> dict:
        """Schema-check and canonicalise a params dict (raises on gaps)."""
        if not isinstance(params, dict):
            raise FittingError(f"model {self.name!r} params must be a dict")
        by_name = {spec.name: spec for spec in self.param_schema}
        unknown = sorted(set(params) - set(by_name))
        if unknown:
            raise FittingError(
                f"unknown param(s) {unknown} for model {self.name!r}; "
                f"known: {', '.join(by_name)}"
            )
        missing = sorted(set(by_name) - set(params))
        if missing:
            raise FittingError(
                f"model {self.name!r} params missing {missing}"
            )
        try:
            return {
                name: spec.coerce(params[name]) for name, spec in by_name.items()
            }
        except (TypeError, ValueError) as exc:
            raise FittingError(f"model {self.name!r}: {exc}") from None

    def fitted(self, params: dict, diagnostics=None) -> FittedModel:
        """Wrap a params dict (validated) as a :class:`FittedModel`."""
        return FittedModel(model=self.name, params=params, diagnostics=diagnostics)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


def get_model(name: str) -> CostModel:
    """Instantiate a registered cost model by (alias-tolerant) name."""
    return MODELS.get(name)()


def list_models() -> list[str]:
    """Canonical names of all registered cost models."""
    return MODELS.names()
