"""Simulation engines: pluggable strategies for running one measurement rep.

An *engine* is a callable

    ``engine(cluster, n_processes, program, run_arg, seed) -> RunResult``

that simulates one repetition of a rank program on a cluster profile.
Engines are registered in :data:`repro.registry.ENGINES` (decorator:
``@repro.registry.register_engine``), mirroring the cluster / topology /
executor plugin axes.  Two built-ins ship:

``fluid`` (default)
    The event-driven reference stack — generator runtime
    (:mod:`repro.simmpi.runtime`) over the fluid network
    (:mod:`repro.simnet.fluid`).  This is the correctness oracle, and
    the default keeps every existing cache key bit-identical.

``vector``
    Lowers the program to a static phase schedule
    (:mod:`repro.simmpi.lowering`) and executes it with the batched
    epoch-synchronized simulator (:mod:`repro.simnet.vector`).  Matches
    ``fluid`` to floating-point roundoff on lossless, jitter-free
    configurations and is 10–100x faster on large grids.  Loss-enabled
    profiles run on a vectorized port of the TCP loss overlay that
    samples the same stochastic process through different random
    streams, so lossy runs match ``fluid`` statistically (distribution,
    not bit-exact).  Unlowerable programs are still rejected.

The process-wide default is ``fluid`` unless the ``REPRO_SIM_ENGINE``
environment variable names another registered engine (see
:func:`default_engine`).
"""

from __future__ import annotations

import os

from .exceptions import UnknownNameError
from .registry import ENGINES, register_engine
from .simmpi.lowering import lower_program
from .simnet.vector import VectorSimulator

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINE_ENV",
    "default_engine",
    "run_fluid",
    "run_vector",
]

#: Engine used when neither caller nor environment picks one.  Keep at
#: ``fluid``: cache keys omit the engine when it is the default, so the
#: default engine defines what historical cache entries mean.
DEFAULT_ENGINE = "fluid"

#: Environment variable overriding the process-wide default engine.
ENGINE_ENV = "REPRO_SIM_ENGINE"


@register_engine("fluid", aliases=("reference", "event-driven"))
def run_fluid(cluster, n_processes, program, run_arg, seed, *,
              trace=None, timeline=None):
    """Reference event-driven engine (generator runtime + fluid network).

    *trace* / *timeline* are the opt-in observability hooks (see
    :mod:`repro.obs`); both default to off and the default call shape
    is unchanged for registry users.
    """
    runtime = cluster.runtime(
        n_processes, seed=seed, trace=trace, timeline=timeline
    )
    return runtime.run(program, run_arg)


@register_engine("vector", aliases=("batched",))
def run_vector(cluster, n_processes, program, run_arg, seed, *,
               trace=None, timeline=None):
    """Batched engine: lower to a phase schedule, advance flows in epochs.

    Same opt-in *trace* / *timeline* hooks as the fluid engine; the
    vector engine additionally emits ``vector.epoch`` /
    ``vector.phase`` records when tracing.
    """
    lowered = lower_program(program, n_processes, run_arg)
    simulator = VectorSimulator(
        cluster.topology(n_processes),
        cluster.transport,
        nprocs=n_processes,
        loss_params=cluster.loss,
        hol_penalty=cluster.hol,
        start_skew_scale=cluster.start_skew_scale,
        seed=seed,
        trace=trace,
        timeline=timeline,
    )
    return simulator.run(lowered)


def default_engine() -> str:
    """The engine to use when a caller does not pick one.

    ``REPRO_SIM_ENGINE`` overrides the built-in default; a value naming
    no registered engine raises :class:`~repro.exceptions.UnknownNameError`
    immediately (matching the ``REPRO_SWEEP_EXECUTOR`` contract) rather
    than silently measuring with the wrong engine.
    """
    raw = os.environ.get(ENGINE_ENV)
    if raw is not None and raw.strip():
        if raw not in ENGINES:
            known = ", ".join(ENGINES.names())
            raise UnknownNameError(
                f"{ENGINE_ENV}: unknown engine {raw!r}; known: {known}"
            )
        return ENGINES.canonical(raw)
    return DEFAULT_ENGINE
