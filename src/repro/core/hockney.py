"""Hockney point-to-point transmission model (paper §4).

``T(m) = α + m·β`` where α is the start-up time (latency between the
processes) and 1/β the link bandwidth.  The paper obtains α and β "from
a simple point-to-point measure"; :func:`fit_hockney` performs exactly
that fit from (size, time) samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import FittingError
from .regression import LinearFit, fit_linear

__all__ = ["HockneyParams", "HockneyFit", "fit_hockney"]


@dataclass(frozen=True)
class HockneyParams:
    """Hockney α (s) and β (s/byte)."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {self.alpha}")
        if self.beta <= 0:
            raise ValueError(f"beta must be > 0, got {self.beta}")

    def p2p_time(self, nbytes) -> np.ndarray | float:
        """Point-to-point transmission time α + m·β (vectorised over m)."""
        m = np.asarray(nbytes, dtype=np.float64)
        result = self.alpha + m * self.beta
        return float(result) if np.isscalar(nbytes) else result

    @property
    def bandwidth(self) -> float:
        """Asymptotic link bandwidth in bytes/second (1/β)."""
        return 1.0 / self.beta

    def to_dict(self) -> dict:
        """Plain-JSON form (lossless; see :meth:`from_dict`)."""
        return {"alpha": self.alpha, "beta": self.beta}

    @classmethod
    def from_dict(cls, data: dict) -> "HockneyParams":
        """Rebuild from :meth:`to_dict` output (bit-exact round-trip)."""
        if not isinstance(data, dict):
            raise ValueError("HockneyParams.from_dict needs a dict")
        unknown = sorted(set(data) - {"alpha", "beta"})
        if unknown:
            raise ValueError(
                f"unknown HockneyParams field(s) {unknown}; known: alpha, beta"
            )
        try:
            return cls(alpha=float(data["alpha"]), beta=float(data["beta"]))
        except KeyError as exc:
            raise ValueError(f"HockneyParams dict is missing {exc.args[0]!r}") from None

    def __str__(self) -> str:
        return (
            f"Hockney(alpha={self.alpha * 1e6:.2f} us, "
            f"beta={self.beta:.4g} s/B, bw={self.bandwidth / 1e6:.1f} MB/s)"
        )


@dataclass(frozen=True)
class HockneyFit:
    """Fitted Hockney parameters plus regression diagnostics."""

    params: HockneyParams
    fit: LinearFit
    sizes: np.ndarray
    times: np.ndarray


def fit_hockney(
    sizes,
    times,
    *,
    method: str = "ols",
    variances=None,
) -> HockneyFit:
    """Fit α, β from point-to-point (message size, one-way time) samples.

    A negative fitted intercept (possible when small-message times are
    dominated by per-segment effects) is clamped to zero — a Hockney
    start-up cannot be negative.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    if sizes.size != times.size:
        raise FittingError("sizes and times must have equal length")
    if sizes.size < 2:
        raise FittingError("need at least two samples to fit alpha and beta")
    X = np.column_stack([np.ones_like(sizes), sizes])
    fit = fit_linear(X, times, method=method, variances=variances)
    alpha = max(float(fit.params[0]), 0.0)
    beta = float(fit.params[1])
    if beta <= 0:
        raise FittingError(
            f"non-positive fitted beta ({beta:.3g}); measurement data "
            "does not look like a transmission curve"
        )
    return HockneyFit(
        params=HockneyParams(alpha=alpha, beta=beta),
        fit=fit,
        sizes=sizes,
        times=times,
    )
