"""Contention signature model — the paper's §7 contribution.

The signature of a network is the pair (γ, δ) that relates the measured
All-to-All completion time to the theoretical lower bound:

    T(n, m) = (n-1)·(α + m·β)·γ                     if m <  M
    T(n, m) = (n-1)·((α + m·β)·γ + δ)               if m >= M

(δ parenthesisation per DESIGN.md: per-round by default, with the
alternative "global" reading available for the ablation).

Fitting (γ, δ) is a *linear* problem: with LB = (n-1)(α+mβ) and the
indicator 1[m >= M],

    T = γ·LB + δ·(n-1)·1[m >= M]

so a two-column GLS regression recovers both parameters from >= 4
sample points measured on a single cluster size n′ (paper §8).  The
threshold M is selected by scanning candidate values and keeping the
best residual sum of squares (the paper states M per network without
describing its selection; the scan is our operationalisation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..exceptions import FittingError
from .bounds import (
    alltoall_lower_bound,
    combined_lower_bound,
    delta_eligible_rounds,
)
from .hockney import HockneyParams
from .med import MED
from .regression import LinearFit, fit_linear

__all__ = ["AlltoallSample", "ContentionSignature", "SignatureFit", "fit_signature"]

#: fitted δ below this is treated as zero (the paper's Myrinet case:
#: "the linear regression pointed a start-up cost δ smaller than 1
#: microsecond", so no δ term is applied).
DELTA_FLOOR = 1e-6


@dataclass(frozen=True)
class AlltoallSample:
    """One measured All-to-All point: mean of *reps* runs."""

    n_processes: int
    msg_size: int
    mean_time: float
    std_time: float = 0.0
    reps: int = 1

    def __post_init__(self) -> None:
        if self.n_processes < 2:
            raise ValueError("All-to-All needs at least 2 processes")
        if self.msg_size < 0 or self.mean_time <= 0:
            raise ValueError("invalid sample")

    @property
    def variance_of_mean(self) -> float:
        """Var(mean) = std² / reps (GLS weighting)."""
        if self.reps <= 1:
            return self.std_time**2
        return self.std_time**2 / self.reps


@dataclass(frozen=True)
class ContentionSignature:
    """A fitted (γ, δ, M) network signature over Hockney parameters."""

    gamma: float
    delta: float
    threshold: int
    hockney: HockneyParams
    delta_mode: str = "per_round"

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise ValueError("gamma must be positive")
        if self.delta < 0:
            raise ValueError("delta must be >= 0")
        if self.delta_mode not in ("per_round", "global"):
            raise ValueError(f"unknown delta_mode {self.delta_mode!r}")

    def predict(self, n_processes, msg_size):
        """Predicted completion time (vectorised over n and m)."""
        n = np.asarray(n_processes, dtype=np.float64)
        m = np.asarray(msg_size, dtype=np.float64)
        base = alltoall_lower_bound(n, m, self.hockney) * self.gamma
        above = (m >= self.threshold).astype(np.float64)
        if self.delta_mode == "per_round":
            base = base + above * self.delta * (n - 1.0)
        else:
            base = base + above * self.delta
        if np.isscalar(n_processes) and np.isscalar(msg_size):
            return float(base)
        return base

    def lower_bound(self, n_processes, msg_size):
        """The contention-free Proposition-1 bound (γ = 1, δ = 0)."""
        return alltoall_lower_bound(n_processes, msg_size, self.hockney)

    def predict_med(self, med: MED) -> float:
        """Predicted completion time for an arbitrary exchange digraph.

        Generalises :meth:`predict` from the regular All-to-All to any
        personalised exchange: γ multiplies the §5 combined lower bound
        (Claim 3: start-ups from the MED degrees, bandwidth from the
        per-node max in/out bytes), and δ is charged per
        threshold-crossing message on the bottleneck node
        (:func:`~repro.core.bounds.delta_eligible_rounds`).  On a
        uniform MED this reduces exactly to ``predict(n, m)``.
        """
        base = combined_lower_bound(med, self.hockney) * self.gamma
        if self.delta > 0:
            rounds = delta_eligible_rounds(med, self.threshold)
            if self.delta_mode == "per_round":
                base += self.delta * rounds
            else:
                base += self.delta * (1.0 if rounds else 0.0)
        return float(base)

    def lower_bound_med(self, med: MED) -> float:
        """The §5 combined (Claim 3) bound for an arbitrary exchange."""
        return combined_lower_bound(med, self.hockney)

    def to_dict(self) -> dict:
        """Plain-JSON form (lossless; see :meth:`from_dict`)."""
        return {
            "gamma": self.gamma,
            "delta": self.delta,
            "threshold": self.threshold,
            "delta_mode": self.delta_mode,
            "hockney": self.hockney.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ContentionSignature":
        """Rebuild from :meth:`to_dict` output (bit-exact round-trip)."""
        if not isinstance(data, dict):
            raise ValueError("ContentionSignature.from_dict needs a dict")
        known = {"gamma", "delta", "threshold", "delta_mode", "hockney"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown ContentionSignature field(s) {unknown}; "
                f"known: {', '.join(sorted(known))}"
            )
        try:
            return cls(
                gamma=float(data["gamma"]),
                delta=float(data["delta"]),
                threshold=int(data["threshold"]),
                hockney=HockneyParams.from_dict(data["hockney"]),
                delta_mode=str(data.get("delta_mode", "per_round")),
            )
        except KeyError as exc:
            raise ValueError(
                f"ContentionSignature dict is missing {exc.args[0]!r}"
            ) from None

    def __str__(self) -> str:
        delta_ms = self.delta * 1e3
        return (
            f"Signature(gamma={self.gamma:.4f}, delta={delta_ms:.3f} ms, "
            f"M={self.threshold} B, mode={self.delta_mode})"
        )


@dataclass(frozen=True)
class SignatureFit:
    """Fitted signature plus diagnostics."""

    signature: ContentionSignature
    fit: LinearFit
    samples: tuple[AlltoallSample, ...]
    candidate_thresholds: tuple[int, ...]
    rss_by_threshold: dict[int, float]


def _design(
    samples: list[AlltoallSample],
    hockney: HockneyParams,
    threshold: int,
    delta_mode: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    n = np.array([s.n_processes for s in samples], dtype=np.float64)
    m = np.array([s.msg_size for s in samples], dtype=np.float64)
    y = np.array([s.mean_time for s in samples], dtype=np.float64)
    lb = alltoall_lower_bound(n, m, hockney)
    above = (m >= threshold).astype(np.float64)
    delta_col = above * (n - 1.0) if delta_mode == "per_round" else above
    X = np.column_stack([lb, delta_col])
    return X, y, m


def fit_signature(
    samples,
    hockney: HockneyParams,
    *,
    threshold: int | str = "auto",
    method: str = "gls",
    delta_mode: str = "per_round",
    prune_delta: bool = True,
) -> SignatureFit:
    """Fit (γ, δ, M) from All-to-All samples against the lower bound.

    Parameters
    ----------
    samples:
        Iterable of :class:`AlltoallSample`; the paper uses >= 4 points
        measured at one sample size n′, varying the message size.
    hockney:
        α/β from the point-to-point measurement.
    threshold:
        The affine threshold M in bytes, or ``"auto"`` to scan the
        sample sizes for the best-RSS breakpoint.
    method:
        Regression method (``gls`` uses repetition variances when
        available, FGLS otherwise).
    delta_mode:
        ``"per_round"`` (default, see DESIGN.md) or ``"global"``.
    prune_delta:
        Apply the paper's Myrinet rule: a fitted δ below 1 us (or a
        negative one) is dropped entirely.
    """
    samples = list(samples)
    if len(samples) < 4:
        raise FittingError(
            f"the paper requires at least four measurement points, got {len(samples)}"
        )
    variances = np.array([s.variance_of_mean for s in samples])
    have_variances = bool(np.any(variances > 0))

    sizes = sorted({s.msg_size for s in samples})
    if threshold == "auto":
        # Candidate breakpoints: every observed size plus "no threshold"
        # (all samples below M, pure-γ model).
        candidates = list(sizes) + [max(sizes) + 1]
    else:
        candidates = [int(threshold)]

    best: tuple[float, int, LinearFit] | None = None
    rss_by_threshold: dict[int, float] = {}
    for candidate in candidates:
        X, y, _ = _design(samples, hockney, candidate, delta_mode)
        if not np.any(X[:, 1] > 0):
            # No sample reaches M: drop the δ column, fit γ alone.
            fit = fit_linear(
                X[:, :1], y, method=method,
                variances=variances if have_variances else None,
            )
            params = np.array([fit.params[0], 0.0])
            fit = replace(fit, params=params, stderr=np.append(fit.stderr, 0.0))
        else:
            fit = fit_linear(
                X, y, method=method,
                variances=variances if have_variances else None,
            )
        rss_by_threshold[candidate] = fit.rss
        if best is None or fit.rss < best[0] - 1e-18:
            best = (fit.rss, candidate, fit)
    assert best is not None
    _, chosen, fit = best

    gamma = float(fit.params[0])
    delta = float(fit.params[1])
    if gamma <= 0:
        raise FittingError(
            f"fitted gamma={gamma:.4g} is not positive; the samples are "
            "inconsistent with the lower-bound model"
        )
    if prune_delta and delta < DELTA_FLOOR:
        delta = 0.0
    delta = max(delta, 0.0)

    signature = ContentionSignature(
        gamma=gamma,
        delta=delta,
        threshold=int(chosen) if delta > 0 else 0,
        hockney=hockney,
        delta_mode=delta_mode,
    )
    return SignatureFit(
        signature=signature,
        fit=fit,
        samples=tuple(samples),
        candidate_thresholds=tuple(candidates),
        rss_by_threshold=rss_by_threshold,
    )
