"""Saturation-aware signature — the paper's stated future work.

§9 announces "an intermediate performance model for half-saturate
networks": the plain signature over-predicts small process counts by up
to (1/γ − 1) ≈ −77 % because γ was fitted on a saturated network while
an unsaturated one behaves contention-free (figures 8/11/14).

This module implements that extension.  The effective contention ratio
interpolates between 1 (empty network) and γ (saturated) through a
smooth ramp in the process count:

    γ_eff(n) = 1 + (γ - 1) · s(n)
    s(n)     = clip((n - n_free) / (n_sat - n_free), 0, 1) ** p

with ``n_sat`` the saturation knee (for a fabric with aggregate capacity
C and per-NIC rate r, ``n_sat ≈ C / r`` — e.g. GdX's 1.2 GB/s backplane
over 117 MB/s NICs gives n_sat ≈ 10, matching the crossover visible in
Fig. 11), and δ applied unchanged (host demultiplexing does not depend
on fabric saturation).  ``p`` shapes the ramp (1 = linear).

Fit ``n_sat`` from error-curve data with :func:`fit_knee`, or set it
from the fabric's nominal capacities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import FittingError
from .signature import ContentionSignature

__all__ = ["SaturationRamp", "SaturatedSignature", "fit_knee"]


@dataclass(frozen=True)
class SaturationRamp:
    """Smooth 0→1 ramp in the process count.

    Attributes
    ----------
    n_free:
        Largest n that behaves contention-free (ramp = 0 at or below).
    n_sat:
        Smallest n that is fully saturated (ramp = 1 at or above).
    power:
        Ramp shape exponent (1 = linear interpolation).
    """

    n_free: float = 2.0
    n_sat: float = 16.0
    power: float = 1.0

    def __post_init__(self) -> None:
        if self.n_sat <= self.n_free:
            raise ValueError("need n_sat > n_free")
        if self.power <= 0:
            raise ValueError("power must be positive")

    def __call__(self, n_processes) -> np.ndarray:
        n = np.asarray(n_processes, dtype=np.float64)
        raw = (n - self.n_free) / (self.n_sat - self.n_free)
        return np.clip(raw, 0.0, 1.0) ** self.power


@dataclass(frozen=True)
class SaturatedSignature:
    """A contention signature with a saturation-aware γ ramp."""

    base: ContentionSignature
    ramp: SaturationRamp

    def gamma_effective(self, n_processes) -> np.ndarray:
        """γ_eff(n) = 1 + (γ - 1) · ramp(n)."""
        return 1.0 + (self.base.gamma - 1.0) * self.ramp(n_processes)

    def predict(self, n_processes, msg_size):
        """Prediction with saturation-dependent contention ratio."""
        n = np.asarray(n_processes, dtype=np.float64)
        m = np.asarray(msg_size, dtype=np.float64)
        gamma_eff = self.gamma_effective(n)
        bound = self.base.lower_bound(n, m)
        result = bound * gamma_eff
        above = (m >= self.base.threshold).astype(np.float64)
        if self.base.delta_mode == "per_round":
            result = result + above * self.base.delta * (n - 1.0)
        else:
            result = result + above * self.base.delta
        if np.isscalar(n_processes) and np.isscalar(msg_size):
            return float(result)
        return result


def fit_knee(
    n_values,
    errors_percent,
    base: ContentionSignature,
    *,
    msg_size: float,
    power: float = 1.0,
) -> SaturatedSignature:
    """Fit the saturation knee from an error-vs-n curve (Figs. 8/11/14).

    Rather than inverting the ramp analytically we scan candidate knees
    and keep the one minimising the squared error between the observed
    measured/estimated ratios and the ratios the ramped model implies.
    The implied ratio is the *full* prediction ratio
    ``SaturatedSignature.predict / base.predict`` — on δ>0 networks
    (FE, GigE) the δ start-up term appears in both measurement and
    estimate, so reducing the ratio to ``γ_eff/γ`` alone would bias the
    knee towards too-small values.

    Parameters
    ----------
    n_values / errors_percent:
        The measured error curve of the *plain* signature,
        ``(measured/estimated - 1)·100``.
    base:
        The fitted saturated-network signature.
    msg_size:
        Message size (bytes) the error curve was measured at (the error
        figures use 128 KiB–1 MiB).  Required because on δ>0 networks
        the δ/bandwidth balance — and therefore the fitted knee —
        depends on m.
    """
    n_values = np.asarray(n_values, dtype=np.float64)
    errors = np.asarray(errors_percent, dtype=np.float64)
    if n_values.size != errors.size or n_values.size < 3:
        raise FittingError("need >= 3 (n, error) points to locate the knee")
    if msg_size <= 0:
        raise FittingError("msg_size must be positive")
    # Implied measured/estimated ratio from the plain model's errors.
    ratio = errors / 100.0 + 1.0
    plain = np.asarray(base.predict(n_values, msg_size), dtype=np.float64)
    best: tuple[float, SaturatedSignature] | None = None
    n_lo = float(n_values.min())
    n_hi = float(n_values.max())
    for knee in np.linspace(n_lo + 1.0, n_hi, num=32):
        ramp = SaturationRamp(n_free=min(2.0, n_lo), n_sat=float(knee), power=power)
        model = SaturatedSignature(base=base, ramp=ramp)
        # Ratio the ramped model implies against the plain prediction,
        # δ term and all.
        implied = np.asarray(model.predict(n_values, msg_size)) / plain
        sse = float(((implied - ratio) ** 2).sum())
        if best is None or sse < best[0]:
            best = (sse, model)
    assert best is not None
    return best[1]
