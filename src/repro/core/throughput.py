"""Throughput-under-contention model (paper §6, the preliminary approach).

Two gap-per-byte states are measured from a network stress test
(Fig. 3 methodology): a contention-free β_F and a contended β_C.
Assuming "at most one of each two connections will be delayed due to
contention", they blend with proportion ρ = 0.5 (eq. 3):

    β = (1 - ρ)·β_F + ρ·β_C

and the synthetic β replaces the Hockney β in Proposition 1 (the
prediction of Fig. 4).  The §7 signature model supersedes this — the
drawbacks the paper lists (expensive saturation measurements, poor
small-message accuracy) are visible in our reproduction too — but it is
kept complete as the paper's stepping stone and as an ablation baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import FittingError
from .hockney import HockneyParams

__all__ = ["TwoBetaModel", "extract_two_beta", "two_beta_from_states"]


@dataclass(frozen=True)
class TwoBetaModel:
    """Synthetic-β performance model (paper eqs. 2/3 + Proposition 1)."""

    alpha: float
    beta_free: float
    beta_contended: float
    rho: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.rho <= 1.0:
            raise ValueError("rho must be within [0, 1]")
        if self.beta_free <= 0 or self.beta_contended <= 0:
            raise ValueError("betas must be positive")

    @property
    def beta_synthetic(self) -> float:
        """The blended gap per byte (eq. 3)."""
        return (1.0 - self.rho) * self.beta_free + self.rho * self.beta_contended

    def predict(self, n_processes, msg_size):
        """All-to-All prediction ``(n-1)(α + m·β_synth)`` (vectorised)."""
        n = np.asarray(n_processes, dtype=np.float64)
        m = np.asarray(msg_size, dtype=np.float64)
        result = (n - 1.0) * (self.alpha + m * self.beta_synthetic)
        if np.isscalar(n_processes) and np.isscalar(msg_size):
            return float(result)
        return result

    def as_hockney(self) -> HockneyParams:
        """The synthetic parameters viewed as a Hockney pair."""
        return HockneyParams(alpha=self.alpha, beta=self.beta_synthetic)


def extract_two_beta(
    transfer_bytes: float,
    transfer_times,
    *,
    alpha: float,
    rho: float = 0.5,
    fast_quantile: float = 0.10,
    slow_quantile: float = 0.95,
) -> TwoBetaModel:
    """Derive β_F / β_C from a saturating stress run (Fig. 3 data).

    Per-connection gap/byte is ``time / bytes``.  β_F is the mean gap of
    the fastest *fast_quantile* fraction (connections that escaped
    contention — the paper's 8.502e-9 s/B) and β_C the mean of gaps at or
    above the *slow_quantile* (connections hit by repeated retransmission
    timeouts — the paper's 8.498e-8 s/B).
    """
    times = np.asarray(list(transfer_times), dtype=np.float64)
    if times.size < 4:
        raise FittingError("need at least 4 stress transfer times")
    if transfer_bytes <= 0:
        raise FittingError("transfer_bytes must be positive")
    gaps = times / float(transfer_bytes)
    lo = np.quantile(gaps, fast_quantile)
    hi = np.quantile(gaps, slow_quantile)
    fast = gaps[gaps <= lo]
    slow = gaps[gaps >= hi]
    if fast.size == 0 or slow.size == 0:  # pragma: no cover - quantiles cover
        raise FittingError("could not split stress gaps into states")
    return TwoBetaModel(
        alpha=alpha,
        beta_free=float(fast.mean()),
        beta_contended=float(slow.mean()),
        rho=rho,
    )


def two_beta_from_states(
    transfer_bytes: float,
    free_times,
    contended_times,
    *,
    alpha: float,
    rho: float = 0.5,
    slow_quantile: float = 0.90,
) -> TwoBetaModel:
    """Derive β_F / β_C from *separate* unloaded and saturated runs.

    β_F is the mean gap of the contention-free transfers (e.g. a
    single-connection run — the paper's 8.502e-9 s/B corresponds to an
    uncontended GigE stream) and β_C the mean gap of the slowest
    *slow_quantile* tail of the saturated run (the retransmission
    victims).  More robust than a single-pool quantile split when the
    two regimes contribute unequal sample counts.
    """
    free = np.asarray(list(free_times), dtype=np.float64)
    contended = np.asarray(list(contended_times), dtype=np.float64)
    if free.size == 0 or contended.size == 0:
        raise FittingError("need samples from both regimes")
    if transfer_bytes <= 0:
        raise FittingError("transfer_bytes must be positive")
    gaps_free = free / float(transfer_bytes)
    gaps_cont = contended / float(transfer_bytes)
    hi = np.quantile(gaps_cont, slow_quantile)
    slow = gaps_cont[gaps_cont >= hi]
    return TwoBetaModel(
        alpha=alpha,
        beta_free=float(gaps_free.mean()),
        beta_contended=float(slow.mean()),
        rho=rho,
    )
