"""Prediction error metrics.

The paper's figures 8/11/14 plot ``(measured / estimated - 1) * 100%``;
this module provides that metric plus the usual aggregates.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "relative_error_percent",
    "mean_absolute_percentage_error",
    "mae",
    "rmse",
]


def relative_error_percent(measured, estimated):
    """The paper's estimation error: ``(measured/estimated - 1) * 100``.

    Negative values mean the model over-predicts (typical in the
    unsaturated small-n regime); positive means under-prediction.
    """
    measured = np.asarray(measured, dtype=np.float64)
    estimated = np.asarray(estimated, dtype=np.float64)
    if np.any(estimated <= 0):
        raise ValueError("estimated times must be positive")
    result = (measured / estimated - 1.0) * 100.0
    if result.ndim == 0:
        return float(result)
    return result


def mean_absolute_percentage_error(measured, estimated) -> float:
    """Mean |relative error| in percent."""
    err = np.atleast_1d(relative_error_percent(measured, estimated))
    return float(np.abs(err).mean())


def mae(measured, estimated) -> float:
    """Mean absolute error in seconds."""
    measured = np.asarray(measured, dtype=np.float64)
    estimated = np.asarray(estimated, dtype=np.float64)
    return float(np.abs(measured - estimated).mean())


def rmse(measured, estimated) -> float:
    """Root mean squared error in seconds."""
    measured = np.asarray(measured, dtype=np.float64)
    estimated = np.asarray(estimated, dtype=np.float64)
    return float(np.sqrt(((measured - estimated) ** 2).mean()))
