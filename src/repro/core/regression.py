"""Linear regression: OLS, WLS and (feasible) Generalized Least Squares.

The paper obtains γ and δ "through a linear regression with the
Generalized Least Squares method, comparing at least four measurement
points" (§8).  Timing measurements are heteroscedastic — the variance of
a mean-of-100-runs grows with the magnitude of the time being measured —
which is exactly the situation GLS addresses: estimate

    b = (Xᵀ Ω⁻¹ X)⁻¹ Xᵀ Ω⁻¹ y

with Ω the (diagonal) covariance of the observations.  When per-sample
variances are available (repetition spread) we use them directly; when
they are not, :func:`feasible_gls` iterates WLS with variances modelled
as proportional to the squared fitted values (multiplicative noise),
which is the standard FGLS fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import FittingError

__all__ = ["LinearFit", "ols", "wls", "gls", "feasible_gls", "fit_linear"]


@dataclass(frozen=True)
class LinearFit:
    """Result of a linear fit ``y ~ X b``.

    Attributes
    ----------
    params:
        Estimated coefficients, one per column of X.
    stderr:
        Standard errors of the coefficients.
    residuals:
        ``y - X b``.
    rss:
        Residual sum of squares (unweighted).
    r_squared:
        Coefficient of determination on the unweighted data.
    method:
        ``"ols"`` / ``"wls"`` / ``"gls"`` / ``"fgls"``.
    """

    params: np.ndarray
    stderr: np.ndarray
    residuals: np.ndarray
    rss: float
    r_squared: float
    method: str

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the fitted linear model on new rows."""
        return np.asarray(X, dtype=np.float64) @ self.params


def _validate(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    y = np.asarray(y, dtype=np.float64).ravel()
    if X.shape[0] != y.shape[0]:
        raise FittingError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    if X.shape[0] < X.shape[1]:
        raise FittingError(
            f"need at least {X.shape[1]} samples for {X.shape[1]} "
            f"coefficients, got {X.shape[0]}"
        )
    if not np.all(np.isfinite(X)) or not np.all(np.isfinite(y)):
        raise FittingError("non-finite values in regression inputs")
    return X, y


def _solve_weighted(
    X: np.ndarray, y: np.ndarray, inv_var: np.ndarray, method: str
) -> LinearFit:
    # Whiten and solve by least squares (numerically safer than normal
    # equations for ill-conditioned designs).
    w_sqrt = np.sqrt(inv_var)
    Xw = X * w_sqrt[:, None]
    yw = y * w_sqrt
    params, _, rank, _ = np.linalg.lstsq(Xw, yw, rcond=None)
    if rank < X.shape[1]:
        raise FittingError(
            "design matrix is rank deficient; samples do not identify "
            "all coefficients (vary n and m across samples)"
        )
    residuals = y - X @ params
    rss = float(residuals @ residuals)
    dof = max(X.shape[0] - X.shape[1], 1)
    # Covariance of the estimator under the assumed Ω.
    xtwx = Xw.T @ Xw
    try:
        cov = np.linalg.inv(xtwx)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
        raise FittingError("singular normal matrix") from exc
    sigma2 = float((residuals * inv_var * residuals).sum()) / dof
    stderr = np.sqrt(np.clip(np.diag(cov) * sigma2, 0.0, None))
    tss = float(((y - y.mean()) ** 2).sum())
    r_squared = 1.0 - rss / tss if tss > 0 else 1.0
    return LinearFit(
        params=params,
        stderr=stderr,
        residuals=residuals,
        rss=rss,
        r_squared=r_squared,
        method=method,
    )


def ols(X: np.ndarray, y: np.ndarray) -> LinearFit:
    """Ordinary least squares."""
    X, y = _validate(X, y)
    return _solve_weighted(X, y, np.ones(len(y)), "ols")


def wls(X: np.ndarray, y: np.ndarray, variances: np.ndarray) -> LinearFit:
    """Weighted least squares with known per-sample variances."""
    X, y = _validate(X, y)
    var = np.asarray(variances, dtype=np.float64).ravel()
    if var.shape != y.shape:
        raise FittingError("variances must match y in length")
    if np.any(var < 0):
        raise FittingError("variances must be non-negative")
    # Zero variances (deterministic samples) get the smallest positive
    # variance present, keeping weights finite.
    positive = var[var > 0]
    floor = float(positive.min()) if positive.size else 1.0
    var = np.where(var > 0, var, floor)
    return _solve_weighted(X, y, 1.0 / var, "wls")


def gls(X: np.ndarray, y: np.ndarray, variances: np.ndarray) -> LinearFit:
    """GLS with diagonal covariance (alias of :func:`wls`, named per paper)."""
    fit = wls(X, y, variances)
    return LinearFit(
        params=fit.params,
        stderr=fit.stderr,
        residuals=fit.residuals,
        rss=fit.rss,
        r_squared=fit.r_squared,
        method="gls",
    )


def feasible_gls(
    X: np.ndarray, y: np.ndarray, *, iterations: int = 3
) -> LinearFit:
    """Feasible GLS: variance modelled as proportional to fitted²."""
    X, y = _validate(X, y)
    fit = _solve_weighted(X, y, np.ones(len(y)), "ols")
    for _ in range(max(iterations, 1)):
        fitted = X @ fit.params
        scale = np.abs(fitted)
        floor = max(float(np.max(scale)) * 1e-6, 1e-30)
        var = np.maximum(scale, floor) ** 2
        fit = _solve_weighted(X, y, 1.0 / var, "fgls")
    return fit


def fit_linear(
    X: np.ndarray,
    y: np.ndarray,
    *,
    method: str = "gls",
    variances: np.ndarray | None = None,
) -> LinearFit:
    """Dispatch on *method*; GLS falls back to FGLS without variances."""
    if method == "ols":
        return ols(X, y)
    if method in ("wls", "gls"):
        if variances is None:
            return feasible_gls(X, y)
        return gls(X, y, variances) if method == "gls" else wls(X, y, variances)
    if method == "fgls":
        return feasible_gls(X, y)
    raise FittingError(f"unknown regression method {method!r}")
