"""The paper's models: Hockney, MED bounds, two-β, contention signature."""

from .bounds import (
    alltoall_lower_bound,
    bandwidth_lower_bound,
    combined_lower_bound,
    delta_eligible_rounds,
    min_startups,
    naive_model,
)
from .errors import (
    mae,
    mean_absolute_percentage_error,
    relative_error_percent,
    rmse,
)
from .hockney import HockneyFit, HockneyParams, fit_hockney
from .med import MED
from .predictor import AlltoallPredictor
from .regression import LinearFit, feasible_gls, fit_linear, gls, ols, wls
from .saturation import SaturatedSignature, SaturationRamp, fit_knee
from .signature import (
    AlltoallSample,
    ContentionSignature,
    SignatureFit,
    fit_signature,
)
from .throughput import TwoBetaModel, extract_two_beta, two_beta_from_states

__all__ = [
    "alltoall_lower_bound",
    "bandwidth_lower_bound",
    "combined_lower_bound",
    "delta_eligible_rounds",
    "min_startups",
    "naive_model",
    "mae",
    "mean_absolute_percentage_error",
    "relative_error_percent",
    "rmse",
    "HockneyFit",
    "HockneyParams",
    "fit_hockney",
    "MED",
    "AlltoallPredictor",
    "LinearFit",
    "feasible_gls",
    "fit_linear",
    "gls",
    "ols",
    "wls",
    "AlltoallSample",
    "ContentionSignature",
    "SignatureFit",
    "fit_signature",
    "SaturatedSignature",
    "SaturationRamp",
    "fit_knee",
    "TwoBetaModel",
    "extract_two_beta",
    "two_beta_from_states",
]
