"""High-level prediction façade.

Combines the Hockney parameters and the fitted contention signature into
the object downstream users want: "give me T(n, m) for my network".
Construction from live measurements is in
:func:`repro.measure.pipeline.characterize_cluster`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bounds import alltoall_lower_bound
from .errors import relative_error_percent
from .hockney import HockneyParams
from .signature import AlltoallSample, ContentionSignature

__all__ = ["AlltoallPredictor"]


@dataclass(frozen=True)
class AlltoallPredictor:
    """Predicts All-to-All completion times for one characterised network.

    Examples
    --------
    >>> from repro.core import HockneyParams, ContentionSignature
    >>> h = HockneyParams(alpha=50e-6, beta=8.5e-9)
    >>> sig = ContentionSignature(gamma=4.36, delta=4.9e-3, threshold=8192,
    ...                           hockney=h)
    >>> p = AlltoallPredictor(signature=sig)
    >>> t = p.predict(40, 1_048_576)
    >>> t > p.lower_bound(40, 1_048_576)
    True
    """

    signature: ContentionSignature

    @property
    def hockney(self) -> HockneyParams:
        """The underlying point-to-point parameters."""
        return self.signature.hockney

    def predict(self, n_processes, msg_size):
        """Predicted completion time (vectorised)."""
        return self.signature.predict(n_processes, msg_size)

    def lower_bound(self, n_processes, msg_size):
        """Proposition-1 contention-free bound."""
        return alltoall_lower_bound(n_processes, msg_size, self.hockney)

    def predict_grid(self, n_values, m_values) -> np.ndarray:
        """Prediction surface: rows over n, columns over m (figures 7/10/13)."""
        n = np.asarray(n_values, dtype=np.float64)[:, None]
        m = np.asarray(m_values, dtype=np.float64)[None, :]
        return self.signature.predict(n, m)

    def error_against(self, samples) -> list[tuple[AlltoallSample, float]]:
        """Per-sample relative error (%) of the prediction."""
        out = []
        for sample in samples:
            estimated = self.predict(sample.n_processes, sample.msg_size)
            out.append((sample, relative_error_percent(sample.mean_time, estimated)))
        return out
