"""Message exchange digraph (MED) — the paper's §5 formalism.

The total exchange problem is described by a weighted digraph
``dG(V, E)`` whose vertices are processes and whose arcs carry the size
of the message to send.  This module provides the digraph (backed by
:mod:`networkx`), the degree/bandwidth quantities the lower bounds need,
and constructors for the regular All-to-All plus arbitrary (alltoallv-
style) personalised exchanges.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

__all__ = ["MED"]


class MED:
    """A message exchange digraph.

    Arc ``(i, j)`` with weight ``w`` means process *i* must send *w*
    bytes to process *j*.  Self-loops are excluded (a process's message
    to itself never crosses the network — paper §5 counts n data items
    per process "including itself" but the wire bounds only involve the
    other n-1).
    """

    def __init__(self, n_processes: int) -> None:
        if n_processes < 1:
            raise ValueError("need at least one process")
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(range(n_processes))

    # -- constructors ----------------------------------------------------

    @classmethod
    def alltoall(cls, n_processes: int, msg_size: int) -> "MED":
        """Regular All-to-All: every ordered pair exchanges *msg_size*."""
        if msg_size < 0:
            raise ValueError("msg_size must be >= 0")
        med = cls(n_processes)
        for i in range(n_processes):
            for j in range(n_processes):
                if i != j:
                    med.add_message(i, j, msg_size)
        return med

    @classmethod
    def from_matrix(cls, weights) -> "MED":
        """Personalised exchange from a (n, n) weight matrix (diag ignored)."""
        W = np.asarray(weights)
        if W.ndim != 2 or W.shape[0] != W.shape[1]:
            raise ValueError("weights must be a square matrix")
        med = cls(W.shape[0])
        for i in range(W.shape[0]):
            for j in range(W.shape[1]):
                if i != j and W[i, j] > 0:
                    med.add_message(i, j, int(W[i, j]))
        return med

    # -- mutation ----------------------------------------------------------

    def add_message(self, src: int, dst: int, nbytes: int) -> None:
        """Add (or accumulate onto) the arc src -> dst."""
        if src == dst:
            raise ValueError("self-messages are not part of a MED")
        if nbytes < 0:
            raise ValueError("message size must be >= 0")
        if self._graph.has_edge(src, dst):
            self._graph[src][dst]["weight"] += nbytes
        else:
            self._graph.add_edge(src, dst, weight=nbytes)

    # -- queries -----------------------------------------------------------

    @property
    def n_processes(self) -> int:
        """Number of vertices."""
        return self._graph.number_of_nodes()

    @property
    def n_messages(self) -> int:
        """Number of arcs."""
        return self._graph.number_of_edges()

    def weight(self, src: int, dst: int) -> int:
        """Bytes to send src -> dst (0 when no arc)."""
        if self._graph.has_edge(src, dst):
            return int(self._graph[src][dst]["weight"])
        return 0

    def out_degree(self, node: int) -> int:
        """Δs(p): number of distinct destinations of *node*."""
        return int(self._graph.out_degree(node))

    def in_degree(self, node: int) -> int:
        """Δr(p): number of distinct sources of *node*."""
        return int(self._graph.in_degree(node))

    @property
    def max_out_degree(self) -> int:
        """Δs = max over processes of the out-degree."""
        return max((d for _, d in self._graph.out_degree()), default=0)

    @property
    def max_in_degree(self) -> int:
        """Δr = max over processes of the in-degree."""
        return max((d for _, d in self._graph.in_degree()), default=0)

    def send_bytes(self, node: int) -> int:
        """Total bytes *node* must send (Σ_j w_{node,j})."""
        return int(
            sum(data["weight"] for _, _, data in self._graph.out_edges(node, data=True))
        )

    def recv_bytes(self, node: int) -> int:
        """Total bytes *node* must receive (Σ_i w_{i,node})."""
        return int(
            sum(data["weight"] for _, _, data in self._graph.in_edges(node, data=True))
        )

    @property
    def max_send_bytes(self) -> int:
        """max_i Σ_j w_{i,j} — the ts bottleneck numerator."""
        return max((self.send_bytes(v) for v in self._graph.nodes), default=0)

    @property
    def max_recv_bytes(self) -> int:
        """max_j Σ_i w_{i,j} — the tr bottleneck numerator."""
        return max((self.recv_bytes(v) for v in self._graph.nodes), default=0)

    def is_regular_alltoall(self) -> bool:
        """Whether this MED is a complete digraph with uniform weights."""
        n = self.n_processes
        if self.n_messages != n * (n - 1):
            return False
        weights = {data["weight"] for _, _, data in self._graph.edges(data=True)}
        return len(weights) <= 1

    def to_matrix(self) -> np.ndarray:
        """Dense (n, n) weight matrix with zero diagonal."""
        n = self.n_processes
        W = np.zeros((n, n), dtype=np.int64)
        for i, j, data in self._graph.edges(data=True):
            W[i, j] = data["weight"]
        return W

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx digraph (read-only use)."""
        return self._graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MED(n={self.n_processes}, messages={self.n_messages})"
