"""Lower bounds for the total exchange problem (paper §5.1).

Implements Claims 1–3 and Proposition 1 under the 1-port full-duplex
model:

* Claim 1 — start-ups:  at least ``max(Δs, Δr)``;
* Claim 2 — bandwidth:  at least ``max(ts, tr)`` with
  ``ts = max_i Σ_j w_ij β`` and ``tr = max_j Σ_i w_ij β``;
* Claim 3 — combined:   ``max(Δs, Δr)·α + max(ts, tr)``;
* Proposition 1 — regular All-to-All on a homogeneous network:
  ``(n-1)·α + (n-1)·m·β``.
"""

from __future__ import annotations

import numpy as np

from .hockney import HockneyParams
from .med import MED

__all__ = [
    "min_startups",
    "bandwidth_lower_bound",
    "combined_lower_bound",
    "alltoall_lower_bound",
    "delta_eligible_rounds",
    "naive_model",
]


def min_startups(med: MED) -> int:
    """Claim 1: minimum number of start-ups without forwarding."""
    return max(med.max_out_degree, med.max_in_degree)


def bandwidth_lower_bound(med: MED, params: HockneyParams) -> float:
    """Claim 2: ``max(ts, tr)`` in seconds."""
    ts = med.max_send_bytes * params.beta
    tr = med.max_recv_bytes * params.beta
    return max(ts, tr)


def combined_lower_bound(med: MED, params: HockneyParams) -> float:
    """Claim 3: start-up and bandwidth bounds combined."""
    return min_startups(med) * params.alpha + bandwidth_lower_bound(med, params)


def delta_eligible_rounds(med: MED, threshold: int) -> int:
    """Per-node maximum count of arcs carrying at least *threshold* bytes.

    The MED generalisation of the ``(n-1)`` factor multiplying δ in the
    per-round signature model: δ charges the serialized receiver
    demultiplexing once per large message on the bottleneck node, so
    the count is ``max_p max(|out arcs ≥ M|, |in arcs ≥ M|)``.  On the
    regular All-to-All this is ``n-1`` when ``m ≥ M`` and 0 otherwise,
    recovering the paper's formula exactly.
    """
    graph = med.graph
    best = 0
    for node in graph.nodes:
        out_count = sum(
            1 for _, _, data in graph.out_edges(node, data=True)
            if data["weight"] >= threshold
        )
        in_count = sum(
            1 for _, _, data in graph.in_edges(node, data=True)
            if data["weight"] >= threshold
        )
        best = max(best, out_count, in_count)
    return best


def alltoall_lower_bound(n_processes, msg_size, params: HockneyParams):
    """Proposition 1: ``(n-1)·α + (n-1)·m·β`` (vectorised over inputs).

    This is also the "traditional" contention-free model of Christara
    and Pjesivac-Grbovic (paper eq. 1), which the contention signature
    multiplies.
    """
    n = np.asarray(n_processes, dtype=np.float64)
    m = np.asarray(msg_size, dtype=np.float64)
    if np.any(n < 1):
        raise ValueError("n_processes must be >= 1")
    if np.any(m < 0):
        raise ValueError("msg_size must be >= 0")
    result = (n - 1.0) * (params.alpha + m * params.beta)
    if np.isscalar(n_processes) and np.isscalar(msg_size):
        return float(result)
    return result


def naive_model(n_processes, msg_size, params: HockneyParams):
    """Alias of Proposition 1 under its 'related work' name (eq. 1).

    ``T = (n-1)(α + βm)`` — the contention-blind baseline every
    evaluation figure compares against.
    """
    return alltoall_lower_bound(n_processes, msg_size, params)
