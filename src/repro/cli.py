"""Command-line interface.

Examples
--------
List experiments::

    python -m repro.cli list

Run one figure at smoke scale and save its CSV::

    python -m repro.cli run fig06 --scale smoke --csv out/fig06.csv

Characterise a cluster (fit its contention signature)::

    python -m repro.cli characterize gigabit-ethernet --nprocs 16

Predict an All-to-All time from paper-reported signatures::

    python -m repro.cli predict gigabit-ethernet 40 1048576

Run a (clusters x nprocs x sizes x algorithms x seeds) grid on a worker
pool with result caching, emitting CSV/JSONL::

    python -m repro.cli sweep --clusters gigabit-ethernet,myrinet \
        --nprocs 4,8 --sizes 2kB,32kB,256kB --algorithms direct,bruck \
        --workers 4 --cache-dir ~/.cache/repro-alltoall/sweeps \
        --csv out/sweep.csv
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .clusters.profiles import CLUSTERS, get_cluster
from .core.hockney import HockneyParams
from .core.signature import ContentionSignature
from .experiments.registry import EXPERIMENTS, run_experiment
from .measure.pipeline import characterize_cluster
from .units import format_time, parse_size


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(e) for e in EXPERIMENTS)
    for exp_id, spec in EXPERIMENTS.items():
        print(f"{exp_id:<{width}}  {spec.paper_ref:<14} {spec.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_experiment(args.experiment, scale=args.scale, seed=args.seed)
    print(result.render())
    if args.csv:
        result.save_csv(args.csv)
        print(f"\nsaved: {args.csv}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    cluster = get_cluster(args.cluster)
    ch = characterize_cluster(
        cluster,
        sample_nprocs=args.nprocs,
        reps=args.reps,
        seed=args.seed,
    )
    hockney = ch.hockney_fit.params
    sig = ch.signature
    print(f"cluster     : {cluster.name}")
    print(f"description : {cluster.description}")
    print(f"hockney     : {hockney}")
    print(f"signature   : {sig}")
    if cluster.paper:
        print(
            f"paper       : gamma={cluster.paper.gamma} "
            f"delta={cluster.paper.delta * 1e3:.2f} ms "
            f"M={cluster.paper.threshold} B"
        )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    cluster = get_cluster(args.cluster)
    if cluster.paper is None:
        print("no paper signature recorded for this cluster", file=sys.stderr)
        return 1
    size = parse_size(args.msg_size)
    # A reference Hockney pair per network class (paper-scale constants).
    # β must include the transport's wire-byte framing (envelope +
    # per-segment overhead), or predictions undercut the simulator.
    alpha = cluster.transport.base_latency
    topology = cluster.topology(2)
    capacity = topology.links[topology.hosts[0].tx_link].capacity
    beta = cluster.transport.effective_beta(size, capacity)
    signature = ContentionSignature(
        gamma=cluster.paper.gamma,
        delta=cluster.paper.delta,
        threshold=cluster.paper.threshold,
        hockney=HockneyParams(alpha=alpha, beta=beta),
    )
    time = signature.predict(args.nprocs, size)
    bound = signature.lower_bound(args.nprocs, size)
    print(f"predicted MPI_Alltoall({args.nprocs} procs, {size} B):")
    print(f"  prediction : {format_time(float(time))}")
    print(f"  lower bound: {format_time(float(bound))}")
    print(f"  signature  : {signature}")
    return 0


def _csv_list(text: str) -> list[str]:
    """Split a comma-separated CLI value, dropping empties."""
    return [item.strip() for item in text.split(",") if item.strip()]


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sweeps import ResultCache, SweepRunner, SweepSpec, default_cache_dir

    try:
        spec = SweepSpec(
            clusters=tuple(_csv_list(args.clusters)),
            nprocs=tuple(int(n) for n in _csv_list(args.nprocs)),
            sizes=tuple(parse_size(s) for s in _csv_list(args.sizes)),
            algorithms=tuple(_csv_list(args.algorithms)),
            seeds=tuple(int(s) for s in _csv_list(args.seeds)),
            reps=args.reps,
        )
    except ValueError as exc:
        print(f"invalid sweep spec: {exc}", file=sys.stderr)
        return 2
    if args.no_cache:
        cache = None
    else:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    try:
        runner = SweepRunner(workers=args.workers, cache=cache)
    except ValueError as exc:
        print(f"invalid sweep options: {exc}", file=sys.stderr)
        return 2
    try:
        result = runner.run(spec)
    except KeyError as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2

    print(f"sweep     : {spec.describe()}")
    print(f"workers   : {runner.workers}")
    print(f"cache     : {cache.root if cache is not None else 'disabled'}")
    print(f"simulated : {result.n_simulated}")
    print(f"cached    : {result.n_cached}")
    print(f"elapsed   : {result.elapsed:.2f} s")
    if args.csv:
        print(f"csv       : {result.save_csv(args.csv)}")
    if args.jsonl:
        print(f"jsonl     : {result.save_jsonl(args.jsonl)}")
    if not args.csv and not args.jsonl:
        slowest = sorted(
            result.results, key=lambda r: r.sample.mean_time, reverse=True
        )[:5]
        print("slowest points:")
        for r in slowest:
            print(
                f"  {r.point.cluster:<18} {r.point.algorithm:<7} "
                f"n={r.point.n_processes:<3} m={r.point.msg_size:<8} "
                f"{format_time(r.sample.mean_time)}"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-alltoall",
        description="All-to-All contention modeling (CLUSTER 2006 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list reproducible experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--scale", default="default",
                       choices=["smoke", "default", "full"])
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--csv", default=None, help="save data rows to CSV")
    p_run.set_defaults(func=_cmd_run)

    p_char = sub.add_parser(
        "characterize", help="fit a cluster's contention signature"
    )
    p_char.add_argument("cluster", choices=sorted(CLUSTERS))
    p_char.add_argument("--nprocs", type=int, default=16)
    p_char.add_argument("--reps", type=int, default=2)
    p_char.add_argument("--seed", type=int, default=0)
    p_char.set_defaults(func=_cmd_characterize)

    p_pred = sub.add_parser(
        "predict", help="predict an All-to-All time from paper signatures"
    )
    p_pred.add_argument("cluster", choices=sorted(CLUSTERS))
    p_pred.add_argument("nprocs", type=int)
    p_pred.add_argument("msg_size", help="bytes or size string like 256kB")
    p_pred.set_defaults(func=_cmd_predict)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a measurement grid on a worker pool with result caching",
    )
    p_sweep.add_argument(
        "--clusters", default="gigabit-ethernet",
        help="comma-separated cluster names",
    )
    p_sweep.add_argument(
        "--nprocs", default="4,8", help="comma-separated process counts"
    )
    p_sweep.add_argument(
        "--sizes", default="2kB,32kB,256kB",
        help="comma-separated message sizes (bytes or strings like 256kB)",
    )
    p_sweep.add_argument(
        "--algorithms", default="direct",
        help="comma-separated algorithm names (direct,rounds,bruck,ring)",
    )
    p_sweep.add_argument(
        "--seeds", default="0", help="comma-separated base seeds"
    )
    p_sweep.add_argument("--reps", type=int, default=1)
    p_sweep.add_argument(
        "--workers", type=int, default=1, help="worker process count"
    )
    p_sweep.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_SWEEP_CACHE or "
             "~/.cache/repro-alltoall/sweeps)",
    )
    p_sweep.add_argument(
        "--no-cache", action="store_true", help="always simulate"
    )
    p_sweep.add_argument("--csv", default=None, help="write rows as CSV")
    p_sweep.add_argument("--jsonl", default=None, help="write rows as JSONL")
    p_sweep.set_defaults(func=_cmd_sweep)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
