"""Command-line interface.

Examples
--------
List experiments and every registered cluster/topology/algorithm/backend::

    python -m repro.cli list
    python -m repro.cli list clusters

Run a declarative scenario file (sweep its workload grid, then fit the
contention signature)::

    python -m repro.cli run --scenario examples/scenarios/edge_core_gige_stress.toml

Run one figure at smoke scale and save its CSV::

    python -m repro.cli run fig06 --scale smoke --csv out/fig06.csv

Characterise a cluster (fit its contention signature)::

    python -m repro.cli characterize gigabit-ethernet --nprocs 16

Predict an All-to-All time from paper-reported signatures::

    python -m repro.cli predict gigabit-ethernet 40 1048576

Run a (clusters x nprocs x sizes x algorithms x seeds) grid on a worker
pool with result caching, streaming rows as points complete::

    python -m repro.cli sweep --clusters gigabit-ethernet,myrinet \
        --nprocs 4,8 --sizes 2kB,32kB,256kB --algorithms direct,bruck \
        --workers 4 --executor process --progress \
        --cache-dir ~/.cache/repro-alltoall/sweeps \
        --csv out/sweep.csv --output out/sweep.jsonl

Trace one instrumented run and export it for Perfetto /
``chrome://tracing`` (``--format jsonl`` for the archival form)::

    python -m repro.cli trace gigabit-ethernet --nprocs 8 --size 32kB \
        --format chrome --out out/trace.json

Track the benchmark trajectory: ingest fresh ``BENCH_*.json`` artifacts
into the run ledger, render per-metric history, and gate a build on the
committed baselines (nonzero exit on regression)::

    python -m repro.cli bench ingest benchmarks/output/
    python -m repro.cli bench report --metric lossless_speedup_n64
    python -m repro.cli bench compare --baseline benchmarks/baselines/ \
        benchmarks/output/

Every ``run``/``sweep``/``fit``/``characterize``/``compare-models``
invocation appends a fingerprinted entry (git sha, python/numpy, cpu
count, wall time, metrics snapshot) to the ledger —
``.repro/ledger.jsonl`` by default, ``REPRO_LEDGER`` overrides the
path or disables it (``REPRO_LEDGER=off``).
"""

from __future__ import annotations

import argparse
import os
import sys

from . import api, __version__
from .obs.export import EXPORT_FORMATS
from .exceptions import (
    FittingError,
    MeasurementError,
    ScenarioError,
    SimulationError,
    UnknownNameError,
)
from .experiments.registry import EXPERIMENTS, run_experiment
from .units import format_time, parse_size


def _scenario_key(scenario) -> str | None:
    """Short content hash of a scenario's cache payload (ledger field)."""
    try:
        import hashlib
        import json as _json

        payload = scenario.spec.cache_payload()
        canonical = _json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]
    except Exception:
        return None


class _LedgerScope:
    """Record one CLI invocation in the run ledger on exit.

    Captures wall time and the metrics-registry delta of everything the
    command did; extra fields accumulate via :meth:`note`.  Recording is
    best-effort by construction (:mod:`repro.obs.ledger` never raises),
    so a read-only filesystem cannot fail a command.
    """

    def __init__(self, kind: str, **fields) -> None:
        import time as _time

        from .obs.metrics import REGISTRY

        self.kind = kind
        self.fields = {k: v for k, v in fields.items() if v is not None}
        self._start = _time.perf_counter()
        self._before = REGISTRY.snapshot()

    def note(self, **fields) -> None:
        self.fields.update({k: v for k, v in fields.items() if v is not None})

    def finish(self, exit_code: int = 0) -> None:
        import time as _time

        from .obs.ledger import record_run
        from .obs.metrics import REGISTRY, diff_snapshots

        record_run(
            self.kind,
            wall_s=round(_time.perf_counter() - self._start, 4),
            exit_code=exit_code,
            metrics=diff_snapshots(self._before, REGISTRY.snapshot()) or None,
            **self.fields,
        )


#: The in-flight invocation's ledger scope (set by :func:`main`).
_ACTIVE_LEDGER: "_LedgerScope | None" = None


def _ledger_note(**fields) -> None:
    """Attach fields (scenario key, point counts) to the pending entry."""
    if _ACTIVE_LEDGER is not None:
        _ACTIVE_LEDGER.note(**fields)


def _doc_summary(obj) -> str:
    """First docstring line, or empty (user plugins may be undocumented)."""
    lines = (obj.__doc__ or "").splitlines()
    return lines[0].strip() if lines else ""


#: Sections of ``repro-alltoall list`` (name -> row enumerator).
#: Enumerators must emit sorted rows (registry ``names()`` already are;
#: plain dicts like EXPERIMENTS are sorted here) so the listing is
#: byte-stable across runs regardless of registration order.
_LIST_SECTIONS = {
    "experiments": lambda: [
        (exp_id, f"{spec.paper_ref:<14} {spec.description}")
        for exp_id, spec in sorted(EXPERIMENTS.items())
    ],
    "clusters": lambda: [
        (name, api.CLUSTERS.get(name)().description)
        for name in api.list_clusters()
    ],
    "topologies": lambda: [
        (name, _doc_summary(api.TOPOLOGIES.get(name)))
        for name in api.list_topologies()
    ],
    "algorithms": lambda: [
        (name, _doc_summary(api.ALGORITHMS.get(name)))
        for name in api.list_algorithms()
    ],
    "patterns": lambda: [
        (name, _doc_summary(api.PATTERNS.get(name)))
        for name in api.list_patterns()
    ],
    "backends": lambda: [(name, "") for name in api.list_backends()],
    "executors": lambda: [
        (name, _doc_summary(api.EXECUTORS.get(name)))
        for name in api.list_executors()
    ],
    "models": lambda: [
        (name, _doc_summary(api.MODELS.get(name)))
        for name in api.list_models()
    ],
    "engines": lambda: [
        (name, _doc_summary(api.ENGINES.get(name)))
        for name in api.list_engines()
    ],
    "placements": lambda: [
        (name, _doc_summary(api.PLACEMENTS.get(name)))
        for name in api.list_placements()
    ],
    "placement-optimizers": lambda: [
        (name, _doc_summary(api.PLACEMENT_OPTIMIZERS.get(name)))
        for name in api.list_placement_optimizers()
    ],
    "trace-formats": lambda: [
        (name, _doc_summary(fn))
        for name, fn in sorted(EXPORT_FORMATS.items())
    ],
}


def _parse_spec_arg(text: str, kind: str = "pattern"):
    """``name`` or ``name:k=v,k2=v2`` → a ``{"name", "params"}`` dict.

    The shared grammar of ``--pattern`` and ``--placement`` (and the
    ``--optimizer`` of ``optimize-placement``).  Values parse as int,
    then float, then the booleans, else string —
    ``hotspot:targets=2,factor=8`` or ``round-robin:groups=4``.
    """
    name, _, param_part = text.partition(":")
    params = {}
    for item in param_part.split(","):
        if not item.strip():
            continue
        key, sep, raw = item.partition("=")
        if not sep or not key.strip():
            raise ValueError(
                f"bad {kind} parameter {item!r} (expected key=value)"
            )
        raw = raw.strip()
        value: object
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
        params[key.strip()] = value
    return {"name": name.strip(), "params": params}


def _parse_pattern_arg(text: str):
    """``--pattern`` value → a pattern dict for SweepSpec."""
    return _parse_spec_arg(text, "pattern")


def _parse_placement_arg(text: str):
    """``--placement`` value → a placement dict for the spec layer."""
    return _parse_spec_arg(text, "placement")


def _cmd_list(args: argparse.Namespace) -> int:
    # Sections print alphabetically, not in dict-insertion order, so
    # the full listing is deterministic and diffs cleanly as new
    # sections are registered.
    wanted = (
        sorted(_LIST_SECTIONS) if args.what in (None, "all") else [args.what]
    )
    for position, section in enumerate(wanted):
        rows = _LIST_SECTIONS[section]()
        if len(wanted) > 1:
            if position:
                print()
            print(f"{section}:")
        width = max(len(name) for name, _ in rows)
        for name, description in rows:
            print(f"  {name:<{width}}  {description}".rstrip())
    return 0


def _check_engine(name: "str | None") -> bool:
    """Validate an ``--engine`` value *before* any simulation starts.

    Downstream layers reject unknown engines too, but from mid-pipeline
    (a :class:`ValueError` out of the sweep spec, a
    :class:`MeasurementError` out of the measurement loop); checking here
    keeps the failure a one-line stderr message with exit code 2, like
    every other bad-name CLI error.
    """
    if name is not None and name not in api.ENGINES:
        known = ", ".join(api.list_engines())
        print(f"unknown engine {name!r}; known: {known}", file=sys.stderr)
        return False
    return True


def _check_placements(values) -> bool:
    """Validate ``--placement`` strategy names before anything runs.

    Same rationale as :func:`_check_engine`: parameter errors still
    surface downstream, but an unknown *name* should be a one-line
    stderr message with exit code 2, not a mid-pipeline failure.
    """
    for text in values or ():
        name = text.partition(":")[0].strip()
        if name not in api.PLACEMENTS:
            known = ", ".join(api.list_placements())
            print(
                f"unknown placement {name!r}; known: {known}",
                file=sys.stderr,
            )
            return False
    return True


def _with_engine(scenario: "api.Scenario", engine: str) -> "api.Scenario":
    """The scenario with its engine field overridden from the CLI."""
    import dataclasses

    return api.Scenario(dataclasses.replace(scenario.spec, engine=engine))


def _with_placement(scenario: "api.Scenario", text: str) -> "api.Scenario":
    """The scenario with its placement overridden from ``--placement``.

    Raises :class:`ValueError` (which :class:`ScenarioError` subclasses)
    on bad grammar or strategy parameters; callers turn that into
    exit code 2.
    """
    import dataclasses

    from .placement import as_placement

    spec = as_placement(_parse_placement_arg(text))
    return api.Scenario(dataclasses.replace(scenario.spec, placement=spec))


def _resolve_cluster_arg(name: str) -> tuple["api.Scenario", bool]:
    """A cluster name (registry, alias-tolerant) or a scenario file path.

    Only ``.toml``/``.json`` arguments are treated as files, so a
    stray local file named after a cluster can never shadow the
    registry.  Returns ``(scenario, from_file)``; the caller turns
    lookup errors (:class:`UnknownNameError` / :class:`ScenarioError`)
    into exit codes.
    """
    if name.endswith((".toml", ".json")):
        return api.Scenario.from_file(name), True
    return api.Scenario.from_name(name), False


def _load_scenario(path: str) -> "api.Scenario | None":
    """Load a scenario file, printing a clean error on failure."""
    try:
        return api.Scenario.from_file(path)
    except (OSError, ScenarioError, UnknownNameError) as exc:
        print(exc, file=sys.stderr)
        return None


def _print_sweep_summary(result, *, csv=None, jsonl=None, streamed=()) -> None:
    """The shared simulated/cached/elapsed block of sweep-style output.

    *streamed* paths were written incrementally during the run by
    streaming sinks; *csv*/*jsonl* are saved here, post-hoc.
    """
    print(f"simulated : {result.n_simulated}")
    print(f"cached    : {result.n_cached}")
    if result.n_points:
        print(
            f"hit rate  : {result.hit_rate:.0%} "
            f"({result.n_cached}/{result.n_points} points from cache)"
        )
    if result.n_failed:
        print(f"failed    : {result.n_failed}")
    print(f"elapsed   : {result.elapsed:.2f} s")
    for label, path in streamed:
        print(f"{label:<10}: {path}")
    if csv:
        print(f"csv       : {result.save_csv(csv)}")
    if jsonl:
        print(f"jsonl     : {result.save_jsonl(jsonl)}")


def _sweep_sinks(args) -> tuple[tuple, list[tuple[str, str]]]:
    """Streaming sinks for ``--csv``/``--jsonl``/``--output`` flags.

    All three stream: rows are appended and flushed as each point
    lands, so an interrupted sweep keeps every completed row.
    """
    from .exec.sinks import CsvSink, JsonlSink, sink_for

    sinks, streamed = [], []
    if args.csv:
        sinks.append(CsvSink(args.csv))
        streamed.append(("csv", args.csv))
    if args.jsonl:
        sinks.append(JsonlSink(args.jsonl))
        streamed.append(("jsonl", args.jsonl))
    for path in args.output or ():
        sinks.append(sink_for(path))
        streamed.append(("stream", path))
    return tuple(sinks), streamed


def _progress_printer():
    """Per-point progress callback writing one line to stderr."""

    def _report(done: int, total: int, result) -> None:
        point = result.point
        if not result.ok:
            status = f"error: {result.error}"
        elif result.cached:
            status = "cached"
        else:
            status = format_time(result.sample.mean_time)
        print(
            f"[{done}/{total}] {point.cluster} {point.algorithm} "
            f"n={point.n_processes} m={point.msg_size} {status}",
            file=sys.stderr,
            flush=True,
        )

    return _report


def _cmd_run(args: argparse.Namespace) -> int:
    if args.scenario and args.experiment:
        print(
            "run takes an experiment id or --scenario FILE, not both",
            file=sys.stderr,
        )
        return 2
    if not _check_engine(args.engine):
        return 2
    if args.placement and not _check_placements([args.placement]):
        return 2
    if args.scenario:
        return _run_scenario(args)
    if args.placement:
        # Experiments fix their own rank mappings (table_placement
        # sweeps them internally); only scenario runs take the override.
        print("--placement needs --scenario FILE", file=sys.stderr)
        return 2
    if not args.experiment:
        print("run needs an experiment id or --scenario FILE", file=sys.stderr)
        return 2
    if args.engine:
        # Experiment drivers thread no engine parameter; setting the
        # process-wide default (REPRO_SIM_ENGINE) reaches every
        # measurement they run.
        import os

        from .engines import ENGINE_ENV

        os.environ[ENGINE_ENV] = api.ENGINES.canonical(args.engine)
    _ledger_note(experiment=args.experiment, scale=args.scale)
    result = run_experiment(args.experiment, scale=args.scale, seed=args.seed)
    print(result.render())
    if args.csv:
        result.save_csv(args.csv)
        print(f"\nsaved: {args.csv}")
    return 0


def _run_scenario(args: argparse.Namespace) -> int:
    """Sweep a scenario file's workload grid, then fit its signature."""
    scenario = _load_scenario(args.scenario)
    if scenario is None:
        return 2
    if args.engine:
        scenario = _with_engine(scenario, args.engine)
    if args.placement:
        try:
            scenario = _with_placement(scenario, args.placement)
        except ValueError as exc:  # covers ScenarioError
            print(f"invalid --placement: {exc}", file=sys.stderr)
            return 2
    print(f"scenario  : {scenario.describe()}")
    _ledger_note(scenario=args.scenario, scenario_key=_scenario_key(scenario))
    try:
        result = scenario.sweep()
    except (MeasurementError, ScenarioError, SimulationError) as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    print(f"points    : {result.n_points}")
    _print_sweep_summary(result, csv=args.csv)
    try:
        ch = scenario.fit_signature()
    except (FittingError, MeasurementError, SimulationError) as exc:
        print(f"cannot fit signature: {exc}", file=sys.stderr)
        return 1
    print(f"hockney   : {ch.hockney_fit.params}")
    print(f"signature : {ch.signature}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    if not _check_engine(args.engine):
        return 2
    try:
        scenario, from_file = _resolve_cluster_arg(args.cluster)
    except (OSError, UnknownNameError, ScenarioError) as exc:
        print(exc, file=sys.stderr)
        return 2
    cluster = scenario.profile
    workload = scenario.spec.workload
    _ledger_note(cluster=cluster.name, scenario_key=_scenario_key(scenario))
    kwargs = {}
    if args.engine:
        kwargs["engine"] = args.engine
    if not from_file:
        # Plain cluster names keep the historical CLI defaults (n'=16,
        # the pipeline's 8-size ladder); scenario files bring their own
        # workload.
        from .measure.pipeline import DEFAULT_SAMPLE_SIZES

        kwargs["sample_sizes"] = DEFAULT_SAMPLE_SIZES
    try:
        ch = scenario.fit_signature(
            sample_nprocs=(
                args.nprocs
                or (workload.fit_nprocs if from_file else 16)
            ),
            reps=args.reps if args.reps is not None
            else (workload.reps if from_file else 2),
            seed=args.seed if args.seed is not None
            else (workload.seeds[0] if from_file else 0),
            **kwargs,
        )
    except (FittingError, MeasurementError, SimulationError) as exc:
        print(f"cannot fit signature: {exc}", file=sys.stderr)
        return 1
    hockney = ch.hockney_fit.params
    sig = ch.signature
    print(f"cluster     : {cluster.name}")
    print(f"description : {cluster.description}")
    print(f"hockney     : {hockney}")
    print(f"signature   : {sig}")
    if cluster.paper:
        print(
            f"paper       : gamma={cluster.paper.gamma} "
            f"delta={cluster.paper.delta * 1e3:.2f} ms "
            f"M={cluster.paper.threshold} B"
        )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    try:
        scenario, _ = _resolve_cluster_arg(args.cluster)
    except (OSError, UnknownNameError, ScenarioError) as exc:
        print(exc, file=sys.stderr)
        return 2
    size = parse_size(args.msg_size)
    try:
        signature = scenario.paper_signature(size)
    except ScenarioError:
        print("no paper signature recorded for this cluster", file=sys.stderr)
        return 1
    time = signature.predict(args.nprocs, size)
    bound = signature.lower_bound(args.nprocs, size)
    print(f"predicted MPI_Alltoall({args.nprocs} procs, {size} B):")
    print(f"  prediction : {format_time(float(time))}")
    print(f"  lower bound: {format_time(float(bound))}")
    print(f"  signature  : {signature}")
    return 0


def _cmd_optimize_placement(args: argparse.Namespace) -> int:
    try:
        scenario, _ = _resolve_cluster_arg(args.cluster)
    except (OSError, UnknownNameError, ScenarioError) as exc:
        print(exc, file=sys.stderr)
        return 2
    optimizer = _parse_spec_arg(args.optimizer, "optimizer")
    if optimizer["name"] not in api.PLACEMENT_OPTIMIZERS:
        known = ", ".join(api.list_placement_optimizers())
        print(
            f"unknown placement optimizer {optimizer['name']!r}; "
            f"known: {known}",
            file=sys.stderr,
        )
        return 2
    pattern = None
    if args.pattern:
        if args.pattern.partition(":")[0].strip() not in api.PATTERNS:
            known = ", ".join(api.list_patterns())
            print(
                f"unknown pattern {args.pattern.partition(':')[0]!r}; "
                f"known: {known}",
                file=sys.stderr,
            )
            return 2
        pattern = _parse_pattern_arg(args.pattern)
    _ledger_note(
        cluster=scenario.name, optimizer=optimizer["name"],
        scenario_key=_scenario_key(scenario),
    )
    try:
        result = scenario.optimize_placement(
            args.nprocs,
            parse_size(args.size) if args.size is not None else None,
            optimizer=optimizer["name"],
            seed=args.seed,
            params=optimizer["params"] or None,
            pattern=pattern,
        )
    except TypeError as exc:
        # e.g. greedy:iterations=10 — a parameter the optimizer's
        # signature does not accept.
        print(f"invalid optimizer parameters: {exc}", file=sys.stderr)
        return 2
    except (MeasurementError, ScenarioError, SimulationError, ValueError) as exc:
        print(f"cannot optimize placement: {exc}", file=sys.stderr)
        return 1
    workload = scenario.spec.workload
    n = args.nprocs if args.nprocs is not None else workload.fit_nprocs
    print(f"cluster    : {scenario.name}")
    print(f"optimizer  : {result.optimizer} (seed {result.seed}, "
          f"{result.evaluations} evaluations)")
    print(f"identity   : {format_time(result.identity_objective)} "
          "predicted contention (MED bottleneck)")
    print(f"optimized  : {format_time(result.objective)}")
    print(f"ratio      : {result.ratio:.2f}x "
          f"(avoided {format_time(result.improvement)})")
    print(f"permutation: {list(result.permutation)}")
    if result.ratio <= 1.0:
        # Not an error — uniform all-to-all on any fabric, or any
        # traffic on a single switch, is placement-invariant.
        print(
            f"note       : no placement beats identity for this traffic "
            f"at n={n}; the mapping above ties it",
        )
    if args.json:
        import json as _json
        from pathlib import Path

        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps(result.to_dict(), indent=2) + "\n")
        print(f"json       : {path}")
    return 0


def _csv_list(text: str) -> list[str]:
    """Split a comma-separated CLI value, dropping empties."""
    return [item.strip() for item in text.split(",") if item.strip()]


def _model_scenario(args) -> "api.Scenario | None":
    """The fit/compare-models target: a cluster name or scenario file.

    Workload override flags (``--nprocs``/``--sizes``/``--reps``/
    ``--seed``) apply to plain cluster names only; scenario files bring
    their own grid.  Prints a clean error and returns ``None`` on any
    lookup/validation failure.
    """
    overrides = {}
    try:
        if args.nprocs:
            overrides["nprocs"] = tuple(int(n) for n in _csv_list(args.nprocs))
        if args.sizes:
            overrides["sizes"] = tuple(
                parse_size(s) for s in _csv_list(args.sizes)
            )
    except ValueError as exc:
        print(f"invalid workload flags: {exc}", file=sys.stderr)
        return None
    if args.reps is not None:
        overrides["reps"] = args.reps
    if args.seed is not None:
        overrides["seeds"] = (args.seed,)
    if args.cluster.endswith((".toml", ".json")):
        if overrides:
            given = ", ".join(
                f"--{f}" for f in ("nprocs", "sizes", "reps", "seed")
                if getattr(args, f) is not None
            )
            print(
                f"a scenario file brings its own workload grid; drop {given}",
                file=sys.stderr,
            )
            return None
        return _load_scenario(args.cluster)
    try:
        return api.Scenario.from_name(args.cluster, **overrides)
    except (UnknownNameError, ScenarioError) as exc:
        print(exc, file=sys.stderr)
        return None


def _model_samples(args, scenario):
    """Samples for fit/compare: ``--from-rows FILE`` or ``None`` (sweep).

    Rows labelled with a different cluster are dropped (multi-cluster
    sweep files work, and a sweep file measured on another fabric —
    sink files always carry the cluster column — cannot silently fit
    under this target's ping-pong/topology context; unlabelled
    hand-rolled rows are trusted as-is).  Returns
    ``(samples, error_exit_code)``; samples stay ``None`` when the
    scenario should measure its own grid.
    """
    if not args.from_rows:
        return None, None
    from .analysis.io import read_rows
    from .models import samples_from_rows

    try:
        rows = read_rows(args.from_rows)
        samples = samples_from_rows(rows, cluster=scenario.name)
    except OSError as exc:
        print(exc, file=sys.stderr)
        return None, 2
    except (FittingError, ValueError) as exc:
        print(f"cannot load samples from {args.from_rows}: {exc}", file=sys.stderr)
        return None, 2
    if not samples:
        print(
            f"{args.from_rows} holds no usable uniform-pattern rows for "
            f"cluster {scenario.name!r}",
            file=sys.stderr,
        )
        return None, 1
    return samples, None


def _cmd_fit(args: argparse.Namespace) -> int:
    scenario = _model_scenario(args)
    if scenario is None:
        return 2
    samples, code = _model_samples(args, scenario)
    if code is not None:
        return code
    from .models import get_model, score_fit

    name = args.model or scenario.spec.model
    try:
        model = get_model(name)
    except UnknownNameError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(f"scenario  : {scenario.describe()}")
    print(f"model     : {model.name}")
    _ledger_note(
        cluster=scenario.name, model=model.name,
        scenario_key=_scenario_key(scenario),
    )
    try:
        fitted = scenario.fit_model(model.name, samples=samples)
        used = samples if samples is not None else scenario.grid_samples()
        score = score_fit(fitted, used)
    except (FittingError, MeasurementError, ScenarioError) as exc:
        print(f"cannot fit {model.name}: {exc}", file=sys.stderr)
        return 1
    schema = {spec.name: spec for spec in model.param_schema}
    width = max(len(n) for n in schema)
    for pname, value in sorted(fitted.params.items()):
        spec = schema[pname]
        shown = f"{value:.6g}" if isinstance(value, float) else str(value)
        unit = f" {spec.unit}" if spec.unit else ""
        print(f"  {pname:<{width}} = {shown}{unit:<5} {spec.description}")
    print(
        f"in-sample : mape={score.mape:.2f}% rmse={format_time(score.rmse)} "
        f"over {score.n_samples} samples"
    )
    return 0


def _cmd_compare_models(args: argparse.Namespace) -> int:
    scenario = _model_scenario(args)
    if scenario is None:
        return 2
    samples, code = _model_samples(args, scenario)
    if code is not None:
        return code
    models = _csv_list(args.models) if args.models else None
    print(f"scenario  : {scenario.describe()}")
    _ledger_note(
        cluster=scenario.name, scenario_key=_scenario_key(scenario)
    )
    try:
        comparison = scenario.compare_models(
            models, samples=samples, k=args.k
        )
    except UnknownNameError as exc:
        print(exc, file=sys.stderr)
        return 2
    except (FittingError, MeasurementError, ScenarioError) as exc:
        print(f"cannot compare models: {exc}", file=sys.stderr)
        return 1
    print(comparison.render())
    if not any(r.ok for r in comparison.reports):
        # The table above shows each model's reason; a comparison that
        # produced zero fits is a failure, not a ranking.
        print("no model could be fitted on these samples", file=sys.stderr)
        return 1
    if comparison.reports and comparison.reports[0].ok:
        best = comparison.reports[0]
        print(
            f"best      : {best.model} ({comparison.ranked_by} "
            f"{comparison.rank_metric_of(best):.2f}% over "
            f"{comparison.n_samples} samples)"
        )
    if args.json:
        import json as _json
        from pathlib import Path

        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps(comparison.to_dict(), indent=2) + "\n")
        print(f"json      : {path}")
    return 0


def _scenario_sweep_models(args, scenario, result) -> int:
    """``sweep --scenario FILE --models ...``: compare on the sweep's
    samples under the scenario's own profile/ping-pong context."""
    samples = [
        r.sample for r in result.results
        if r.ok and r.point.pattern is None and r.point.placement is None
    ]
    if not samples:
        print(
            "model comparison skipped: no successful uniform-pattern, "
            "identity-placement points (the zoo models predict the "
            "regular All-to-All under the default mapping)",
            file=sys.stderr,
        )
        return 0
    try:
        comparison = scenario.compare_models(
            tuple(_csv_list(args.models)), samples=samples
        )
    except UnknownNameError as exc:
        print(exc, file=sys.stderr)
        return 2
    except (FittingError, MeasurementError, ScenarioError) as exc:
        # e.g. the post-sweep ping-pong context measurement failing —
        # the sweep itself already succeeded and streamed/cached.
        print(f"model comparison failed: {exc}", file=sys.stderr)
        return 1
    print(f"\nmodel comparison — {scenario.name}:")
    print(comparison.render())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if not _check_engine(args.engine):
        return 2
    try:
        scenario, _ = _resolve_cluster_arg(args.cluster)
    except (OSError, UnknownNameError, ScenarioError) as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        size = parse_size(args.size) if args.size is not None else None
    except ValueError as exc:
        print(f"invalid --size: {exc}", file=sys.stderr)
        return 2
    try:
        observation = scenario.trace(
            args.nprocs,
            size,
            seed=args.seed,
            algorithm=args.algorithm,
            engine=args.engine,
        )
    except (MeasurementError, ScenarioError, SimulationError) as exc:
        print(f"trace failed: {exc}", file=sys.stderr)
        return 1
    # Without --out the serialized trace goes to stdout, so the
    # human-readable summary moves to stderr to keep stdout parseable.
    info = sys.stdout if args.out else sys.stderr
    print(f"cluster   : {scenario.name}", file=info)
    print(observation.render(args.top), file=info)
    if args.out:
        path = observation.export(args.out, args.format)
        print(f"trace     : {path} ({args.format})", file=info)
    else:
        document = EXPORT_FORMATS[args.format](observation.trace)
        sys.stdout.write(document)
        if not document.endswith("\n"):
            sys.stdout.write("\n")
    return 0


def _cmd_bench_ingest(args: argparse.Namespace) -> int:
    """Load BENCH_*.json records into the run ledger."""
    from .obs.bench import load_records
    from .obs.ledger import default_ledger

    try:
        records = load_records(args.paths)
    except (FileNotFoundError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if not records:
        print("no schema-conforming bench records found", file=sys.stderr)
        return 1
    ledger = default_ledger()
    if not ledger.enabled:
        print(
            "ledger disabled (REPRO_LEDGER); nothing ingested",
            file=sys.stderr,
        )
        return 1
    for record in records:
        ledger.record("bench", bench=record.get("bench"), record=record)
    print(f"ingested {len(records)} bench record(s) into {ledger.path}")
    return 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    """Render the per-metric trajectory recorded in the ledger."""
    from .obs.bench import render_trajectory
    from .obs.ledger import Ledger, default_ledger

    ledger = Ledger(args.ledger) if args.ledger else default_ledger()
    entries = ledger.entries(kind="bench")
    print(render_trajectory(entries, bench=args.bench, metric=args.metric))
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    """Gate current bench records against committed baselines."""
    from .obs.bench import compare, load_records, render_findings

    try:
        baseline = load_records(args.baseline)
        current = load_records(args.paths)
    except (FileNotFoundError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if not baseline:
        print("no schema-conforming baseline records", file=sys.stderr)
        return 2
    if not current:
        print("no schema-conforming current records", file=sys.stderr)
        return 2
    findings = compare(baseline, current)
    print(render_findings(findings))
    bad = [f for f in findings if not f.ok]
    _ledger_note(tracked=len(findings), regressions=len(bad))
    return 1 if bad else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sweeps import ResultCache, SweepRunner, SweepSpec, default_cache_dir

    if not _check_engine(args.engine):
        return 2
    if not _check_placements(args.placement):
        return 2
    if args.heartbeat is not None and args.heartbeat <= 0:
        print(
            "invalid sweep options: --heartbeat must be positive",
            file=sys.stderr,
        )
        return 2
    cache = None if args.no_cache else ResultCache(
        args.cache_dir or default_cache_dir()
    )
    try:
        runner = SweepRunner(
            workers=args.workers,
            cache=cache,
            executor=args.executor,
            retries=args.retries,
            on_error="keep" if args.keep_going else "raise",
        )
        sinks, streamed = _sweep_sinks(args)
    except ValueError as exc:
        print(f"invalid sweep options: {exc}", file=sys.stderr)
        return 2
    progress = _progress_printer() if args.progress else None

    # --models is absent here on purpose: it is a post-processing hook,
    # not a grid axis, so it composes with --scenario sweeps too.
    axis_flags = (
        "clusters", "nprocs", "sizes", "algorithms", "pattern",
        "placement", "seeds", "reps",
    )
    if args.scenario:
        given = [f"--{f}" for f in axis_flags if getattr(args, f) is not None]
        if given:
            print(
                f"--scenario brings its own workload grid; drop {', '.join(given)}",
                file=sys.stderr,
            )
            return 2
        scenario = _load_scenario(args.scenario)
        if scenario is None:
            return 2
        if args.engine:
            scenario = _with_engine(scenario, args.engine)
        if args.heartbeat is not None:
            from .obs.heartbeat import HeartbeatSink

            sinks = sinks + (HeartbeatSink(args.heartbeat),)
        _ledger_note(
            scenario=args.scenario, scenario_key=_scenario_key(scenario)
        )
        try:
            result = scenario.sweep(runner=runner, sinks=sinks, progress=progress)
        except (MeasurementError, ScenarioError, SimulationError) as exc:
            print(f"sweep failed: {exc}", file=sys.stderr)
            return 1
        print(f"sweep     : {scenario.describe()}")
        print(f"workers   : {runner.workers} ({runner.executor_name} executor)")
        print(f"cache     : {cache.root if cache is not None else 'disabled'}")
        _print_sweep_summary(result, streamed=streamed)
        if args.profile:
            print(result.profile().render())
        if args.models:
            code = _scenario_sweep_models(args, scenario, result)
            if code:
                return code
        return 1 if result.n_failed else 0

    try:
        spec = SweepSpec(
            clusters=tuple(_csv_list(args.clusters or "gigabit-ethernet")),
            nprocs=tuple(int(n) for n in _csv_list(args.nprocs or "4,8")),
            sizes=tuple(
                parse_size(s) for s in _csv_list(args.sizes or "2kB,32kB,256kB")
            ),
            algorithms=tuple(_csv_list(args.algorithms or "direct")),
            patterns=(
                tuple(_parse_pattern_arg(p) for p in args.pattern)
                if args.pattern
                else (None,)
            ),
            placements=(
                tuple(_parse_placement_arg(p) for p in args.placement)
                if args.placement
                else (None,)
            ),
            seeds=tuple(int(s) for s in _csv_list(args.seeds or "0")),
            reps=args.reps if args.reps is not None else 1,
            models=tuple(_csv_list(args.models)) if args.models else (),
            engine=args.engine,
        )
    except ValueError as exc:
        print(f"invalid sweep spec: {exc}", file=sys.stderr)
        return 2
    if args.heartbeat is not None:
        from .obs.heartbeat import HeartbeatSink

        sinks = sinks + (HeartbeatSink(args.heartbeat, total=spec.n_points),)
    _ledger_note(spec=spec.describe(), n_points=spec.n_points)
    try:
        result = runner.run(spec, sinks=sinks, progress=progress)
    except KeyError as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2
    except FittingError as exc:
        # The post-sweep model comparison failed; the points themselves
        # are already cached/streamed.
        print(f"model comparison failed: {exc}", file=sys.stderr)
        return 1
    except (MeasurementError, ScenarioError, SimulationError) as exc:
        # e.g. a pattern whose matrix degenerates at some grid point
        # (shift:offset=n) — report cleanly, not as a traceback.
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1

    print(f"sweep     : {spec.describe()}")
    print(f"workers   : {runner.workers} ({runner.executor_name} executor)")
    print(f"cache     : {cache.root if cache is not None else 'disabled'}")
    _print_sweep_summary(result, streamed=streamed)
    if args.profile:
        print(result.profile().render())
    if spec.models and not result.comparisons:
        print(
            "model comparison skipped: no successful uniform-pattern "
            "points (the zoo models predict the regular All-to-All)",
            file=sys.stderr,
        )
    for cluster_name, comparison in sorted((result.comparisons or {}).items()):
        print(f"\nmodel comparison — {cluster_name}:")
        print(comparison.render())
    if not sinks:
        slowest = sorted(
            (r for r in result.results if r.ok),
            key=lambda r: r.sample.mean_time, reverse=True,
        )[:5]
        print("slowest points:")
        for r in slowest:
            print(
                f"  {r.point.cluster:<18} {r.point.algorithm:<7} "
                f"n={r.point.n_processes:<3} m={r.point.msg_size:<8} "
                f"{format_time(r.sample.mean_time)}"
            )
    return 1 if result.n_failed else 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-alltoall",
        description="All-to-All contention modeling (CLUSTER 2006 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser(
        "list",
        help="list experiments and registered clusters/topologies/"
             "algorithms/backends",
    )
    p_list.add_argument(
        "what", nargs="?", default="all",
        choices=["all", *_LIST_SECTIONS],
        help="section to list (default: all)",
    )
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment or a scenario file")
    p_run.add_argument(
        "experiment", nargs="?", choices=sorted(EXPERIMENTS), default=None
    )
    p_run.add_argument(
        "--scenario", default=None, metavar="FILE",
        help="sweep + characterise a declarative scenario (.toml/.json)",
    )
    p_run.add_argument("--scale", default="default",
                       choices=["smoke", "default", "full"])
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--csv", default=None, help="save data rows to CSV")
    p_run.add_argument(
        "--engine", default=None, metavar="NAME",
        help="simulation engine: fluid (reference, default) or vector "
             "(batched; see `list engines`)",
    )
    p_run.add_argument(
        "--placement", default=None, metavar="NAME[:K=V,...]",
        help="rank→host mapping override for --scenario runs, e.g. "
             "round-robin:groups=4 (see `list placements`)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_char = sub.add_parser(
        "characterize", help="fit a cluster's contention signature"
    )
    p_char.add_argument(
        "cluster",
        help="registered cluster name (alias-tolerant) or scenario file",
    )
    p_char.add_argument("--nprocs", type=int, default=None)
    p_char.add_argument("--reps", type=int, default=None)
    p_char.add_argument("--seed", type=int, default=None)
    p_char.add_argument(
        "--engine", default=None, metavar="NAME",
        help="simulation engine for the All-to-All sweep (the ping-pong "
             "stays on the reference fluid engine; see `list engines`)",
    )
    p_char.set_defaults(func=_cmd_characterize)

    def _add_model_workload_flags(p) -> None:
        """Shared fit/compare-models target + workload-override flags."""
        p.add_argument(
            "cluster",
            help="registered cluster name (alias-tolerant) or scenario file",
        )
        p.add_argument(
            "--nprocs", default=None,
            help="comma-separated process counts for the fit grid "
                 "(cluster names only; default: 4,8)",
        )
        p.add_argument(
            "--sizes", default=None,
            help="comma-separated message sizes, bytes or strings like "
                 "256kB (cluster names only)",
        )
        p.add_argument("--reps", type=int, default=None,
                       help="repetitions per grid point")
        p.add_argument("--seed", type=int, default=None)
        p.add_argument(
            "--from-rows", default=None, metavar="FILE",
            help="fit on rows from a sweep CSV/JSONL file instead of "
                 "measuring the grid (typed via analysis.io.read_rows)",
        )

    p_fit = sub.add_parser(
        "fit", help="fit one cost model on a cluster or scenario grid"
    )
    _add_model_workload_flags(p_fit)
    p_fit.add_argument(
        "--model", default=None, metavar="NAME",
        help="registered cost model (default: the scenario's model field, "
             "i.e. the paper's contention signature; see `list models`)",
    )
    p_fit.set_defaults(func=_cmd_fit)

    p_cmp = sub.add_parser(
        "compare-models",
        help="fit several cost models on the same samples and rank them "
             "by cross-validated error",
    )
    _add_model_workload_flags(p_cmp)
    p_cmp.add_argument(
        "--models", default=None,
        help="comma-separated model names (default: every registered "
             "built-in; see `list models`)",
    )
    p_cmp.add_argument(
        "--k", type=int, default=4,
        help="cross-validation fold count (default: 4)",
    )
    p_cmp.add_argument(
        "--json", default=None, metavar="FILE",
        help="save the comparison report as JSON",
    )
    p_cmp.set_defaults(func=_cmd_compare_models)

    p_pred = sub.add_parser(
        "predict", help="predict an All-to-All time from paper signatures"
    )
    p_pred.add_argument(
        "cluster",
        help="registered cluster name (alias-tolerant) or scenario file",
    )
    p_pred.add_argument("nprocs", type=int)
    p_pred.add_argument("msg_size", help="bytes or size string like 256kB")
    p_pred.set_defaults(func=_cmd_predict)

    p_opt = sub.add_parser(
        "optimize-placement",
        help="search for a contention-minimising rank→host mapping "
             "(predicted MED objective, no simulation)",
    )
    p_opt.add_argument(
        "cluster",
        help="registered cluster name (alias-tolerant) or scenario file",
    )
    p_opt.add_argument(
        "--nprocs", type=int, default=None,
        help="process count (default: the workload's fit n')",
    )
    p_opt.add_argument(
        "--size", default=None, metavar="SIZE",
        help="message size, bytes or a string like 256kB (default: the "
             "workload's largest size)",
    )
    p_opt.add_argument(
        "--pattern", default=None, metavar="NAME[:K=V,...]",
        help="traffic pattern to optimise for (default: the workload's "
             "pattern; the uniform All-to-All is placement-invariant)",
    )
    p_opt.add_argument(
        "--optimizer", default="greedy", metavar="NAME[:K=V,...]",
        help="search strategy, e.g. greedy or anneal:iterations=8000 "
             "(see `list placement-optimizers`; default: greedy)",
    )
    p_opt.add_argument("--seed", type=int, default=None,
                       help="search seed (default: the workload's first)")
    p_opt.add_argument(
        "--json", default=None, metavar="FILE",
        help="save the search result (objectives, permutation) as JSON",
    )
    p_opt.set_defaults(func=_cmd_optimize_placement)

    p_trace = sub.add_parser(
        "trace",
        help="run one instrumented simulation and export its trace "
             "(Chrome/Perfetto JSON or JSONL) plus a contention report",
    )
    p_trace.add_argument(
        "cluster",
        help="registered cluster name (alias-tolerant) or scenario file",
    )
    p_trace.add_argument(
        "--nprocs", type=int, default=None,
        help="process count (default: the workload's fit n')",
    )
    p_trace.add_argument(
        "--size", default=None, metavar="SIZE",
        help="message size, bytes or a string like 256kB (default: the "
             "workload's first size)",
    )
    p_trace.add_argument(
        "--algorithm", default=None, metavar="NAME",
        help="All-to-All algorithm (default: the scenario's; see "
             "`list algorithms`)",
    )
    p_trace.add_argument(
        "--engine", default=None, metavar="NAME",
        help="simulation engine: fluid (reference, default) or vector "
             "(batched; see `list engines`)",
    )
    p_trace.add_argument("--seed", type=int, default=None)
    p_trace.add_argument(
        "--format", default="chrome", choices=sorted(EXPORT_FORMATS),
        help="export format (default: chrome; see `list trace-formats`)",
    )
    p_trace.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the trace document to FILE (default: stdout, with "
             "the summary on stderr)",
    )
    p_trace.add_argument(
        "--top", type=int, default=5,
        help="bottleneck links shown in the contention report (default: 5)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a measurement grid on a worker pool with result caching",
    )
    p_sweep.add_argument(
        "--scenario", default=None, metavar="FILE",
        help="sweep a declarative scenario file instead of the axis flags",
    )
    p_sweep.add_argument(
        "--clusters", default=None,
        help="comma-separated cluster names (default: gigabit-ethernet)",
    )
    p_sweep.add_argument(
        "--nprocs", default=None,
        help="comma-separated process counts (default: 4,8)",
    )
    p_sweep.add_argument(
        "--sizes", default=None,
        help="comma-separated message sizes, bytes or strings like 256kB "
             "(default: 2kB,32kB,256kB)",
    )
    p_sweep.add_argument(
        "--algorithms", default=None,
        help="comma-separated algorithm names (default: direct; see "
             "`list algorithms`)",
    )
    p_sweep.add_argument(
        "--pattern", action="append", default=None, metavar="NAME[:K=V,...]",
        help="traffic pattern axis entry, e.g. hotspot:targets=2,factor=8 "
             "(repeatable; default: the uniform regular All-to-All; see "
             "`list patterns`)",
    )
    p_sweep.add_argument(
        "--placement", action="append", default=None, metavar="NAME[:K=V,...]",
        help="rank→host mapping axis entry, e.g. round-robin:groups=4 "
             "(repeatable; default: the identity mapping; see "
             "`list placements`)",
    )
    p_sweep.add_argument(
        "--seeds", default=None, help="comma-separated base seeds (default: 0)"
    )
    p_sweep.add_argument("--reps", type=int, default=None,
                         help="repetitions per point (default: 1)")
    p_sweep.add_argument(
        "--engine", default=None, metavar="NAME",
        help="simulation engine for every point: fluid (reference, "
             "default) or vector (batched; composes with --scenario; "
             "see `list engines`)",
    )
    p_sweep.add_argument(
        "--models", default=None,
        help="comma-separated cost-model names to fit per cluster on the "
             "finished sweep (post-processing, never an axis; composes "
             "with --scenario; see `list models`)",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=1, help="worker process count"
    )
    p_sweep.add_argument(
        "--executor", default=None, metavar="NAME",
        help="execution backend for cache-missed points: serial, process "
             "(persistent warm worker pool, reused across runs), futures, "
             "or a user-registered executor (default: process when "
             "--workers > 1, else serial; see `list executors`)",
    )
    p_sweep.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-run a failed point up to N times before recording its "
             "error (default: 0)",
    )
    p_sweep.add_argument(
        "--keep-going", action="store_true",
        help="record failed points as error rows and finish the sweep "
             "(exit 1) instead of aborting on the first failure",
    )
    p_sweep.add_argument(
        "--progress", action="store_true",
        help="print one line per completed point to stderr",
    )
    p_sweep.add_argument(
        "--profile", action="store_true",
        help="print a timing/cache profile after the summary (in-worker "
             "simulation seconds, executor overhead, slowest points)",
    )
    p_sweep.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_SWEEP_CACHE or "
             "~/.cache/repro-alltoall/sweeps)",
    )
    p_sweep.add_argument(
        "--no-cache", action="store_true", help="always simulate"
    )
    p_sweep.add_argument(
        "--csv", default=None,
        help="stream rows to a CSV file as points complete",
    )
    p_sweep.add_argument(
        "--jsonl", default=None,
        help="stream rows to a JSONL file as points complete",
    )
    p_sweep.add_argument(
        "--output", action="append", default=None, metavar="FILE",
        help="stream rows to FILE, sink picked by extension "
             "(.csv or .jsonl; repeatable)",
    )
    p_sweep.add_argument(
        "--heartbeat", nargs="?", const=5.0, type=float, default=None,
        metavar="SEC",
        help="print a live progress line (rows/sec, hit rate, ETA, top "
             "metric deltas) to stderr every SEC seconds (default: 5)",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_bench = sub.add_parser(
        "bench",
        help="track the benchmark trajectory: ingest BENCH_*.json into "
             "the run ledger, report per-metric history, gate on baselines",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_bi = bench_sub.add_parser(
        "ingest",
        help="append schema-conforming bench records to the run ledger",
    )
    p_bi.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="BENCH_*.json files or directories holding them",
    )
    p_bi.set_defaults(func=_cmd_bench_ingest)
    p_br = bench_sub.add_parser(
        "report",
        help="render the per-metric trajectory recorded in the ledger",
    )
    p_br.add_argument(
        "--bench", default=None, metavar="NAME",
        help="only this benchmark (default: all)",
    )
    p_br.add_argument(
        "--metric", default=None, metavar="NAME",
        help="only this metric (default: all)",
    )
    p_br.add_argument(
        "--ledger", default=None, metavar="FILE",
        help="read this ledger file (default: the active run ledger)",
    )
    p_br.set_defaults(func=_cmd_bench_report)
    p_bc = bench_sub.add_parser(
        "compare",
        help="compare current bench records against committed baselines; "
             "exit 1 when a tracked metric regresses beyond its tolerance",
    )
    p_bc.add_argument(
        "--baseline", action="append", required=True, metavar="PATH",
        help="baseline record files or directories (repeatable)",
    )
    p_bc.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="current BENCH_*.json files or directories",
    )
    p_bc.set_defaults(func=_cmd_bench_compare)
    return parser


#: Commands recorded in the run ledger.  Pure introspection (``list``,
#: ``predict``) stays out; everything that measures, fits, searches, or
#: gates appends a fingerprinted entry.
_LEDGERED = {
    "run", "sweep", "characterize", "fit", "compare-models",
    "optimize-placement", "bench",
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    global _ACTIVE_LEDGER
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command not in _LEDGERED:
        return args.func(args)
    kind = args.command
    if kind == "bench":
        kind = f"bench-{args.bench_command}"
    _ACTIVE_LEDGER = _LedgerScope(
        kind, argv=list(argv) if argv is not None else sys.argv[1:]
    )
    code = 1
    try:
        code = args.func(args)
        return code
    finally:
        scope, _ACTIVE_LEDGER = _ACTIVE_LEDGER, None
        scope.finish(code)


if __name__ == "__main__":  # pragma: no cover
    try:
        code = main()
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe early;
        # detach stdout so interpreter shutdown does not re-raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
