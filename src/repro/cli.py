"""Command-line interface.

Examples
--------
List experiments::

    python -m repro.cli list

Run one figure at smoke scale and save its CSV::

    python -m repro.cli run fig06 --scale smoke --csv out/fig06.csv

Characterise a cluster (fit its contention signature)::

    python -m repro.cli characterize gigabit-ethernet --nprocs 16

Predict an All-to-All time from paper-reported signatures::

    python -m repro.cli predict gigabit-ethernet 40 1048576
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .clusters.profiles import CLUSTERS, get_cluster
from .core.hockney import HockneyParams
from .core.signature import ContentionSignature
from .experiments.registry import EXPERIMENTS, run_experiment
from .measure.pipeline import characterize_cluster
from .units import format_time, parse_size


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(e) for e in EXPERIMENTS)
    for exp_id, spec in EXPERIMENTS.items():
        print(f"{exp_id:<{width}}  {spec.paper_ref:<14} {spec.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_experiment(args.experiment, scale=args.scale, seed=args.seed)
    print(result.render())
    if args.csv:
        result.save_csv(args.csv)
        print(f"\nsaved: {args.csv}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    cluster = get_cluster(args.cluster)
    ch = characterize_cluster(
        cluster,
        sample_nprocs=args.nprocs,
        reps=args.reps,
        seed=args.seed,
    )
    hockney = ch.hockney_fit.params
    sig = ch.signature
    print(f"cluster     : {cluster.name}")
    print(f"description : {cluster.description}")
    print(f"hockney     : {hockney}")
    print(f"signature   : {sig}")
    if cluster.paper:
        print(
            f"paper       : gamma={cluster.paper.gamma} "
            f"delta={cluster.paper.delta * 1e3:.2f} ms "
            f"M={cluster.paper.threshold} B"
        )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    cluster = get_cluster(args.cluster)
    if cluster.paper is None:
        print("no paper signature recorded for this cluster", file=sys.stderr)
        return 1
    # A reference Hockney pair per network class (paper-scale constants).
    alpha = cluster.transport.base_latency
    topology = cluster.topology(2)
    beta = 1.0 / topology.links[topology.hosts[0].tx_link].capacity
    signature = ContentionSignature(
        gamma=cluster.paper.gamma,
        delta=cluster.paper.delta,
        threshold=cluster.paper.threshold,
        hockney=HockneyParams(alpha=alpha, beta=beta),
    )
    size = parse_size(args.msg_size)
    time = signature.predict(args.nprocs, size)
    bound = signature.lower_bound(args.nprocs, size)
    print(f"predicted MPI_Alltoall({args.nprocs} procs, {size} B):")
    print(f"  prediction : {format_time(float(time))}")
    print(f"  lower bound: {format_time(float(bound))}")
    print(f"  signature  : {signature}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-alltoall",
        description="All-to-All contention modeling (CLUSTER 2006 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list reproducible experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--scale", default="default",
                       choices=["smoke", "default", "full"])
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--csv", default=None, help="save data rows to CSV")
    p_run.set_defaults(func=_cmd_run)

    p_char = sub.add_parser(
        "characterize", help="fit a cluster's contention signature"
    )
    p_char.add_argument("cluster", choices=sorted(CLUSTERS))
    p_char.add_argument("--nprocs", type=int, default=16)
    p_char.add_argument("--reps", type=int, default=2)
    p_char.add_argument("--seed", type=int, default=0)
    p_char.set_defaults(func=_cmd_characterize)

    p_pred = sub.add_parser(
        "predict", help="predict an All-to-All time from paper signatures"
    )
    p_pred.add_argument("cluster", choices=sorted(CLUSTERS))
    p_pred.add_argument("nprocs", type=int)
    p_pred.add_argument("msg_size", help="bytes or size string like 256kB")
    p_pred.set_defaults(func=_cmd_predict)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
