"""Command-line interface.

Examples
--------
List experiments and every registered cluster/topology/algorithm/backend::

    python -m repro.cli list
    python -m repro.cli list clusters

Run a declarative scenario file (sweep its workload grid, then fit the
contention signature)::

    python -m repro.cli run --scenario examples/scenarios/edge_core_gige_stress.toml

Run one figure at smoke scale and save its CSV::

    python -m repro.cli run fig06 --scale smoke --csv out/fig06.csv

Characterise a cluster (fit its contention signature)::

    python -m repro.cli characterize gigabit-ethernet --nprocs 16

Predict an All-to-All time from paper-reported signatures::

    python -m repro.cli predict gigabit-ethernet 40 1048576

Run a (clusters x nprocs x sizes x algorithms x seeds) grid on a worker
pool with result caching, streaming rows as points complete::

    python -m repro.cli sweep --clusters gigabit-ethernet,myrinet \
        --nprocs 4,8 --sizes 2kB,32kB,256kB --algorithms direct,bruck \
        --workers 4 --executor process --progress \
        --cache-dir ~/.cache/repro-alltoall/sweeps \
        --csv out/sweep.csv --output out/sweep.jsonl
"""

from __future__ import annotations

import argparse
import sys

from . import api, __version__
from .exceptions import (
    FittingError,
    MeasurementError,
    ScenarioError,
    UnknownNameError,
)
from .experiments.registry import EXPERIMENTS, run_experiment
from .units import format_time, parse_size

def _doc_summary(obj) -> str:
    """First docstring line, or empty (user plugins may be undocumented)."""
    lines = (obj.__doc__ or "").splitlines()
    return lines[0].strip() if lines else ""


#: Sections of ``repro-alltoall list`` (name -> row enumerator).
_LIST_SECTIONS = {
    "experiments": lambda: [
        (exp_id, f"{spec.paper_ref:<14} {spec.description}")
        for exp_id, spec in EXPERIMENTS.items()
    ],
    "clusters": lambda: [
        (name, api.CLUSTERS.get(name)().description)
        for name in api.list_clusters()
    ],
    "topologies": lambda: [
        (name, _doc_summary(api.TOPOLOGIES.get(name)))
        for name in api.list_topologies()
    ],
    "algorithms": lambda: [
        (name, _doc_summary(api.ALGORITHMS.get(name)))
        for name in api.list_algorithms()
    ],
    "patterns": lambda: [
        (name, _doc_summary(api.PATTERNS.get(name)))
        for name in api.list_patterns()
    ],
    "backends": lambda: [(name, "") for name in api.list_backends()],
    "executors": lambda: [
        (name, _doc_summary(api.EXECUTORS.get(name)))
        for name in api.list_executors()
    ],
}


def _parse_pattern_arg(text: str):
    """``name`` or ``name:k=v,k2=v2`` → a pattern dict for SweepSpec.

    Values parse as int, then float, then the booleans, else string —
    ``hotspot:targets=2,factor=8`` or ``zipf:exponent=1.5``.
    """
    name, _, param_part = text.partition(":")
    params = {}
    for item in param_part.split(","):
        if not item.strip():
            continue
        key, sep, raw = item.partition("=")
        if not sep or not key.strip():
            raise ValueError(
                f"bad pattern parameter {item!r} (expected key=value)"
            )
        raw = raw.strip()
        value: object
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
        params[key.strip()] = value
    return {"name": name.strip(), "params": params}


def _cmd_list(args: argparse.Namespace) -> int:
    wanted = (
        list(_LIST_SECTIONS) if args.what in (None, "all") else [args.what]
    )
    for position, section in enumerate(wanted):
        rows = _LIST_SECTIONS[section]()
        if len(wanted) > 1:
            if position:
                print()
            print(f"{section}:")
        width = max(len(name) for name, _ in rows)
        for name, description in rows:
            print(f"  {name:<{width}}  {description}".rstrip())
    return 0


def _resolve_cluster_arg(name: str) -> tuple["api.Scenario", bool]:
    """A cluster name (registry, alias-tolerant) or a scenario file path.

    Only ``.toml``/``.json`` arguments are treated as files, so a
    stray local file named after a cluster can never shadow the
    registry.  Returns ``(scenario, from_file)``; the caller turns
    lookup errors (:class:`UnknownNameError` / :class:`ScenarioError`)
    into exit codes.
    """
    if name.endswith((".toml", ".json")):
        return api.Scenario.from_file(name), True
    return api.Scenario.from_name(name), False


def _load_scenario(path: str) -> "api.Scenario | None":
    """Load a scenario file, printing a clean error on failure."""
    try:
        return api.Scenario.from_file(path)
    except (OSError, ScenarioError, UnknownNameError) as exc:
        print(exc, file=sys.stderr)
        return None


def _print_sweep_summary(result, *, csv=None, jsonl=None, streamed=()) -> None:
    """The shared simulated/cached/elapsed block of sweep-style output.

    *streamed* paths were written incrementally during the run by
    streaming sinks; *csv*/*jsonl* are saved here, post-hoc.
    """
    print(f"simulated : {result.n_simulated}")
    print(f"cached    : {result.n_cached}")
    if result.n_failed:
        print(f"failed    : {result.n_failed}")
    print(f"elapsed   : {result.elapsed:.2f} s")
    for label, path in streamed:
        print(f"{label:<10}: {path}")
    if csv:
        print(f"csv       : {result.save_csv(csv)}")
    if jsonl:
        print(f"jsonl     : {result.save_jsonl(jsonl)}")


def _sweep_sinks(args) -> tuple[tuple, list[tuple[str, str]]]:
    """Streaming sinks for ``--csv``/``--jsonl``/``--output`` flags.

    All three stream: rows are appended and flushed as each point
    lands, so an interrupted sweep keeps every completed row.
    """
    from .exec.sinks import CsvSink, JsonlSink, sink_for

    sinks, streamed = [], []
    if args.csv:
        sinks.append(CsvSink(args.csv))
        streamed.append(("csv", args.csv))
    if args.jsonl:
        sinks.append(JsonlSink(args.jsonl))
        streamed.append(("jsonl", args.jsonl))
    for path in args.output or ():
        sinks.append(sink_for(path))
        streamed.append(("stream", path))
    return tuple(sinks), streamed


def _progress_printer():
    """Per-point progress callback writing one line to stderr."""

    def _report(done: int, total: int, result) -> None:
        point = result.point
        if not result.ok:
            status = f"error: {result.error}"
        elif result.cached:
            status = "cached"
        else:
            status = format_time(result.sample.mean_time)
        print(
            f"[{done}/{total}] {point.cluster} {point.algorithm} "
            f"n={point.n_processes} m={point.msg_size} {status}",
            file=sys.stderr,
            flush=True,
        )

    return _report


def _cmd_run(args: argparse.Namespace) -> int:
    if args.scenario and args.experiment:
        print(
            "run takes an experiment id or --scenario FILE, not both",
            file=sys.stderr,
        )
        return 2
    if args.scenario:
        return _run_scenario(args)
    if not args.experiment:
        print("run needs an experiment id or --scenario FILE", file=sys.stderr)
        return 2
    result = run_experiment(args.experiment, scale=args.scale, seed=args.seed)
    print(result.render())
    if args.csv:
        result.save_csv(args.csv)
        print(f"\nsaved: {args.csv}")
    return 0


def _run_scenario(args: argparse.Namespace) -> int:
    """Sweep a scenario file's workload grid, then fit its signature."""
    scenario = _load_scenario(args.scenario)
    if scenario is None:
        return 2
    print(f"scenario  : {scenario.describe()}")
    try:
        result = scenario.sweep()
    except (MeasurementError, ScenarioError) as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    print(f"points    : {result.n_points}")
    _print_sweep_summary(result, csv=args.csv)
    try:
        ch = scenario.fit_signature()
    except (FittingError, MeasurementError) as exc:
        print(f"cannot fit signature: {exc}", file=sys.stderr)
        return 1
    print(f"hockney   : {ch.hockney_fit.params}")
    print(f"signature : {ch.signature}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    try:
        scenario, from_file = _resolve_cluster_arg(args.cluster)
    except (OSError, UnknownNameError, ScenarioError) as exc:
        print(exc, file=sys.stderr)
        return 2
    cluster = scenario.profile
    workload = scenario.spec.workload
    kwargs = {}
    if not from_file:
        # Plain cluster names keep the historical CLI defaults (n'=16,
        # the pipeline's 8-size ladder); scenario files bring their own
        # workload.
        from .measure.pipeline import DEFAULT_SAMPLE_SIZES

        kwargs["sample_sizes"] = DEFAULT_SAMPLE_SIZES
    try:
        ch = scenario.fit_signature(
            sample_nprocs=(
                args.nprocs
                or (workload.fit_nprocs if from_file else 16)
            ),
            reps=args.reps if args.reps is not None
            else (workload.reps if from_file else 2),
            seed=args.seed if args.seed is not None
            else (workload.seeds[0] if from_file else 0),
            **kwargs,
        )
    except (FittingError, MeasurementError) as exc:
        print(f"cannot fit signature: {exc}", file=sys.stderr)
        return 1
    hockney = ch.hockney_fit.params
    sig = ch.signature
    print(f"cluster     : {cluster.name}")
    print(f"description : {cluster.description}")
    print(f"hockney     : {hockney}")
    print(f"signature   : {sig}")
    if cluster.paper:
        print(
            f"paper       : gamma={cluster.paper.gamma} "
            f"delta={cluster.paper.delta * 1e3:.2f} ms "
            f"M={cluster.paper.threshold} B"
        )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    try:
        scenario, _ = _resolve_cluster_arg(args.cluster)
    except (OSError, UnknownNameError, ScenarioError) as exc:
        print(exc, file=sys.stderr)
        return 2
    size = parse_size(args.msg_size)
    try:
        signature = scenario.paper_signature(size)
    except ScenarioError:
        print("no paper signature recorded for this cluster", file=sys.stderr)
        return 1
    time = signature.predict(args.nprocs, size)
    bound = signature.lower_bound(args.nprocs, size)
    print(f"predicted MPI_Alltoall({args.nprocs} procs, {size} B):")
    print(f"  prediction : {format_time(float(time))}")
    print(f"  lower bound: {format_time(float(bound))}")
    print(f"  signature  : {signature}")
    return 0


def _csv_list(text: str) -> list[str]:
    """Split a comma-separated CLI value, dropping empties."""
    return [item.strip() for item in text.split(",") if item.strip()]


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sweeps import ResultCache, SweepRunner, SweepSpec, default_cache_dir

    cache = None if args.no_cache else ResultCache(
        args.cache_dir or default_cache_dir()
    )
    try:
        runner = SweepRunner(
            workers=args.workers,
            cache=cache,
            executor=args.executor,
            retries=args.retries,
            on_error="keep" if args.keep_going else "raise",
        )
        sinks, streamed = _sweep_sinks(args)
    except ValueError as exc:
        print(f"invalid sweep options: {exc}", file=sys.stderr)
        return 2
    progress = _progress_printer() if args.progress else None

    axis_flags = (
        "clusters", "nprocs", "sizes", "algorithms", "pattern",
        "seeds", "reps",
    )
    if args.scenario:
        given = [f"--{f}" for f in axis_flags if getattr(args, f) is not None]
        if given:
            print(
                f"--scenario brings its own workload grid; drop {', '.join(given)}",
                file=sys.stderr,
            )
            return 2
        scenario = _load_scenario(args.scenario)
        if scenario is None:
            return 2
        try:
            result = scenario.sweep(runner=runner, sinks=sinks, progress=progress)
        except (MeasurementError, ScenarioError) as exc:
            print(f"sweep failed: {exc}", file=sys.stderr)
            return 1
        print(f"sweep     : {scenario.describe()}")
        print(f"workers   : {runner.workers} ({runner.executor_name} executor)")
        print(f"cache     : {cache.root if cache is not None else 'disabled'}")
        _print_sweep_summary(result, streamed=streamed)
        return 1 if result.n_failed else 0

    try:
        spec = SweepSpec(
            clusters=tuple(_csv_list(args.clusters or "gigabit-ethernet")),
            nprocs=tuple(int(n) for n in _csv_list(args.nprocs or "4,8")),
            sizes=tuple(
                parse_size(s) for s in _csv_list(args.sizes or "2kB,32kB,256kB")
            ),
            algorithms=tuple(_csv_list(args.algorithms or "direct")),
            patterns=(
                tuple(_parse_pattern_arg(p) for p in args.pattern)
                if args.pattern
                else (None,)
            ),
            seeds=tuple(int(s) for s in _csv_list(args.seeds or "0")),
            reps=args.reps if args.reps is not None else 1,
        )
    except ValueError as exc:
        print(f"invalid sweep spec: {exc}", file=sys.stderr)
        return 2
    try:
        result = runner.run(spec, sinks=sinks, progress=progress)
    except KeyError as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2
    except (MeasurementError, ScenarioError) as exc:
        # e.g. a pattern whose matrix degenerates at some grid point
        # (shift:offset=n) — report cleanly, not as a traceback.
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1

    print(f"sweep     : {spec.describe()}")
    print(f"workers   : {runner.workers} ({runner.executor_name} executor)")
    print(f"cache     : {cache.root if cache is not None else 'disabled'}")
    _print_sweep_summary(result, streamed=streamed)
    if not sinks:
        slowest = sorted(
            (r for r in result.results if r.ok),
            key=lambda r: r.sample.mean_time, reverse=True,
        )[:5]
        print("slowest points:")
        for r in slowest:
            print(
                f"  {r.point.cluster:<18} {r.point.algorithm:<7} "
                f"n={r.point.n_processes:<3} m={r.point.msg_size:<8} "
                f"{format_time(r.sample.mean_time)}"
            )
    return 1 if result.n_failed else 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-alltoall",
        description="All-to-All contention modeling (CLUSTER 2006 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser(
        "list",
        help="list experiments and registered clusters/topologies/"
             "algorithms/backends",
    )
    p_list.add_argument(
        "what", nargs="?", default="all",
        choices=["all", *_LIST_SECTIONS],
        help="section to list (default: all)",
    )
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment or a scenario file")
    p_run.add_argument(
        "experiment", nargs="?", choices=sorted(EXPERIMENTS), default=None
    )
    p_run.add_argument(
        "--scenario", default=None, metavar="FILE",
        help="sweep + characterise a declarative scenario (.toml/.json)",
    )
    p_run.add_argument("--scale", default="default",
                       choices=["smoke", "default", "full"])
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--csv", default=None, help="save data rows to CSV")
    p_run.set_defaults(func=_cmd_run)

    p_char = sub.add_parser(
        "characterize", help="fit a cluster's contention signature"
    )
    p_char.add_argument(
        "cluster",
        help="registered cluster name (alias-tolerant) or scenario file",
    )
    p_char.add_argument("--nprocs", type=int, default=None)
    p_char.add_argument("--reps", type=int, default=None)
    p_char.add_argument("--seed", type=int, default=None)
    p_char.set_defaults(func=_cmd_characterize)

    p_pred = sub.add_parser(
        "predict", help="predict an All-to-All time from paper signatures"
    )
    p_pred.add_argument(
        "cluster",
        help="registered cluster name (alias-tolerant) or scenario file",
    )
    p_pred.add_argument("nprocs", type=int)
    p_pred.add_argument("msg_size", help="bytes or size string like 256kB")
    p_pred.set_defaults(func=_cmd_predict)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a measurement grid on a worker pool with result caching",
    )
    p_sweep.add_argument(
        "--scenario", default=None, metavar="FILE",
        help="sweep a declarative scenario file instead of the axis flags",
    )
    p_sweep.add_argument(
        "--clusters", default=None,
        help="comma-separated cluster names (default: gigabit-ethernet)",
    )
    p_sweep.add_argument(
        "--nprocs", default=None,
        help="comma-separated process counts (default: 4,8)",
    )
    p_sweep.add_argument(
        "--sizes", default=None,
        help="comma-separated message sizes, bytes or strings like 256kB "
             "(default: 2kB,32kB,256kB)",
    )
    p_sweep.add_argument(
        "--algorithms", default=None,
        help="comma-separated algorithm names (default: direct; see "
             "`list algorithms`)",
    )
    p_sweep.add_argument(
        "--pattern", action="append", default=None, metavar="NAME[:K=V,...]",
        help="traffic pattern axis entry, e.g. hotspot:targets=2,factor=8 "
             "(repeatable; default: the uniform regular All-to-All; see "
             "`list patterns`)",
    )
    p_sweep.add_argument(
        "--seeds", default=None, help="comma-separated base seeds (default: 0)"
    )
    p_sweep.add_argument("--reps", type=int, default=None,
                         help="repetitions per point (default: 1)")
    p_sweep.add_argument(
        "--workers", type=int, default=1, help="worker process count"
    )
    p_sweep.add_argument(
        "--executor", default=None, metavar="NAME",
        help="execution backend for cache-missed points: serial, process "
             "(persistent warm worker pool, reused across runs), futures, "
             "or a user-registered executor (default: process when "
             "--workers > 1, else serial; see `list executors`)",
    )
    p_sweep.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-run a failed point up to N times before recording its "
             "error (default: 0)",
    )
    p_sweep.add_argument(
        "--keep-going", action="store_true",
        help="record failed points as error rows and finish the sweep "
             "(exit 1) instead of aborting on the first failure",
    )
    p_sweep.add_argument(
        "--progress", action="store_true",
        help="print one line per completed point to stderr",
    )
    p_sweep.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_SWEEP_CACHE or "
             "~/.cache/repro-alltoall/sweeps)",
    )
    p_sweep.add_argument(
        "--no-cache", action="store_true", help="always simulate"
    )
    p_sweep.add_argument(
        "--csv", default=None,
        help="stream rows to a CSV file as points complete",
    )
    p_sweep.add_argument(
        "--jsonl", default=None,
        help="stream rows to a JSONL file as points complete",
    )
    p_sweep.add_argument(
        "--output", action="append", default=None, metavar="FILE",
        help="stream rows to FILE, sink picked by extension "
             "(.csv or .jsonl; repeatable)",
    )
    p_sweep.set_defaults(func=_cmd_sweep)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
