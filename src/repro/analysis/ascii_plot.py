"""ASCII rendering of the paper's figures (no matplotlib offline).

Three renderers cover every figure shape in the evaluation:

* :func:`line_plot`    — multi-series x/y curves (Figs. 2, 4, 6, 8, 9, 11, 12, 14)
* :func:`scatter_plot` — point clouds (Fig. 3)
* :func:`surface_table`— (n, m) grids rendered as a table (Figs. 5, 7, 10, 13)
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

__all__ = ["line_plot", "scatter_plot", "surface_table"]

_MARKERS = "*+ox#@%&"


def _bounds(values, lo=None, hi=None) -> tuple[float, float]:
    arr = np.asarray(values, dtype=np.float64)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return 0.0, 1.0
    vmin = float(arr.min()) if lo is None else lo
    vmax = float(arr.max()) if hi is None else hi
    if math.isclose(vmin, vmax):
        pad = abs(vmin) * 0.1 or 1.0
        return vmin - pad, vmax + pad
    return vmin, vmax


def _render(
    series_points: Mapping[str, tuple[np.ndarray, np.ndarray]],
    *,
    title: str,
    xlabel: str,
    ylabel: str,
    width: int,
    height: int,
) -> str:
    all_x = np.concatenate([np.asarray(x, float) for x, _ in series_points.values()])
    all_y = np.concatenate([np.asarray(y, float) for _, y in series_points.values()])
    xmin, xmax = _bounds(all_x)
    ymin, ymax = _bounds(all_y)
    ymin = min(ymin, 0.0) if ymin > 0 else ymin

    grid = [[" "] * width for _ in range(height)]
    for index, (name, (xs, ys)) in enumerate(series_points.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(np.asarray(xs, float), np.asarray(ys, float)):
            if not (np.isfinite(x) and np.isfinite(y)):
                continue
            col = int(round((x - xmin) / (xmax - xmin) * (width - 1)))
            row = int(round((y - ymin) / (ymax - ymin) * (height - 1)))
            row = height - 1 - row
            if 0 <= row < height and 0 <= col < width:
                grid[row][col] = marker

    lines = [title.center(width + 12)]
    for row_idx, row in enumerate(grid):
        y_val = ymax - (ymax - ymin) * row_idx / (height - 1)
        lines.append(f"{y_val:>10.3g} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 11
        + f"{xmin:<12.4g}{' ' * max(width - 24, 1)}{xmax:>12.4g}"
    )
    lines.append(f"{'x: ' + xlabel:>{width // 2}}   y: {ylabel}")
    legend = "  ".join(
        f"[{_MARKERS[i % len(_MARKERS)]}] {name}"
        for i, name in enumerate(series_points)
    )
    lines.append(legend)
    return "\n".join(lines)


def line_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
    width: int = 64,
    height: int = 18,
) -> str:
    """Render named (x, y) series as an ASCII chart."""
    if not series:
        raise ValueError("need at least one series")
    points = {
        name: (np.asarray(x, float), np.asarray(y, float))
        for name, (x, y) in series.items()
    }
    return _render(
        points, title=title, xlabel=xlabel, ylabel=ylabel,
        width=width, height=height,
    )


def scatter_plot(
    xs,
    ys,
    *,
    overlay: Mapping[str, tuple[Sequence[float], Sequence[float]]] | None = None,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
    width: int = 64,
    height: int = 18,
) -> str:
    """Point cloud with optional overlay series (Fig. 3 style)."""
    series: dict[str, tuple[np.ndarray, np.ndarray]] = {
        "samples": (np.asarray(xs, float), np.asarray(ys, float))
    }
    for name, (ox, oy) in (overlay or {}).items():
        series[name] = (np.asarray(ox, float), np.asarray(oy, float))
    return _render(
        series, title=title, xlabel=xlabel, ylabel=ylabel,
        width=width, height=height,
    )


def surface_table(
    n_values,
    m_values,
    grid,
    *,
    title: str = "",
    value_format: str = "{:.4f}",
    col_label: str = "m (bytes)",
    row_label: str = "n",
) -> str:
    """Render a (n, m) surface as a labelled table (3-D figure stand-in)."""
    grid = np.asarray(grid, dtype=np.float64)
    n_values = list(n_values)
    m_values = list(m_values)
    if grid.shape != (len(n_values), len(m_values)):
        raise ValueError(
            f"grid shape {grid.shape} does not match "
            f"({len(n_values)}, {len(m_values)})"
        )
    header_cells = [f"{row_label}\\{col_label}"] + [str(m) for m in m_values]
    rows = [header_cells]
    for i, n in enumerate(n_values):
        rows.append([str(n)] + [value_format.format(v) for v in grid[i]])
    widths = [max(len(r[c]) for r in rows) for c in range(len(header_cells))]
    lines = [title] if title else []
    for r_idx, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if r_idx == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)
