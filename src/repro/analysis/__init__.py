"""Analysis utilities: ASCII figures, CSV IO."""

from .ascii_plot import line_plot, scatter_plot, surface_table
from .io import read_csv, rows_from_series, write_csv

__all__ = [
    "line_plot",
    "scatter_plot",
    "surface_table",
    "read_csv",
    "rows_from_series",
    "write_csv",
]
