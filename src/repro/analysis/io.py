"""CSV persistence for experiment results (figure data files)."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Mapping, Sequence

__all__ = ["write_csv", "read_csv", "rows_from_series"]


def write_csv(
    path: str | Path,
    fieldnames: Sequence[str],
    rows: Iterable[Mapping[str, object]],
) -> Path:
    """Write dict rows to *path* (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(fieldnames))
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def read_csv(path: str | Path) -> list[dict[str, str]]:
    """Read dict rows back (values as strings)."""
    with Path(path).open(newline="") as handle:
        return list(csv.DictReader(handle))


def rows_from_series(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    x_name: str = "x",
) -> tuple[list[str], list[dict[str, object]]]:
    """Pivot named (x, y) series into joined rows keyed on x."""
    all_x: list[float] = sorted(
        {float(x) for xs, _ in series.values() for x in xs}
    )
    fieldnames = [x_name] + list(series)
    lookup = {
        name: {float(x): float(y) for x, y in zip(xs, ys)}
        for name, (xs, ys) in series.items()
    }
    rows = []
    for x in all_x:
        row: dict[str, object] = {x_name: x}
        for name in series:
            value = lookup[name].get(x)
            row[name] = "" if value is None else value
        rows.append(row)
    return fieldnames, rows
