"""CSV/JSONL persistence for experiment results (figure data files)."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "write_csv",
    "read_csv",
    "read_rows",
    "read_sweep_rows",
    "coerce_value",
    "rows_from_series",
    "SWEEP_SCHEMA",
]

#: Explicit converters for every column the sweep sinks emit
#: (:data:`repro.exec.sinks.ROW_FIELDS` + the opt-in stats columns).
#: The point: label-like columns stay textual even when their values
#: look numeric — a pattern key, a ``placement`` cell like
#: ``explicit[1,0]`` or a cluster named ``2048`` must never come back
#: as a number.  :func:`read_sweep_rows` applies the applicable subset.
SWEEP_SCHEMA: dict[str, Callable[[str], object]] = {
    "cluster": str,
    "algorithm": str,
    "pattern": str,
    "placement": str,
    "n_processes": int,
    "msg_size": int,
    "seed": int,
    "reps": int,
    "mean_time": float,
    "std_time": float,
    "cached": int,
    "error": str,
    "engine": str,
    "sim_resolves": int,
    "sim_epochs": int,
    "sim_events": int,
    "sim_losses": int,
    "sim_stalls": int,
    "sim_solve_reuses": int,
}


def write_csv(
    path: str | Path,
    fieldnames: Sequence[str],
    rows: Iterable[Mapping[str, object]],
) -> Path:
    """Write dict rows to *path* (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(fieldnames))
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def read_csv(path: str | Path) -> list[dict[str, str]]:
    """Read dict rows back (values as strings).

    Prefer :func:`read_rows` for anything numeric — CSV strings silently
    break arithmetic (``"2048" * 2`` concatenates).
    """
    with Path(path).open(newline="") as handle:
        return list(csv.DictReader(handle))


def coerce_value(value: str) -> object:
    """One CSV cell → the most specific of ``None``/int/float/str.

    The inverse of :func:`write_csv`'s stringification for scalar rows:
    empty cells read back as ``None``, integral text as ``int``, numeric
    text as ``float``, everything else — including non-string oddities
    like the spill list ``csv.DictReader`` emits for a row with extra
    cells — passes through unchanged.
    """
    if value is None or value == "":
        return None
    try:
        return int(value)
    except (TypeError, ValueError):
        pass
    try:
        return float(value)
    except (TypeError, ValueError):
        return value


def _check_schema_columns(schema, fieldnames: set, rows) -> None:
    """Reject schema columns absent from a non-empty file (typo guard)."""
    if not schema or not rows:
        return
    unknown = sorted(set(schema) - fieldnames)
    if unknown:
        raise ValueError(
            f"schema column(s) {unknown} not in file; "
            f"columns: {', '.join(sorted(fieldnames))}"
        )


def read_rows(
    path: str | Path,
    *,
    schema: Mapping[str, Callable[[str], object]] | None = None,
) -> list[dict[str, object]]:
    """Read tabular rows back with **typed** values.

    Dispatches on the file extension: ``.jsonl`` parses JSON lines
    (already typed), anything else reads CSV.  CSV cells are coerced
    with :func:`coerce_value` (empty → ``None``, numeric text →
    int/float) so fitting code never does string math; *schema* maps
    column names to explicit converters, overriding the automatic
    coercion for those columns (e.g. ``{"seed": str}`` to keep a
    numeric-looking label textual).  Unknown schema columns are
    rejected — a typo'd column name must not silently fall back to
    auto-coercion.
    """
    path = Path(path)
    if path.suffix.lower() == ".jsonl":
        with path.open() as handle:
            rows = [json.loads(line) for line in handle if line.strip()]
        # Heterogeneous lines are legal JSONL: validate against the
        # union of keys, not just the first row's.
        _check_schema_columns(
            schema, {column for row in rows for column in row}, rows
        )
        if schema:
            for row in rows:
                for column, convert in schema.items():
                    if column in row and row[column] is not None:
                        row[column] = convert(row[column])
        return rows
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        raw = list(reader)
        # Validate against the header, not a data row: ragged rows add
        # DictReader's None restkey, which must not leak into messages.
        header = set(reader.fieldnames or ())
    _check_schema_columns(schema, header, raw)
    rows = []
    for record in raw:
        row: dict[str, object] = {}
        for column, value in record.items():
            if schema and column in schema:
                row[column] = None if value in (None, "") else schema[column](value)
            else:
                row[column] = coerce_value(value)
        rows.append(row)
    return rows


def read_sweep_rows(path: str | Path) -> list[dict[str, object]]:
    """Read sweep-sink rows back under :data:`SWEEP_SCHEMA` typing.

    Like :func:`read_rows`, but the known sweep columns get their
    canonical converters, restricted to the columns the file actually
    has — files from before a column existed (e.g. pre-placement
    sweeps) read back unchanged rather than failing the schema check.
    Extra user columns fall through to automatic coercion.
    """
    path = Path(path)
    if path.suffix.lower() == ".jsonl":
        with path.open() as handle:
            present = {
                column
                for line in handle
                if line.strip()
                for column in json.loads(line)
            }
    else:
        with path.open(newline="") as handle:
            present = set(csv.DictReader(handle).fieldnames or ())
    schema = {
        column: convert
        for column, convert in SWEEP_SCHEMA.items()
        if column in present
    }
    return read_rows(path, schema=schema or None)


def rows_from_series(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    x_name: str = "x",
) -> tuple[list[str], list[dict[str, object]]]:
    """Pivot named (x, y) series into joined rows keyed on x."""
    all_x: list[float] = sorted(
        {float(x) for xs, _ in series.values() for x in xs}
    )
    fieldnames = [x_name] + list(series)
    lookup = {
        name: {float(x): float(y) for x, y in zip(xs, ys)}
        for name, (xs, ys) in series.items()
    }
    rows = []
    for x in all_x:
        row: dict[str, object] = {x_name: x}
        for name in series:
            value = lookup[name].get(x)
            row[name] = "" if value is None else value
        rows.append(row)
    return fieldnames, rows
