"""Self-contained execution payloads for sweep points.

An :class:`ExecutionTask` is everything a worker — in this process or
another — needs to resolve one sweep point: the point coordinates plus a
*rebuild recipe* for the cluster it runs on.  Three recipes exist,
mirroring the three ways call sites hand fabrics to the sweep engine:

* **registry** (the default): the worker resolves ``point.cluster``
  through :data:`repro.registry.CLUSTERS`.  Always picklable.
* **scenario**: the worker rebuilds the profile from a
  :meth:`~repro.scenario.ScenarioSpec.to_dict` payload (profiles hold
  topology closures and cannot cross process boundaries; their specs
  can).  Rebuilds are memoised per worker process, so a persistent pool
  pays the profile construction once per scenario, not once per point.
* **profile**: the task carries the live
  :class:`~repro.clusters.profiles.ClusterProfile` object.  Not
  picklable — such tasks only ever run in-process (``portable`` is
  false) and the planner routes them to a serial executor.

:func:`run_task` is the **failure-isolation boundary**: it never raises.
Any exception from profile rebuilding or the simulation itself becomes
an error :class:`TaskOutcome` (message, exception type, traceback), so
one bad point cannot kill a million-point sweep or poison a worker
pool.  The runner decides what to do with errors (retry, collect, or
re-raise) — see :class:`repro.sweeps.SweepRunner`.
"""

from __future__ import annotations

import functools
import json
import time
import traceback as _tb
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.signature import AlltoallSample
from ..measure.alltoall import measure_alltoall
from ..obs.metrics import REGISTRY, diff_snapshots

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..clusters.profiles import ClusterProfile
    from ..sweeps.spec import SweepPoint

__all__ = ["ExecutionTask", "TaskOutcome", "run_task"]


@dataclass(frozen=True)
class ExecutionTask:
    """One sweep point plus the recipe to rebuild its cluster.

    ``index`` is the point's position in the caller's list; executors
    may complete tasks in any order, and the runner reassembles results
    by index.
    """

    index: int
    point: "SweepPoint"
    scenario: dict | None = None
    profile: "ClusterProfile | None" = None

    @property
    def portable(self) -> bool:
        """Whether the task may cross a process boundary (pickles cleanly)."""
        return self.profile is None


@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one task: a sample, or an isolated failure.

    ``elapsed`` is the in-worker wall time of this task's final attempt
    (profile rebuild + simulation), measured where the work actually
    ran — it crosses process boundaries as a plain float and feeds the
    sweep profiling layer (:class:`repro.obs.SweepProfile`).

    ``metrics`` is the worker-side metrics delta of this task (a
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`-shaped dict of
    what the task's work incremented), captured where the work ran.  It
    pickles across any executor; the runner merges it into the parent
    registry only when the outcome actually crossed a process boundary
    (in-process execution already incremented the parent's counters
    directly — merging again would double-count).
    """

    index: int
    sample: AlltoallSample | None = None
    error: str | None = None
    error_type: str | None = None
    traceback: str | None = None
    attempts: int = 1
    elapsed: float = 0.0
    metrics: dict | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@functools.lru_cache(maxsize=32)
def _scenario_profile(payload: str) -> "ClusterProfile":
    """Rebuild (and memoise) a scenario's profile from its JSON payload.

    Deterministic by construction — ``build_profile`` derives everything
    from the spec — so memoising per process is sound, and a persistent
    worker pool re-running the same scenario skips the rebuild entirely.
    """
    from ..scenario import ScenarioSpec

    return ScenarioSpec.from_dict(json.loads(payload)).build_profile()


def _cluster_for(task: ExecutionTask) -> "ClusterProfile":
    """Materialise the cluster a task runs on, per its recipe."""
    if task.profile is not None:
        return task.profile
    if task.scenario is not None:
        return _scenario_profile(json.dumps(task.scenario, sort_keys=True))
    from ..clusters.profiles import get_cluster

    return get_cluster(task.point.cluster)


def run_task(task: ExecutionTask) -> TaskOutcome:
    """Execute one task; never raises (the failure-isolation boundary).

    Top-level so worker processes can pickle it.  ``KeyboardInterrupt``
    and other non-``Exception`` signals still propagate — only genuine
    point failures are isolated.
    """
    point = task.point
    start = time.perf_counter()
    before = REGISTRY.snapshot()
    try:
        cluster = _cluster_for(task)
        sample = measure_alltoall(
            cluster,
            point.n_processes,
            point.msg_size,
            reps=point.reps,
            seed=point.seed,
            algorithm=point.algorithm,
            pattern=point.pattern,
            engine=point.engine,
            placement=point.placement,
        )
    except Exception as exc:
        return TaskOutcome(
            index=task.index,
            error=str(exc) or type(exc).__name__,
            error_type=type(exc).__name__,
            traceback=_tb.format_exc(),
            elapsed=time.perf_counter() - start,
            metrics=diff_snapshots(before, REGISTRY.snapshot()) or None,
        )
    return TaskOutcome(
        index=task.index,
        sample=sample,
        elapsed=time.perf_counter() - start,
        metrics=diff_snapshots(before, REGISTRY.snapshot()) or None,
    )
