"""Pluggable executors: *how* cache-missed sweep points run.

An executor consumes :class:`~repro.exec.task.ExecutionTask` batches and
yields :class:`~repro.exec.task.TaskOutcome` objects **as they
complete** (any order; the runner reassembles by index).  Built-ins:

* ``serial``  — in-process, in-order; zero overhead, always safe.
* ``process`` — a **persistent** ``multiprocessing.Pool`` streamed
  through ``imap_unordered`` with batched chunks.  The pool survives
  across ``run()`` calls, so consecutive sweeps on one runner reuse
  warm workers instead of re-forking (the dominant cost of short
  sweeps).  It is recycled automatically when the plugin registries
  change, so forked workers never run with a stale plugin view.
* ``futures`` — the same fan-out on ``concurrent.futures``
  (``ProcessPoolExecutor``), for environments that prefer that stack.

Register additional executors (SLURM, async, …) with
:func:`repro.registry.register_executor`::

    from repro.api import register_executor

    @register_executor("my-grid")
    def make(workers):
        return MyGridExecutor(workers)

Executors only ever see *portable* tasks when crossing process
boundaries — the sweep planner keeps unpicklable profile-recipe tasks
on the serial path (see ``SweepRunner._plan``).
"""

from __future__ import annotations

import atexit
import multiprocessing
from concurrent import futures as _cf
from typing import Iterable, Iterator, Sequence

from ..registry import EXECUTORS, register_executor, registry_epoch
from . import task as _task
from .task import ExecutionTask, TaskOutcome

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "FuturesExecutor",
    "get_executor",
]


class Executor:
    """Protocol for execution backends (subclass or duck-type it).

    Attributes
    ----------
    name:
        Registry name, echoed in logs and ``repro-alltoall list``.
    distributed:
        True when ``run`` ships tasks to other processes; the planner
        only fans out registry/scenario-recipe (picklable) tasks to
        distributed executors.
    """

    name = "base"
    distributed = False

    def run(self, tasks: Sequence[ExecutionTask]) -> Iterator[TaskOutcome]:
        """Yield one outcome per task, in completion order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any long-lived resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process, in-order execution (the ``workers=1`` path)."""

    name = "serial"
    distributed = False

    def run(self, tasks: Iterable[ExecutionTask]) -> Iterator[TaskOutcome]:
        for task in tasks:
            # Resolved through the module so tests can intercept the
            # single execution entry point for every executor at once.
            yield _task.run_task(task)


class _PooledExecutor(Executor):
    """Shared lifecycle for executors holding a persistent worker pool.

    The pool is created lazily on first ``run`` and **reused** across
    calls — a runner doing many consecutive ``run_points`` batches pays
    the spin-up cost once (warm start).  It is recycled automatically
    when the plugin registries change (forked workers must never
    resolve a stale registry view), and an ``atexit`` hook — registered
    only while a pool is live, unregistered on :meth:`close` so closed
    executors are not pinned in memory — reaps leftovers at interpreter
    exit.  Subclasses supply :meth:`_make_pool` / :meth:`_shutdown_pool`
    and ``run``.
    """

    distributed = True

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool = None
        self._epoch: int | None = None

    @property
    def warm(self) -> bool:
        """Whether a live pool is ready for reuse."""
        return self._pool is not None

    def _ensure_pool(self):
        epoch = registry_epoch()
        if self._pool is not None and epoch != self._epoch:
            # Plugins were (un)registered after the workers started; a
            # stale pool would resolve yesterday's registry view.
            self.close()
        if self._pool is None:
            self._pool = self._make_pool()
            self._epoch = epoch
            atexit.register(self.close)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._shutdown_pool(self._pool)
            self._pool = None
            atexit.unregister(self.close)

    def _make_pool(self):
        raise NotImplementedError

    def _shutdown_pool(self, pool) -> None:
        raise NotImplementedError


class ProcessExecutor(_PooledExecutor):
    """Persistent ``multiprocessing.Pool`` streaming ``imap_unordered``.

    Chunked submission amortises IPC: with *k* tasks and *w* workers,
    chunks of ``max(1, k // (4 w))`` keep the pool busy while bounding
    the tail latency of the final chunk.  Results stream back as
    workers finish, so the runner can append to sinks and fill the
    cache while later points are still simulating — memory stays
    bounded by the in-flight window, not the sweep size.
    """

    name = "process"

    @staticmethod
    def chunksize(n_tasks: int, workers: int) -> int:
        """Batched-streaming chunk size (4 waves per worker)."""
        return max(1, n_tasks // (workers * 4))

    def _make_pool(self):
        return multiprocessing.Pool(self.workers)

    def _shutdown_pool(self, pool) -> None:
        pool.terminate()
        pool.join()

    def run(self, tasks: Sequence[ExecutionTask]) -> Iterator[TaskOutcome]:
        pool = self._ensure_pool()
        yield from pool.imap_unordered(
            _task.run_task, tasks, chunksize=self.chunksize(len(tasks), self.workers)
        )


class FuturesExecutor(_PooledExecutor):
    """``concurrent.futures.ProcessPoolExecutor`` fan-out.

    Same persistence and registry-epoch recycling as
    :class:`ProcessExecutor`; submission is per-task (no chunking), so
    prefer ``process`` for very large sweeps and ``futures`` where the
    ``concurrent.futures`` ecosystem (custom pools, instrumentation)
    matters more than peak submission throughput.
    """

    name = "futures"

    def _make_pool(self):
        return _cf.ProcessPoolExecutor(max_workers=self.workers)

    def _shutdown_pool(self, pool) -> None:
        pool.shutdown()

    def run(self, tasks: Sequence[ExecutionTask]) -> Iterator[TaskOutcome]:
        pool = self._ensure_pool()
        pending = [pool.submit(_task.run_task, task) for task in tasks]
        for future in _cf.as_completed(pending):
            yield future.result()


@register_executor("serial", aliases=("inline", "sync"))
def _make_serial(workers: int = 1) -> SerialExecutor:
    """In-process execution; ``workers`` is accepted for uniformity."""
    return SerialExecutor()


@register_executor("process", aliases=("pool", "multiprocessing"))
def _make_process(workers: int = 1) -> ProcessExecutor:
    """Persistent multiprocessing pool with chunked unordered streaming."""
    return ProcessExecutor(workers)


@register_executor("futures", aliases=("concurrent-futures",))
def _make_futures(workers: int = 1) -> FuturesExecutor:
    """concurrent.futures process pool."""
    return FuturesExecutor(workers)


def get_executor(kind: str, workers: int = 1) -> Executor:
    """Executor factory, resolved through the executor registry.

    Unknown kinds raise :class:`~repro.exceptions.UnknownNameError`
    naming the registered executors.
    """
    return EXECUTORS.get(kind)(workers)
