"""Execution subsystem: pluggable backends + streaming result delivery.

The sweep engine used to hard-wire one blocking ``Pool.map`` call with
three copy-pasted execution branches; this package replaces that hot
path with three small, separately-testable pieces:

* :mod:`~repro.exec.task` — :class:`ExecutionTask` (point + cluster
  rebuild recipe) and :func:`run_task`, the never-raising
  failure-isolation boundary every executor funnels through;
* :mod:`~repro.exec.executors` — the :class:`Executor` protocol behind
  the ``@register_executor`` registry, with built-ins ``serial``,
  ``process`` (persistent warm pool + chunked ``imap_unordered``
  streaming) and ``futures``;
* :mod:`~repro.exec.sinks` — streaming :class:`ResultSink` targets
  (incremental CSV/JSONL append, callbacks) fed one row per point as
  it lands, keeping arbitrarily large sweeps in bounded memory.

Results are bit-identical across executors: every point derives its
random streams by name from its own coordinates (see
:mod:`repro.sweeps`), so ordering, worker count, and backend choice
can never change a sample — only how fast it arrives.
"""

from .executors import (
    Executor,
    FuturesExecutor,
    ProcessExecutor,
    SerialExecutor,
    get_executor,
)
from .sinks import (
    ROW_FIELDS,
    CallbackSink,
    CsvSink,
    JsonlSink,
    ResultSink,
    sink_for,
)
from .task import ExecutionTask, TaskOutcome, run_task

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "FuturesExecutor",
    "get_executor",
    "ExecutionTask",
    "TaskOutcome",
    "run_task",
    "ResultSink",
    "CsvSink",
    "JsonlSink",
    "CallbackSink",
    "sink_for",
    "ROW_FIELDS",
]
