"""Streaming result sinks: rows land as points complete.

A sink receives one flat row per resolved sweep point as the sweep
progresses, each write flushed to disk — so results reach disk long
before the sweep ends, an interrupted run keeps every completed row,
and a tail process (``tail -f sweep.jsonl``) watches progress live.
Rows arrive in **expansion order** (the runner reorders unordered
worker completions, streaming the contiguous prefix immediately and
draining the remainder on close), so sink files are byte-identical
across executors and worker counts.

Sinks are deliberately tiny: ``open(fieldnames)`` once, ``write(row)``
per point, ``close()`` in a ``finally``.  The row schema is
:data:`ROW_FIELDS` (the same columns ``SweepResult.to_rows`` reports);
failed points carry an ``error`` message and empty timings.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Callable, Sequence

__all__ = [
    "ROW_FIELDS",
    "STATS_ROW_FIELDS",
    "row_fields",
    "ResultSink",
    "CsvSink",
    "JsonlSink",
    "CallbackSink",
    "sink_for",
]

#: Column order of streamed sweep rows (and of ``SweepResult.to_rows``).
ROW_FIELDS = [
    "cluster", "algorithm", "pattern", "placement", "n_processes", "msg_size",
    "seed", "reps", "mean_time", "std_time", "cached", "error",
]

#: Observability columns appended when ``REPRO_SIM_STATS`` is truthy:
#: which engine simulated the point and its per-point simulation-effort
#: counters (summed over reps; empty for cache hits, which carry no
#: counters).
STATS_ROW_FIELDS = [
    "engine", "sim_resolves", "sim_epochs", "sim_events",
    "sim_losses", "sim_stalls", "sim_solve_reuses",
]


def row_fields() -> list[str]:
    """The active row schema (stats columns appended when enabled)."""
    from ..simnet.stats import stats_enabled

    if stats_enabled():
        return ROW_FIELDS + STATS_ROW_FIELDS
    return list(ROW_FIELDS)


class ResultSink:
    """Base/no-op sink; subclass and override :meth:`write`."""

    def open(self, fieldnames: Sequence[str]) -> None:
        """Called once before the first row."""

    def write(self, row: dict[str, object]) -> None:
        """Called once per resolved point, in expansion order."""
        raise NotImplementedError

    def close(self) -> None:
        """Called once after the last row (also on error paths)."""


class _FileSink(ResultSink):
    """Shared open/close plumbing for path-backed sinks."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = None

    def _open_handle(self):
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", newline="")
        return self._handle

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CsvSink(_FileSink):
    """Incremental CSV: header on open, one flushed row per point."""

    def open(self, fieldnames: Sequence[str]) -> None:
        handle = self._open_handle()
        self._writer = csv.DictWriter(handle, fieldnames=list(fieldnames))
        self._writer.writeheader()
        handle.flush()

    def write(self, row: dict[str, object]) -> None:
        # None timings (failed points) serialise as empty CSV cells.
        self._writer.writerow(
            {k: ("" if v is None else v) for k, v in row.items()}
        )
        self._handle.flush()


class JsonlSink(_FileSink):
    """Incremental JSON lines: one flushed object per point."""

    def open(self, fieldnames: Sequence[str]) -> None:
        self._open_handle()

    def write(self, row: dict[str, object]) -> None:
        self._handle.write(json.dumps(row) + "\n")
        self._handle.flush()


class CallbackSink(ResultSink):
    """Adapter: forward each row to a plain callable."""

    def __init__(self, fn: Callable[[dict[str, object]], None]) -> None:
        self.fn = fn

    def write(self, row: dict[str, object]) -> None:
        self.fn(row)


def sink_for(path: str | Path) -> ResultSink:
    """Pick a file sink by extension: ``.csv`` or ``.jsonl``/``.ndjson``."""
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        return CsvSink(path)
    if suffix in (".jsonl", ".ndjson"):
        return JsonlSink(path)
    raise ValueError(
        f"cannot infer a sink from {str(path)!r}: use a .csv or .jsonl extension"
    )
