"""Calibrated virtual-cluster profiles standing in for Grid'5000."""

from .profiles import (
    CLUSTERS,
    ClusterProfile,
    PaperSignature,
    fast_ethernet,
    get_cluster,
    gigabit_ethernet,
    myrinet,
)

__all__ = [
    "CLUSTERS",
    "ClusterProfile",
    "PaperSignature",
    "fast_ethernet",
    "get_cluster",
    "gigabit_ethernet",
    "myrinet",
]
