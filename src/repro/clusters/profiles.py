"""Calibrated cluster profiles for the paper's three testbeds.

Each profile bundles a topology factory, a transport parameter set and a
contention mechanism configuration (loss process / HoL penalty), plus the
paper's reported signature for cross-checking in EXPERIMENTS.md.

Calibration philosophy (DESIGN.md §2): absolute constants are tuned so
that the *mechanisms* produce the paper's qualitative signature — the
ordering γ_GigE > γ_Myrinet > γ_FE ≈ 1, the δ ordering FE > GigE ≫
Myrinet ≈ 0, the Fig. 2/3 stress shapes — not so that 2006 wall-clock
seconds are matched digit for digit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from ..registry import CLUSTERS as _CLUSTER_REGISTRY
from ..registry import DeprecatedMapping, register_cluster
from ..simnet.entities import LinkKind
from ..simnet.loss import LossParams
from ..simnet.penalty import HolPenalty
from ..simnet.topology import Topology, edge_core, single_switch
from ..simmpi.runtime import Runtime
from ..simmpi.transport import TransportParams

__all__ = [
    "PaperSignature",
    "ClusterProfile",
    "fast_ethernet",
    "gigabit_ethernet",
    "myrinet",
    "get_cluster",
    "CLUSTERS",
]

MB = 1_000_000.0


@dataclass(frozen=True)
class PaperSignature:
    """Contention signature the paper reports for a network (§8)."""

    gamma: float
    delta: float  # seconds (0 when below regression resolution)
    threshold: int  # M in bytes; 0 when not applicable


@dataclass(frozen=True)
class ClusterProfile:
    """A reproducible virtual cluster.

    Attributes
    ----------
    name / description:
        Identification (description records what physical system the
        profile stands in for).
    topology_factory:
        ``f(n_hosts) -> Topology`` building the fabric for n hosts.
    transport:
        MPI/driver stack behaviour.
    loss:
        TCP loss process (``None`` for lossless fabrics).
    hol:
        Head-of-line penalty (``None`` for store-and-forward fabrics).
    start_skew_scale:
        Scale of the uniform per-rank start skew (collective entry noise).
    max_hosts:
        Largest sensible size (physical cluster size).
    paper:
        The signature the paper measured on the physical system.
    """

    name: str
    description: str
    topology_factory: Callable[[int], Topology] = field(repr=False)
    transport: TransportParams = field(repr=False)
    loss: LossParams | None = field(repr=False, default=None)
    hol: HolPenalty | None = field(repr=False, default=None)
    start_skew_scale: float = 0.0
    max_hosts: int = 128
    paper: PaperSignature | None = None

    def topology(self, n_hosts: int) -> Topology:
        """Build the fabric for *n_hosts* hosts."""
        if n_hosts > self.max_hosts:
            raise ValueError(
                f"{self.name}: {n_hosts} hosts exceeds physical size "
                f"{self.max_hosts}"
            )
        return self.topology_factory(n_hosts)

    def runtime(
        self,
        nprocs: int,
        *,
        seed: int = 0,
        trace=None,
        timeline=None,
        start_skew_scale: float | None = None,
    ) -> Runtime:
        """Create a fresh MPI runtime with *nprocs* ranks on this cluster.

        *start_skew_scale* overrides the profile's collective-entry skew
        (ping-pong measurements pass 0: a steady-state message exchange
        amortises job start skew away).  *timeline* is an optional
        per-link collector (:class:`repro.obs.LinkTimeline`).
        """
        skew = self.start_skew_scale if start_skew_scale is None else start_skew_scale
        return Runtime(
            self.topology(nprocs),
            self.transport,
            nprocs=nprocs,
            loss_params=self.loss,
            hol_penalty=self.hol,
            start_skew_scale=skew,
            seed=seed,
            trace=trace,
            timeline=timeline,
        )

    def with_overrides(self, **kwargs) -> "ClusterProfile":
        """Derived profile with some fields replaced (ablation helper)."""
        return replace(self, **kwargs)


@register_cluster("fast-ethernet", aliases=("fe", "icluster2-fe"))
def fast_ethernet() -> ClusterProfile:
    """icluster2-like Fast Ethernet: 5 edge FE switches + Gigabit core.

    100 Mb/s NICs (~11.9 MB/s effective after framing), ~60 us one-way
    latency (the paper's figure).  Losses exist but the slow wire dwarfs
    the RTO penalty, so γ stays ≈ 1; the dominant contention effect is
    the per-message kernel demultiplexing overhead (δ ≈ 8 ms above 2 KB).
    """
    nic = 12.2 * MB  # 100 Mb/s line rate net of preamble/IFG
    return ClusterProfile(
        name="fast-ethernet",
        description=(
            "icluster2 Fast Ethernet: 5 FE edge switches (20 nodes each) "
            "behind a Gigabit Ethernet core; LAM-MPI over TCP"
        ),
        topology_factory=lambda n: edge_core(
            n,
            nic_bandwidth=nic,
            hosts_per_edge=20,
            trunk_bandwidth=117.0 * MB,
            edge_backplane=None,
            core_backplane=2_000.0 * MB,
            name="icluster2-fe",
        ),
        transport=TransportParams(
            name="tcp-fe",
            base_latency=60e-6,
            eager_threshold=65_536,
            envelope_bytes=64,
            mss=1_460,
            per_segment_wire_bytes=58,
            per_segment_host_time=2e-6,
            per_message_send_overhead=30e-6,
            ctrl_overhead=20e-6,
            sender_concurrency=None,
            mux_overhead=9.0e-3,
            mux_threshold=2_048,
            jitter_scale=20e-6,
        ),
        loss=LossParams(
            coeff_per_byte=2.0e-9,
            sat_flows={
                LinkKind.HOST_RX: 8,
                LinkKind.HOST_TX: 8,
                LinkKind.TRUNK: 24,
                LinkKind.BACKPLANE: 48,
            },
            rto_min=0.200,
            rto_max=3.200,
        ),
        start_skew_scale=200e-6,
        max_hosts=104,
        paper=PaperSignature(gamma=1.0195, delta=8.23e-3, threshold=2_048),
    )


@register_cluster("gigabit-ethernet", aliases=("gige", "gdx"))
def gigabit_ethernet() -> ClusterProfile:
    """GdX-like Gigabit Ethernet: one logical switch, finite backplane.

    118 MB/s effective NICs (the paper's β_F = 8.502e-9 s/B ≈ 117.6 MB/s);
    the 216-port "switch" is physically a stack with oversubscribed
    uplinks, modelled as a finite backplane.  Contention comes from the
    backplane (fluid component of γ) plus TCP RTO losses (the rest of γ
    and the Fig. 3 heavy tail); δ ≈ 5 ms above 8 KB from kernel demux.
    """
    nic = 117.6 * MB
    return ClusterProfile(
        name="gigabit-ethernet",
        description=(
            "GdX Gigabit Ethernet (216 dual-Opteron nodes, Broadcom NICs); "
            "switch stack modelled as one finite-backplane switch; "
            "LAM-MPI over TCP"
        ),
        topology_factory=lambda n: single_switch(
            n,
            nic_bandwidth=nic,
            backplane_capacity=1_200.0 * MB,
            name="gdx-gige",
        ),
        transport=TransportParams(
            name="tcp-gige",
            base_latency=50e-6,
            eager_threshold=65_536,
            envelope_bytes=64,
            mss=1_460,
            per_segment_wire_bytes=58,
            per_segment_host_time=0.4e-6,
            per_message_send_overhead=15e-6,
            ctrl_overhead=10e-6,
            sender_concurrency=None,
            mux_overhead=5.5e-3,
            mux_threshold=8_192,
            jitter_scale=10e-6,
        ),
        loss=LossParams(
            coeff_per_byte=3.3e-9,
            sat_flows={
                LinkKind.HOST_RX: 12,
                LinkKind.HOST_TX: 12,
                LinkKind.BACKPLANE: 24,
            },
            rto_min=0.200,
            rto_max=3.200,
        ),
        start_skew_scale=100e-6,
        max_hosts=216,
        paper=PaperSignature(gamma=4.3628, delta=4.93e-3, threshold=8_192),
    )


@register_cluster("myrinet", aliases=("gm", "icluster2-myrinet"))
def myrinet() -> ClusterProfile:
    """icluster2-like Myrinet 2000 with the gm driver.

    ~245 MB/s links, ~9 us latency, OS bypass (no kernel demux: δ ≈ 0),
    lossless backpressure fabric.  Contention arises from the *convoy
    effect alone*: gm serialises sends (one outstanding DMA), entry skew
    desynchronises Algorithm 1's rotation, transient many-to-one bursts
    share receiver ports, and the induced slowdowns self-reinforce —
    yielding an emergent γ ≈ 2.5 with zero packet loss and no explicit
    penalty term (calibration showed the optional
    :class:`~repro.simnet.penalty.HolPenalty` is not needed; it remains
    available for exploring stronger head-of-line regimes).
    """
    nic = 245.0 * MB
    return ClusterProfile(
        name="myrinet",
        description=(
            "icluster2 Myrinet 2000, one M3-E128 switch (Clos of 16-port "
            "crossbars); LAM-MPI over gm"
        ),
        topology_factory=lambda n: single_switch(
            n,
            nic_bandwidth=nic,
            backplane_capacity=10_000.0 * MB,
            name="icluster2-myrinet",
        ),
        transport=TransportParams(
            name="gm-myrinet",
            base_latency=9e-6,
            eager_threshold=32_768,
            envelope_bytes=16,
            mss=4_096,
            per_segment_wire_bytes=8,
            per_segment_host_time=0.0,
            per_message_send_overhead=2e-6,
            ctrl_overhead=2e-6,
            sender_concurrency=1,
            mux_overhead=0.0,
            mux_threshold=0,
            jitter_scale=150e-6,
        ),
        loss=None,
        hol=None,
        start_skew_scale=1.0e-3,
        max_hosts=104,
        paper=PaperSignature(gamma=2.49754, delta=0.0, threshold=0),
    )


#: Deprecated dict facade; the cluster registry is the source of truth.
CLUSTERS = DeprecatedMapping(
    _CLUSTER_REGISTRY,
    "repro.clusters.profiles.CLUSTERS",
    "repro.registry.CLUSTERS (or repro.api.list_clusters())",
)


def get_cluster(name: str) -> ClusterProfile:
    """Look a profile up by name (``fast-ethernet`` etc.).

    Lookup is alias- and spelling-tolerant (``fast_ethernet``,
    ``Fast-Ethernet`` and the registered alias ``fe`` all resolve);
    unknown names raise :class:`~repro.exceptions.UnknownNameError`
    listing the registered set.
    """
    return _CLUSTER_REGISTRY.get(name)()
