"""Network stress (flooding) measurement — the paper's §3 methodology.

"Several point-to-point connections are started simultaneously, flooding
the link" (Fig. 1); the aggregate and per-connection throughputs expose
the effective bandwidth and the contention overload (Figs. 2 and 3).

Connections are raw fluid flows between disjoint host pairs: this is an
iperf-style probe below MPI, so no protocol overheads apply beyond the
wire framing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..clusters.profiles import ClusterProfile
from ..exceptions import MeasurementError
from ..simnet.engine import Engine
from ..simnet.fluid import FluidNetwork
from ..simnet.rng import RngFactory

__all__ = ["StressRun", "StressSweep", "run_stress", "stress_sweep"]


@dataclass(frozen=True)
class StressRun:
    """Per-connection transfer times for one k-connection flood."""

    cluster: str
    n_connections: int
    transfer_bytes: int
    times: np.ndarray  # (k,) seconds
    losses: int

    @property
    def throughputs(self) -> np.ndarray:
        """Per-connection payload throughput (bytes/s)."""
        return self.transfer_bytes / self.times

    @property
    def mean_throughput(self) -> float:
        """Average per-connection throughput (Fig. 2's y axis)."""
        return float(self.throughputs.mean())

    @property
    def aggregate_throughput(self) -> float:
        """Total payload moved per unit of the slowest connection's time."""
        return self.n_connections * self.transfer_bytes / float(self.times.max())


@dataclass(frozen=True)
class StressSweep:
    """Fig. 2/3 data: one :class:`StressRun` per connection count per rep."""

    cluster: str
    transfer_bytes: int
    ks: tuple[int, ...]
    runs: tuple[tuple[StressRun, ...], ...]  # runs[i] = reps for ks[i]

    def mean_throughput_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(k, mean per-connection MB-level throughput) — Fig. 2 series."""
        ks = np.asarray(self.ks, dtype=np.float64)
        means = np.array(
            [np.mean([r.mean_throughput for r in reps]) for reps in self.runs]
        )
        return ks, means

    def scatter_times(self) -> tuple[np.ndarray, np.ndarray]:
        """Flattened (k, individual transfer time) pairs — Fig. 3 dots."""
        xs, ys = [], []
        for k, reps in zip(self.ks, self.runs):
            for run in reps:
                xs.extend([k] * len(run.times))
                ys.extend(run.times.tolist())
        return np.asarray(xs, dtype=np.float64), np.asarray(ys, dtype=np.float64)

    def average_time_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(k, mean transfer time) — Fig. 3's average line."""
        ks = np.asarray(self.ks, dtype=np.float64)
        means = np.array(
            [np.mean([r.times.mean() for r in reps]) for reps in self.runs]
        )
        return ks, means

    def all_times(self) -> np.ndarray:
        """Every individual transfer time in the sweep (β_C extraction)."""
        return np.concatenate(
            [run.times for reps in self.runs for run in reps]
        )

    def saturated_times(self) -> np.ndarray:
        """Transfer times at the largest connection count only."""
        return np.concatenate([run.times for run in self.runs[-1]])


def run_stress(
    cluster: ClusterProfile,
    n_connections: int,
    transfer_bytes: int,
    *,
    seed: int = 0,
) -> StressRun:
    """Flood the cluster with *n_connections* disjoint-pair transfers."""
    if n_connections < 1:
        raise MeasurementError("need at least one connection")
    if transfer_bytes <= 0:
        raise MeasurementError("transfer_bytes must be positive")
    n_hosts = 2 * n_connections
    if n_hosts > cluster.max_hosts:
        raise MeasurementError(
            f"{n_connections} disjoint pairs need {n_hosts} hosts; "
            f"{cluster.name} has {cluster.max_hosts}"
        )
    topology = cluster.topology(n_hosts)
    engine = Engine()
    rng = RngFactory(seed)
    network = FluidNetwork(
        engine,
        topology,
        loss_params=cluster.loss,
        hol_penalty=cluster.hol,
        rng=rng.stream("net/loss"),
    )
    wire_bytes = cluster.transport.wire_bytes(transfer_bytes)
    flows = [
        network.inject(2 * i, 2 * i + 1, wire_bytes, label=f"stress{i}")
        for i in range(n_connections)
    ]
    engine.run()
    times = np.array([flow.duration for flow in flows])
    if not np.all(np.isfinite(times)):  # pragma: no cover - defensive
        raise MeasurementError("stress run left unfinished flows")
    return StressRun(
        cluster=cluster.name,
        n_connections=n_connections,
        transfer_bytes=transfer_bytes,
        times=times,
        losses=network.total_losses,
    )


def stress_sweep(
    cluster: ClusterProfile,
    ks,
    transfer_bytes: int,
    *,
    reps: int = 3,
    seed: int = 0,
) -> StressSweep:
    """Fig. 2/3 sweep: increasing simultaneous connection counts."""
    ks = tuple(int(k) for k in ks)
    if not ks or any(k < 1 for k in ks):
        raise MeasurementError("connection counts must be positive")
    factory = RngFactory(seed)
    runs = []
    for k in ks:
        reps_runs = tuple(
            run_stress(
                cluster,
                k,
                transfer_bytes,
                seed=factory.child(f"stress/{k}/{rep}").seed,
            )
            for rep in range(reps)
        )
        runs.append(reps_runs)
    return StressSweep(
        cluster=cluster.name,
        transfer_bytes=transfer_bytes,
        ks=ks,
        runs=tuple(runs),
    )
