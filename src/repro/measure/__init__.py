"""Measurement harness: ping-pong, stress flood, All-to-All timing."""

from .alltoall import measure_alltoall, sweep_grid, sweep_sizes
from .backends import Mpi4pyBackend, SimBackend, get_backend
from .pingpong import (
    PingPongResult,
    hockney_from_pingpong,
    measure_pingpong,
)
from .pipeline import (
    DEFAULT_SAMPLE_SIZES,
    Characterization,
    characterize_cluster,
)
from .stress import StressRun, StressSweep, run_stress, stress_sweep

__all__ = [
    "measure_alltoall",
    "sweep_grid",
    "sweep_sizes",
    "Mpi4pyBackend",
    "SimBackend",
    "get_backend",
    "PingPongResult",
    "hockney_from_pingpong",
    "measure_pingpong",
    "DEFAULT_SAMPLE_SIZES",
    "Characterization",
    "characterize_cluster",
    "StressRun",
    "StressSweep",
    "run_stress",
    "stress_sweep",
]
