"""Measurement backends: simulator (default) and optional mpi4py.

The measurement pipeline is backend-agnostic: a backend provides raw
timing primitives (one-way point-to-point times and All-to-All
completion times).  The simulator backend wraps the modules in this
package; the mpi4py backend runs the same probes on a *real* cluster
when ``mpi4py`` is importable and the script is launched under
``mpiexec`` — the substitution documented in DESIGN.md §2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..clusters.profiles import ClusterProfile
from ..exceptions import BackendUnavailableError
from ..registry import BACKENDS, register_backend
from .alltoall import measure_alltoall
from .pingpong import measure_pingpong

__all__ = ["SimBackend", "Mpi4pyBackend", "get_backend"]


@dataclass(frozen=True)
class SimBackend:
    """Timing primitives measured on the fluid simulator."""

    cluster: ClusterProfile

    @property
    def name(self) -> str:
        return f"sim:{self.cluster.name}"

    def pingpong_times(self, sizes, *, reps: int = 5, seed: int = 0) -> np.ndarray:
        """Mean one-way time per size."""
        result = measure_pingpong(self.cluster, sizes, reps=reps, seed=seed)
        return result.one_way_times

    def alltoall_time(
        self, n_processes: int, msg_size: int, *, reps: int = 3, seed: int = 0
    ) -> float:
        """Mean completion time of one All-to-All point."""
        sample = measure_alltoall(
            self.cluster, n_processes, msg_size, reps=reps, seed=seed
        )
        return sample.mean_time


class Mpi4pyBackend:
    """Timing primitives measured with mpi4py on a live cluster.

    Only usable when mpi4py is installed and the process group was
    launched with an MPI launcher.  The probes mirror the paper exactly:
    ``MPI_Alltoall`` on byte buffers, barrier-synchronised, max-reduced.
    """

    def __init__(self) -> None:
        try:
            from mpi4py import MPI  # noqa: PLC0415 - optional dependency
        except ImportError as exc:
            raise BackendUnavailableError(
                "mpi4py is not installed; use SimBackend or install "
                "repro[mpi] and launch under mpiexec"
            ) from exc
        self._mpi = MPI
        self.comm = MPI.COMM_WORLD

    @property
    def name(self) -> str:
        return f"mpi4py:{self.comm.Get_size()}procs"

    def pingpong_times(self, sizes, *, reps: int = 5, seed: int = 0) -> np.ndarray:
        """Mean one-way time per size between ranks 0 and 1."""
        MPI = self._mpi
        comm = self.comm
        rank = comm.Get_rank()
        # Materialise once: a generator argument would be exhausted by
        # len(list(...)) and then yield zero measurements.
        sizes = [int(size) for size in sizes]
        out = np.zeros(len(sizes))
        for idx, size in enumerate(sizes):
            buf = np.zeros(int(size), dtype=np.uint8)
            times = []
            for _ in range(reps):
                comm.Barrier()
                start = time.perf_counter()
                if rank == 0:
                    comm.Send([buf, MPI.BYTE], dest=1, tag=1)
                    comm.Recv([buf, MPI.BYTE], source=1, tag=2)
                elif rank == 1:
                    comm.Recv([buf, MPI.BYTE], source=0, tag=1)
                    comm.Send([buf, MPI.BYTE], dest=0, tag=2)
                times.append((time.perf_counter() - start) / 2.0)
            out[idx] = float(np.mean(times))
        return np.asarray(comm.bcast(out if rank == 0 else None, root=0))

    def alltoall_time(
        self, n_processes: int, msg_size: int, *, reps: int = 3, seed: int = 0
    ) -> float:
        """Mean barrier-synchronised MPI_Alltoall time (max over ranks)."""
        MPI = self._mpi
        comm = self.comm
        size = comm.Get_size()
        if n_processes != size:
            raise BackendUnavailableError(
                f"live run has {size} ranks; requested {n_processes}"
            )
        send = np.zeros(size * msg_size, dtype=np.uint8)
        recv = np.zeros_like(send)
        samples = []
        for _ in range(reps):
            comm.Barrier()
            start = time.perf_counter()
            comm.Alltoall([send, MPI.BYTE], [recv, MPI.BYTE])
            local = time.perf_counter() - start
            samples.append(comm.allreduce(local, op=MPI.MAX))
        return float(np.mean(samples))


@register_backend("sim", aliases=("simulator",))
def _make_sim_backend(cluster: ClusterProfile | None = None) -> SimBackend:
    if cluster is None:
        raise ValueError("sim backend requires a cluster profile")
    return SimBackend(cluster)


@register_backend("mpi4py", aliases=("mpi",))
def _make_mpi4py_backend(cluster: ClusterProfile | None = None) -> Mpi4pyBackend:
    return Mpi4pyBackend()


def get_backend(kind: str, cluster: ClusterProfile | None = None):
    """Backend factory, resolved through the backend registry.

    Built-ins: ``"sim"`` (needs a cluster) and ``"mpi4py"``; register
    additional backends with ``@repro.api.register_backend``.  Unknown
    kinds raise :class:`~repro.exceptions.UnknownNameError` (a
    ``ValueError``, as this function always raised).
    """
    return BACKENDS.get(kind)(cluster)
