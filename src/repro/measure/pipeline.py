"""End-to-end cluster characterisation (the paper's §8 procedure).

1. ping-pong → Hockney α, β  ("a simple point-to-point measure");
2. All-to-All sweep at one sample size n′ over >= 4 message sizes;
3. GLS regression of the measurements against the lower bound → (γ, δ, M);
4. hand back an :class:`~repro.core.predictor.AlltoallPredictor` usable
   for *any* (n, m) on that network.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clusters.profiles import ClusterProfile
from ..core.hockney import HockneyFit
from ..core.predictor import AlltoallPredictor
from ..core.signature import AlltoallSample, SignatureFit, fit_signature
from .alltoall import sweep_sizes
from .pingpong import PingPongResult, hockney_from_pingpong, measure_pingpong

__all__ = ["Characterization", "characterize_cluster", "DEFAULT_SAMPLE_SIZES"]

#: Default fit sizes: >= 4 points as the paper requires, spanning both
#: the small-message region (so the threshold M is locatable) and the
#: affine region (128 KiB .. 1 MiB as in figures 8/11/14).
DEFAULT_SAMPLE_SIZES = (
    2_048, 8_192, 32_768, 131_072, 262_144, 524_288, 786_432, 1_048_576
)


@dataclass(frozen=True)
class Characterization:
    """Everything learned about one network."""

    cluster: str
    pingpong: PingPongResult
    hockney_fit: HockneyFit
    samples: tuple[AlltoallSample, ...]
    signature_fit: SignatureFit
    predictor: AlltoallPredictor

    @property
    def signature(self):
        """The fitted contention signature (γ, δ, M)."""
        return self.signature_fit.signature


def characterize_cluster(
    cluster: ClusterProfile,
    *,
    sample_nprocs: int,
    sample_sizes=DEFAULT_SAMPLE_SIZES,
    reps: int = 3,
    pingpong_reps: int = 5,
    seed: int = 0,
    method: str = "gls",
    delta_mode: str = "per_round",
    threshold: int | str = "auto",
    algorithm: str = "direct",
    engine: str | None = None,
    runner=None,
    scenario=None,
) -> Characterization:
    """Run the full §8 procedure on a virtual cluster.

    ``sample_nprocs`` is the paper's n′ — it should be large enough to
    saturate the network (the paper attributes its Myrinet error to an
    unsaturated sample size; the ablation bench quantifies this).

    The All-to-All sweep goes through the sweep engine; pass *runner*
    (a :class:`~repro.sweeps.SweepRunner`) to parallelise it or serve
    repeated characterisations from the result cache.  *scenario* (a
    :class:`~repro.scenario.ScenarioSpec`) is forwarded to the engine so
    scenario-defined clusters key the cache on their full definition.

    *engine* selects the simulation engine for the All-to-All sweep
    (:data:`repro.registry.ENGINES`; ``None`` defers to the process
    default).  The ping-pong stays on the reference fluid engine: it is
    two flows on an otherwise idle fabric — nothing to batch — and
    keeping it fixed means Hockney α/β never depend on engine choice.
    """
    pingpong = measure_pingpong(
        cluster, reps=pingpong_reps, seed=seed
    )
    hockney_fit = hockney_from_pingpong(pingpong)
    samples = sweep_sizes(
        cluster,
        sample_nprocs,
        sample_sizes,
        reps=reps,
        seed=seed,
        algorithm=algorithm,
        engine=engine,
        runner=runner,
        scenario=scenario,
    )
    signature_fit = fit_signature(
        samples,
        hockney_fit.params,
        threshold=threshold,
        method=method,
        delta_mode=delta_mode,
    )
    return Characterization(
        cluster=cluster.name,
        pingpong=pingpong,
        hockney_fit=hockney_fit,
        samples=tuple(samples),
        signature_fit=signature_fit,
        predictor=AlltoallPredictor(signature=signature_fit.signature),
    )
