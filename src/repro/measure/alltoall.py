"""All-to-All timing measurements on a virtual cluster.

Each sample is the mean of *reps* independent runs (the paper averages
100 measures per (message size, process count) point; the default here
is smaller because every run is a full simulation — pass ``reps=100`` to
match the paper's averaging exactly).

Irregular exchanges: pass ``pattern=`` (a
:class:`~repro.traffic.PatternSpec`, a registered pattern name, or a
``{"name": ..., "params": ...}`` dict) and the point is simulated with
the matrix-driven alltoallv rank programs over the pattern's (n, n)
byte matrix, ``msg_size`` acting as the pattern's scale.  The uniform
pattern collapses to the legacy scalar path bit-for-bit.

Rank placement: pass ``placement=`` (a
:class:`~repro.placement.PlacementSpec`, a registered strategy name, a
dict, or an explicit permutation) and rank *i*'s traffic is routed
through host ``perm[i]`` instead of host *i* — the one behavioural
change; RNG streams stay keyed by rank, so a placed run and an identity
run replay identical draws.  Identity collapses to the legacy
no-placement path bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..clusters.profiles import ClusterProfile
from ..core.signature import AlltoallSample
from ..engines import default_engine
from ..exceptions import MeasurementError, ScenarioError, UnknownNameError
from ..obs.metrics import REGISTRY, record_sim_stats
from ..placement import apply_placement, as_placement
from ..registry import ALGORITHMS, ENGINES
from ..simmpi.collectives import variant_for
from ..simnet.rng import RngFactory
from ..simnet.stats import stats_enabled
from ..traffic import PatternSpec, as_pattern

__all__ = ["measure_alltoall", "sweep_sizes", "sweep_grid"]


def _resolve_program(algorithm: str, pattern: "PatternSpec | None"):
    """Map (algorithm, pattern) to the rank program actually simulated.

    Returns ``(program, stream_tag)`` where *stream_tag* is the
    algorithm name used in RNG stream derivation — the alltoallv
    variant's canonical name for irregular points, the scalar name
    (historical stream naming, cache-compatible) otherwise.
    """
    try:
        canonical = ALGORITHMS.canonical(algorithm)
        resolved = variant_for(canonical, irregular=pattern is not None)
    except UnknownNameError as exc:
        raise MeasurementError(exc.args[0]) from None
    except ValueError as exc:
        raise MeasurementError(str(exc)) from None
    return ALGORITHMS.get(resolved), resolved


def _resolve_engine(engine: "str | None"):
    """Canonicalise an engine choice (``None`` → process-wide default)."""
    try:
        if engine is None:
            engine = default_engine()
        name = ENGINES.canonical(engine)
        return name, ENGINES.get(name)
    except UnknownNameError as exc:
        raise MeasurementError(exc.args[0]) from None


def measure_alltoall(
    cluster: ClusterProfile,
    n_processes: int,
    msg_size: int,
    *,
    reps: int = 3,
    seed: int = 0,
    algorithm: str = "direct",
    pattern=None,
    engine=None,
    placement=None,
    observe: bool = False,
) -> AlltoallSample:
    """Measure one (n, m) All-to-All point; returns the averaged sample.

    With *pattern* set (and not trivially uniform), the point runs the
    pattern's byte matrix through the matching alltoallv program; the
    matrix itself is derived deterministically from
    ``(pattern, n, msg_size, seed)`` and is identical across reps.

    With *placement* set (and not trivially identity), rank traffic is
    routed through the placed hosts (see :mod:`repro.placement`); the
    permutation is validated against *n_processes* up front.

    *engine* picks the simulation engine (an entry of
    :data:`repro.registry.ENGINES`; ``None`` defers to
    :func:`repro.engines.default_engine`).  Per-rep RNG seeds are
    engine-independent, so engines are compared on identical draws.
    When ``REPRO_SIM_STATS`` is truthy the returned sample carries a
    ``sim_stats`` attribute (a :class:`~repro.simnet.stats.SimStats`
    summed over reps).

    With ``observe=True`` the **first repetition** runs instrumented —
    a recording :class:`~repro.simnet.trace.Trace` and a per-link
    :class:`~repro.obs.LinkTimeline` — and the sample carries an
    ``observed`` attribute (a :class:`~repro.obs.Observation`: trace,
    timeline, and the MED :class:`~repro.obs.ContentionReport`).  Like
    ``sim_stats`` this is an opt-in rider: it never enters cache
    payloads, and observation does not perturb timings or RNG draws
    (the instrumented rep replays the same seed).
    """
    if n_processes < 2:
        raise MeasurementError("All-to-All needs at least two processes")
    if msg_size < 1:
        raise MeasurementError("msg_size must be >= 1 byte")
    if reps < 1:
        raise MeasurementError("reps must be >= 1")
    try:
        pattern = as_pattern(pattern)
        placement = as_placement(placement)
        if placement is not None:
            # Validate eagerly (explicit perms pin their n, strategies
            # may reject it) instead of mid-simulation in a worker.
            placement.permutation(n_processes)
            cluster = apply_placement(cluster, placement)
    except ScenarioError as exc:
        raise MeasurementError(exc.args[0]) from None
    program, stream_tag = _resolve_program(algorithm, pattern)
    if pattern is None:
        run_arg: object = int(msg_size)
        stream_prefix = f"alltoall/{stream_tag}/{n_processes}/{msg_size}"
    else:
        try:
            matrix = pattern.matrix(n_processes, msg_size, seed=seed)
        except ValueError as exc:
            # Generator-level parameter failures (e.g. hotspot targets
            # exceeding n) surface as measurement errors, not tracebacks.
            raise MeasurementError(
                f"pattern {pattern.key()} cannot build a matrix at "
                f"(n={n_processes}, m={msg_size}): {exc}"
            ) from None
        if not np.any(matrix - np.diag(np.diag(matrix))):
            raise MeasurementError(
                f"pattern {pattern.key()} yields no network traffic at "
                f"(n={n_processes}, m={msg_size}, seed={seed}); nothing "
                "to measure"
            )
        run_arg = matrix
        stream_prefix = (
            f"alltoallv/{stream_tag}/{pattern.key()}/{n_processes}/{msg_size}"
        )
    engine_name, engine_fn = _resolve_engine(engine)
    collect_stats = stats_enabled()
    merged_stats = None
    obs_trace = obs_timeline = obs_topology = None
    if observe:
        from ..obs import LinkTimeline
        from ..simnet.trace import Trace

        obs_topology = cluster.topology(n_processes)
        obs_trace = Trace()
        obs_timeline = LinkTimeline.for_topology(obs_topology)
    factory = RngFactory(seed)
    times = np.empty(reps)
    for rep in range(reps):
        rep_seed = factory.child(f"{stream_prefix}/{rep}").seed
        if observe and rep == 0:
            try:
                result = engine_fn(
                    cluster, n_processes, program, run_arg, rep_seed,
                    trace=obs_trace, timeline=obs_timeline,
                )
            except TypeError as exc:
                raise MeasurementError(
                    f"engine {engine_name!r} does not support observation "
                    f"(trace=/timeline= keyword arguments): {exc}"
                ) from None
        else:
            result = engine_fn(cluster, n_processes, program, run_arg, rep_seed)
        times[rep] = result.duration
        # Always-on self-measurement: a handful of counter bumps per
        # rep, orders of magnitude below the simulation they describe.
        record_sim_stats(result.stats)
        if collect_stats and result.stats is not None:
            merged_stats = (
                result.stats if merged_stats is None
                else merged_stats.merged(result.stats)
            )
    REGISTRY.counter("measure.samples").inc(1, engine=engine_name)
    sample = AlltoallSample(
        n_processes=n_processes,
        msg_size=int(msg_size),
        mean_time=float(times.mean()),
        std_time=float(times.std(ddof=1)) if reps > 1 else 0.0,
        reps=reps,
    )
    if merged_stats is not None:
        # Opt-in observability rider; never enters cache payloads.
        object.__setattr__(sample, "sim_stats", merged_stats)
    if observe:
        from ..obs import ContentionReport, Observation

        if pattern is None:
            matrix = np.full((n_processes, n_processes), int(msg_size))
            np.fill_diagonal(matrix, 0)
        observation = Observation(
            engine=engine_name,
            duration=float(times[0]),
            trace=obs_trace,
            timeline=obs_timeline,
            report=ContentionReport.from_timeline(
                obs_timeline, obs_topology, matrix
            ),
        )
        # Same rider pattern as sim_stats: opt-in, cache-invisible.
        object.__setattr__(sample, "observed", observation)
    return sample


def _run_points(cluster, points, runner, scenario=None, progress=None):
    """Route points through a sweep runner (default: process-wide one).

    Imported lazily: :mod:`repro.sweeps` builds on this module.
    *scenario* (a :class:`~repro.scenario.ScenarioSpec`) is forwarded so
    cache keys incorporate the scenario definition and misses can fan
    out to worker processes even for non-registry profiles; *progress*
    is the runner's per-point ``(done, total, result)`` callback.
    """
    from ..sweeps.runner import default_runner

    if runner is None:
        runner = default_runner()
    return runner.run_points(
        points, profile=cluster, scenario=scenario, progress=progress
    ).samples


def sweep_sizes(
    cluster: ClusterProfile,
    n_processes: int,
    sizes,
    *,
    reps: int = 3,
    seed: int = 0,
    algorithm: str = "direct",
    pattern=None,
    engine=None,
    placement=None,
    runner=None,
    scenario=None,
    progress=None,
) -> list[AlltoallSample]:
    """Message-size sweep at fixed n (the fit figures 6/9/12).

    Routed through the sweep engine: pass a configured
    :class:`~repro.sweeps.SweepRunner` (or set ``REPRO_SWEEP_WORKERS`` /
    ``REPRO_SWEEP_EXECUTOR`` / ``REPRO_SWEEP_CACHE``) to parallelise
    and cache the points; *progress* is called per landed point.
    """
    from ..sweeps.spec import SweepPoint

    try:
        points = [
            SweepPoint(
                cluster=cluster.name,
                n_processes=n_processes,
                msg_size=int(size),
                algorithm=algorithm,
                seed=seed,
                reps=reps,
                pattern=pattern,
                engine=engine,
                placement=placement,
            )
            for size in sizes
        ]
    except ValueError as exc:
        # Preserve the measure layer's exception hierarchy.
        raise MeasurementError(str(exc)) from None
    return _run_points(cluster, points, runner, scenario, progress)


def sweep_grid(
    cluster: ClusterProfile,
    n_values,
    sizes,
    *,
    reps: int = 3,
    seed: int = 0,
    algorithm: str = "direct",
    pattern=None,
    engine=None,
    placement=None,
    runner=None,
    scenario=None,
    progress=None,
) -> list[AlltoallSample]:
    """(n, m) grid sweep (the surface figures 5/7/10/13).

    Point order is n-major, size-minor.  Same runner/progress semantics
    as :func:`sweep_sizes`.
    """
    from ..sweeps.spec import SweepPoint

    try:
        points = [
            SweepPoint(
                cluster=cluster.name,
                n_processes=int(n),
                msg_size=int(size),
                algorithm=algorithm,
                seed=seed,
                reps=reps,
                pattern=pattern,
                engine=engine,
                placement=placement,
            )
            for n in n_values
            for size in sizes
        ]
    except ValueError as exc:
        # Preserve the measure layer's exception hierarchy.
        raise MeasurementError(str(exc)) from None
    return _run_points(cluster, points, runner, scenario, progress)
