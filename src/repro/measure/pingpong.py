"""Point-to-point ping-pong measurement (Hockney α/β acquisition).

The paper's lower bound uses "parameters α and β obtained from a simple
point-to-point measure" (§8).  We measure round-trip times between two
hosts of the cluster for a ladder of message sizes, halve them, and fit:

* α from the smallest-size sample (latency-dominated),
* β from the slope over the sizes at or above the linear regime
  (the paper notes transmission "becoming linear only when messages are
  larger than 64 KB", so the slope is taken over the large sizes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from ..clusters.profiles import ClusterProfile
from ..core.hockney import HockneyFit, HockneyParams, fit_hockney
from ..exceptions import MeasurementError
from ..simnet.rng import RngFactory
from ..simmpi.runtime import RankContext

__all__ = ["PingPongResult", "measure_pingpong", "hockney_from_pingpong"]

DEFAULT_SIZES = (
    1,
    1_024,
    8_192,
    65_536,
    131_072,
    262_144,
    524_288,
    1_048_576,
)


def _pingpong_program(
    ctx: RankContext, msg_size: int
) -> Generator[Any, None, None]:
    """Round trip: rank 0 sends, rank 1 echoes."""
    if ctx.rank == 0:
        send_req = ctx.isend(1, msg_size, tag=1)
        yield send_req
        yield ctx.irecv(1, tag=2)
    elif ctx.rank == 1:
        yield ctx.irecv(0, tag=1)
        yield ctx.isend(0, msg_size, tag=2)


@dataclass(frozen=True)
class PingPongResult:
    """One-way times (mean over reps) per message size."""

    cluster: str
    sizes: np.ndarray
    one_way_times: np.ndarray
    std_times: np.ndarray
    reps: int

    def gap_per_byte(self) -> np.ndarray:
        """Observed per-byte gap t/m (diagnostic)."""
        return self.one_way_times / np.maximum(self.sizes, 1)


def measure_pingpong(
    cluster: ClusterProfile,
    sizes=DEFAULT_SIZES,
    *,
    reps: int = 5,
    seed: int = 0,
) -> PingPongResult:
    """Measure one-way times on *cluster* between hosts 0 and 1."""
    sizes = np.asarray(sorted(int(s) for s in sizes), dtype=np.int64)
    if sizes.size < 2:
        raise MeasurementError("need at least two sizes for a Hockney fit")
    if reps < 1:
        raise MeasurementError("reps must be >= 1")
    factory = RngFactory(seed)
    means = np.empty(sizes.size)
    stds = np.empty(sizes.size)
    for idx, size in enumerate(sizes):
        times = []
        for rep in range(reps):
            rep_seed = factory.child(f"pingpong/{size}/{rep}").seed
            # Skew-free: a ping-pong loop amortises job start skew.
            runtime = cluster.runtime(2, seed=rep_seed, start_skew_scale=0.0)
            result = runtime.run(_pingpong_program, int(size))
            times.append(result.duration / 2.0)
        arr = np.asarray(times)
        means[idx] = arr.mean()
        stds[idx] = arr.std(ddof=1) if len(arr) > 1 else 0.0
    return PingPongResult(
        cluster=cluster.name,
        sizes=sizes,
        one_way_times=means,
        std_times=stds,
        reps=reps,
    )


def hockney_from_pingpong(
    result: PingPongResult,
    *,
    linear_from: int = 65_536,
    method: str = "ols",
) -> HockneyFit:
    """Fit Hockney parameters from a ping-pong ladder.

    β is the regression slope over sizes >= *linear_from*; α is the
    measured time of the smallest size (clamped against the regression
    intercept so α + mβ never exceeds the measured small-message times
    by construction of the paper's model).
    """
    mask = result.sizes >= linear_from
    if mask.sum() >= 2:
        fit = fit_hockney(
            result.sizes[mask], result.one_way_times[mask], method=method
        )
    else:
        fit = fit_hockney(result.sizes, result.one_way_times, method=method)
    alpha = max(float(result.one_way_times[0]), 0.0)
    params = HockneyParams(alpha=alpha, beta=fit.params.beta)
    return HockneyFit(
        params=params,
        fit=fit.fit,
        sizes=result.sizes,
        times=result.one_way_times,
    )
