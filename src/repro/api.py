"""Unified facade: scenarios, registries and the paper's pipeline.

This module is the one import an end user needs::

    from repro.api import Scenario

    sc = Scenario.from_file("examples/scenarios/edge_core_gige_stress.toml")
    sweep = sc.sweep()                  # cached, parallel measurement grid
    ch = sc.fit_signature()             # the paper's §8 procedure
    t = sc.predict(64, 1_048_576)       # any (n, m) on that fabric

and the single place new plugins are registered::

    from repro.api import register_topology, register_cluster

Everything the CLI, the experiment drivers and the bench harness do is
routed through the same primitives exposed here, so a scenario defined
as a TOML file behaves identically across all entry points.
"""

from __future__ import annotations

from pathlib import Path

from .clusters.profiles import ClusterProfile, get_cluster
from .core.predictor import AlltoallPredictor
from .core.signature import AlltoallSample, ContentionSignature
from .core.hockney import HockneyParams
from .exceptions import ScenarioError
from .measure.backends import get_backend
from .measure.pipeline import Characterization, characterize_cluster
from .measure.alltoall import measure_alltoall, sweep_grid
from .measure.pingpong import hockney_from_pingpong, measure_pingpong
from .models import (
    DEFAULT_MODELS,
    FittedModel,
    ModelComparison,
    compare_models,
    get_model,
)
from .placement import (
    PlacementResult,
    PlacementSpec,
    as_placement,
    optimize_placement,
)
from .registry import (
    ALGORITHMS,
    BACKENDS,
    CLUSTERS,
    ENGINES,
    EXECUTORS,
    MODELS,
    PATTERNS,
    PLACEMENT_OPTIMIZERS,
    PLACEMENTS,
    TOPOLOGIES,
    register_algorithm,
    register_backend,
    register_cluster,
    register_engine,
    register_executor,
    register_model,
    register_pattern,
    register_placement,
    register_placement_optimizer,
    register_topology,
)
from .scenario import ScenarioSpec, TopologySpec, WorkloadSpec, load_scenario
from .simmpi.collectives import ALLTOALLV_VARIANTS
from .traffic import PatternSpec, as_pattern

#: Inverse of :data:`ALLTOALLV_VARIANTS`: matrix variant → scalar name
#: (signature/model fits always measure the regular All-to-All).
_SCALAR_OF_VARIANT = {v: k for k, v in ALLTOALLV_VARIANTS.items()}

__all__ = [
    "Scenario",
    "ScenarioSpec",
    "TopologySpec",
    "WorkloadSpec",
    "PatternSpec",
    "as_pattern",
    "PlacementSpec",
    "as_placement",
    "PlacementResult",
    "optimize_placement",
    "load_scenario",
    "get_cluster",
    "get_backend",
    "list_clusters",
    "list_topologies",
    "list_algorithms",
    "list_backends",
    "list_patterns",
    "list_executors",
    "list_models",
    "list_engines",
    "list_placements",
    "list_placement_optimizers",
    "get_model",
    "FittedModel",
    "ModelComparison",
    "register_topology",
    "register_cluster",
    "register_algorithm",
    "register_backend",
    "register_pattern",
    "register_executor",
    "register_model",
    "register_engine",
    "register_placement",
    "register_placement_optimizer",
    "TOPOLOGIES",
    "CLUSTERS",
    "ALGORITHMS",
    "BACKENDS",
    "PATTERNS",
    "EXECUTORS",
    "MODELS",
    "ENGINES",
    "PLACEMENTS",
    "PLACEMENT_OPTIMIZERS",
]


def list_clusters() -> list[str]:
    """Canonical names of all registered cluster profiles."""
    return CLUSTERS.names()


def list_topologies() -> list[str]:
    """Canonical names of all registered topology factories."""
    return TOPOLOGIES.names()


def list_algorithms() -> list[str]:
    """Canonical names of all registered All-to-All algorithms."""
    return ALGORITHMS.names()


def list_backends() -> list[str]:
    """Canonical names of all registered measurement backends."""
    return BACKENDS.names()


def list_patterns() -> list[str]:
    """Canonical names of all registered traffic patterns."""
    return PATTERNS.names()


def list_executors() -> list[str]:
    """Canonical names of all registered sweep executors."""
    return EXECUTORS.names()


def list_models() -> list[str]:
    """Canonical names of all registered cost models."""
    return MODELS.names()


def list_engines() -> list[str]:
    """Canonical names of all registered simulation engines."""
    return ENGINES.names()


def list_placements() -> list[str]:
    """Canonical names of all registered rank-placement strategies."""
    return PLACEMENTS.names()


def list_placement_optimizers() -> list[str]:
    """Canonical names of all registered placement optimizers."""
    return PLACEMENT_OPTIMIZERS.names()


class Scenario:
    """A :class:`~repro.scenario.ScenarioSpec` bound to the pipeline.

    Construct with :meth:`from_file`, :meth:`from_dict`,
    :meth:`from_name` (a registered cluster with a default workload) or
    directly from a spec.  The built profile and the fitted
    characterisation are cached on the instance.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self._profile: ClusterProfile | None = None
        self._characterization: Characterization | None = None
        self._hockney = None
        self._hockney_reps: int | None = None
        self._grid_samples: list[AlltoallSample] | None = None

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_file(cls, path: str | Path) -> "Scenario":
        """Load a ``.toml``/``.json`` scenario file."""
        return cls(ScenarioSpec.from_file(path))

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Build from a plain dict (same schema as scenario files)."""
        return cls(ScenarioSpec.from_dict(data))

    @classmethod
    def from_name(cls, cluster: str, **workload) -> "Scenario":
        """A registered cluster under the default (or given) workload.

        Keyword arguments become :class:`~repro.scenario.WorkloadSpec`
        fields, e.g. ``Scenario.from_name("myrinet", nprocs=(8, 16))``.
        """
        canonical = CLUSTERS.canonical(cluster)
        return cls(
            ScenarioSpec(
                name=canonical, base=canonical,
                workload=WorkloadSpec(**workload),
            )
        )

    # -- building blocks ------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def profile(self) -> ClusterProfile:
        """The materialised cluster profile (built once)."""
        if self._profile is None:
            self._profile = self.spec.build_profile()
        return self._profile

    def backend(self, kind: str = "sim"):
        """A measurement backend bound to this scenario's cluster."""
        return get_backend(kind, self.profile)

    # -- pipeline -------------------------------------------------------

    def measure(
        self,
        n_processes: int | None = None,
        msg_size: int | None = None,
        *,
        reps: int | None = None,
        seed: int | None = None,
        algorithm: str | None = None,
        pattern=None,
        engine: str | None = None,
        placement=None,
        metrics: bool = False,
    ) -> AlltoallSample:
        """Measure one All-to-All point (defaults from the workload).

        With ``metrics=True`` the first repetition runs instrumented
        and the returned sample carries an ``observed`` attribute (a
        :class:`repro.obs.Observation`: trace, per-link timeline, and
        the MED contention report).
        """
        workload = self.spec.workload
        return measure_alltoall(
            self.profile,
            n_processes if n_processes is not None else workload.fit_nprocs,
            msg_size if msg_size is not None else workload.sizes[0],
            reps=reps if reps is not None else workload.reps,
            seed=seed if seed is not None else workload.seeds[0],
            algorithm=algorithm if algorithm is not None else self.spec.algorithm,
            pattern=pattern if pattern is not None else workload.pattern,
            engine=engine if engine is not None else self.spec.engine,
            placement=placement if placement is not None else self.spec.placement,
            observe=metrics,
        )

    def trace(
        self,
        n_processes: int | None = None,
        msg_size: int | None = None,
        *,
        seed: int | None = None,
        algorithm: str | None = None,
        pattern=None,
        engine: str | None = None,
        placement=None,
    ):
        """Observe one instrumented run; returns a :class:`repro.obs.Observation`.

        A single repetition with full tracing: the structured event
        trace (exportable to Chrome/Perfetto or JSONL via
        ``observation.export(path, fmt)``), the per-link utilization
        timeline, and the observed-vs-MED contention report.  Defaults
        come from the workload, as in :meth:`measure`.
        """
        sample = self.measure(
            n_processes,
            msg_size,
            reps=1,
            seed=seed,
            algorithm=algorithm,
            pattern=pattern,
            engine=engine,
            placement=placement,
            metrics=True,
        )
        return sample.observed

    def sweep_points(self):
        """The workload grid as sweep points (nprocs x sizes x seeds)."""
        from .sweeps.spec import SweepPoint

        workload = self.spec.workload
        return [
            SweepPoint(
                cluster=self.spec.name,
                n_processes=n,
                msg_size=m,
                algorithm=self.spec.algorithm,
                seed=seed,
                reps=workload.reps,
                pattern=workload.pattern,
                engine=self.spec.engine,
                placement=self.spec.placement,
            )
            for n in workload.nprocs
            for m in workload.sizes
            for seed in workload.seeds
        ]

    def sweep(self, *, runner=None, sinks=(), progress=None):
        """Run the workload grid through the sweep engine.

        Cache keys incorporate both the built profile's fingerprint and
        the scenario definition (:meth:`ScenarioSpec.cache_payload`);
        misses fan out to worker processes even though the profile is
        not registry-resolvable (workers rebuild it from the spec).
        *sinks* (:mod:`repro.exec.sinks`) receive one row per point as
        it lands and *progress* is called as ``(done, total, result)``
        on the same schedule.  Returns a
        :class:`~repro.sweeps.SweepResult`.
        """
        from .sweeps.runner import default_runner

        if runner is None:
            runner = default_runner()
        return runner.run_points(
            self.sweep_points(), profile=self.profile, scenario=self.spec,
            sinks=sinks, progress=progress,
        )

    def optimize_placement(
        self,
        n_processes: int | None = None,
        msg_size: int | None = None,
        *,
        optimizer: str = "greedy",
        seed: int | None = None,
        params: dict | None = None,
        pattern=None,
    ) -> PlacementResult:
        """Search for a contention-minimising rank→host mapping.

        Runs the registered *optimizer* against the predicted-contention
        objective (the MED of the placed workload traffic routed over
        this scenario's fabric; see :mod:`repro.placement.objective`) —
        no simulation.  Defaults: the workload's fit n′, its largest
        message size (where contention dominates), its first seed, and
        its traffic pattern (*pattern* overrides the latter).  Apply the
        result by re-running with ``placement=result.placement`` (or
        bake ``result.placement`` into the scenario spec).
        """
        workload = self.spec.workload
        return optimize_placement(
            self.profile,
            n_processes if n_processes is not None else workload.fit_nprocs,
            msg_size if msg_size is not None else max(workload.sizes),
            pattern=pattern if pattern is not None else workload.pattern,
            optimizer=optimizer,
            seed=seed if seed is not None else workload.seeds[0],
            params=params,
        )

    def fit_signature(self, *, runner=None, force: bool = False, **kwargs) -> Characterization:
        """Run the §8 characterisation on this scenario (cached).

        Fits at n′ = ``workload.fit_nprocs`` over ``workload.sizes``
        (>= 4 sizes required by the paper's regression).  The signature
        is a property of the *network*, so the fit always measures the
        regular All-to-All — a matrix algorithm is lowered to its
        scalar counterpart and any workload pattern or placement is
        ignored here (the regular exchange is permutation-invariant).
        Extra keyword arguments pass through to
        :func:`~repro.measure.pipeline.characterize_cluster`.
        """
        if self._characterization is not None and not force and not kwargs:
            return self._characterization
        workload = self.spec.workload
        custom = bool(kwargs)
        ch = characterize_cluster(
            self.profile,
            sample_nprocs=kwargs.pop("sample_nprocs", workload.fit_nprocs),
            sample_sizes=kwargs.pop("sample_sizes", workload.sizes),
            reps=kwargs.pop("reps", workload.reps),
            seed=kwargs.pop("seed", workload.seeds[0]),
            algorithm=kwargs.pop(
                "algorithm",
                _SCALAR_OF_VARIANT.get(self.spec.algorithm, self.spec.algorithm),
            ),
            engine=kwargs.pop("engine", self.spec.engine),
            runner=runner,
            scenario=self.spec,
            **kwargs,
        )
        if custom:
            # Non-default parameters: hand back without poisoning the cache.
            return ch
        self._characterization = ch
        return ch

    def predictor(self, *, runner=None) -> AlltoallPredictor:
        """Predictor backed by the fitted signature."""
        return self.fit_signature(runner=runner).predictor

    # -- cost-model zoo -------------------------------------------------

    def hockney(self, *, pingpong_reps: int = 3) -> HockneyParams:
        """Ping-pong Hockney α/β for this fabric (measured once, cached).

        The cache is keyed on *pingpong_reps*: asking for a different
        repetition count re-measures instead of silently returning a fit
        taken under other settings.
        """
        if self._hockney is None or self._hockney_reps != pingpong_reps:
            pingpong = measure_pingpong(
                self.profile, reps=pingpong_reps, seed=self.spec.workload.seeds[0]
            )
            self._hockney = hockney_from_pingpong(pingpong).params
            self._hockney_reps = pingpong_reps
        return self._hockney

    def grid_samples(self, *, runner=None, progress=None) -> list[AlltoallSample]:
        """The workload grid as measured samples (cached on the instance).

        Unlike :meth:`fit_signature` (the paper's single-n′ procedure)
        this sweeps the *full* nprocs × sizes grid — what multi-n models
        (LogGP, max-rate, knee) need to identify their parameters.  Like
        the signature fit it measures the regular All-to-All: matrix
        algorithms lower to their scalar variant and any workload
        pattern or placement is ignored (cost models predict the
        regular exchange, which is permutation-invariant).
        """
        if self._grid_samples is None:
            workload = self.spec.workload
            self._grid_samples = sweep_grid(
                self.profile,
                workload.nprocs,
                workload.sizes,
                reps=workload.reps,
                seed=workload.seeds[0],
                algorithm=_SCALAR_OF_VARIANT.get(
                    self.spec.algorithm, self.spec.algorithm
                ),
                engine=self.spec.engine,
                runner=runner,
                scenario=self.spec,
                progress=progress,
            )
        return self._grid_samples

    def fit_model(
        self,
        model: str | None = None,
        *,
        runner=None,
        samples=None,
        **options,
    ) -> FittedModel:
        """Fit one registered cost model on this scenario's grid samples.

        *model* defaults to the scenario's ``model`` field (the paper's
        ``signature`` unless the file says otherwise).  *samples*
        substitutes externally-measured rows (e.g. loaded from a sweep
        CSV via :func:`repro.models.samples_from_rows`) for the
        simulated grid; such offline fits only run the simulated
        ping-pong when the model declares
        :attr:`~repro.models.CostModel.requires_hockney` — a LogGP or
        max-rate fit from a CSV stays simulation-free (and a
        context-free Hockney fit regresses α/β from the rows).  Extra
        keyword arguments pass through to the model's ``fit``
        (``delta_mode=...``, ``threshold=...``, …).
        """
        name = model if model is not None else self.spec.model
        fit_model = get_model(name)
        external = samples is not None
        if samples is None:
            samples = self.grid_samples(runner=runner)
        # Offline fits of context-free models get NO hockney context —
        # not even a previously-cached one — so the result depends only
        # on the rows, never on what this instance measured earlier.
        hockney = (
            self.hockney()
            if not external or fit_model.requires_hockney
            else None
        )
        return fit_model.fit(
            samples, hockney=hockney, cluster=self.profile, **options
        )

    def compare_models(
        self,
        models=None,
        *,
        runner=None,
        samples=None,
        k: int = 4,
        **options,
    ) -> ModelComparison:
        """Fit a set of models on the same samples and rank them.

        Defaults to every built-in model on the scenario's grid samples,
        scored by in-sample RMSE/MAPE plus k-fold and leave-one-n-out
        cross-validation — the repo's operationalisation of "the
        contention signature beats contention-blind models".  As in
        :meth:`fit_model`, offline comparisons (*samples* given) only
        run the simulated ping-pong when some compared model requires
        the Hockney context.
        """
        # Resolve model names first: a typo must fail before the grid
        # is measured, not after minutes of simulation.
        names = models if models is not None else DEFAULT_MODELS
        resolved = [get_model(m) for m in names]
        external = samples is not None
        if samples is None:
            samples = self.grid_samples(runner=runner)
        # As in fit_model: an all-context-free offline comparison never
        # sees a cached ping-pong fit (order-independence).
        hockney = (
            self.hockney()
            if not external or any(m.requires_hockney for m in resolved)
            else None
        )
        comparison = compare_models(
            samples,
            names,
            hockney=hockney,
            cluster=self.profile,
            k=k,
            options=options or None,
        )
        comparison.cluster = self.name
        return comparison

    def predict(
        self,
        n_processes: int,
        msg_size: int,
        *,
        source: str = "fit",
        runner=None,
    ) -> float:
        """Predict an All-to-All completion time for any (n, m).

        ``source="fit"`` uses the signature fitted on this scenario
        (running the characterisation on first use); ``source="paper"``
        uses the signature the paper reports for the base cluster.
        """
        if source == "fit":
            signature = self.fit_signature(runner=runner).signature
        elif source == "paper":
            signature = self.paper_signature(msg_size)
        else:
            raise ValueError(f"unknown predict source {source!r} (fit|paper)")
        return float(signature.predict(n_processes, msg_size))

    def paper_signature(self, msg_size: int = 1_048_576) -> ContentionSignature:
        """The paper-reported signature, with a reference Hockney pair.

        Only available when the scenario is an unmodified registered
        cluster carrying a :class:`~repro.clusters.profiles.PaperSignature`.
        The Hockney β is evaluated at *msg_size* (framing overhead is
        size-dependent).
        """
        profile = self.profile
        if profile.paper is None:
            raise ScenarioError(
                f"scenario {self.name!r} has no paper-reported signature "
                "(custom scenarios must be fitted: use source='fit')"
            )
        topology = profile.topology(2)
        capacity = topology.links[topology.hosts[0].tx_link].capacity
        # β must include the transport's wire-byte framing (envelope +
        # per-segment overhead), or predictions undercut the simulator.
        beta = profile.transport.effective_beta(int(msg_size), capacity)
        return ContentionSignature(
            gamma=profile.paper.gamma,
            delta=profile.paper.delta,
            threshold=profile.paper.threshold,
            hockney=HockneyParams(
                alpha=profile.transport.base_latency, beta=beta
            ),
        )

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        workload = self.spec.workload
        origin = self.spec.base or f"topology:{self.spec.topology.factory}"
        pattern = (
            f", pattern={workload.pattern.key()}"
            if workload.pattern is not None
            else ""
        )
        placement = (
            f", placement={self.spec.placement.key()}"
            if self.spec.placement is not None
            else ""
        )
        return (
            f"{self.name} (from {origin}, algorithm={self.spec.algorithm}"
            f"{pattern}{placement}, "
            f"{len(workload.nprocs)} nprocs x {len(workload.sizes)} sizes x "
            f"{len(workload.seeds)} seeds, reps={workload.reps})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Scenario({self.name!r})"
