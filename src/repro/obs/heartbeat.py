"""Live sweep heartbeat: a periodic stderr ticker built as a sink.

:class:`HeartbeatSink` speaks the :class:`repro.exec.sinks.ResultSink`
protocol (``open``/``write``/``close`` — duck-typed here so this
package stays a leaf), which means it composes with CSV/JSONL sinks in
the same sweep: rows stream to files while a one-line pulse lands on
stderr every few seconds with rows/sec, cache hit rate, an ETA when the
total is known, and the top metric deltas since the previous beat.

The math is guarded for degenerate sweeps: an all-cache-hit sweep
(zero simulations, potentially zero measurable elapsed time) reports
``hit 100%`` with no rate or ETA rather than dividing by zero, and an
empty sweep emits nothing.
"""

from __future__ import annotations

import sys
import time

from .metrics import REGISTRY, diff_snapshots

__all__ = ["HeartbeatSink"]

#: How many top counter deltas a beat line shows.
TOP_DELTAS = 3


def _format_beat(
    done: int,
    total: int | None,
    cached: int,
    elapsed: float,
    deltas: dict[str, float],
) -> str:
    """Render one beat line (pure, for testability)."""
    parts = []
    if total:
        parts.append(f"{done}/{total} rows ({100.0 * done / total:.0f}%)")
    else:
        parts.append(f"{done} rows")
    if elapsed > 0:
        parts.append(f"{done / elapsed:.1f} rows/s")
    if done:
        hit = 100.0 * cached / done
        parts.append("hit 100%" if cached == done else f"hit {hit:.0f}%")
    if total and elapsed > 0 and done and done < total:
        rate = done / elapsed
        parts.append(f"ETA {(total - done) / rate:.0f}s")
    if deltas:
        top = sorted(deltas.items(), key=lambda kv: -abs(kv[1]))[:TOP_DELTAS]
        parts.append(" ".join(
            f"{name} +{value:g}" for name, value in top
        ))
    return "[heartbeat] " + " · ".join(parts)


def _counter_deltas(before: dict, after: dict) -> dict[str, float]:
    """Summed-over-labels counter deltas between two registry snapshots."""
    out: dict[str, float] = {}
    for name, entry in diff_snapshots(before, after).items():
        if entry.get("kind") != "counter":
            continue
        total = sum(entry.get("values", {}).values())
        if total:
            out[name] = total
    return out


class HeartbeatSink:
    """Periodic progress pulse on stderr; composes with file sinks.

    Parameters
    ----------
    interval:
        Minimum seconds between beats (default 5).
    total:
        Expected row count when known (enables the ETA and the
        ``done/total`` fraction); ``None`` for open-ended sweeps.
    stream:
        Where beats go (default ``sys.stderr`` — **not** stdout, so
        piped sweep output stays clean).
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        interval: float = 5.0,
        *,
        total: int | None = None,
        stream=None,
        clock=time.monotonic,
    ) -> None:
        if interval <= 0:
            raise ValueError("heartbeat interval must be > 0 seconds")
        self.interval = float(interval)
        self.total = total
        self.stream = stream
        self.clock = clock
        self.done = 0
        self.cached = 0
        self._start = 0.0
        self._last_beat = 0.0
        self._last_snapshot: dict = {}

    # -- ResultSink protocol -------------------------------------------

    def open(self, fieldnames) -> None:
        self._start = self._last_beat = self.clock()
        self._last_snapshot = REGISTRY.snapshot()

    def write(self, row: dict) -> None:
        self.done += 1
        if row.get("cached"):
            self.cached += 1
        now = self.clock()
        if now - self._last_beat >= self.interval:
            self._beat(now)

    def close(self) -> None:
        # A final beat summarises the sweep; silent for empty sweeps.
        if self.done:
            self._beat(self.clock())

    # -- internals ------------------------------------------------------

    def _beat(self, now: float) -> None:
        snapshot = REGISTRY.snapshot()
        line = _format_beat(
            self.done,
            self.total,
            self.cached,
            now - self._start,
            _counter_deltas(self._last_snapshot, snapshot),
        )
        stream = self.stream if self.stream is not None else sys.stderr
        print(line, file=stream, flush=True)
        self._last_beat = now
        self._last_snapshot = snapshot
