"""Per-link utilization timeline fed by the simulation engines.

A :class:`LinkTimeline` is handed to an engine (``timeline=`` on the
built-in engine callables) and receives one :meth:`record_active` call
per allocation resolve — the instants at which the active flow set or
its rates change.  Between resolves every flow progresses linearly at
its allocated rate, so the per-link bandwidth and concurrency are
piecewise-constant and the timeline integrates them exactly:

* ``delivered_bytes[l]`` — total bytes carried by link *l*;
* ``busy_time[l]`` — wall time link *l* had at least one flow;
* ``peak_concurrency[l]`` — max simultaneous flows ever crossing *l*,
  the quantity the MED degree predicts (§5 of the paper).

The collector is engine-agnostic: it only needs the flow→link CSR
(:class:`~repro.simnet.fairness.FlowPaths`) and the per-flow rate
vector that every resolve already computes, so recording adds two
``np.bincount`` calls per resolve and nothing on the default path.
"""

from __future__ import annotations

import numpy as np

from ..simnet.fairness import FlowPaths
from ..simnet.topology import Topology

__all__ = ["LinkTimeline"]


class LinkTimeline:
    """Piecewise-constant per-link concurrency / bandwidth recorder.

    Parameters
    ----------
    n_links:
        Number of directed links in the topology being observed.
    names, kinds, capacities:
        Optional per-link metadata (stored verbatim; used by reports).
    keep_series:
        Keep the full sample series (time, per-link concurrency and
        bandwidth at each resolve) for plotting.  Aggregates are always
        maintained; the series costs two small arrays per resolve.
    """

    def __init__(
        self,
        n_links: int,
        *,
        names: tuple[str, ...] | None = None,
        kinds: tuple[str, ...] | None = None,
        capacities: np.ndarray | None = None,
        keep_series: bool = True,
    ) -> None:
        if n_links < 1:
            raise ValueError("timeline needs at least one link")
        self.n_links = int(n_links)
        self.names = names
        self.kinds = kinds
        self.capacities = (
            None if capacities is None
            else np.asarray(capacities, dtype=np.float64)
        )
        self.keep_series = keep_series

        self.peak_concurrency = np.zeros(self.n_links, dtype=np.int64)
        self.busy_time = np.zeros(self.n_links, dtype=np.float64)
        self.delivered_bytes = np.zeros(self.n_links, dtype=np.float64)
        self.n_samples = 0

        self._zeros_i = np.zeros(self.n_links, dtype=np.int64)
        self._zeros_f = np.zeros(self.n_links, dtype=np.float64)
        self._last_time = 0.0
        self._last_counts = self._zeros_i
        self._last_bandwidth = self._zeros_f

        self.times: list[float] = []
        self._count_series: list[np.ndarray] = []
        self._bw_series: list[np.ndarray] = []

    @classmethod
    def for_topology(cls, topology: Topology, **kwargs) -> "LinkTimeline":
        """A timeline dimensioned and labelled for *topology*."""
        links = topology.links
        return cls(
            topology.n_links,
            names=tuple(link.name for link in links),
            kinds=tuple(link.kind.value for link in links),
            capacities=np.asarray(topology.capacities(), dtype=np.float64),
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Recording (called by the engines on every resolve)
    # ------------------------------------------------------------------

    def record_active(
        self,
        now: float,
        paths: FlowPaths | None,
        rates: np.ndarray,
    ) -> None:
        """Record the active set's per-link state at time *now*.

        *paths* is the flow→link CSR of the active flows (``None`` or
        empty when no flow is active) and *rates* the matching per-flow
        allocated rates.  The interval since the previous record is
        closed with the *previous* state (piecewise-constant exact
        integration); the new state opens the next interval.
        """
        dt = now - self._last_time
        if dt > 0:
            self.delivered_bytes += self._last_bandwidth * dt
            self.busy_time += (self._last_counts > 0) * dt
            self._last_time = now
        if paths is None or len(rates) == 0:
            counts: np.ndarray = self._zeros_i
            bandwidth: np.ndarray = self._zeros_f
        else:
            rates = np.asarray(rates, dtype=np.float64)
            counts = np.bincount(paths.link_ids, minlength=self.n_links)
            per_hop = np.repeat(rates, np.diff(paths.indptr))
            bandwidth = np.bincount(
                paths.link_ids, weights=per_hop, minlength=self.n_links
            )
        self._last_counts = counts
        self._last_bandwidth = bandwidth
        np.maximum(self.peak_concurrency, counts, out=self.peak_concurrency)
        self.n_samples += 1
        if self.keep_series:
            self.times.append(now)
            self._count_series.append(counts)
            self._bw_series.append(bandwidth)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def duration(self) -> float:
        """Time of the last record (simulations start at t=0)."""
        return self._last_time

    def utilization(self) -> np.ndarray:
        """Mean fraction of each link's capacity actually used.

        ``delivered_bytes / (capacity * duration)`` — zero-safe, and
        only available when the timeline knows the capacities.
        """
        if self.capacities is None:
            raise ValueError("timeline was built without link capacities")
        denominator = self.capacities * self.duration
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(
                denominator > 0, self.delivered_bytes / denominator, 0.0
            )
        return util

    def series(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(times, concurrency, bandwidth)`` sample arrays.

        *times* has shape ``(n_samples,)``; the others are
        ``(n_samples, n_links)``.  Requires ``keep_series=True``.
        """
        if not self.keep_series:
            raise ValueError("timeline was built with keep_series=False")
        if not self.times:
            empty = np.empty((0, self.n_links))
            return np.empty(0), empty.astype(np.int64), empty
        return (
            np.asarray(self.times, dtype=np.float64),
            np.vstack(self._count_series),
            np.vstack(self._bw_series),
        )

    def link_name(self, index: int) -> str:
        """Display name of link *index* (falls back to ``link{i}``)."""
        if self.names is not None:
            return self.names[index]
        return f"link{index}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LinkTimeline(links={self.n_links}, samples={self.n_samples}, "
            f"duration={self.duration:.6g})"
        )
