"""Process-safe metrics: labeled counters, gauges and histograms.

The simulator self-measures — every engine run, cache probe and
executed task bumps cheap in-process counters — and this module is the
ledger those numbers live in.  There is no shared memory and no lock:
**process safety comes from the snapshot/merge protocol** instead.
Each process owns its private :class:`MetricsRegistry`; a worker
serialises its contribution with :meth:`MetricsRegistry.snapshot` (a
plain JSON-able dict that pickles across any executor), the delta of
one unit of work is :func:`diff_snapshots`, and the parent folds worker
deltas back in with :meth:`MetricsRegistry.merge`.  The sweep engine
wires exactly this: :func:`repro.exec.task.run_task` attaches its delta
to the :class:`~repro.exec.task.TaskOutcome`, and the runner merges it
when (and only when) the outcome crossed a process boundary — so
serial, process and futures executors all land the same totals.

Three metric kinds:

* :class:`Counter` — monotonically increasing float; merged by sum.
* :class:`Gauge` — last-written value; merged by overwrite.
* :class:`Histogram` — fixed-bucket value distribution (bucket counts
  plus sum/count); merged element-wise.

Labels are free-form keyword arguments (``inc(3, engine="vector")``);
each label combination is an independent series.  Collection is always
on — an increment is a dict update, far below simulation cost — and the
registry never touches cache keys, row schemas or RNG streams.
"""

from __future__ import annotations

import bisect
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "diff_snapshots",
    "merge_snapshots",
    "record_sim_stats",
]

#: Default histogram bucket upper bounds (seconds-flavoured; callers
#: measuring other units pass their own).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0, 300.0,
)


def _label_key(labels: dict[str, object]) -> str:
    """Canonical series key: ``"a=1,b=x"`` (sorted by label name)."""
    if not labels:
        return ""
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


class _Metric:
    """Shared name/help/series plumbing of all three kinds."""

    kind = "abstract"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[str, object] = {}

    @property
    def series(self) -> dict[str, object]:
        """Live label-key → value view (do not mutate)."""
        return self._series

    def value(self, **labels) -> object:
        """The series value for a label combination (None if unseen)."""
        return self._series.get(_label_key(labels))

    def _snapshot_values(self) -> dict[str, object]:
        return dict(self._series)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, series={len(self._series)})"


class Counter(_Metric):
    """Monotonically increasing value; merged across processes by sum."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount


class Gauge(_Metric):
    """Last-written value (queue depth, worker count); merge overwrites."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._series[_label_key(labels)] = float(value)


class Histogram(_Metric):
    """Fixed-bucket distribution: per-bucket counts plus sum and count.

    A series value is ``{"counts": [...], "sum": s, "count": n}`` where
    ``counts`` has one cell per bucket bound plus a final overflow cell.
    """

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {self.name}: needs at least one bucket")

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        cell = self._series.get(key)
        if cell is None:
            cell = {
                "counts": [0] * (len(self.buckets) + 1),
                "sum": 0.0,
                "count": 0,
            }
            self._series[key] = cell
        cell["counts"][bisect.bisect_left(self.buckets, value)] += 1
        cell["sum"] += float(value)
        cell["count"] += 1

    def _snapshot_values(self) -> dict[str, object]:
        return {
            key: {
                "counts": list(cell["counts"]),
                "sum": cell["sum"],
                "count": cell["count"],
            }
            for key, cell in self._series.items()
        }


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """One process's metrics, keyed by dotted name.

    ``counter``/``gauge``/``histogram`` are get-or-create and
    idempotent; asking for an existing name with a different kind is a
    programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    # -- registration ---------------------------------------------------

    def _get(self, cls, name: str, help: str, **kwargs) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    # -- introspection --------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # -- snapshot / merge protocol --------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """JSON-able capture of every series (picklable, order-stable)."""
        out: dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry: dict[str, object] = {
                "kind": metric.kind,
                "values": metric._snapshot_values(),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            out[name] = entry
        return out

    def merge(self, snapshot: dict[str, dict] | None) -> None:
        """Fold a snapshot (typically a worker delta) into this registry.

        Counters and histograms add; gauges overwrite (the snapshot is
        the fresher observation).  Metrics unseen here are created with
        the snapshot's kind.
        """
        if not snapshot:
            return
        for name, entry in snapshot.items():
            kind = entry.get("kind")
            if kind not in _KINDS:
                raise ValueError(f"snapshot metric {name!r}: unknown kind {kind!r}")
            if kind == "histogram":
                metric = self.histogram(
                    name, buckets=entry.get("buckets", DEFAULT_BUCKETS)
                )
            elif kind == "gauge":
                metric = self.gauge(name)
            else:
                metric = self.counter(name)
            for key, value in entry.get("values", {}).items():
                if kind == "counter":
                    metric._series[key] = metric._series.get(key, 0.0) + value
                elif kind == "gauge":
                    metric._series[key] = value
                else:
                    cell = metric._series.get(key)
                    if cell is None:
                        metric._series[key] = {
                            "counts": list(value["counts"]),
                            "sum": value["sum"],
                            "count": value["count"],
                        }
                    else:
                        if len(cell["counts"]) != len(value["counts"]):
                            raise ValueError(
                                f"histogram {name!r}: bucket shape mismatch"
                            )
                        cell["counts"] = [
                            a + b for a, b in zip(cell["counts"], value["counts"])
                        ]
                        cell["sum"] += value["sum"]
                        cell["count"] += value["count"]

    def reset(self) -> None:
        """Drop every metric (tests and fresh-run isolation)."""
        self._metrics.clear()


def merge_snapshots(*snapshots: dict | None) -> dict[str, dict]:
    """Combine snapshots without touching any live registry."""
    scratch = MetricsRegistry()
    for snap in snapshots:
        scratch.merge(snap)
    return scratch.snapshot()


def diff_snapshots(
    before: dict[str, dict] | None, after: dict[str, dict] | None
) -> dict[str, dict]:
    """What happened between two snapshots of one registry.

    Counters and histograms subtract (all-zero series are dropped, so
    the delta of an idle stretch is ``{}``); gauges pass through from
    *after* (a gauge is a reading, not an accumulation).
    """
    before = before or {}
    out: dict[str, dict] = {}
    for name, entry in (after or {}).items():
        kind = entry["kind"]
        prior = before.get(name, {}).get("values", {})
        values: dict[str, object] = {}
        for key, value in entry.get("values", {}).items():
            if kind == "counter":
                delta = value - prior.get(key, 0.0)
                if delta:
                    values[key] = delta
            elif kind == "gauge":
                values[key] = value
            else:
                prev = prior.get(key)
                if prev is None:
                    cell = {
                        "counts": list(value["counts"]),
                        "sum": value["sum"],
                        "count": value["count"],
                    }
                else:
                    cell = {
                        "counts": [
                            a - b
                            for a, b in zip(value["counts"], prev["counts"])
                        ],
                        "sum": value["sum"] - prev["sum"],
                        "count": value["count"] - prev["count"],
                    }
                if cell["count"]:
                    values[key] = cell
        if values:
            out[name] = {
                "kind": kind,
                "values": values,
                **(
                    {"buckets": entry["buckets"]}
                    if "buckets" in entry else {}
                ),
            }
    return out


#: The process-wide registry every built-in layer records into.
REGISTRY = MetricsRegistry()


def record_sim_stats(stats) -> None:
    """Fold one engine run's :class:`~repro.simnet.stats.SimStats` in.

    Called once per simulated repetition by the measurement layer — a
    handful of counter increments, far below the cost of the simulation
    they describe.
    """
    if stats is None:
        return
    engine = stats.engine
    REGISTRY.counter("sim.runs").inc(1, engine=engine)
    REGISTRY.counter("sim.epochs").inc(stats.epochs, engine=engine)
    REGISTRY.counter("sim.solves").inc(stats.resolves, engine=engine)
    REGISTRY.counter("sim.solve_reuses").inc(stats.solve_reuses, engine=engine)
    REGISTRY.counter("sim.events").inc(stats.events, engine=engine)
    REGISTRY.counter("sim.losses").inc(stats.losses, engine=engine)
    REGISTRY.counter("sim.stalls").inc(stats.stalls, engine=engine)
