"""Unified observability: link metrics, trace export, sweep profiling.

The paper's whole argument is that *per-link contention* — how many
flows share a link at once — explains All-to-All cost.  This package
lets you watch that happen instead of trusting a final duration:

* :class:`LinkTimeline` — a collector both engines feed on every
  allocation resolve, recording per-link active-flow concurrency,
  allocated bandwidth, busy time and delivered bytes;
* :class:`ContentionReport` — ranks bottleneck links and compares the
  *observed* peak concurrency on every link against the MED-predicted
  degree (the §5 model made directly testable);
* :mod:`repro.obs.export` — JSONL and Chrome trace-event exporters for
  :class:`~repro.simnet.trace.Trace` (load the Chrome JSON in
  Perfetto / ``chrome://tracing``);
* :class:`Observation` — one observed run: trace + timeline + report,
  returned by ``Scenario.trace()`` / ``measure(metrics=True)``;
* :class:`SweepProfile` — where a sweep's wall-time went (cache hits,
  in-worker simulation seconds, executor overhead, retries);
* :mod:`repro.obs.metrics` — the process-safe registry of labeled
  counters/gauges/histograms every layer records into, with the
  snapshot/merge protocol that carries worker-side increments back to
  the parent across any executor;
* :mod:`repro.obs.ledger` — the append-only JSONL run ledger
  (fingerprinted entries per CLI/bench invocation);
* :mod:`repro.obs.bench` — the shared benchmark-record schema and the
  regression gate behind ``repro.cli bench ingest|report|compare``;
* :class:`HeartbeatSink` — a periodic stderr ticker (rows/sec, hit
  rate, ETA, top metric deltas) that composes with CSV/JSONL sinks.

Everything here is **opt-in**: the default measurement path never
constructs a collector, so cache keys and row files stay byte-identical
with and without this package.  (Metric counters are always *collected*
— they are dict updates, invisible next to a simulation — but never
surface anywhere unless asked.)  The package is a leaf — it imports
only NumPy and value types from :mod:`repro.simnet` — so every other
layer may import it freely.
"""

from .contention import ContentionReport, LinkContention, predicted_concurrency
from .export import (
    EXPORT_FORMATS,
    to_chrome,
    to_jsonl,
    write_trace,
)
from .heartbeat import HeartbeatSink
from .ledger import LEDGER_ENV, Ledger, default_ledger, record_run
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    merge_snapshots,
    record_sim_stats,
)
from .observe import Observation
from .profile import SweepProfile
from .timeline import LinkTimeline

__all__ = [
    "LinkTimeline",
    "LinkContention",
    "ContentionReport",
    "predicted_concurrency",
    "Observation",
    "SweepProfile",
    "EXPORT_FORMATS",
    "to_chrome",
    "to_jsonl",
    "write_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "diff_snapshots",
    "merge_snapshots",
    "record_sim_stats",
    "Ledger",
    "LEDGER_ENV",
    "default_ledger",
    "record_run",
    "HeartbeatSink",
]
