"""Sweep profiling: where a sweep's wall-time actually went.

The sweep engine measures per-point in-worker wall time
(``TaskOutcome.elapsed`` → ``PointResult.elapsed``) and the execution
phase's wall time; :class:`SweepProfile` condenses those into the
numbers an operator cares about: cache effectiveness, in-worker
simulation seconds vs end-to-end wall, executor queue/IPC overhead,
retries, and the slowest points.  Pure post-processing — building a
profile never re-runs anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sweeps.runner import SweepResult

__all__ = ["SweepProfile"]


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f} s"
    return f"{value * 1e3:.1f} ms"


@dataclass(frozen=True)
class SweepProfile:
    """Aggregated timing/cache profile of one finished sweep."""

    n_points: int
    n_cached: int
    n_simulated: int
    n_failed: int
    elapsed: float  #: end-to-end wall time of the sweep
    exec_elapsed: float  #: wall time of the execution (cache-miss) phase
    sim_time: float  #: summed in-worker seconds across simulated points
    workers: int
    retries: int  #: extra attempts beyond the first, summed
    slowest: tuple = field(default_factory=tuple)  #: (label, seconds) pairs

    @property
    def hit_rate(self) -> float:
        """Fraction of points served from the cache."""
        return self.n_cached / self.n_points if self.n_points else 0.0

    @property
    def queue_overhead(self) -> float:
        """Execution wall time not accounted for by simulation itself.

        With *w* workers, ``sim_time / w`` is the ideal execution wall;
        anything above that is scheduling, IPC, pickling and imbalance.
        Clamped at zero (timer noise on near-empty sweeps).
        """
        ideal = self.sim_time / self.workers if self.workers else self.sim_time
        return max(self.exec_elapsed - ideal, 0.0)

    @classmethod
    def from_result(
        cls, result: "SweepResult", *, slowest: int = 3
    ) -> "SweepProfile":
        """Profile a finished :class:`~repro.sweeps.SweepResult`."""
        simulated = [r for r in result.results if not r.cached and r.ok]
        timed = sorted(simulated, key=lambda r: -r.elapsed)[: max(slowest, 0)]
        labels = tuple(
            (
                f"{r.point.cluster} {r.point.algorithm} "
                f"n={r.point.n_processes} m={r.point.msg_size}",
                r.elapsed,
            )
            for r in timed
            if r.elapsed > 0
        )
        return cls(
            n_points=result.n_points,
            n_cached=result.n_cached,
            n_simulated=result.n_simulated,
            n_failed=result.n_failed,
            elapsed=result.elapsed,
            exec_elapsed=result.exec_elapsed,
            sim_time=sum(r.elapsed for r in simulated),
            workers=result.workers,
            retries=sum(max(r.attempts - 1, 0) for r in result.results),
            slowest=labels,
        )

    def render(self) -> str:
        """The ``sweep --profile`` summary block."""
        lines = [
            f"profile   : {self.n_points} points in "
            f"{_fmt_seconds(self.elapsed)} wall "
            f"({self.workers} worker{'s' if self.workers != 1 else ''})",
            f"  cache   : {self.n_cached} hit / "
            f"{self.n_simulated + self.n_failed} miss "
            f"({self.hit_rate:.0%} hit rate)",
        ]
        if self.n_points and not (self.n_simulated + self.n_failed):
            # Every point came from the cache: there is no in-worker time
            # or executor overhead to break down, and saying so beats
            # printing a pair of 0.0 ms lines.
            lines.append("  sim     : everything served from cache")
            return "\n".join(lines)
        lines += [
            f"  sim     : {_fmt_seconds(self.sim_time)} in-worker across "
            f"{self.n_simulated} simulated point"
            f"{'s' if self.n_simulated != 1 else ''}",
            f"  overhead: {_fmt_seconds(self.queue_overhead)} executor "
            f"queue/IPC (exec wall {_fmt_seconds(self.exec_elapsed)})",
        ]
        if self.retries:
            lines.append(f"  retries : {self.retries}")
        for label, seconds in self.slowest:
            lines.append(f"  slowest : {label}  {_fmt_seconds(seconds)}")
        return "\n".join(lines)
