"""One observed simulation run: trace + timeline + contention report.

An :class:`Observation` is what the instrumented measurement path
(``measure_alltoall(..., observe=True)``, ``Scenario.trace()``) hands
back: the full structured trace of the first repetition, the per-link
:class:`~repro.obs.timeline.LinkTimeline` it fed, and the
:class:`~repro.obs.contention.ContentionReport` comparing observed
peaks against the MED prediction.  Purely a value object — exporting
and rendering delegate to :mod:`repro.obs.export` and the report.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..simnet.trace import Trace
from .contention import ContentionReport
from .export import write_trace
from .timeline import LinkTimeline

__all__ = ["Observation"]


@dataclass
class Observation:
    """Everything observed about one simulated collective."""

    engine: str
    duration: float
    trace: Trace
    timeline: LinkTimeline
    report: ContentionReport

    def export(self, path: str | Path, fmt: str = "chrome") -> Path:
        """Write the trace to *path* (see :func:`repro.obs.write_trace`)."""
        return write_trace(self.trace, path, fmt)

    def render(self, top: int = 5) -> str:
        """Human-readable run summary + bottleneck table."""
        header = (
            f"engine    : {self.engine}\n"
            f"duration  : {self.duration:.6g} s\n"
            f"records   : {len(self.trace)} trace events, "
            f"{self.timeline.n_samples} timeline samples"
        )
        return header + "\n" + self.report.render(top)
