"""Append-only JSONL run ledger: what ran, where, and what it cost.

Every ``measure``/``sweep``/``fit``/bench invocation appends one
fingerprinted entry to a JSON-lines file — the durable record the
benchmark-trajectory toolchain (:mod:`repro.obs.bench`) reads back.
An entry carries:

* ``kind`` — what ran (``sweep``, ``run``, ``fit``, ``bench``, ...);
* ``fingerprint`` — where it ran: git sha, python/numpy versions, cpu
  count, platform (see :func:`environment_fingerprint`);
* ``ts`` — UNIX timestamp;
* caller-supplied fields: scenario cache key, wall time, a metrics
  snapshot (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`), bench
  payloads.

Location: ``$REPRO_LEDGER`` when set (a path, or one of
``0/off/none/false/disabled`` to turn recording off entirely), else
``.repro/ledger.jsonl`` under the current directory.  Writes are
single-``write`` appends of one line — atomic enough for concurrent
CLI invocations on POSIX — and **recording never raises**: a read-only
filesystem degrades to a no-op, not a failed sweep.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path

__all__ = [
    "LEDGER_ENV",
    "Ledger",
    "default_ledger",
    "environment_fingerprint",
    "record_run",
]

#: Environment override: a path, or a falsy token to disable recording.
LEDGER_ENV = "REPRO_LEDGER"

#: ``REPRO_LEDGER`` values that disable the ledger entirely.
_DISABLED = frozenset({"0", "off", "none", "false", "disabled"})

#: Default ledger location (relative to the working directory).
DEFAULT_PATH = Path(".repro") / "ledger.jsonl"

_git_sha_cache: str | None | bool = False  # False = not probed yet


def _git_sha() -> str | None:
    """Current commit sha (memoised; ``None`` outside a git checkout)."""
    global _git_sha_cache
    if _git_sha_cache is False:
        try:
            _git_sha_cache = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True, text=True, timeout=5, check=True,
            ).stdout.strip() or None
        except Exception:
            _git_sha_cache = None
    return _git_sha_cache


def environment_fingerprint() -> dict[str, object]:
    """Who/where: enough to interpret a ledger entry's numbers later."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep
        numpy_version = None
    return {
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
    }


class Ledger:
    """One JSONL ledger file: append entries, iterate them back.

    ``path=None`` builds a disabled ledger whose :meth:`append` is a
    no-op — call sites never need to branch on whether recording is on.
    """

    def __init__(self, path: str | Path | None) -> None:
        self.path = Path(path) if path is not None else None

    @property
    def enabled(self) -> bool:
        return self.path is not None

    def append(self, entry: dict) -> bool:
        """Append one entry (one JSON line).  Never raises.

        Returns whether the entry actually reached disk — ``False`` for
        disabled ledgers and IO failures alike.
        """
        if self.path is None:
            return False
        try:
            line = json.dumps(entry, sort_keys=True, default=str)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as handle:
                handle.write(line + "\n")
            return True
        except Exception:
            return False

    def record(self, kind: str, **fields) -> dict:
        """Build a fingerprinted entry for *kind* and append it.

        Returns the entry (recorded or not), so callers can echo it.
        ``None``-valued fields are dropped — absent, not null, in the
        file.
        """
        entry: dict[str, object] = {
            "kind": kind,
            "ts": round(time.time(), 3),
            "fingerprint": environment_fingerprint(),
        }
        entry.update({k: v for k, v in fields.items() if v is not None})
        self.append(entry)
        return entry

    def entries(self, *, kind: str | None = None) -> list[dict]:
        """All entries (oldest first), optionally filtered by ``kind``.

        Unparseable lines are skipped — a torn concurrent append must
        not poison every later read of the ledger.
        """
        if self.path is None or not self.path.exists():
            return []
        out: list[dict] = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and (
                kind is None or entry.get("kind") == kind
            ):
                out.append(entry)
        return out

    def __len__(self) -> int:
        return len(self.entries())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ledger({str(self.path)!r})"


def default_ledger() -> Ledger:
    """The ledger the environment asks for.

    ``REPRO_LEDGER`` unset → ``.repro/ledger.jsonl``; set to a falsy
    token (``0``/``off``/``none``/``false``/``disabled``) → disabled;
    set to anything else → that path.
    """
    raw = os.environ.get(LEDGER_ENV)
    if raw is None or not raw.strip():
        return Ledger(DEFAULT_PATH)
    if raw.strip().lower() in _DISABLED:
        return Ledger(None)
    return Ledger(raw.strip())


def record_run(kind: str, **fields) -> dict:
    """Record one invocation in the environment's default ledger.

    The convenience every CLI command calls:
    ``record_run("sweep", scenario_key=..., wall_s=..., metrics=...)``.
    Never raises; returns the entry.
    """
    return default_ledger().record(kind, **fields)
