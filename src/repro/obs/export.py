"""Trace exporters: JSONL and Chrome trace-event JSON (Perfetto).

:class:`~repro.simnet.trace.Trace` records are ground truth for tests
but were write-only for humans.  These exporters turn a trace into

* **jsonl** — one JSON object per record, the loss-less archival form;
* **chrome** — the Chrome trace-event format (the ``traceEvents``
  array schema), loadable in Perfetto or ``chrome://tracing``:
  ``flow.inject``/``flow.complete`` pairs become duration ("X") slices
  on the *network* process (one track per source host), MPI protocol
  records become instants ("i") on the *ranks* process, and
  ``vector.epoch`` records become an active-flows counter ("C") track.

Timestamps are converted from simulated seconds to the format's
microseconds.  Export never mutates the trace and copes with partial
traces (an inject without a complete renders as an instant).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..simnet.trace import Trace

__all__ = [
    "EXPORT_FORMATS",
    "chrome_events",
    "to_chrome",
    "to_jsonl",
    "write_trace",
]

#: Process ids of the Chrome trace tracks.
_PID_FLOWS = 1
_PID_RANKS = 2
_PID_ENGINE = 3

#: Categories rendered as instants on the ranks process, keyed by the
#: payload field that names the track (falls back to 0).
_RANK_CATEGORIES = {
    "mpi.isend": "src",
    "mpi.irecv": "rank",
    "mpi.recv_complete": "rank",
    "mpi.local_copy": "rank",
    "vector.phase": "rank",
}


def _coerce(value):
    """JSON fallback for NumPy scalars and other odd payload values."""
    try:
        return int(value)
    except (TypeError, ValueError):
        pass
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def _us(time: float) -> float:
    """Simulated seconds → trace-format microseconds."""
    return time * 1e6


def to_jsonl(trace: Trace) -> str:
    """One JSON object per record (time, category, payload)."""
    lines = [
        json.dumps(
            {"time": r.time, "category": r.category, **r.payload},
            default=_coerce,
        )
        for r in trace
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def chrome_events(trace: Trace) -> list[dict]:
    """The ``traceEvents`` array for *trace* (list of event dicts)."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
        for pid, label in (
            (_PID_FLOWS, "network flows"),
            (_PID_RANKS, "mpi ranks"),
            (_PID_ENGINE, "engine"),
        )
    ]
    open_flows: dict[object, object] = {}
    for record in trace:
        category = record.category
        payload = record.payload
        if category == "flow.inject":
            open_flows[payload.get("fid")] = record
            continue
        if category == "flow.complete":
            fid = payload.get("fid")
            inject = open_flows.pop(fid, None)
            start = inject.time if inject is not None else record.time
            nbytes = (
                inject.payload.get("nbytes") if inject is not None else None
            )
            events.append(
                {
                    "name": f"flow {payload.get('src')}->{payload.get('dst')}",
                    "cat": "flow",
                    "ph": "X",
                    "ts": _us(start),
                    "dur": _us(max(record.time - start, 0.0)),
                    "pid": _PID_FLOWS,
                    "tid": int(payload.get("src", 0)),
                    "args": {
                        "fid": fid,
                        "nbytes": nbytes,
                        "losses": payload.get("losses", 0),
                        "label": payload.get("label", ""),
                    },
                }
            )
            continue
        if category == "vector.epoch":
            events.append(
                {
                    "name": "active flows",
                    "cat": "engine",
                    "ph": "C",
                    "ts": _us(record.time),
                    "pid": _PID_ENGINE,
                    "tid": 0,
                    "args": {"active": payload.get("active", 0)},
                }
            )
            continue
        if category in _RANK_CATEGORIES:
            tid_field = _RANK_CATEGORIES[category]
            events.append(
                {
                    "name": category,
                    "cat": "mpi",
                    "ph": "i",
                    "s": "t",
                    "ts": _us(record.time),
                    "pid": _PID_RANKS,
                    "tid": int(payload.get(tid_field, 0)),
                    "args": dict(payload),
                }
            )
            continue
        # Everything else (losses, resumes, injects that never
        # completed are drained below) renders as a flow-track instant.
        events.append(
            {
                "name": category,
                "cat": "flow",
                "ph": "i",
                "s": "t",
                "ts": _us(record.time),
                "pid": _PID_FLOWS,
                "tid": int(payload.get("src", 0)),
                "args": dict(payload),
            }
        )
    for record in open_flows.values():
        events.append(
            {
                "name": "flow.inject (incomplete)",
                "cat": "flow",
                "ph": "i",
                "s": "t",
                "ts": _us(record.time),
                "pid": _PID_FLOWS,
                "tid": int(record.payload.get("src", 0)),
                "args": dict(record.payload),
            }
        )
    return events


def to_chrome(trace: Trace) -> str:
    """Chrome trace-event JSON document (Perfetto-loadable)."""
    document = {
        "traceEvents": chrome_events(trace),
        "displayTimeUnit": "ms",
    }
    return json.dumps(document, default=_coerce)


#: Export format registry: name → ``fn(trace) -> str``.
EXPORT_FORMATS = {
    "chrome": to_chrome,
    "jsonl": to_jsonl,
}


def write_trace(trace: Trace, path: str | Path, fmt: str = "chrome") -> Path:
    """Serialise *trace* to *path* in *fmt*; returns the path."""
    if fmt not in EXPORT_FORMATS:
        known = ", ".join(sorted(EXPORT_FORMATS))
        raise ValueError(f"unknown trace format {fmt!r}; known: {known}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(EXPORT_FORMATS[fmt](trace))
    return path
