"""Benchmark-record schema and the regression gate.

Six ``benchmarks/bench_*.py`` emitters used to each invent their own
JSON shape; this module is the shared schema they all adopt (via the
thin :mod:`benchmarks.record` adapter) and the comparison logic behind
``repro.cli bench ingest|report|compare``.

A **record** is one bench run::

    {
      "schema": "repro-bench/1",
      "bench": "engine_throughput",
      "fingerprint": {git sha, python, numpy, cpu_count, platform},
      "metrics": {
        "lossless_speedup_n64": {
          "value": 14.2, "unit": "x", "direction": "higher",
          "tolerance": 0.3
        },
        ...
      },
      ...legacy keys, untouched...
    }

``metrics`` is the *tracked* surface: every entry names which way is
better (``direction``) and how much noise to forgive (``tolerance``, a
relative fraction).  Tracked values are **machine-normalized** — ratios
against the fluid reference engine (speedups, overhead ratios) or
throughputs scaled by a fluid calibration unit — never absolute
seconds, so a committed baseline from one container gates runs on
another.  All pre-existing keys of each bench ride along at the top
level, so legacy consumers (CI asserts, the bench scripts' own tests)
keep reading the exact shapes they always did.

The **gate** (:func:`compare`) is min-of-N on both sides: each side's
best value per (bench, metric) — ``max`` for higher-is-better, ``min``
for lower-is-better — then a relative-threshold check.  A tracked
metric missing from the current side is itself a regression (a bench
silently dropping a metric must not pass).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "SCHEMA",
    "make_metric",
    "make_record",
    "load_records",
    "Finding",
    "compare",
    "render_findings",
    "render_trajectory",
]

#: Schema tag carried by every conforming record.
SCHEMA = "repro-bench/1"

#: Default relative noise tolerance when a metric does not set one.
DEFAULT_TOLERANCE = 0.25

_DIRECTIONS = ("higher", "lower")


def make_metric(
    value: float,
    *,
    direction: str = "higher",
    tolerance: float = DEFAULT_TOLERANCE,
    unit: str = "",
) -> dict:
    """One tracked metric cell (validated)."""
    if direction not in _DIRECTIONS:
        raise ValueError(
            f"metric direction must be one of {_DIRECTIONS}, got {direction!r}"
        )
    if not (0 <= tolerance < 1):
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance!r}")
    return {
        "value": float(value),
        "direction": direction,
        "tolerance": float(tolerance),
        "unit": unit,
    }


def make_record(bench: str, metrics: dict[str, dict], legacy: dict) -> dict:
    """Assemble one schema-conforming record.

    *legacy* is the bench's historical entry; its keys are merged at the
    top level (schema fields win on collision) so every existing
    consumer keeps working.
    """
    from .ledger import environment_fingerprint

    for name, cell in metrics.items():
        for field in ("value", "direction", "tolerance"):
            if field not in cell:
                raise ValueError(f"metric {name!r} is missing {field!r}")
    record = dict(legacy)
    record["schema"] = SCHEMA
    record["bench"] = bench
    record["fingerprint"] = environment_fingerprint()
    record["metrics"] = metrics
    return record


def load_records(paths) -> list[dict]:
    """Load records from files and/or directories of ``*.json``.

    Directories are scanned non-recursively for ``*.json``; files that
    do not carry the schema tag are skipped (pre-schema artifacts), a
    missing path is an error.
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("*.json")))
        elif path.exists():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such bench record: {path}")
    records = []
    for path in files:
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from None
        if isinstance(payload, dict) and payload.get("schema") == SCHEMA:
            records.append(payload)
    return records


# ----------------------------------------------------------------------
# The gate.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One (bench, metric) comparison verdict."""

    bench: str
    metric: str
    status: str  # "ok" | "regression" | "missing" | "new"
    baseline: float | None
    current: float | None
    direction: str = "higher"
    tolerance: float = DEFAULT_TOLERANCE
    unit: str = ""

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "new")

    @property
    def ratio(self) -> float | None:
        """current / baseline (None when either side is absent/zero)."""
        if not self.baseline or self.current is None:
            return None
        return self.current / self.baseline


def _best(values: list[float], direction: str) -> float:
    """Min-of-N noise reduction: each side's best value by direction."""
    return max(values) if direction == "higher" else min(values)


def _collect(records: list[dict]) -> dict[tuple[str, str], dict]:
    """(bench, metric) → {values: [...], direction, tolerance, unit}."""
    out: dict[tuple[str, str], dict] = {}
    for record in records:
        bench = record.get("bench", "?")
        for name, cell in (record.get("metrics") or {}).items():
            key = (bench, name)
            slot = out.setdefault(
                key,
                {
                    "values": [],
                    "direction": cell.get("direction", "higher"),
                    "tolerance": cell.get("tolerance", DEFAULT_TOLERANCE),
                    "unit": cell.get("unit", ""),
                },
            )
            slot["values"].append(float(cell["value"]))
    return out


def compare(baseline: list[dict], current: list[dict]) -> list[Finding]:
    """Gate *current* records against *baseline* records.

    Returns one :class:`Finding` per tracked (bench, metric).  The
    baseline side's direction/tolerance are authoritative (the
    committed reference decides the bar).  Benches absent from the
    current side are not judged — CI may gate one artifact at a time —
    but a current record missing a *metric* its baseline tracks fails.
    """
    base = _collect(baseline)
    cur = _collect(current)
    current_benches = {bench for bench, _ in cur}
    findings: list[Finding] = []
    for (bench, metric), slot in sorted(base.items()):
        direction = slot["direction"]
        tolerance = slot["tolerance"]
        base_best = _best(slot["values"], direction)
        if (bench, metric) not in cur:
            if bench in current_benches:
                findings.append(Finding(
                    bench, metric, "missing", base_best, None,
                    direction, tolerance, slot["unit"],
                ))
            continue
        cur_best = _best(cur[bench, metric]["values"], direction)
        if direction == "higher":
            regressed = cur_best < base_best * (1.0 - tolerance)
        else:
            regressed = cur_best > base_best * (1.0 + tolerance)
        findings.append(Finding(
            bench, metric, "regression" if regressed else "ok",
            base_best, cur_best, direction, tolerance, slot["unit"],
        ))
    for (bench, metric), slot in sorted(cur.items()):
        if (bench, metric) not in base:
            findings.append(Finding(
                bench, metric, "new", None,
                _best(slot["values"], slot["direction"]),
                slot["direction"], slot["tolerance"], slot["unit"],
            ))
    return findings


# ----------------------------------------------------------------------
# Rendering.
# ----------------------------------------------------------------------


def _fmt(value: float | None) -> str:
    return "-" if value is None else f"{value:.4g}"


def render_findings(findings: list[Finding]) -> str:
    """Fixed-width comparison table, one row per (bench, metric)."""
    header = (
        f"{'bench':<20} {'metric':<28} {'baseline':>10} {'current':>10} "
        f"{'ratio':>7} {'tol':>5}  status"
    )
    lines = [header, "-" * len(header)]
    for f in findings:
        ratio = f.ratio
        lines.append(
            f"{f.bench:<20} {f.metric:<28} {_fmt(f.baseline):>10} "
            f"{_fmt(f.current):>10} "
            f"{'-' if ratio is None else f'{ratio:.2f}':>7} "
            f"{f.tolerance:>5.0%}  "
            + (f.status.upper() if not f.ok else f.status)
        )
    n_bad = sum(1 for f in findings if not f.ok)
    lines.append(
        f"{len(findings)} tracked metric(s), "
        + (f"{n_bad} REGRESSED" if n_bad else "all within tolerance")
    )
    return "\n".join(lines)


def render_trajectory(
    entries: list[dict],
    *,
    bench: str | None = None,
    metric: str | None = None,
) -> str:
    """Trajectory table per metric from ledger ``bench`` entries.

    *entries* are ledger entries (oldest first) whose ``record`` field
    holds a schema record; rows are grouped per (bench, metric) and
    printed in ledger order, so reading down a group is reading the
    metric's history.
    """
    rows: dict[tuple[str, str], list[tuple[str, str, float, str]]] = {}
    for entry in entries:
        record = entry.get("record") or {}
        if record.get("schema") != SCHEMA:
            continue
        b = record.get("bench", "?")
        if bench is not None and b != bench:
            continue
        sha = (record.get("fingerprint") or {}).get("git_sha") or "-"
        ts = entry.get("ts")
        when = "-" if ts is None else _iso(ts)
        for name, cell in (record.get("metrics") or {}).items():
            if metric is not None and name != metric:
                continue
            rows.setdefault((b, name), []).append(
                (when, str(sha)[:10], float(cell["value"]),
                 cell.get("unit", ""))
            )
    if not rows:
        return "no tracked bench metrics in the ledger"
    lines = []
    for (b, name), series in sorted(rows.items()):
        lines.append(f"{b} · {name}")
        for when, sha, value, unit in series:
            suffix = f" {unit}" if unit else ""
            lines.append(f"  {when}  {sha:<10}  {value:.6g}{suffix}")
    return "\n".join(lines)


def _iso(ts: float) -> str:
    import datetime

    return datetime.datetime.fromtimestamp(
        ts, tz=datetime.timezone.utc
    ).strftime("%Y-%m-%d %H:%M")
