"""Bottleneck ranking and observed-vs-predicted contention checks.

The MED (§5 of the paper) predicts how many transmissions cross each
network resource: the number of communication-matrix arcs whose route
traverses the link.  On a uniform All-to-All direct exchange this is
exactly the node degree (n−1 on every NIC).  A
:class:`ContentionReport` compares that *prediction* against the
*observed* peak concurrency a :class:`~repro.obs.timeline.LinkTimeline`
recorded — making the paper's central modelling assumption a directly
testable property of every simulated run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simnet.topology import Topology
from .timeline import LinkTimeline

__all__ = ["LinkContention", "ContentionReport", "predicted_concurrency"]


def predicted_concurrency(topology: Topology, matrix) -> np.ndarray:
    """MED-predicted per-link concurrency for a byte *matrix*.

    Counts, for every directed link, the matrix arcs (``matrix[i, j] >
    0``, ``i != j``) whose route crosses it — the §5 resource-usage
    count.  Placement-aware by construction: a
    :class:`~repro.placement.placed.PlacedTopology` remaps the routes,
    so the prediction follows the placed traffic.
    """
    matrix = np.asarray(matrix)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    counts = np.zeros(topology.n_links, dtype=np.int64)
    sources, destinations = np.nonzero(matrix)
    for src, dst in zip(sources, destinations):
        if src == dst:
            continue
        for link in topology.route(int(src), int(dst)):
            counts[link] += 1
    return counts


@dataclass(frozen=True)
class LinkContention:
    """Observed and predicted contention of one directed link."""

    index: int
    name: str
    kind: str
    capacity: float
    observed_peak: int
    predicted_peak: int
    busy_time: float
    delivered_bytes: float
    utilization: float

    @property
    def matches(self) -> bool:
        """Whether the observed peak equals the MED prediction."""
        return self.observed_peak == self.predicted_peak


class ContentionReport:
    """Ranked per-link contention of one observed run.

    Build with :meth:`from_timeline`; iterate for the per-link rows
    (link-index order), or use :meth:`bottlenecks` / :meth:`render`
    for the ranked views.
    """

    def __init__(self, links: list[LinkContention], duration: float) -> None:
        self.links = links
        self.duration = float(duration)

    @classmethod
    def from_timeline(
        cls,
        timeline: LinkTimeline,
        topology: Topology,
        matrix,
    ) -> "ContentionReport":
        """Compare *timeline* observations against the MED prediction."""
        if timeline.n_links != topology.n_links:
            raise ValueError(
                f"timeline covers {timeline.n_links} links, topology has "
                f"{topology.n_links}"
            )
        predicted = predicted_concurrency(topology, matrix)
        utilization = (
            timeline.utilization()
            if timeline.capacities is not None
            else np.zeros(timeline.n_links)
        )
        links = [
            LinkContention(
                index=link.index,
                name=link.name,
                kind=link.kind.value,
                capacity=link.capacity,
                observed_peak=int(timeline.peak_concurrency[link.index]),
                predicted_peak=int(predicted[link.index]),
                busy_time=float(timeline.busy_time[link.index]),
                delivered_bytes=float(timeline.delivered_bytes[link.index]),
                utilization=float(utilization[link.index]),
            )
            for link in topology.links
        ]
        return cls(links, timeline.duration)

    def __iter__(self):
        return iter(self.links)

    def __len__(self) -> int:
        return len(self.links)

    @property
    def matches_prediction(self) -> bool:
        """Whether every *used* link peaked exactly at its MED degree.

        Links the traffic never touches (predicted 0) must also observe
        0 — a flow crossing an unpredicted link is a routing bug.
        """
        return all(link.matches for link in self.links)

    def mismatches(self) -> list[LinkContention]:
        """Links whose observed peak differs from the prediction."""
        return [link for link in self.links if not link.matches]

    def bottlenecks(self, top: int = 5) -> list[LinkContention]:
        """The *top* most contended links (busy time, then utilization)."""
        ranked = sorted(
            self.links,
            key=lambda l: (-l.busy_time, -l.utilization, l.index),
        )
        return ranked[: max(top, 0)]

    def to_dict(self) -> dict:
        """JSON-ready view (used by the CLI and tests)."""
        return {
            "duration": self.duration,
            "matches_prediction": self.matches_prediction,
            "links": [
                {
                    "index": link.index,
                    "name": link.name,
                    "kind": link.kind,
                    "observed_peak": link.observed_peak,
                    "predicted_peak": link.predicted_peak,
                    "busy_time": link.busy_time,
                    "delivered_bytes": link.delivered_bytes,
                    "utilization": link.utilization,
                }
                for link in self.links
            ],
        }

    def render(self, top: int = 5) -> str:
        """Human-readable bottleneck table."""
        lines = [
            f"{'link':<24} {'kind':<10} {'peak':>4} {'MED':>4} "
            f"{'busy':>10} {'util':>6}"
        ]
        for link in self.bottlenecks(top):
            marker = "" if link.matches else "  !="
            lines.append(
                f"{link.name:<24} {link.kind:<10} {link.observed_peak:>4} "
                f"{link.predicted_peak:>4} {link.busy_time:>10.6f} "
                f"{link.utilization:>5.1%}{marker}"
            )
        verdict = (
            "observed peaks match the MED prediction on every link"
            if self.matches_prediction
            else f"{len(self.mismatches())} link(s) deviate from the MED "
            "prediction"
        )
        lines.append(verdict)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ContentionReport(links={len(self.links)}, "
            f"matches={self.matches_prediction})"
        )
