"""Per-figure/table experiment drivers (the reproduction index).

See DESIGN.md §4 for the experiment ↔ paper mapping.
"""

from .common import SCALES, ExperimentResult, Scale
from .registry import EXPERIMENTS, ExperimentSpec, run_experiment

__all__ = [
    "SCALES",
    "ExperimentResult",
    "Scale",
    "EXPERIMENTS",
    "ExperimentSpec",
    "run_experiment",
]
