"""Shared builders for the §8 validation figures.

Each network gets three figures: a *fit* at the sample size n′
(measured vs lower bound vs prediction), a *prediction surface* over
(n, m), and an *error curve* vs n for four message sizes.  These
builders implement the common logic; the per-figure modules bind the
cluster, n′ and paper reference.
"""

from __future__ import annotations

import numpy as np

from ..clusters.profiles import ClusterProfile
from ..core.bounds import alltoall_lower_bound
from ..core.errors import relative_error_percent
from ..measure.alltoall import sweep_grid, sweep_sizes
from .common import (
    ExperimentResult,
    Scale,
    reference_hockney,
    reference_signature,
    sample_sizes_for,
)

__all__ = [
    "fit_figure",
    "surface_figure",
    "error_figure",
    "ERROR_MESSAGE_SIZES",
]

#: figures 8/11/14 plot these four sizes (binary KiB, as the paper's
#: "128 kB".."1024 kB" labels).
ERROR_MESSAGE_SIZES = (131_072, 262_144, 524_288, 1_048_576)


def fit_figure(
    exp_id: str,
    paper_ref: str,
    cluster: ClusterProfile,
    sample_nprocs: int,
    scale: Scale,
    *,
    seed: int = 0,
) -> ExperimentResult:
    """Measured vs lower bound vs fitted prediction at n′ (Figs. 6/9/12)."""
    nprocs = sample_nprocs if scale.name != "smoke" else 6
    hockney = reference_hockney(cluster, scale, seed=seed)
    signature = reference_signature(cluster, nprocs, scale, seed=seed)
    sizes = sample_sizes_for(scale)
    samples = sweep_sizes(
        cluster, nprocs, sizes, reps=scale.reps, seed=seed + 1
    )
    m = np.asarray(sizes, dtype=np.float64)
    measured = np.array([s.mean_time for s in samples])
    bound = alltoall_lower_bound(nprocs, m, hockney)
    predicted = signature.predict(nprocs, m)

    result = ExperimentResult(
        exp_id=exp_id,
        title=f"MPI_Alltoall fit, {cluster.name}, {nprocs} machines",
        paper_ref=paper_ref,
        kind="lines",
        xlabel="message size (bytes)",
        ylabel="completion time (s)",
        series={
            "Direct Exchange": (m, measured),
            "Lower bound": (m, bound),
            "Prediction": (m, predicted),
        },
        params={
            "cluster": cluster.name,
            "nprocs": nprocs,
            "gamma": signature.gamma,
            "delta": signature.delta,
            "threshold": signature.threshold,
            "alpha": hockney.alpha,
            "beta": hockney.beta,
            "scale": scale.name,
            "seed": seed,
        },
    )
    paper = cluster.paper
    if paper is not None:
        result.notes.append(
            f"fitted gamma={signature.gamma:.4f} delta={signature.delta * 1e3:.2f} ms "
            f"M={signature.threshold} B "
            f"(paper: gamma={paper.gamma} delta={paper.delta * 1e3:.2f} ms "
            f"M={paper.threshold} B)"
        )
    fit_err = relative_error_percent(measured, predicted)
    result.notes.append(
        f"fit residual error range: [{np.min(fit_err):+.1f}%, {np.max(fit_err):+.1f}%]"
    )
    return result


def _surface_grid(scale: Scale, max_n: int) -> tuple[list[int], list[int]]:
    if scale.name == "smoke":
        return [4, 8], [262_144, 1_048_576]
    if scale.name == "full":
        ns = list(range(4, 51, 4))
    else:  # default / bench
        ns = [5, 10, 20, 30, 40]
    ns = [n for n in ns if n <= max_n]
    ms = [131_072, 262_144, 524_288, 786_432, 1_048_576]
    return ns, ms


def surface_figure(
    exp_id: str,
    paper_ref: str,
    cluster: ClusterProfile,
    sample_nprocs: int,
    scale: Scale,
    *,
    seed: int = 0,
    max_n: int = 50,
) -> ExperimentResult:
    """Measured + predicted (n, m) surfaces (Figs. 7/10/13)."""
    fit_n = sample_nprocs if scale.name != "smoke" else 6
    signature = reference_signature(cluster, fit_n, scale, seed=seed)
    n_values, m_values = _surface_grid(scale, max_n)
    # One engine-routed grid sweep (n-major order matches the reshape);
    # per-point streams are named, so values are identical to the old
    # point-by-point loop.
    samples = sweep_grid(
        cluster, n_values, m_values, reps=scale.reps, seed=seed + 3
    )
    measured = np.array([s.mean_time for s in samples]).reshape(
        len(n_values), len(m_values)
    )
    predicted = signature.predict(
        np.asarray(n_values, dtype=np.float64)[:, None],
        np.asarray(m_values, dtype=np.float64)[None, :],
    )
    result = ExperimentResult(
        exp_id=exp_id,
        title=f"All-to-All prediction surface, {cluster.name}",
        paper_ref=paper_ref,
        kind="surface",
        surfaces={"Direct Exchange": measured, "Prediction": predicted},
        n_values=np.asarray(n_values),
        m_values=np.asarray(m_values),
        params={
            "cluster": cluster.name,
            "fit_nprocs": fit_n,
            "gamma": signature.gamma,
            "delta": signature.delta,
            "scale": scale.name,
            "seed": seed,
        },
    )
    err = relative_error_percent(measured, predicted)
    result.notes.append(
        f"surface error: median {np.median(np.abs(err)):.1f}%, "
        f"worst {np.max(np.abs(err)):.1f}% "
        "(largest at small n where the network is unsaturated)"
    )
    return result


def error_figure(
    exp_id: str,
    paper_ref: str,
    cluster: ClusterProfile,
    sample_nprocs: int,
    scale: Scale,
    *,
    seed: int = 0,
    max_n: int = 50,
) -> ExperimentResult:
    """Relative error vs process count for four sizes (Figs. 8/11/14)."""
    fit_n = sample_nprocs if scale.name != "smoke" else 6
    signature = reference_signature(cluster, fit_n, scale, seed=seed)
    if scale.name == "smoke":
        ns = [4, 8]
        sizes = ERROR_MESSAGE_SIZES[:2]
    elif scale.name == "full":
        ns = list(range(4, 51, 3))
        sizes = ERROR_MESSAGE_SIZES
    else:  # default / bench
        ns = [5, 10, 20, 30, 40]
        sizes = ERROR_MESSAGE_SIZES
    ns = [n for n in ns if n <= max_n]

    grid = sweep_grid(cluster, ns, sizes, reps=scale.reps, seed=seed + 4)
    by_point = {(s.n_processes, s.msg_size): s for s in grid}
    series = {}
    saturated_errors = []
    for m in sizes:
        errors = []
        for n in ns:
            sample = by_point[(n, int(m))]
            estimated = signature.predict(n, int(m))
            err = relative_error_percent(sample.mean_time, estimated)
            errors.append(err)
            if n >= fit_n:
                saturated_errors.append(err)
        label = f"{m // 1024} kB messages"
        series[label] = (np.asarray(ns, dtype=np.float64), np.asarray(errors))

    result = ExperimentResult(
        exp_id=exp_id,
        title=f"Estimation error vs processes, {cluster.name}",
        paper_ref=paper_ref,
        kind="lines",
        xlabel="processes",
        ylabel="(measured/estimated - 1) x100%",
        series=series,
        params={
            "cluster": cluster.name,
            "fit_nprocs": fit_n,
            "gamma": signature.gamma,
            "delta": signature.delta,
            "scale": scale.name,
            "seed": seed,
        },
    )
    if saturated_errors:
        result.notes.append(
            f"median |error| at n >= n'={fit_n}: "
            f"{np.median(np.abs(saturated_errors)):.1f}% "
            "(paper: 'usually smaller than 10% when there are enough "
            "processes to saturate the network')"
        )
    return result
