"""Table S — consolidated contention signatures vs the paper's values.

The paper reports its fitted parameters inline (§8.1–8.3); this
experiment consolidates them into the table an artifact evaluation
would check:

    network   gamma (paper)   delta (paper)     M (paper)
    FE        1.0195          8.23 ms           2 kB
    GigE      4.3628          4.93 ms           8 kB
    Myrinet   2.49754         < 1 us (dropped)  —
"""

from __future__ import annotations

import numpy as np

from ..clusters.profiles import get_cluster
from .common import ExperimentResult, reference_signature, resolve_scale
from .fig06_fe_fit import SAMPLE_NPROCS as FE_NPROCS
from .fig09_gige_fit import SAMPLE_NPROCS as GIGE_NPROCS
from .fig12_myrinet_fit import SAMPLE_NPROCS as MYRINET_NPROCS

__all__ = ["run", "SAMPLE_NPROCS_BY_CLUSTER"]

SAMPLE_NPROCS_BY_CLUSTER = {
    "fast-ethernet": FE_NPROCS,
    "gigabit-ethernet": GIGE_NPROCS,
    "myrinet": MYRINET_NPROCS,
}


def run(scale="default", *, seed: int = 0) -> ExperimentResult:
    """Fit all three signatures and tabulate fitted-vs-paper parameters."""
    scale = resolve_scale(scale)
    rows = []
    gammas_fitted = []
    gammas_paper = []
    # The paper's three testbeds only — the registry may hold more.
    for name in SAMPLE_NPROCS_BY_CLUSTER:
        cluster = get_cluster(name)
        nprocs = SAMPLE_NPROCS_BY_CLUSTER[name]
        fit_n = nprocs if scale.name != "smoke" else 6
        signature = reference_signature(cluster, fit_n, scale, seed=seed)
        paper = cluster.paper
        rows.append(
            {
                "network": name,
                "n_prime": fit_n,
                "gamma_fitted": signature.gamma,
                "gamma_paper": paper.gamma if paper else float("nan"),
                "delta_fitted_ms": signature.delta * 1e3,
                "delta_paper_ms": paper.delta * 1e3 if paper else float("nan"),
                "M_fitted": signature.threshold,
                "M_paper": paper.threshold if paper else 0,
            }
        )
        if paper is not None:
            gammas_fitted.append(signature.gamma)
            gammas_paper.append(paper.gamma)

    result = ExperimentResult(
        exp_id="tableS",
        title="Contention signatures: fitted vs paper",
        paper_ref="§8.1-8.3 parameters",
        kind="lines",
        xlabel="network index",
        ylabel="gamma",
        series={
            "gamma fitted": (
                np.arange(len(gammas_fitted), dtype=np.float64),
                np.asarray(gammas_fitted),
            ),
            "gamma paper": (
                np.arange(len(gammas_paper), dtype=np.float64),
                np.asarray(gammas_paper),
            ),
        },
        params={"scale": scale.name, "seed": seed, "rows": rows},
    )
    header = (
        f"{'network':<18} {'n_prime':>7} {'gamma fit':>10} {'gamma paper':>11} "
        f"{'delta fit':>10} {'delta paper':>11} {'M fit':>8} {'M paper':>8}"
    )
    result.notes.append(header)
    for row in rows:
        result.notes.append(
            f"{row['network']:<18} {row['n_prime']:>7} "
            f"{row['gamma_fitted']:>10.4f} {row['gamma_paper']:>11.4f} "
            f"{row['delta_fitted_ms']:>8.2f}ms {row['delta_paper_ms']:>9.2f}ms "
            f"{row['M_fitted']:>8} {row['M_paper']:>8}"
        )
    # The headline qualitative claim of the paper:
    order_fitted = sorted(
        (r["network"] for r in rows), key=lambda k: -next(
            r["gamma_fitted"] for r in rows if r["network"] == k
        )
    )
    result.notes.append(
        "gamma ordering fitted: " + " > ".join(order_fitted)
        + "  (paper: gigabit-ethernet > myrinet > fast-ethernet)"
    )
    return result
