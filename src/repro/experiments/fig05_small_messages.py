"""Fig. 5 — non-linearity of small-message All-to-All cost (GigE).

A (nodes, message size) surface at 256-byte granularity up to 16 KB:
"the communication time does not increase linearly with the message
size" (§7.1) — the phenomenon that motivates the M threshold and the
affine δ term.  Our substrate produces the staircase through MSS
segmentation, eager-envelope overhead and the demux threshold.
"""

from __future__ import annotations

import numpy as np

from ..clusters.profiles import gigabit_ethernet
from ..measure.alltoall import measure_alltoall
from .common import ExperimentResult, resolve_scale

__all__ = ["run", "grid_for"]


def grid_for(scale_name: str) -> tuple[list[int], list[int]]:
    """(node counts, message sizes) for the surface, per scale."""
    if scale_name == "smoke":
        return [4, 8], [256, 2_048, 8_192]
    if scale_name == "full":
        return list(range(4, 17, 2)), list(range(256, 16_385, 256))
    return [4, 8, 12, 16], list(range(1_024, 16_385, 3_072))


def run(scale="default", *, seed: int = 0) -> ExperimentResult:
    """Measure the small-message surface and quantify non-linearity."""
    scale = resolve_scale(scale)
    cluster = gigabit_ethernet()
    n_values, m_values = grid_for(scale.name)
    grid = np.zeros((len(n_values), len(m_values)))
    for i, n in enumerate(n_values):
        for j, m in enumerate(m_values):
            sample = measure_alltoall(
                cluster, n, m, reps=scale.reps, seed=seed
            )
            grid[i, j] = sample.mean_time

    # Non-linearity metric: max deviation of the m-curve (at the largest
    # n) from the straight line through its endpoints, as a fraction.
    times = grid[-1]
    m = np.asarray(m_values, dtype=np.float64)
    straight = times[0] + (times[-1] - times[0]) * (m - m[0]) / (m[-1] - m[0])
    with np.errstate(divide="ignore", invalid="ignore"):
        deviation = float(np.nanmax(np.abs(times - straight) / straight))

    result = ExperimentResult(
        exp_id="fig05",
        title="Small-message All-to-All completion time, GigE",
        paper_ref="Fig. 5",
        kind="surface",
        surfaces={"Direct Exchange": grid},
        n_values=np.asarray(n_values),
        m_values=np.asarray(m_values),
        params={
            "cluster": cluster.name,
            "scale": scale.name,
            "seed": seed,
        },
    )
    result.notes.append(
        f"max relative deviation from a straight line (n={n_values[-1]}): "
        f"{deviation * 100:.1f}% (paper: visibly non-linear below 16 KB)"
    )
    return result
