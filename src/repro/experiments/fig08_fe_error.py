"""Fig. 8 — estimation error vs process count on Fast Ethernet.

Relative error ``(measured/estimated - 1) * 100%`` for 128/256/512/1024
KiB messages.  Paper: "usually smaller than 10% when there are enough
processes to saturate the network".
"""

from __future__ import annotations

from ..clusters.profiles import fast_ethernet
from .common import ExperimentResult, resolve_scale
from .fig06_fe_fit import SAMPLE_NPROCS
from .validation import error_figure

__all__ = ["run"]


def run(scale="default", *, seed: int = 0) -> ExperimentResult:
    """Build the Fast Ethernet error-vs-n figure."""
    scale = resolve_scale(scale)
    return error_figure(
        "fig08", "Fig. 8", fast_ethernet(), SAMPLE_NPROCS, scale,
        seed=seed, max_n=40,
    )
