"""Fig. 4 — the §6 two-β ("throughput under contention") prediction.

β_F and β_C are extracted from the Fig. 3 stress data, blended with
ρ = 0.5 (eq. 3), and plugged into Proposition 1.  The figure compares,
for 40 processes on Gigabit Ethernet: the measured Direct Exchange, the
synthetic-parameter prediction, and the contention-free lower bound —
showing the synthetic β tracks large messages but misses small ones
(the motivation for the §7 signature model).
"""

from __future__ import annotations

import numpy as np

from ..clusters.profiles import gigabit_ethernet
from ..core.throughput import two_beta_from_states
from ..core.bounds import alltoall_lower_bound
from ..measure.alltoall import sweep_sizes
from ..measure.stress import run_stress
from .common import ExperimentResult, reference_hockney, resolve_scale, sample_sizes_for

__all__ = ["run"]


def run(scale="default", *, seed: int = 0, rho: float = 0.5) -> ExperimentResult:
    """Measure, derive the two-β model, and return the Fig. 4 series."""
    scale = resolve_scale(scale)
    cluster = gigabit_ethernet()
    nprocs = 8 if scale.name == "smoke" else 40
    hockney = reference_hockney(cluster, scale, seed=seed)

    # β extraction from the Fig. 3 data: the contention-free state from
    # an unloaded transfer, the contended state from the slow tail of a
    # saturating flood.  The paper reads both states off the same figure
    # (whose x axis spans unloaded through saturated connection counts).
    stress_k = 8 if scale.name == "smoke" else 40
    transfer = 4 * 1024 * 1024 if scale.name == "smoke" else 32 * 1024 * 1024
    unloaded = run_stress(cluster, 1, transfer, seed=seed)
    saturated = run_stress(cluster, stress_k, transfer, seed=seed + 1)
    model = two_beta_from_states(
        transfer, unloaded.times, saturated.times,
        alpha=hockney.alpha, rho=rho,
    )

    sizes = sample_sizes_for(scale)
    samples = sweep_sizes(
        cluster, nprocs, sizes, reps=scale.reps, seed=seed + 2
    )
    m = np.array(sizes, dtype=np.float64)
    measured = np.array([s.mean_time for s in samples])
    predicted = model.predict(nprocs, m)
    bound = alltoall_lower_bound(nprocs, m, hockney)

    result = ExperimentResult(
        exp_id="fig04",
        title=f"Two-beta prediction, MPI_Alltoall, {nprocs} processes, GigE",
        paper_ref="Fig. 4",
        kind="lines",
        xlabel="message size (bytes)",
        ylabel="completion time (s)",
        series={
            "Direct Exchange": (m, measured),
            "Prediction (synthetic beta)": (m, predicted),
            "Lower bound": (m, bound),
        },
        params={
            "cluster": cluster.name,
            "nprocs": nprocs,
            "rho": rho,
            "beta_free": model.beta_free,
            "beta_contended": model.beta_contended,
            "beta_synthetic": model.beta_synthetic,
            "scale": scale.name,
            "seed": seed,
        },
    )
    result.notes.append(
        f"beta_F={model.beta_free:.3e} s/B, beta_C={model.beta_contended:.3e} s/B, "
        f"synthetic beta={model.beta_synthetic:.3e} s/B "
        "(paper: 8.502e-9 / 8.498e-8 / 4.674e-8)"
    )
    result.notes.append(
        "prediction should sit between lower bound and measurement for "
        "large m; the paper's point is its small-m inaccuracy"
    )
    return result
