"""Fig. 13 — All-to-All prediction surface on Myrinet.

The n′ = 24 signature applied to 4..50 processes.  The paper notes the
Myrinet fabric "becomes really saturate only when there are more than 40
communicating processes", so sample-size choice shows up here (see the
sample-size ablation bench).
"""

from __future__ import annotations

from ..clusters.profiles import myrinet
from .common import ExperimentResult, resolve_scale
from .fig12_myrinet_fit import SAMPLE_NPROCS
from .validation import surface_figure

__all__ = ["run"]


def run(scale="default", *, seed: int = 0) -> ExperimentResult:
    """Build the Myrinet prediction surface."""
    scale = resolve_scale(scale)
    return surface_figure(
        "fig13", "Fig. 13", myrinet(), SAMPLE_NPROCS, scale,
        seed=seed, max_n=50,
    )
