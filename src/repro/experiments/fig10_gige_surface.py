"""Fig. 10 — All-to-All prediction surface on Gigabit Ethernet.

The n′ = 40 signature predicts (n, m) combinations from 5 to 50
processes; errors shrink once the fabric is saturated.
"""

from __future__ import annotations

from ..clusters.profiles import gigabit_ethernet
from .common import ExperimentResult, resolve_scale
from .fig09_gige_fit import SAMPLE_NPROCS
from .validation import surface_figure

__all__ = ["run"]


def run(scale="default", *, seed: int = 0) -> ExperimentResult:
    """Build the Gigabit Ethernet prediction surface."""
    scale = resolve_scale(scale)
    return surface_figure(
        "fig10", "Fig. 10", gigabit_ethernet(), SAMPLE_NPROCS, scale,
        seed=seed, max_n=50,
    )
