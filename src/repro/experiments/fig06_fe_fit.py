"""Fig. 6 — fitting the MPI_Alltoall performance on Fast Ethernet.

24 machines; measured Direct Exchange vs lower bound vs the fitted
signature prediction.  Paper result: γ = 1.0195 (retransmission delays
barely matter on the slow wire) and δ = 8.23 ms above M = 2 kB (the
affine start-up the traditional model misses).
"""

from __future__ import annotations

from ..clusters.profiles import fast_ethernet
from .common import ExperimentResult, resolve_scale
from .validation import fit_figure

__all__ = ["run", "SAMPLE_NPROCS"]

SAMPLE_NPROCS = 24


def run(scale="default", *, seed: int = 0) -> ExperimentResult:
    """Build the Fast Ethernet fit figure."""
    scale = resolve_scale(scale)
    return fit_figure(
        "fig06", "Fig. 6", fast_ethernet(), SAMPLE_NPROCS, scale, seed=seed
    )
