"""Fig. 9 — fitting the MPI_Alltoall performance on Gigabit Ethernet.

40 machines; the gap between lower bound and measurement is much larger
than on Fast Ethernet (retransmission delays in a high-rate fabric).
Paper result: γ = 4.3628, δ = 4.93 ms above M = 8 kB.
"""

from __future__ import annotations

from ..clusters.profiles import gigabit_ethernet
from .common import ExperimentResult, resolve_scale
from .validation import fit_figure

__all__ = ["run", "SAMPLE_NPROCS"]

SAMPLE_NPROCS = 40


def run(scale="default", *, seed: int = 0) -> ExperimentResult:
    """Build the Gigabit Ethernet fit figure."""
    scale = resolve_scale(scale)
    return fit_figure(
        "fig09", "Fig. 9", gigabit_ethernet(), SAMPLE_NPROCS, scale, seed=seed
    )
