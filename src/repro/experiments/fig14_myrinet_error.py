"""Fig. 14 — estimation error vs process count on Myrinet.

Error curves for the four reference sizes; deviations at small n are
attributed by the paper "not to the model itself but to the choice of
the sample data" (n′ = 24 is below the ~40-process saturation point).
"""

from __future__ import annotations

from ..clusters.profiles import myrinet
from .common import ExperimentResult, resolve_scale
from .fig12_myrinet_fit import SAMPLE_NPROCS
from .validation import error_figure

__all__ = ["run"]


def run(scale="default", *, seed: int = 0) -> ExperimentResult:
    """Build the Myrinet error-vs-n figure."""
    scale = resolve_scale(scale)
    return error_figure(
        "fig14", "Fig. 14", myrinet(), SAMPLE_NPROCS, scale,
        seed=seed, max_n=50,
    )
