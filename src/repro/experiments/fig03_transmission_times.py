"""Fig. 3 — per-connection transmission times of a 32 MB message.

Same stress methodology as Fig. 2, but plotting every individual
connection's completion time: "most connections finish their
transmission in a reasonable time ..., but some point-to-point
connections require almost six times longer" — the TCP RTO heavy tail
that motivates the whole contention analysis (§3).
"""

from __future__ import annotations

import numpy as np

from ..clusters.profiles import gigabit_ethernet
from ..measure.stress import stress_sweep
from .common import ExperimentResult, resolve_scale
from .fig02_bandwidth import TRANSFER_BYTES, connection_counts

__all__ = ["run"]


def run(scale="default", *, seed: int = 0) -> ExperimentResult:
    """Run the stress sweep and return the Fig. 3 scatter + average."""
    scale = resolve_scale(scale)
    cluster = gigabit_ethernet()
    transfer = TRANSFER_BYTES if scale.name != "smoke" else 4 * 1024 * 1024
    sweep = stress_sweep(
        cluster,
        connection_counts(scale.name),
        transfer,
        reps=scale.reps,
        seed=seed,
    )
    xs, ys = sweep.scatter_times()
    avg_k, avg_t = sweep.average_time_curve()
    saturated = sweep.saturated_times()
    tail_ratio = float(np.max(saturated) / np.percentile(saturated, 10))
    result = ExperimentResult(
        exp_id="fig03",
        title="Transmission time of individual connections, GigE stress",
        paper_ref="Fig. 3",
        kind="scatter",
        xlabel="connections",
        ylabel="transmission time (s)",
        scatter_xy=(xs, ys),
        series={"average": (avg_k, avg_t)},
        params={
            "cluster": cluster.name,
            "transfer_bytes": transfer,
            "scale": scale.name,
            "seed": seed,
        },
    )
    result.notes.append(
        f"slowest/fast-decile ratio at k={int(avg_k[-1])}: {tail_ratio:.1f}x "
        "(paper: some connections ~6x slower than the pack)"
    )
    return result
