"""Fig. 12 — fitting the MPI_Alltoall performance on Myrinet.

24 processes over the gm stack: "contention affects this network in a
same way as in the previous experiments, even if the start-up cost for
the Myrinet network is almost inexistent".  Paper result: γ = 2.49754,
δ below regression resolution (< 1 us, dropped).
"""

from __future__ import annotations

from ..clusters.profiles import myrinet
from .common import ExperimentResult, resolve_scale
from .validation import fit_figure

__all__ = ["run", "SAMPLE_NPROCS"]

SAMPLE_NPROCS = 24


def run(scale="default", *, seed: int = 0) -> ExperimentResult:
    """Build the Myrinet fit figure."""
    scale = resolve_scale(scale)
    return fit_figure(
        "fig12", "Fig. 12", myrinet(), SAMPLE_NPROCS, scale, seed=seed
    )
