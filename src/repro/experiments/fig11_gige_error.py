"""Fig. 11 — estimation error vs process count on Gigabit Ethernet.

Large negative error for few processes (the signature over-predicts an
unsaturated network by roughly 1/γ - 1 ≈ -77%), small error once
saturated — the paper's "application domain of our model (saturated
networks)".
"""

from __future__ import annotations

from ..clusters.profiles import gigabit_ethernet
from .common import ExperimentResult, resolve_scale
from .fig09_gige_fit import SAMPLE_NPROCS
from .validation import error_figure

__all__ = ["run"]


def run(scale="default", *, seed: int = 0) -> ExperimentResult:
    """Build the Gigabit Ethernet error-vs-n figure."""
    scale = resolve_scale(scale)
    return error_figure(
        "fig11", "Fig. 11", gigabit_ethernet(), SAMPLE_NPROCS, scale,
        seed=seed, max_n=50,
    )
