"""Table M — cost-model shootout across the paper's three clusters.

The paper's headline claim is that the contention signature predicts
All-to-All completion times where the contention-blind Hockney model
(eq. 1) fails by the contention ratio γ.  This experiment makes that
claim a ranked table: every registered built-in cost model is fitted on
the *same* (n, m) grid per cluster and scored by cross-validated MAPE
(:mod:`repro.models.selection`), reproducing the Hockney-vs-signature
error gap — ~(γ-1)·100 % on the saturated grids — and placing the
related-work models (LogGP, max-rate, saturation-knee) in between.
"""

from __future__ import annotations

import numpy as np

from ..clusters.profiles import get_cluster
from ..measure.alltoall import sweep_grid
from ..models import DEFAULT_MODELS, compare_models
from ..sweeps.runner import default_runner
from .common import ExperimentResult, reference_hockney, resolve_scale

__all__ = ["run", "SHOOTOUT_CLUSTERS"]

#: The paper's three testbeds, in its presentation order.
SHOOTOUT_CLUSTERS = ("fast-ethernet", "gigabit-ethernet", "myrinet")


def _grid_for(scale) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """(nprocs, sizes) ladders per scale (>= 3 n so the knee is fittable)."""
    if scale.name == "smoke":
        return (4, 6, 8), (2_048, 32_768, 262_144)
    if scale.name == "full":
        return (4, 8, 12, 16, 24, 32), (
            2_048, 8_192, 32_768, 131_072, 524_288, 1_048_576,
        )
    return (4, 8, 12, 16), (2_048, 32_768, 131_072, 524_288)


def run(scale="default", *, seed: int = 0) -> ExperimentResult:
    """Fit the model zoo per cluster and tabulate the ranked error gaps."""
    scale = resolve_scale(scale)
    nprocs, sizes = _grid_for(scale)
    rows = []
    tables: list[str] = []
    mape_by_model: dict[str, list[float]] = {m: [] for m in DEFAULT_MODELS}
    signature_wins = 0
    for name in SHOOTOUT_CLUSTERS:
        cluster = get_cluster(name)
        hockney = reference_hockney(cluster, scale, seed=seed)
        samples = sweep_grid(
            cluster, nprocs, sizes,
            reps=scale.reps, seed=seed + 1, runner=default_runner(),
        )
        comparison = compare_models(
            samples, DEFAULT_MODELS, hockney=hockney, cluster=cluster
        )
        comparison.cluster = name
        tables.append(f"{name}:")
        tables.extend(comparison.render().splitlines())
        ranking = comparison.ranking
        if ranking.index("signature") < ranking.index("hockney"):
            signature_wins += 1
        for report in comparison.reports:
            mape_by_model[report.model].append(
                comparison.rank_metric_of(report) if report.ok else float("nan")
            )
            rows.append(
                {
                    "cluster": name,
                    "model": report.model,
                    "rank": ranking.index(report.model) + 1,
                    "ranked_by": comparison.ranked_by,
                    "mape": None if report.score is None else report.score.mape,
                    "cv_mape": report.cv_mape,
                    "lono_mape": report.lono_mape,
                    "rmse": None if report.score is None else report.score.rmse,
                    "error": report.error,
                }
            )

    x = np.arange(len(SHOOTOUT_CLUSTERS), dtype=np.float64)
    result = ExperimentResult(
        exp_id="tableM",
        title="Cost-model shootout: cross-validated MAPE per cluster",
        paper_ref="§8 claim",
        kind="lines",
        xlabel="cluster index",
        # Each cluster's comparison ranks by cv-mape, falling back to
        # in-sample mape when some model cannot cross-validate; the
        # per-row `ranked_by` field records which was plotted.
        ylabel="rank mape % (cv when available)",
        series={
            model: (x, np.asarray(values, dtype=np.float64))
            for model, values in mape_by_model.items()
        },
        params={
            "scale": scale.name,
            "seed": seed,
            "nprocs": list(nprocs),
            "sizes": list(sizes),
            "clusters": list(SHOOTOUT_CLUSTERS),
            "rows": rows,
        },
    )
    result.notes.extend(tables)
    result.notes.append(
        f"signature ranks above hockney on {signature_wins}/"
        f"{len(SHOOTOUT_CLUSTERS)} clusters (the paper's claim: "
        "contention-aware beats contention-blind everywhere gamma > 1)"
    )
    return result
