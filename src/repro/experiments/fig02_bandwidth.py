"""Fig. 2 — average per-connection bandwidth vs simultaneous connections.

"We evaluate the average bandwidth through the opening of several
point-to-point connections in a Gigabit Ethernet network ... during the
transmission of large data files (32 MB), gradually increasing the
number of simultaneous point-to-point connections to saturate the
network" (§3).  Expected shape: ~full NIC bandwidth for few connections,
hyperbolic decay once the fabric saturates (paper: ~110 MB/s down to
~20 MB/s at 60 connections).
"""

from __future__ import annotations

import numpy as np

from ..clusters.profiles import gigabit_ethernet
from ..measure.stress import stress_sweep
from .common import ExperimentResult, resolve_scale

__all__ = ["run", "connection_counts", "TRANSFER_BYTES"]

TRANSFER_BYTES = 32 * 1024 * 1024  # the paper's 32 MB files


def connection_counts(scale_name: str) -> list[int]:
    """Connection-count ladder per scale."""
    if scale_name == "smoke":
        return [1, 4, 8]
    if scale_name == "full":
        return list(range(1, 61, 2))
    return [1, 5, 10, 15, 20, 30, 40, 50, 60]


def run(scale="default", *, seed: int = 0) -> ExperimentResult:
    """Run the stress sweep and return the Fig. 2 series."""
    scale = resolve_scale(scale)
    cluster = gigabit_ethernet()
    transfer = TRANSFER_BYTES if scale.name != "smoke" else 4 * 1024 * 1024
    sweep = stress_sweep(
        cluster,
        connection_counts(scale.name),
        transfer,
        reps=scale.reps,
        seed=seed,
    )
    ks, mean_bw = sweep.mean_throughput_curve()
    result = ExperimentResult(
        exp_id="fig02",
        title="Average bandwidth, Gigabit Ethernet stress",
        paper_ref="Fig. 2",
        kind="lines",
        xlabel="connections",
        ylabel="throughput (MB/s)",
        series={"Average bandwidth": (ks, mean_bw / 1e6)},
        params={
            "cluster": cluster.name,
            "transfer_bytes": transfer,
            "scale": scale.name,
            "seed": seed,
        },
    )
    result.notes.append(
        f"single-connection bandwidth {mean_bw[0] / 1e6:.1f} MB/s, "
        f"at k={int(ks[-1])}: {mean_bw[-1] / 1e6:.1f} MB/s "
        f"(paper: ~110 down to ~20 MB/s)"
    )
    if len(ks) > 2 and not np.all(np.diff(mean_bw) <= 1e-9):
        decays = mean_bw[-1] < mean_bw[0]
        result.notes.append(
            "bandwidth decays with connection count"
            if decays
            else "WARNING: no bandwidth decay observed"
        )
    return result
