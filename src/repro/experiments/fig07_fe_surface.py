"""Fig. 7 — All-to-All prediction surface on Fast Ethernet.

The signature fitted at n′ = 24 (Fig. 6) predicts the completion time
for arbitrary (n, m); the surface compares measured Direct Exchange and
the prediction over n up to 40 and m up to ~1.2 MB.
"""

from __future__ import annotations

from ..clusters.profiles import fast_ethernet
from .common import ExperimentResult, resolve_scale
from .fig06_fe_fit import SAMPLE_NPROCS
from .validation import surface_figure

__all__ = ["run"]


def run(scale="default", *, seed: int = 0) -> ExperimentResult:
    """Build the Fast Ethernet prediction surface."""
    scale = resolve_scale(scale)
    return surface_figure(
        "fig07", "Fig. 7", fast_ethernet(), SAMPLE_NPROCS, scale,
        seed=seed, max_n=40,
    )
