"""Experiment registry: map experiment ids to runners.

``run_experiment("fig06")`` is the single entry point used by the CLI,
the benchmark harness and the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .common import ExperimentResult
from . import (
    fig02_bandwidth,
    fig03_transmission_times,
    fig04_two_beta,
    fig05_small_messages,
    fig06_fe_fit,
    fig07_fe_surface,
    fig08_fe_error,
    fig09_gige_fit,
    fig10_gige_surface,
    fig11_gige_error,
    fig12_myrinet_fit,
    fig13_myrinet_surface,
    fig14_myrinet_error,
    table_model_shootout,
    table_placement,
    table_signatures,
)

__all__ = ["ExperimentSpec", "EXPERIMENTS", "run_experiment"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry: id, what it reproduces, and its runner."""

    exp_id: str
    paper_ref: str
    description: str
    runner: Callable[..., ExperimentResult]


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.exp_id: spec
    for spec in [
        ExperimentSpec(
            "fig02", "Fig. 2",
            "average bandwidth vs simultaneous connections (GigE stress)",
            fig02_bandwidth.run,
        ),
        ExperimentSpec(
            "fig03", "Fig. 3",
            "individual 32 MB transmission times under flood (GigE)",
            fig03_transmission_times.run,
        ),
        ExperimentSpec(
            "fig04", "Fig. 4",
            "two-beta synthetic prediction vs measurement, 40 procs GigE",
            fig04_two_beta.run,
        ),
        ExperimentSpec(
            "fig05", "Fig. 5",
            "small-message non-linearity surface (GigE, 256 B steps)",
            fig05_small_messages.run,
        ),
        ExperimentSpec(
            "fig06", "Fig. 6",
            "Fast Ethernet fit at 24 machines (gamma/delta)",
            fig06_fe_fit.run,
        ),
        ExperimentSpec(
            "fig07", "Fig. 7",
            "Fast Ethernet prediction surface",
            fig07_fe_surface.run,
        ),
        ExperimentSpec(
            "fig08", "Fig. 8",
            "Fast Ethernet estimation error vs process count",
            fig08_fe_error.run,
        ),
        ExperimentSpec(
            "fig09", "Fig. 9",
            "Gigabit Ethernet fit at 40 machines (gamma/delta)",
            fig09_gige_fit.run,
        ),
        ExperimentSpec(
            "fig10", "Fig. 10",
            "Gigabit Ethernet prediction surface",
            fig10_gige_surface.run,
        ),
        ExperimentSpec(
            "fig11", "Fig. 11",
            "Gigabit Ethernet estimation error vs process count",
            fig11_gige_error.run,
        ),
        ExperimentSpec(
            "fig12", "Fig. 12",
            "Myrinet fit at 24 processes (gamma only)",
            fig12_myrinet_fit.run,
        ),
        ExperimentSpec(
            "fig13", "Fig. 13",
            "Myrinet prediction surface",
            fig13_myrinet_surface.run,
        ),
        ExperimentSpec(
            "fig14", "Fig. 14",
            "Myrinet estimation error vs process count",
            fig14_myrinet_error.run,
        ),
        ExperimentSpec(
            "tableS", "§8 parameters",
            "fitted signatures vs paper values, all three networks",
            table_signatures.run,
        ),
        ExperimentSpec(
            "tableM", "§8 claim",
            "cost-model shootout: Hockney vs contention-signature error "
            "gap, all three networks",
            table_model_shootout.run,
        ),
        ExperimentSpec(
            "tableP", "§4 analysis",
            "rank placement: avoided vs incurred contention on the "
            "edge-core GigE stress fabric, predicted and simulated",
            table_placement.run,
        ),
    ]
}


def run_experiment(
    exp_id: str, scale: str = "default", *, seed: int = 0
) -> ExperimentResult:
    """Run one registered experiment by id."""
    try:
        spec = EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None
    return spec.runner(scale, seed=seed)
