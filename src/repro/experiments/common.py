"""Shared experiment machinery.

Every figure/table of the paper's evaluation has a module in this
package exposing ``run(scale=..., seed=...) -> ExperimentResult``.  Three
scales bound simulation cost:

* ``smoke``   — seconds; used by the test suite to check wiring & shape;
* ``default`` — tens of seconds; used by the benchmark harness;
* ``full``    — paper-fidelity grids; minutes (run explicitly).

Results carry named series or surfaces plus the rendered ASCII figure,
so a bench run prints the same rows/curves the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Mapping

import numpy as np

from ..analysis.ascii_plot import line_plot, scatter_plot, surface_table
from ..analysis.io import rows_from_series, write_csv
from ..clusters.profiles import ClusterProfile, get_cluster
from ..core.hockney import HockneyParams
from ..core.signature import ContentionSignature, fit_signature
from ..measure.alltoall import sweep_sizes
from ..measure.pingpong import hockney_from_pingpong, measure_pingpong

__all__ = [
    "SCALES",
    "Scale",
    "ExperimentResult",
    "reference_hockney",
    "reference_signature",
    "sample_sizes_for",
]


@dataclass(frozen=True)
class Scale:
    """Cost preset: repetition counts for the measurement layers."""

    name: str
    reps: int
    pingpong_reps: int

    def __post_init__(self) -> None:
        if self.reps < 1 or self.pingpong_reps < 1:
            raise ValueError("repetitions must be >= 1")


SCALES: dict[str, Scale] = {
    "smoke": Scale("smoke", reps=1, pingpong_reps=1),
    "bench": Scale("bench", reps=1, pingpong_reps=2),
    "default": Scale("default", reps=2, pingpong_reps=3),
    "full": Scale("full", reps=5, pingpong_reps=10),
}


def resolve_scale(scale: str | Scale) -> Scale:
    """Accept a scale name or object."""
    if isinstance(scale, Scale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; known: {', '.join(SCALES)}"
        ) from None


@dataclass
class ExperimentResult:
    """Output of one experiment: data + how to show it.

    ``kind`` selects the renderer:

    * ``lines``   — :attr:`series` as multi-series x/y curves;
    * ``scatter`` — :attr:`scatter_xy` cloud with :attr:`series` overlays;
    * ``surface`` — :attr:`surfaces` (name -> (n, m) grid) tables.
    """

    exp_id: str
    title: str
    paper_ref: str
    kind: str = "lines"
    xlabel: str = "x"
    ylabel: str = "y"
    series: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    scatter_xy: tuple[np.ndarray, np.ndarray] | None = None
    surfaces: dict[str, np.ndarray] = field(default_factory=dict)
    n_values: np.ndarray | None = None
    m_values: np.ndarray | None = None
    params: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self, width: int = 68) -> str:
        """ASCII figure + notes (what a bench run prints)."""
        header = f"[{self.exp_id}] {self.title}  ({self.paper_ref})"
        blocks = [header, "=" * len(header)]
        if self.kind == "lines":
            blocks.append(
                line_plot(
                    self.series, title=self.title, xlabel=self.xlabel,
                    ylabel=self.ylabel, width=width,
                )
            )
        elif self.kind == "scatter":
            assert self.scatter_xy is not None
            blocks.append(
                scatter_plot(
                    self.scatter_xy[0], self.scatter_xy[1],
                    overlay=self.series, title=self.title,
                    xlabel=self.xlabel, ylabel=self.ylabel, width=width,
                )
            )
        elif self.kind == "surface":
            assert self.n_values is not None and self.m_values is not None
            for name, grid in self.surfaces.items():
                blocks.append(
                    surface_table(
                        self.n_values.tolist(), self.m_values.tolist(), grid,
                        title=f"{name} — completion time (s)",
                    )
                )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown result kind {self.kind!r}")
        for note in self.notes:
            blocks.append(f"note: {note}")
        return "\n".join(blocks)

    def to_rows(self) -> tuple[list[str], list[dict[str, object]]]:
        """Tabular view (CSV-ready) of the primary data."""
        if self.kind in ("lines", "scatter") and self.series:
            return rows_from_series(self.series, x_name=self.xlabel)
        if self.kind == "scatter" and self.scatter_xy is not None:
            xs, ys = self.scatter_xy
            rows = [
                {"x": float(x), "y": float(y)} for x, y in zip(xs, ys)
            ]
            return ["x", "y"], rows
        if self.kind == "surface":
            assert self.n_values is not None and self.m_values is not None
            fieldnames = ["surface", "n", "m", "value"]
            rows = []
            for name, grid in self.surfaces.items():
                for i, n in enumerate(self.n_values):
                    for j, m in enumerate(self.m_values):
                        rows.append(
                            {
                                "surface": name,
                                "n": int(n),
                                "m": int(m),
                                "value": float(grid[i, j]),
                            }
                        )
            return fieldnames, rows
        raise ValueError("result carries no tabular data")

    def save_csv(self, path) -> None:
        """Persist the tabular view."""
        fieldnames, rows = self.to_rows()
        write_csv(path, fieldnames, rows)


def sample_sizes_for(scale: Scale, *, max_size: int = 1_258_291) -> list[int]:
    """Message-size ladder used by the fit figures (x up to ~1.2e6 B).

    Small sizes (2-32 KiB) are included so the affine threshold M is
    locatable by the breakpoint scan (the paper reports M = 2 kB / 8 kB).
    """
    if scale.name == "smoke":
        ladder = [2_048, 65_536, 262_144, 524_288, 1_048_576]
    elif scale.name == "full":
        ladder = [2_048, 4_096, 8_192, 16_384, 32_768] + list(
            range(65_536, max_size + 1, 65_536)
        )
    else:  # default / bench
        ladder = [
            2_048, 8_192, 32_768,
            65_536, 131_072, 262_144, 393_216, 524_288,
            786_432, 1_048_576, 1_258_291,
        ]
    return [s for s in ladder if s <= max_size]


@lru_cache(maxsize=64)
def _hockney_cached(
    cluster_name: str, pingpong_reps: int, seed: int
) -> HockneyParams:
    cluster = get_cluster(cluster_name)
    pingpong = measure_pingpong(cluster, reps=pingpong_reps, seed=seed)
    return hockney_from_pingpong(pingpong).params


def reference_hockney(
    cluster: ClusterProfile, scale: Scale, *, seed: int = 0
) -> HockneyParams:
    """Hockney α/β for a cluster (cached per scale & seed)."""
    return _hockney_cached(cluster.name, scale.pingpong_reps, seed)


@lru_cache(maxsize=64)
def _signature_cached(
    cluster_name: str,
    nprocs: int,
    scale_name: str,
    seed: int,
    delta_mode: str,
) -> ContentionSignature:
    from ..sweeps.runner import default_runner

    cluster = get_cluster(cluster_name)
    scale = SCALES[scale_name]
    hockney = reference_hockney(cluster, scale, seed=seed)
    sizes = sample_sizes_for(scale)
    # Routed through the sweep engine: the process-wide runner supplies
    # the execution backend (REPRO_SWEEP_WORKERS / REPRO_SWEEP_EXECUTOR,
    # a persistent warm pool across figures) and the on-disk result
    # cache (REPRO_SWEEP_CACHE) on top of this in-memory lru_cache.
    samples = sweep_sizes(
        cluster, nprocs, sizes, reps=scale.reps, seed=seed + 1,
        runner=default_runner(),
    )
    fit = fit_signature(samples, hockney, delta_mode=delta_mode)
    return fit.signature


def reference_signature(
    cluster: ClusterProfile,
    nprocs: int,
    scale: Scale,
    *,
    seed: int = 0,
    delta_mode: str = "per_round",
) -> ContentionSignature:
    """The §8 signature fitted at sample size *nprocs* (cached).

    Caching matters: figures 6/7/8 (and 9/10/11, 12/13/14) share one
    fitted signature per network, exactly as the paper reuses the n′
    sample fit across its prediction and error figures.
    """
    return _signature_cached(
        cluster.name, nprocs, scale.name, seed, delta_mode
    )


Mapping  # re-exported typing helper used by subclasses' annotations
