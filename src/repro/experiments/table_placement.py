"""Table P — contention avoided by rank placement on the edge-core fabric.

The paper models the contention an All-to-All *incurs* on a given
fabric; this table quantifies how much of it is an artefact of the
rank→host mapping.  On the oversubscribed edge-core GigE stress
scenario (4-node edge switches behind 120 MB/s trunks), a ``shift``
workload with ``offset = hosts_per_edge`` sends every byte across the
trunks under the identity mapping, while a contention-aware placement
(found by :func:`repro.placement.optimize_placement` against the
predicted MED objective — no simulation) keeps each shift cycle inside
one edge switch and the exchange NIC-bound.

For each process count the table reports the predicted bottleneck
(identity vs optimized, from the placed traffic matrix's MED routed
over the fabric) and the *simulated* completion time of both mappings
under the batched vector engine — the avoided-vs-incurred contention,
confirmed end to end.  Losses are disabled: the vector engine rejects
lossy profiles, and the predicted objective models bandwidth only.
"""

from __future__ import annotations

import numpy as np

from ..api import Scenario
from .common import ExperimentResult, resolve_scale

__all__ = ["run", "stress_scenario", "SHIFT_OFFSET"]

#: One full edge switch per shift step: the worst identity mapping.
SHIFT_OFFSET = 4

#: The PR 2 edge-core GigE stress fabric (lossless so the vector
#: engine — and the bandwidth-only objective — apply exactly).
_STRESS_SPEC = {
    "name": "edge-core-gige-placed",
    "description": "edge-core GigE stress fabric under a cross-switch "
                   "shift workload (lossless, vector engine)",
    "base": "gigabit-ethernet",
    "algorithm": "direct",
    "max_hosts": 64,
    "engine": "vector",
    "topology": {
        "factory": "edge-core",
        "params": {
            "nic_bandwidth": 117.6e6,
            "hosts_per_edge": 4,
            "trunk_bandwidth": 120e6,
            "core_backplane": 2000e6,
        },
    },
    "transport": {"mux_overhead": 6.0e-3},
    "loss": {"enabled": False},
    "workload": {
        "pattern": {"name": "shift", "params": {"offset": SHIFT_OFFSET}},
        "nprocs": [8, 16],
        "sizes": ["128kB", "512kB"],
        "seeds": [0],
        "reps": 1,
    },
}


def stress_scenario() -> Scenario:
    """The lossless edge-core stress scenario this table measures."""
    return Scenario.from_dict(_STRESS_SPEC)


def _grid_for(scale) -> tuple[tuple[int, ...], int]:
    """(process counts, message size) per scale."""
    if scale.name == "smoke":
        return (8,), 131_072
    if scale.name == "full":
        return (8, 16, 32), 524_288
    return (8, 16), 524_288


def run(scale="default", *, seed: int = 0) -> ExperimentResult:
    """Tabulate identity-vs-optimized contention, predicted and simulated."""
    scale = resolve_scale(scale)
    nprocs, msg_size = _grid_for(scale)
    scenario = stress_scenario()
    rows = []
    pred_identity, pred_opt = [], []
    sim_identity, sim_opt = [], []
    for n in nprocs:
        search = scenario.optimize_placement(
            n, msg_size, optimizer="greedy", seed=seed
        )
        identity = scenario.measure(
            n, msg_size, reps=scale.reps, seed=seed
        )
        placed = scenario.measure(
            n, msg_size, reps=scale.reps, seed=seed,
            placement=search.placement,
        )
        pred_identity.append(search.identity_objective)
        pred_opt.append(search.objective)
        sim_identity.append(identity.mean_time)
        sim_opt.append(placed.mean_time)
        rows.append(
            {
                "n_processes": n,
                "msg_size": msg_size,
                "predicted_identity": search.identity_objective,
                "predicted_optimized": search.objective,
                "predicted_ratio": search.ratio,
                "simulated_identity": identity.mean_time,
                "simulated_optimized": placed.mean_time,
                "simulated_ratio": identity.mean_time / placed.mean_time,
                "optimizer_evaluations": search.evaluations,
                "permutation": list(search.permutation),
            }
        )

    x = np.asarray(nprocs, dtype=np.float64)
    result = ExperimentResult(
        exp_id="tableP",
        title="Rank placement: avoided vs incurred contention (edge-core GigE)",
        paper_ref="§4 analysis",
        kind="lines",
        xlabel="processes",
        ylabel="completion time (s)",
        series={
            "predicted identity": (x, np.asarray(pred_identity)),
            "predicted optimized": (x, np.asarray(pred_opt)),
            "simulated identity": (x, np.asarray(sim_identity)),
            "simulated optimized": (x, np.asarray(sim_opt)),
        },
        params={
            "scale": scale.name,
            "seed": seed,
            "msg_size": msg_size,
            "shift_offset": SHIFT_OFFSET,
            "scenario": scenario.spec.to_dict(),
            "rows": rows,
        },
    )
    for row in rows:
        result.notes.append(
            f"n={row['n_processes']}: predicted "
            f"{row['predicted_identity'] * 1e3:.2f} -> "
            f"{row['predicted_optimized'] * 1e3:.2f} ms "
            f"({row['predicted_ratio']:.2f}x), simulated "
            f"{row['simulated_identity'] * 1e3:.2f} -> "
            f"{row['simulated_optimized'] * 1e3:.2f} ms "
            f"({row['simulated_ratio']:.2f}x)"
        )
    wins = sum(
        1 for row in rows
        if row["predicted_optimized"] < row["predicted_identity"]
        and row["simulated_optimized"] < row["simulated_identity"]
    )
    result.notes.append(
        f"optimized placement wins (predicted and simulated) on "
        f"{wins}/{len(rows)} process counts — contention the identity "
        "mapping incurs is avoidable, not intrinsic to the fabric"
    )
    return result
