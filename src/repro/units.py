"""Byte and time unit helpers.

The paper mixes unit conventions freely (``kB`` message sizes, ``MB/s``
throughputs, gap-per-byte ``s/byte`` transmission parameters).  This module
centralises the conversions so that every other module can speak SI seconds
and bytes internally while accepting and printing human-friendly figures.
"""

from __future__ import annotations

import re

__all__ = [
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "parse_size",
    "format_size",
    "format_time",
    "format_bandwidth",
    "bandwidth_to_beta",
    "beta_to_bandwidth",
]

# Decimal units (network gear is specified in powers of ten).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

# Binary units (message sizes in the paper, e.g. "1024 kB", are binary kilobytes).
KIB = 1_024
MIB = 1_048_576

_SIZE_RE = re.compile(
    r"^\s*([0-9]+(?:\.[0-9]+)?)\s*(b|kb|kib|mb|mib|gb|gib)?\s*$",
    re.IGNORECASE,
)

_SIZE_FACTORS = {
    None: 1,
    "b": 1,
    "kb": KIB,  # the paper's "kB" sizes are 1024-based message sizes
    "kib": KIB,
    "mb": MIB,
    "mib": MIB,
    "gb": 1024**3,
    "gib": 1024**3,
}


def parse_size(text: str | int | float) -> int:
    """Parse a human size string (``"32 MB"``, ``"8kB"``) into bytes.

    Integers/floats pass through unchanged (rounded to int).  Following the
    paper's convention, ``kB``/``MB`` in *message size* context are binary
    (1024-based): the paper's "1024 kB messages" are 1 MiB payloads.
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"size must be non-negative, got {text!r}")
        return int(round(text))
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse size {text!r}")
    value = float(match.group(1))
    unit = match.group(2)
    factor = _SIZE_FACTORS[unit.lower() if unit else None]
    return int(round(value * factor))


def format_size(nbytes: float) -> str:
    """Format a byte count with a binary suffix (``"256.0 KiB"``)."""
    value = float(nbytes)
    for suffix in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or suffix == "GiB":
            if suffix == "B":
                return f"{int(value)} {suffix}"
            return f"{value:.1f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_time(seconds: float) -> str:
    """Format a duration with an adaptive unit (s / ms / us / ns)."""
    abs_s = abs(seconds)
    if abs_s >= 1.0 or abs_s == 0.0:
        return f"{seconds:.3f} s"
    if abs_s >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if abs_s >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.1f} ns"


def format_bandwidth(bytes_per_second: float) -> str:
    """Format a throughput in MB/s (decimal, matching the paper's axes)."""
    return f"{bytes_per_second / MB:.2f} MB/s"


def bandwidth_to_beta(bytes_per_second: float) -> float:
    """Convert a link bandwidth into a Hockney gap-per-byte β (s/byte)."""
    if bytes_per_second <= 0:
        raise ValueError("bandwidth must be positive")
    return 1.0 / bytes_per_second


def beta_to_bandwidth(beta: float) -> float:
    """Convert a Hockney gap-per-byte β (s/byte) into bytes/second."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    return 1.0 / beta
