"""Declarative scenarios: clusters, workloads and overrides as data.

A :class:`ScenarioSpec` describes everything needed to characterise a
fabric — which cluster to build (a registered profile, a registered
topology factory with parameters, or both: base profile + overrides),
which All-to-All algorithm to run, and the workload grid to measure —
as a plain dataclass constructible from dicts and TOML/JSON files, with
lossless round-trip serialization (``from_dict(spec.to_dict()) ==
spec`` and ``from_toml(spec.to_toml()) == spec``).

This is the file format behind ``repro-alltoall run --scenario f.toml``
and the :class:`repro.api.Scenario` facade.  A minimal scenario file::

    [scenario]
    name = "my-gige-variant"
    base = "gigabit-ethernet"

    [scenario.transport]
    mux_overhead = 7.5e-3          # override one knob of the base stack

    [scenario.workload]
    nprocs = [4, 8]
    sizes = ["2kB", "32kB", "256kB", "1024kB"]

Scenario definitions feed the sweep-result cache: the canonical
:meth:`ScenarioSpec.cache_payload` is hashed into every point key, so
two scenarios whose definitions differ can never collide on a cache
entry even when their names (or probed topologies) coincide.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from . import models as _models  # noqa: F401 - registers the built-in cost models
from .clusters.profiles import ClusterProfile, get_cluster
from .engines import DEFAULT_ENGINE
from .exceptions import ScenarioError, UnknownNameError
from .placement.spec import PlacementSpec, as_placement
from .registry import (
    ALGORITHMS,
    ENGINES,
    MODELS,
    PATTERNS,
    PLACEMENTS,
    TOPOLOGIES,
    CLUSTERS as _CLUSTER_REGISTRY,
)
from .simnet.entities import LinkKind
from .simnet.loss import LossParams
from .simnet.penalty import HolPenalty
from .simmpi.collectives import variant_for
from .simmpi.transport import TransportParams
from .traffic import PatternSpec, as_pattern
from .units import parse_size

__all__ = ["TopologySpec", "WorkloadSpec", "ScenarioSpec", "load_scenario"]


def _field_names(cls) -> set[str]:
    return {f.name for f in dataclasses.fields(cls)}


def _check_fields(kind: str, mapping: dict, cls) -> None:
    unknown = sorted(set(mapping) - _field_names(cls))
    if unknown:
        known = ", ".join(sorted(_field_names(cls)))
        raise ScenarioError(f"unknown {kind} field(s) {unknown}; known: {known}")


def _link_kinds(mapping: dict) -> dict[LinkKind, float]:
    """``{"HOST_RX": 8}`` → ``{LinkKind.HOST_RX: 8}`` (case-insensitive)."""
    out = {}
    for key, value in mapping.items():
        try:
            out[LinkKind[str(key).upper()]] = value
        except KeyError:
            known = ", ".join(k.name for k in LinkKind)
            raise ScenarioError(
                f"unknown link kind {key!r}; known: {known}"
            ) from None
    return out


@dataclass(frozen=True)
class TopologySpec:
    """A registered topology factory plus its keyword parameters."""

    factory: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.factory:
            raise ScenarioError("topology.factory must be a registered name")

    def build(self, n_hosts: int):
        """Instantiate the fabric for *n_hosts* hosts."""
        return TOPOLOGIES.get(self.factory)(n_hosts, **self.params)

    def to_dict(self) -> dict:
        return {"factory": self.factory, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "TopologySpec":
        if not isinstance(data, dict):
            raise ScenarioError("topology must be a table/dict")
        _check_fields("topology", data, cls)
        return cls(
            factory=str(data.get("factory", "")),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """The measurement grid a scenario sweeps.

    ``sample_nprocs`` is the paper's n′ — the process count the
    signature fit samples at; it defaults to the largest ``nprocs``
    and must be one of them (the fit samples a grid column).

    ``pattern`` is the traffic pattern the grid simulates (a
    :class:`~repro.traffic.PatternSpec`, a registered name, or a
    ``{"name", "params"}`` table); unset — or trivially ``uniform`` —
    means the legacy regular All-to-All.
    """

    nprocs: tuple[int, ...] = (4, 8)
    sizes: tuple[int, ...] = (2_048, 8_192, 32_768, 131_072)
    seeds: tuple[int, ...] = (0,)
    reps: int = 2
    sample_nprocs: int | None = None
    pattern: PatternSpec | None = None

    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "nprocs", tuple(int(n) for n in self.nprocs))
            object.__setattr__(
                self, "sizes", tuple(parse_size(s) for s in self.sizes)
            )
            object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        except ScenarioError:
            raise
        except (TypeError, ValueError) as exc:
            # A scalar where a list belongs, a non-numeric entry, …
            raise ScenarioError(f"invalid workload value: {exc}") from None
        if not (self.nprocs and self.sizes and self.seeds):
            raise ScenarioError("workload needs nprocs, sizes and seeds values")
        if any(n < 2 for n in self.nprocs):
            raise ScenarioError("workload nprocs must be >= 2")
        if any(m < 1 for m in self.sizes):
            raise ScenarioError("workload sizes must be >= 1 byte")
        if self.reps < 1:
            raise ScenarioError("workload reps must be >= 1")
        if self.sample_nprocs is not None and self.sample_nprocs < 2:
            raise ScenarioError("workload sample_nprocs must be >= 2")
        if self.sample_nprocs is not None and self.sample_nprocs not in self.nprocs:
            raise ScenarioError(
                f"workload sample_nprocs {self.sample_nprocs} is not one of "
                f"the swept nprocs {list(self.nprocs)}; the signature fit "
                "samples a grid column"
            )
        object.__setattr__(self, "pattern", as_pattern(self.pattern))

    @property
    def fit_nprocs(self) -> int:
        """n′ used by the signature fit (``sample_nprocs`` or max nprocs)."""
        return self.sample_nprocs if self.sample_nprocs else max(self.nprocs)

    def to_dict(self) -> dict:
        out = {
            "nprocs": list(self.nprocs),
            "sizes": list(self.sizes),
            "seeds": list(self.seeds),
            "reps": self.reps,
        }
        if self.sample_nprocs is not None:
            out["sample_nprocs"] = self.sample_nprocs
        if self.pattern is not None:
            out["pattern"] = self.pattern.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        if not isinstance(data, dict):
            raise ScenarioError("workload must be a table/dict")
        _check_fields("workload", data, cls)
        kwargs = dict(data)
        try:
            if "sample_nprocs" in kwargs and kwargs["sample_nprocs"] is not None:
                kwargs["sample_nprocs"] = int(kwargs["sample_nprocs"])
            return cls(**kwargs)
        except ScenarioError:
            raise
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"invalid workload: {exc}") from None


@dataclass(frozen=True)
class ScenarioSpec:
    """A full declarative scenario.

    Attributes
    ----------
    name / description:
        Identification; the name labels sweep rows and cache entries.
    base:
        Registered cluster to start from (``None`` builds from scratch,
        which then requires ``topology``).
    topology:
        Fabric override: a registered factory name + parameters.
    transport:
        :class:`~repro.simmpi.transport.TransportParams` field
        overrides (full construction when there is no base).
    loss / hol:
        Loss-process / head-of-line overrides.  ``{"enabled": False}``
        removes the base mechanism entirely; other keys are
        :class:`LossParams` / :class:`HolPenalty` fields
        (``sat_flows`` / ``eta`` use link-kind names as keys).
    start_skew_scale / max_hosts:
        Profile-level overrides (``None`` inherits).
    algorithm:
        Registered All-to-All algorithm the workload runs.
    model:
        Registered cost model (:data:`repro.registry.MODELS`) that
        :meth:`repro.api.Scenario.fit_model` fits by default
        (``signature`` — the paper's pipeline — when unset).
    engine:
        Registered simulation engine (:data:`repro.registry.ENGINES`)
        the workload is simulated with.  Unset (or the default
        ``fluid``, to which explicit spellings canonicalise) defers to
        the process-wide default and is omitted from serialization and
        cache payloads, so pre-engine scenario files and cache entries
        keep their meaning.
    placement:
        Rank→host mapping the workload runs under (a
        :class:`~repro.placement.PlacementSpec`, a registered strategy
        name, a ``{"name", "params"}`` / ``{"perm"}`` table, or an
        explicit permutation list).  Unset — or trivially ``identity``
        — means the legacy rank *i* on host *i* mapping and is omitted
        from serialization and cache payloads, so pre-placement
        scenario files and cache entries keep their meaning.
    workload:
        The measurement grid (see :class:`WorkloadSpec`).
    """

    name: str
    description: str = ""
    base: str | None = None
    topology: TopologySpec | None = None
    transport: dict = field(default_factory=dict)
    loss: dict | None = None
    hol: dict | None = None
    start_skew_scale: float | None = None
    max_hosts: int | None = None
    algorithm: str = "direct"
    model: str = "signature"
    engine: str | None = None
    placement: PlacementSpec | None = None
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario needs a name")
        if self.base is None and self.topology is None:
            raise ScenarioError(
                "scenario needs a base cluster and/or a topology section"
            )
        if self.base is not None:
            # Fail fast (and canonicalise) instead of at build time.
            object.__setattr__(
                self, "base", _cluster_canonical(self.base)
            )
        if self.topology is not None and self.topology.factory not in TOPOLOGIES:
            # Fail at load time, not mid-sweep inside a lazy build.
            raise ScenarioError(
                f"unknown topology {self.topology.factory!r}; "
                f"known: {', '.join(TOPOLOGIES.names())}"
            )
        if self.algorithm not in ALGORITHMS:
            raise ScenarioError(
                f"unknown algorithm {self.algorithm!r}; "
                f"known: {', '.join(ALGORITHMS.names())}"
            )
        object.__setattr__(
            self, "algorithm", ALGORITHMS.canonical(self.algorithm)
        )
        if self.model not in MODELS:
            raise ScenarioError(
                f"unknown model {self.model!r}; "
                f"known: {', '.join(MODELS.names())}"
            )
        object.__setattr__(self, "model", MODELS.canonical(self.model))
        if self.engine is not None:
            if self.engine not in ENGINES:
                raise ScenarioError(
                    f"unknown engine {self.engine!r}; "
                    f"known: {', '.join(ENGINES.names())}"
                )
            engine = ENGINES.canonical(self.engine)
            # The default engine collapses to None: one identity, one
            # serialized form, one cache payload.
            object.__setattr__(
                self, "engine", None if engine == DEFAULT_ENGINE else engine
            )
        # Identity collapses to None: one identity, one serialized
        # form, one cache payload (as_placement validates the rest).
        object.__setattr__(self, "placement", as_placement(self.placement))
        try:
            variant_for(
                self.algorithm, irregular=self.workload.pattern is not None
            )
        except ValueError as exc:
            raise ScenarioError(str(exc)) from None
        _check_fields("transport", self.transport, TransportParams)
        if self.loss is not None:
            _check_fields(
                "loss", {k: v for k, v in self.loss.items() if k != "enabled"},
                LossParams,
            )
        if self.hol is not None:
            _check_fields(
                "hol", {k: v for k, v in self.hol.items() if k != "enabled"},
                HolPenalty,
            )
        if self.max_hosts is not None and self.max_hosts < 2:
            raise ScenarioError("max_hosts must be >= 2")

    # -- profile construction ------------------------------------------

    def build_profile(self) -> ClusterProfile:
        """Materialise the scenario as a :class:`ClusterProfile`."""
        if self.base is not None:
            profile = get_cluster(self.base)
        else:
            profile = ClusterProfile(
                name=self.name,
                description=self.description or f"scenario {self.name}",
                topology_factory=self.topology.build,
                transport=TransportParams(**{"name": self.name, **self.transport}),
            )
        overrides: dict = {"name": self.name}
        if self.description:
            overrides["description"] = self.description
        if self.base is not None and self.transport:
            overrides["transport"] = replace(profile.transport, **self.transport)
        if self.topology is not None:
            overrides["topology_factory"] = self.topology.build
        if self.loss is not None:
            overrides["loss"] = self._build_loss(profile.loss)
        if self.hol is not None:
            overrides["hol"] = self._build_hol(profile.hol)
        if self.start_skew_scale is not None:
            overrides["start_skew_scale"] = float(self.start_skew_scale)
        if self.max_hosts is not None:
            overrides["max_hosts"] = int(self.max_hosts)
        if not self.is_pure_base:
            # The paper measured the *base* fabric, not this variant.
            overrides["paper"] = None
        return profile.with_overrides(**overrides)

    def _build_loss(self, base: LossParams | None) -> LossParams | None:
        data = dict(self.loss)
        if not data.pop("enabled", True):
            return None
        if "sat_flows" in data and data["sat_flows"] is not None:
            data["sat_flows"] = _link_kinds(data["sat_flows"])
        if base is not None:
            return replace(base, **data)
        return LossParams(**data)

    def _build_hol(self, base: HolPenalty | None) -> HolPenalty | None:
        data = dict(self.hol)
        if not data.pop("enabled", True):
            return None
        if "eta" in data and data["eta"] is not None:
            data["eta"] = _link_kinds(data["eta"])
        if base is not None:
            return replace(base, **data)
        return HolPenalty(**data)

    @property
    def is_pure_base(self) -> bool:
        """Whether this scenario is a registered cluster, unmodified."""
        return (
            self.base is not None
            and self.topology is None
            and not self.transport
            and self.loss is None
            and self.hol is None
            and self.start_skew_scale is None
            and self.max_hosts is None
        )

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON dict (lossless; see :meth:`from_dict`)."""
        out: dict = {"name": self.name}
        if self.description:
            out["description"] = self.description
        if self.base is not None:
            out["base"] = self.base
        if self.topology is not None:
            out["topology"] = self.topology.to_dict()
        if self.transport:
            out["transport"] = dict(self.transport)
        if self.loss is not None:
            out["loss"] = dict(self.loss)
        if self.hol is not None:
            out["hol"] = dict(self.hol)
        if self.start_skew_scale is not None:
            out["start_skew_scale"] = self.start_skew_scale
        if self.max_hosts is not None:
            out["max_hosts"] = self.max_hosts
        out["algorithm"] = self.algorithm
        if self.model != "signature":
            out["model"] = self.model
        if self.engine is not None:
            out["engine"] = self.engine
        if self.placement is not None:
            out["placement"] = self.placement.to_dict()
        out["workload"] = self.workload.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Build from a dict (accepts a top-level ``{"scenario": ...}``)."""
        if not isinstance(data, dict):
            raise ScenarioError("scenario must be a table/dict")
        if set(data) == {"scenario"}:
            data = data["scenario"]
        _check_fields("scenario", data, cls)
        kwargs = dict(data)
        if kwargs.get("topology") is not None:
            kwargs["topology"] = TopologySpec.from_dict(kwargs["topology"])
        if kwargs.get("workload") is not None:
            kwargs["workload"] = WorkloadSpec.from_dict(kwargs["workload"])
        else:
            kwargs.pop("workload", None)
        try:
            return cls(**kwargs)
        except ScenarioError:
            raise
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"invalid scenario: {exc}") from None

    @classmethod
    def from_file(cls, path: str | Path) -> "ScenarioSpec":
        """Load a ``.toml`` or ``.json`` scenario file."""
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() == ".toml":
            return cls.from_toml(text)
        if path.suffix.lower() == ".json":
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ScenarioError(f"invalid scenario JSON: {exc}") from None
            return cls.from_dict(data)
        raise ScenarioError(
            f"unsupported scenario file type {path.suffix!r} (use .toml or .json)"
        )

    @classmethod
    def from_toml(cls, text: str) -> "ScenarioSpec":
        """Parse a TOML scenario document."""
        try:
            import tomllib  # noqa: PLC0415 - stdlib on >= 3.11
        except ImportError as exc:  # pragma: no cover - py3.10 fallback
            raise ScenarioError(
                "TOML scenarios need Python >= 3.11 (tomllib); "
                "use a .json scenario instead"
            ) from exc
        try:
            return cls.from_dict(tomllib.loads(text))
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(f"invalid scenario TOML: {exc}") from None

    def to_toml(self) -> str:
        """Emit the scenario as a TOML document (round-trips via
        :meth:`from_toml`)."""
        lines: list[str] = ["[scenario]"]
        head = self.to_dict()
        tables = {
            key: head.pop(key, None)
            for key in (
                "topology", "transport", "loss", "hol", "placement", "workload"
            )
        }
        for key, value in head.items():
            lines.append(f"{key} = {_toml_value(value)}")
        for key, table in tables.items():
            if table is None:
                continue
            lines.append("")
            _emit_toml_table(lines, f"scenario.{key}", table)
        return "\n".join(lines) + "\n"

    def save(self, path: str | Path) -> Path:
        """Write the scenario to a ``.toml`` or ``.json`` file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix.lower() == ".toml":
            path.write_text(self.to_toml())
        elif path.suffix.lower() == ".json":
            path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        else:
            raise ScenarioError(
                f"unsupported scenario file type {path.suffix!r} (use .toml or .json)"
            )
        return path

    def uses_only_builtin_plugins(self) -> bool:
        """Whether every registered object this spec references ships
        with the repro package.

        Fresh worker processes (``spawn``/``forkserver`` start methods)
        import only :mod:`repro`, so registrations made in user scripts
        are absent there; the sweep runner uses this to decide whether a
        scenario may be rebuilt in such workers.
        """
        objects = [ALGORITHMS.get(self.algorithm)]
        if self.topology is not None:
            objects.append(TOPOLOGIES.get(self.topology.factory))
        if self.base is not None:
            objects.append(_CLUSTER_REGISTRY.get(self.base))
        if self.workload.pattern is not None:
            objects.append(PATTERNS.get(self.workload.pattern.name))
        if self.placement is not None and not self.placement.is_explicit:
            objects.append(PLACEMENTS.get(self.placement.name))
        return all(
            (getattr(obj, "__module__", "") or "").split(".")[0] == "repro"
            for obj in objects
        )

    # -- cache integration ---------------------------------------------

    def cache_payload(self) -> dict:
        """The definition-bearing fields, canonicalised for cache keys.

        Everything that can change a simulated result is here (topology
        factory + params, transport/loss/hol overrides, skew, size cap,
        base profile); presentation fields (name, description) and the
        workload grid (already encoded per point) are excluded.  Hashing
        this alongside the profile fingerprint guarantees two different
        scenario definitions never share a cache entry.
        """
        payload = {
            "base": self.base,
            "topology": None if self.topology is None else self.topology.to_dict(),
            "transport": dict(self.transport),
            "loss": None if self.loss is None else dict(self.loss),
            "hol": None if self.hol is None else dict(self.hol),
            "start_skew_scale": self.start_skew_scale,
            "max_hosts": self.max_hosts,
        }
        if self.engine is not None:
            # Added only when non-default: pre-engine payloads (and
            # their hashes) stay byte-identical.
            payload["engine"] = self.engine
        if self.placement is not None:
            # Same rule: identity placements never appear, so
            # pre-placement payloads (and their hashes) are untouched.
            payload["placement"] = self.placement.cache_payload()
        return payload


def _cluster_canonical(name: str) -> str:
    """Canonicalise a base-cluster name, as a ScenarioError on failure."""
    try:
        return _CLUSTER_REGISTRY.canonical(name)
    except UnknownNameError as exc:
        raise ScenarioError(exc.args[0]) from None


def _emit_toml_table(lines: list[str], path: str, table: dict) -> None:
    """Append ``[path]`` plus entries; sub-dicts recurse as sub-tables."""
    lines.append(f"[{path}]")
    nested = []
    for key, value in table.items():
        if isinstance(value, dict):
            if value:  # empty sub-tables carry no information
                nested.append((key, value))
        else:
            lines.append(f"{key} = {_toml_value(value)}")
    for key, value in nested:
        _emit_toml_table(lines, f"{path}.{key}", value)


def _toml_value(value) -> str:
    """Serialise one scalar/array for :meth:`ScenarioSpec.to_toml`."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    if value is None:
        raise ScenarioError("TOML cannot encode null values")
    raise ScenarioError(f"cannot TOML-encode {type(value).__name__}")


def load_scenario(path: str | Path) -> ScenarioSpec:
    """Convenience alias for :meth:`ScenarioSpec.from_file`."""
    return ScenarioSpec.from_file(path)
