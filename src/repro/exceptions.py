"""Exception hierarchy for the repro package."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "RoutingError",
    "FittingError",
    "MeasurementError",
    "BackendUnavailableError",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All rank processes are blocked and no event can make progress."""


class RoutingError(SimulationError):
    """No route exists between two hosts in the topology."""


class FittingError(ReproError):
    """A model fit could not be performed (e.g. too few samples)."""


class MeasurementError(ReproError):
    """A measurement harness was misconfigured or produced no data."""


class BackendUnavailableError(MeasurementError):
    """The requested measurement backend (e.g. mpi4py) is not importable."""
