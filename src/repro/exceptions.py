"""Exception hierarchy for the repro package."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "RoutingError",
    "LoweringError",
    "FittingError",
    "MeasurementError",
    "ExecutionError",
    "BackendUnavailableError",
    "RegistryError",
    "DuplicateNameError",
    "UnknownNameError",
    "ScenarioError",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class RegistryError(ReproError):
    """A plugin-registry operation failed."""


class DuplicateNameError(RegistryError, ValueError):
    """A name (or alias) is already registered and ``replace`` was not set."""


class UnknownNameError(RegistryError, KeyError, ValueError):
    """A registry lookup failed.

    Inherits both :class:`KeyError` (the historical ``get_cluster`` /
    ``run_experiment`` contract) and :class:`ValueError` (the historical
    ``get_backend`` / ``SweepSpec`` contract) so pre-registry call sites
    keep catching what they always caught.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class ScenarioError(ReproError, ValueError):
    """A scenario definition is malformed or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All rank processes are blocked and no event can make progress."""


class RoutingError(SimulationError):
    """No route exists between two hosts in the topology."""


class LoweringError(SimulationError):
    """A rank program cannot be compiled to a static phase schedule.

    Raised by :mod:`repro.simmpi.lowering` for programs whose behaviour
    depends on runtime state the compiler cannot know (wildcard receives,
    ``ctx.now``) or whose sends and receives do not pair up statically.
    """


class FittingError(ReproError):
    """A model fit could not be performed (e.g. too few samples)."""


class MeasurementError(ReproError):
    """A measurement harness was misconfigured or produced no data."""


class ExecutionError(ReproError, RuntimeError):
    """A sweep point failed inside an executor.

    Raised when a worker-side exception cannot be re-hydrated as the
    exception type that was originally raised (the isolation boundary
    ships errors between processes as strings, not pickled objects).
    """


class BackendUnavailableError(MeasurementError):
    """The requested measurement backend (e.g. mpi4py) is not importable."""
