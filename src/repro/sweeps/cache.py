"""On-disk result cache for sweep points.

Every simulated point is stored as one small JSON file whose name is a
SHA-256 **content hash** of everything that determines the result:

* the point coordinates (cluster, n, m, algorithm, seed, reps);
* a *fingerprint* of the cluster profile — transport parameters, loss
  process, HoL penalty, start skew, plus structural probes of the
  topology the profile builds (link kinds/capacities at two sizes);
* :data:`CACHE_VERSION`, bumped whenever the simulator's behaviour
  changes in a result-relevant way.

Editing a profile (e.g. through ``ClusterProfile.with_overrides``)
therefore changes the key and transparently invalidates old entries;
stale files are never read, only orphaned (``clear()`` removes them).

The default location is ``$REPRO_SWEEP_CACHE`` when set, else
``~/.cache/repro-alltoall/sweeps``.  Writes are atomic (tmp file +
``os.replace``) so concurrent workers and repeated runs never observe a
torn entry.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from pathlib import Path

from ..clusters.profiles import ClusterProfile
from ..core.signature import AlltoallSample
from ..obs.metrics import REGISTRY
from .spec import SweepPoint

__all__ = [
    "CACHE_VERSION",
    "ResultCache",
    "default_cache_dir",
    "point_key",
    "profile_fingerprint",
]

#: Bump when simulator changes invalidate previously cached results.
CACHE_VERSION = 1

#: Default topology probe sizes: small catches NIC/switch constants,
#: large catches size-dependent structure (edge switch fan-out, trunks).
#: The sweep runner instead probes at each point's own n — the exact
#: fabric that point simulates — so its keys never miss a topology
#: difference (see :func:`point_key`).
DEFAULT_PROBE_SIZES = (2, 24)


def default_cache_dir() -> Path:
    """``$REPRO_SWEEP_CACHE`` or ``~/.cache/repro-alltoall/sweeps``."""
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-alltoall" / "sweeps"


def _jsonable(value: object) -> object:
    """Canonicalise a value for stable JSON hashing."""
    if isinstance(value, enum.Enum):
        return value.name
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {
            str(_jsonable(k)): _jsonable(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}")


def _topology_probe(cluster: ClusterProfile, n_hosts: int) -> dict[str, object]:
    """Full structural capture of the fabric built for *n_hosts*.

    Links, host cabling (including switch membership), and switch
    wiring (backplane + trunk adjacency) together determine every
    route the fluid solver can take, so two fabrics with equal probes
    are indistinguishable to the simulation.
    """
    topo = cluster.topology(n_hosts)
    return {
        "links": [[link.kind.name, link.capacity] for link in topo.links],
        "hosts": [
            [host.switch, host.tx_link, host.rx_link] for host in topo.hosts
        ],
        "switches": [
            [sw.backplane_link, sorted(sw.trunks.items())]
            for sw in topo.switches
        ],
    }


def profile_fingerprint(
    cluster: ClusterProfile,
    probe_sizes: tuple[int, ...] = DEFAULT_PROBE_SIZES,
) -> dict[str, object]:
    """Code-relevant parameters of a profile, as a canonical dict.

    The topology factory is a closure and cannot be hashed directly; its
    behaviour is captured by building the fabric at *probe_sizes* and
    fingerprinting the resulting link structure.  A point keyed with a
    probe at its own process count therefore reflects exactly the fabric
    its simulation runs on.
    """
    probes = {
        str(n): _topology_probe(cluster, n)
        for n in sorted(set(probe_sizes))
        if n <= cluster.max_hosts
    }
    return {
        "name": cluster.name,
        "transport": _jsonable(cluster.transport),
        "loss": _jsonable(cluster.loss),
        "hol": _jsonable(cluster.hol),
        "start_skew_scale": cluster.start_skew_scale,
        "max_hosts": cluster.max_hosts,
        "topology": probes,
    }


def point_key(
    point: SweepPoint,
    fingerprint: dict[str, object],
    scenario: dict[str, object] | None = None,
) -> str:
    """SHA-256 content hash identifying one point's result.

    *scenario* is the definition payload of a user scenario
    (:meth:`repro.scenario.ScenarioSpec.cache_payload`) when the point
    was produced by one.  Including it guarantees two different scenario
    definitions never collide on a key, even if their built profiles
    probe identically at this point's process count.  ``None`` (plain
    registry clusters) leaves keys exactly as before.
    """
    payload = {
        "cache_version": CACHE_VERSION,
        "point": point.key_payload(),
        "profile": fingerprint,
    }
    if scenario is not None:
        payload["scenario"] = _jsonable(scenario)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Directory-backed store of :class:`AlltoallSample` results.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write).  ``None`` picks
        :func:`default_cache_dir`.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> AlltoallSample | None:
        """Load a cached sample, or ``None`` (counts hit/miss stats).

        Any unreadable, malformed, or wrongly-shaped entry is a miss —
        the point is re-simulated and the entry rewritten — never an
        error.
        """
        path = self._path(key)
        try:
            text = path.read_text()
            payload = json.loads(text)
            sample = payload["sample"]
            result = AlltoallSample(
                n_processes=int(sample["n_processes"]),
                msg_size=int(sample["msg_size"]),
                mean_time=float(sample["mean_time"]),
                std_time=float(sample["std_time"]),
                reps=int(sample["reps"]),
            )
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            self.misses += 1
            REGISTRY.counter("cache.misses").inc()
            return None
        self.hits += 1
        REGISTRY.counter("cache.hits").inc()
        REGISTRY.counter("cache.bytes_read").inc(len(text))
        return result

    def put(self, key: str, point: SweepPoint, sample: AlltoallSample) -> None:
        """Persist one point's sample atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "cache_version": CACHE_VERSION,
            "key": key,
            "point": point.key_payload(),
            "sample": {
                "n_processes": sample.n_processes,
                "msg_size": sample.msg_size,
                "mean_time": sample.mean_time,
                "std_time": sample.std_time,
                "reps": sample.reps,
            },
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        text = json.dumps(payload, sort_keys=True)
        tmp.write_text(text)
        os.replace(tmp, path)
        REGISTRY.counter("cache.writes").inc()
        REGISTRY.counter("cache.bytes_written").inc(len(text))

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultCache({str(self.root)!r}, hits={self.hits}, misses={self.misses})"
