"""Declarative sweep grids.

A :class:`SweepSpec` is the cartesian product

    clusters x nprocs x msg sizes x algorithms x patterns x placements x seeds

with a shared repetition count.  :meth:`SweepSpec.points` expands it into
:class:`SweepPoint` instances in a deterministic order (clusters outer,
seeds inner), so two expansions of the same spec always enumerate the
same points in the same positions.

The ``patterns`` axis holds traffic patterns
(:class:`~repro.traffic.PatternSpec`, names, or dicts); ``None`` — and
the trivial ``uniform`` spec, which canonicalises to ``None`` — is the
legacy regular All-to-All, whose points carry no pattern in their cache
keys (so pre-pattern cache entries stay valid and uniform sweeps hit
them bit-for-bit).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from .. import models as _models  # noqa: F401 - registers the built-in cost models
from ..engines import DEFAULT_ENGINE, default_engine
from ..placement import PlacementSpec, as_placement
from ..registry import ALGORITHMS, CLUSTERS, ENGINES, MODELS
from ..simmpi.collectives import variant_for
from ..traffic import PatternSpec, as_pattern

__all__ = ["SweepPoint", "SweepSpec"]


@dataclass(frozen=True)
class SweepPoint:
    """One (cluster, n, m, algorithm, pattern, seed) simulation coordinate."""

    cluster: str
    n_processes: int
    msg_size: int
    algorithm: str
    seed: int
    reps: int
    pattern: PatternSpec | None = None
    engine: str | None = None
    placement: PlacementSpec | None = None

    def __post_init__(self) -> None:
        if self.n_processes < 2:
            raise ValueError("All-to-All needs at least 2 processes")
        if self.msg_size < 1:
            raise ValueError("msg_size must be >= 1 byte")
        if self.reps < 1:
            raise ValueError("reps must be >= 1")
        # Uniform canonicalises to None: one identity, one cache key.
        object.__setattr__(self, "pattern", as_pattern(self.pattern))
        # Identity placement likewise collapses to None.
        object.__setattr__(self, "placement", as_placement(self.placement))
        # Engine resolves eagerly (None -> process default), so a
        # REPRO_SIM_ENGINE override participates in cache keys instead
        # of silently aliasing the default engine's entries.
        engine = self.engine if self.engine is not None else default_engine()
        object.__setattr__(self, "engine", ENGINES.canonical(engine))

    def key_payload(self) -> dict[str, object]:
        """The point's contribution to its cache key (stable field order).

        Pattern-less points keep the historical payload exactly, so
        adding the pattern axis never invalidated existing caches.
        """
        payload: dict[str, object] = {
            "cluster": self.cluster,
            "n_processes": self.n_processes,
            "msg_size": self.msg_size,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "reps": self.reps,
        }
        if self.pattern is not None:
            payload["pattern"] = self.pattern.cache_payload()
        if self.engine != DEFAULT_ENGINE:
            # Default-engine points keep the historical payload exactly,
            # so introducing the engine axis never invalidated caches.
            payload["engine"] = self.engine
        if self.placement is not None:
            # Same rule: identity placements never appear in payloads.
            payload["placement"] = self.placement.cache_payload()
        return payload


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of All-to-All measurement points.

    Attributes
    ----------
    clusters:
        Cluster names (entries of :data:`repro.registry.CLUSTERS`;
        aliases and alternate spellings are canonicalised).
    nprocs / sizes:
        Process counts and message sizes (bytes) to cross.
    algorithms:
        Algorithm names (entries of :data:`repro.registry.ALGORITHMS`).
    patterns:
        Traffic patterns (``None``/names/dicts/specs; entries of
        :data:`repro.registry.PATTERNS`).  Defaults to the single
        legacy uniform exchange.
    placements:
        Rank→host mappings (``None``/names/dicts/permutations/specs;
        entries of :data:`repro.registry.PLACEMENTS`).  Defaults to the
        single legacy identity mapping, whose points carry no placement
        in their cache keys (so pre-placement cache entries stay valid
        and identity sweeps hit them bit-for-bit).
    seeds:
        Base seeds; each seed yields an independent replication of the
        whole grid (per-point streams are further derived by name, see
        the package docstring).
    reps:
        Repetitions averaged inside each point.
    models:
        Optional post-processing hook: cost-model names (entries of
        :data:`repro.registry.MODELS`) to fit per cluster on the
        finished sweep's samples.  Not a grid axis — it never affects
        which points run or their cache keys; the runner attaches the
        ranked comparisons to ``SweepResult.comparisons``.
    engine:
        Simulation engine for every point (an entry of
        :data:`repro.registry.ENGINES`); ``None`` defers to the
        process-wide default (``REPRO_SIM_ENGINE`` or ``fluid``).
        Non-default engines enter each point's cache key.
    """

    clusters: tuple[str, ...]
    nprocs: tuple[int, ...]
    sizes: tuple[int, ...]
    algorithms: tuple[str, ...] = ("direct",)
    patterns: tuple = (None,)
    placements: tuple = (None,)
    seeds: tuple[int, ...] = (0,)
    reps: int = 3
    models: tuple[str, ...] = ()
    engine: str | None = None

    def __post_init__(self) -> None:
        # Cluster/algorithm names resolvable in the registries are
        # canonicalised (``Fast_Ethernet`` → ``fast-ethernet``) so
        # aliases share cache keys; unresolvable cluster names pass
        # through untouched (they may be scenario labels).
        object.__setattr__(
            self,
            "clusters",
            tuple(
                CLUSTERS.canonical(c) if c in CLUSTERS else c
                for c in self.clusters
            ),
        )
        object.__setattr__(self, "nprocs", tuple(int(n) for n in self.nprocs))
        object.__setattr__(self, "sizes", tuple(int(m) for m in self.sizes))
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if not (self.clusters and self.nprocs and self.sizes
                and self.algorithms and self.seeds):
            raise ValueError("every sweep axis needs at least one value")
        if any(n < 2 for n in self.nprocs):
            raise ValueError("nprocs values must be >= 2 (All-to-All needs two processes)")
        if any(m < 1 for m in self.sizes):
            raise ValueError("sizes must be >= 1 byte")
        unknown = [a for a in self.algorithms if a not in ALGORITHMS]
        if unknown:
            known = ", ".join(ALGORITHMS.names())
            raise ValueError(f"unknown algorithms {unknown}; known: {known}")
        object.__setattr__(
            self,
            "algorithms",
            tuple(ALGORITHMS.canonical(a) for a in self.algorithms),
        )
        if not isinstance(self.patterns, (tuple, list)):
            raise ValueError("patterns must be a tuple of pattern specs/names")
        object.__setattr__(
            self, "patterns", tuple(as_pattern(p) for p in self.patterns)
        )
        if not self.patterns:
            raise ValueError("every sweep axis needs at least one value")
        for algorithm in self.algorithms:
            for pattern in self.patterns:
                # Reject (algorithm, pattern) combos with no rank program.
                variant_for(algorithm, irregular=pattern is not None)
        if not isinstance(self.placements, (tuple, list)):
            raise ValueError(
                "placements must be a tuple of placement specs/names"
            )
        object.__setattr__(
            self, "placements", tuple(as_placement(p) for p in self.placements)
        )
        if not self.placements:
            raise ValueError("every sweep axis needs at least one value")
        if self.reps < 1:
            raise ValueError("reps must be >= 1")
        unknown_models = [m for m in self.models if m not in MODELS]
        if unknown_models:
            known = ", ".join(MODELS.names())
            raise ValueError(f"unknown models {unknown_models}; known: {known}")
        # Canonicalise and deduplicate (an alias plus its canonical name
        # is one model, not a post-sweep comparison failure).
        canonical_models: list[str] = []
        for model in self.models:
            resolved = MODELS.canonical(model)
            if resolved not in canonical_models:
                canonical_models.append(resolved)
        object.__setattr__(self, "models", tuple(canonical_models))
        if self.engine is not None:
            if self.engine not in ENGINES:
                known = ", ".join(ENGINES.names())
                raise ValueError(
                    f"unknown engine {self.engine!r}; known: {known}"
                )
            object.__setattr__(self, "engine", ENGINES.canonical(self.engine))

    @property
    def n_points(self) -> int:
        """Grid cardinality."""
        return (
            len(self.clusters) * len(self.nprocs) * len(self.sizes)
            * len(self.algorithms) * len(self.patterns)
            * len(self.placements) * len(self.seeds)
        )

    def points(self) -> list[SweepPoint]:
        """Expand the grid (deterministic order: clusters outer, seeds inner)."""
        return [
            SweepPoint(
                cluster=cluster,
                n_processes=n,
                msg_size=m,
                algorithm=algorithm,
                seed=seed,
                reps=self.reps,
                pattern=pattern,
                engine=self.engine,
                placement=placement,
            )
            for cluster, n, m, algorithm, pattern, placement, seed
            in itertools.product(
                self.clusters, self.nprocs, self.sizes,
                self.algorithms, self.patterns, self.placements, self.seeds,
            )
        ]

    def describe(self) -> str:
        """One-line shape summary for logs and the CLI."""
        pattern_part = (
            f"{len(self.patterns)} patterns x "
            if self.patterns != (None,)
            else ""
        )
        placement_part = (
            f"{len(self.placements)} placements x "
            if self.placements != (None,)
            else ""
        )
        return (
            f"{self.n_points} points "
            f"({len(self.clusters)} clusters x {len(self.nprocs)} nprocs x "
            f"{len(self.sizes)} sizes x {len(self.algorithms)} algorithms x "
            f"{pattern_part}{placement_part}{len(self.seeds)} seeds, "
            f"reps={self.reps})"
        )
