"""Parallel sweep engine with on-disk result caching.

The paper's whole methodology is sweeps: characterise a cluster at one
n', then validate predictions across (n, m) grids per network.  This
package turns those grids into first-class objects:

* :class:`SweepSpec` — a declarative grid over clusters x nprocs x
  message sizes x algorithms x seeds;
* :class:`SweepRunner` — resolves points cache-first, runs misses on a
  pluggable executor (:mod:`repro.exec`: serial / persistent process
  pool / futures) with per-point failure isolation and streaming
  result sinks;
* :class:`ResultCache` — content-addressed store keyed by a hash of
  (point coordinates, cluster-profile fingerprint, cache version).

Deterministic seed derivation
-----------------------------
Results are independent of grid composition, execution order, and
worker count, because no stream is ever shared between points.  Each
point carries a base seed (a ``seeds`` axis value); inside the point,
repetition *rep* of the simulation draws from the
:class:`~repro.simnet.rng.RngFactory` child stream named

    ``alltoall/{algorithm}/{n_processes}/{msg_size}/{rep}``

derived from that base seed (this is the naming discipline
:func:`repro.measure.alltoall.measure_alltoall` has always used; the
sweep engine relies on it rather than re-seeding).  Two consequences:

* the same point in two different sweeps (or in a serial re-run of a
  parallel sweep) produces bit-identical samples — which is what makes
  the result cache sound;
* two points differing in any coordinate use statistically independent
  streams, even under the same base seed.

Quickstart
----------
>>> from repro.sweeps import SweepSpec, SweepRunner
>>> spec = SweepSpec(
...     clusters=("gigabit-ethernet",), nprocs=(4,), sizes=(2_048,),
...     algorithms=("direct",), seeds=(0,), reps=1,
... )
>>> result = SweepRunner(workers=1).run(spec)
>>> result.n_points
1
"""

from .cache import CACHE_VERSION, ResultCache, default_cache_dir, point_key, profile_fingerprint
from .runner import (
    PointResult,
    SweepResult,
    SweepRunner,
    configure_default_runner,
    default_runner,
)
from .spec import SweepPoint, SweepSpec

__all__ = [
    "CACHE_VERSION",
    "ResultCache",
    "default_cache_dir",
    "point_key",
    "profile_fingerprint",
    "PointResult",
    "SweepResult",
    "SweepRunner",
    "configure_default_runner",
    "default_runner",
    "SweepPoint",
    "SweepSpec",
]
