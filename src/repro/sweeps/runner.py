"""Sweep execution on pluggable backends, cache-first, streaming.

The runner resolves every point against the :class:`ResultCache` first,
plans the remaining (cache-miss) points as
:class:`~repro.exec.ExecutionTask` payloads, and hands them to an
**executor** from the :data:`repro.registry.EXECUTORS` registry —
``serial`` (in-process), ``process`` (persistent warm worker pool with
chunked ``imap_unordered`` streaming, the default when ``workers > 1``)
or ``futures``.  Simulation order never affects results: each point's
random streams are derived *by name* from its own coordinates (see the
package docstring), so a point simulated by worker 3 of an 8-way pool
is bit-identical to the same point simulated serially — and so are the
cache keys.

Three cluster rebuild recipes mirror the three kinds of call site
(plain registry names, scenario specs, ad-hoc profile objects); the
planner picks per batch, falling back to in-process execution whenever
a fabric cannot be rebuilt faithfully in a worker (non-registry
profiles, spawn-started platforms with user plugins — see
``_parallel_safe``).

Failures are isolated per point: a worker exception becomes an error
:class:`PointResult` (optionally retried ``retries`` times) instead of
killing the sweep; with the default ``on_error="raise"`` the original
exception is re-raised *after* every other point has resolved — and
been cached/streamed — so no completed work is ever lost.

Results stream as they land: pass ``sinks`` (incremental CSV/JSONL
appenders from :mod:`repro.exec.sinks`) and/or a ``progress`` callback
to ``run``/``run_points`` and arbitrarily large sweeps run in bounded
memory.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..analysis.io import write_csv
from ..clusters.profiles import ClusterProfile, get_cluster
from ..core.signature import AlltoallSample
from ..exec.executors import Executor, SerialExecutor
from ..exec.sinks import ResultSink, row_fields
from ..simnet.stats import stats_enabled
from ..exec.task import ExecutionTask
from ..exceptions import ExecutionError, UnknownNameError
from ..registry import CLUSTERS, EXECUTORS
from ..scenario import ScenarioSpec
from .cache import ResultCache, point_key, profile_fingerprint
from .spec import SweepPoint, SweepSpec

__all__ = [
    "PointResult",
    "SweepResult",
    "SweepRunner",
    "configure_default_runner",
    "default_runner",
]

#: Shared fallback for batches that must run in-process (unpicklable
#: profile recipes, single misses, spawn-unsafe plugins).  Stateless.
_INLINE = SerialExecutor()


class _OrderedEmitter:
    """Stream rows to sinks in expansion order despite unordered landings.

    Executors complete points in arbitrary order; files written in that
    order would differ byte-for-byte between worker counts.  This
    buffer flushes the contiguous prefix the moment it is complete —
    the serial path therefore streams with zero buffering — and
    :meth:`drain` writes any landed-but-gapped rows (index order) when
    a sweep ends early, so interruption never loses a completed point.
    """

    def __init__(self, total: int, sinks) -> None:
        self.total = total
        self.sinks = sinks
        self._pending: dict[int, PointResult] = {}
        self._next = 0

    def _write(self, result: PointResult) -> None:
        row = result.to_row()
        for sink in self.sinks:
            sink.write(row)

    def land(self, index: int, result: PointResult) -> None:
        if not self.sinks:
            return
        self._pending[index] = result
        while self._next in self._pending:
            self._write(self._pending.pop(self._next))
            self._next += 1

    def drain(self) -> None:
        for index in sorted(self._pending):
            self._write(self._pending.pop(index))


@dataclass(frozen=True)
class PointResult:
    """One resolved point: where its sample came from — or why it failed."""

    point: SweepPoint
    sample: AlltoallSample | None
    cached: bool
    error: str | None = None
    error_type: str | None = None
    attempts: int = 1
    #: In-worker wall seconds of the final attempt (0 for cache hits).
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_row(self) -> dict[str, object]:
        """Flat tabular view of this point (:func:`row_fields` schema).

        The base columns are fixed; with ``REPRO_SIM_STATS`` set, the
        engine name and simulation-effort counters are appended (empty
        for cache hits — cached samples carry no counters).
        """
        row: dict[str, object] = {
            "cluster": self.point.cluster,
            "algorithm": self.point.algorithm,
            "pattern": (
                "uniform" if self.point.pattern is None
                else self.point.pattern.key()
            ),
            "placement": (
                "identity" if self.point.placement is None
                else self.point.placement.key()
            ),
            "n_processes": self.point.n_processes,
            "msg_size": self.point.msg_size,
            "seed": self.point.seed,
            "reps": self.point.reps,
            "mean_time": None if self.sample is None else self.sample.mean_time,
            "std_time": None if self.sample is None else self.sample.std_time,
            "cached": int(self.cached),
            "error": self.error or "",
        }
        if stats_enabled():
            stats = getattr(self.sample, "sim_stats", None)
            row["engine"] = self.point.engine
            row["sim_resolves"] = "" if stats is None else stats.resolves
            row["sim_epochs"] = "" if stats is None else stats.epochs
            row["sim_events"] = "" if stats is None else stats.events
            row["sim_losses"] = "" if stats is None else stats.losses
            row["sim_stalls"] = "" if stats is None else stats.stalls
            row["sim_solve_reuses"] = (
                "" if stats is None else stats.solve_reuses
            )
        return row


@dataclass
class SweepResult:
    """All resolved points of one sweep, in spec expansion order."""

    results: list[PointResult]
    elapsed: float
    workers: int
    #: Wall time of the execution (cache-miss) phase alone; the gap to
    #: ``elapsed`` is cache probing, keying and streaming.
    exec_elapsed: float = 0.0
    spec: SweepSpec | None = field(default=None, repr=False)
    #: Per-cluster cost-model comparisons (populated by :meth:`SweepRunner.run`
    #: when the spec carries a ``models`` hook, or on demand by
    #: :meth:`compare_models`).
    comparisons: dict | None = field(default=None, repr=False)

    @property
    def samples(self) -> list[AlltoallSample]:
        """The samples alone (expansion order; ``None`` for failed points)."""
        return [r.sample for r in self.results]

    @property
    def n_points(self) -> int:
        return len(self.results)

    @property
    def n_cached(self) -> int:
        """Points served from the cache."""
        return sum(1 for r in self.results if r.cached)

    @property
    def n_simulated(self) -> int:
        """Points that ran a fresh simulation (successfully)."""
        return sum(1 for r in self.results if not r.cached and r.ok)

    @property
    def n_failed(self) -> int:
        """Points whose simulation errored (after any retries)."""
        return sum(1 for r in self.results if not r.ok)

    @property
    def failures(self) -> list[PointResult]:
        """The failed points (expansion order)."""
        return [r for r in self.results if not r.ok]

    @property
    def hit_rate(self) -> float:
        """Fraction of points served from the cache (0 on empty sweeps)."""
        return self.n_cached / self.n_points if self.n_points else 0.0

    @property
    def sim_time(self) -> float:
        """Summed in-worker simulation seconds across simulated points."""
        return sum(r.elapsed for r in self.results if not r.cached and r.ok)

    def profile(self, *, slowest: int = 3):
        """Timing/cache profile of this sweep (:class:`repro.obs.SweepProfile`)."""
        from ..obs import SweepProfile

        return SweepProfile.from_result(self, slowest=slowest)

    def to_rows(self) -> tuple[list[str], list[dict[str, object]]]:
        """Flat tabular view (CSV/JSONL-ready)."""
        return row_fields(), [r.to_row() for r in self.results]

    def save_csv(self, path: str | Path) -> Path:
        """Persist rows as CSV (parents created)."""
        fieldnames, rows = self.to_rows()
        return write_csv(path, fieldnames, rows)

    def save_jsonl(self, path: str | Path) -> Path:
        """Persist rows as JSON lines (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        _, rows = self.to_rows()
        with path.open("w") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")
        return path

    def compare_models(
        self, models=None, *, k: int = 4, seed: int | None = None
    ) -> dict:
        """Fit cost models per cluster on this sweep's samples, ranked.

        *models* defaults to the spec's ``models`` hook, else the full
        built-in zoo; *seed* (for the ping-pong context measurement)
        defaults to the spec's smallest seed, so calling this after the
        fact reproduces exactly what ``run()`` attached.  The
        comparisons are cached on :attr:`comparisons` and returned
        (``{cluster: ModelComparison}``).
        """
        from ..models.builtins import DEFAULT_MODELS
        from ..models.selection import compare_for_sweep

        if models is None:
            models = (
                self.spec.models if self.spec is not None and self.spec.models
                else DEFAULT_MODELS
            )
        if seed is None:
            seed = min(self.spec.seeds) if self.spec is not None else 0
        self.comparisons = compare_for_sweep(self, models, k=k, seed=seed)
        return self.comparisons


class SweepRunner:
    """Execute sweep points on a pluggable executor, cache-first.

    Parameters
    ----------
    workers:
        Worker count handed to the executor factory; ``1`` keeps
        everything in-process.
    cache:
        Result cache, or ``None`` to always simulate.
    executor:
        Executor registry name (``serial`` / ``process`` / ``futures``
        or a user-registered one), or a live
        :class:`~repro.exec.Executor` instance.  Default: ``process``
        when ``workers > 1``, else ``serial``.  The instance is built
        lazily and **kept** — consecutive ``run_points`` calls on one
        runner reuse a warm worker pool.
    retries:
        How many times a failed point is re-run before its error is
        recorded (transient worker failures; deterministic simulation
        errors fail identically every attempt).
    on_error:
        ``"raise"`` (default): after the whole batch resolves, re-raise
        the first failure (completed points are already cached and
        streamed).  ``"keep"``: record failures as error
        :class:`PointResult` rows and return normally.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        cache: ResultCache | None = None,
        executor: str | Executor | None = None,
        retries: int = 0,
        on_error: str = "raise",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if on_error not in ("raise", "keep"):
            raise ValueError(f"on_error must be 'raise' or 'keep', got {on_error!r}")
        self.workers = workers
        self.cache = cache
        self.retries = retries
        self.on_error = on_error
        if executor is None:
            executor = "process" if workers > 1 else "serial"
        if isinstance(executor, str):
            # Resolve eagerly: unknown names fail at construction with
            # the known-executors message, not mid-sweep.
            self.executor_name = EXECUTORS.canonical(executor)
            self._executor: Executor | None = None
        else:
            self.executor_name = getattr(executor, "name", type(executor).__name__)
            self._executor = executor

    @property
    def executor(self) -> Executor:
        """The live executor (built on first use, then reused warm)."""
        if self._executor is None:
            self._executor = EXECUTORS.get(self.executor_name)(self.workers)
        return self._executor

    def close(self) -> None:
        """Shut down the executor (its worker pool, if any)."""
        if self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- public API -----------------------------------------------------

    def run(
        self,
        spec: SweepSpec,
        *,
        sinks: tuple[ResultSink, ...] = (),
        progress=None,
    ) -> SweepResult:
        """Resolve every point of *spec* (cache hits + fresh simulations).

        When the spec carries a ``models`` post-processing hook, the
        registered cost models are fitted per cluster on the finished
        sweep's samples and the ranked comparisons attached to
        :attr:`SweepResult.comparisons`.
        """
        result = self.run_points(spec.points(), sinks=sinks, progress=progress)
        result.spec = spec
        if spec.models:
            result.compare_models(spec.models)
        return result

    def run_points(
        self,
        points: list[SweepPoint],
        *,
        profile: ClusterProfile | None = None,
        scenario: ScenarioSpec | None = None,
        sinks: tuple[ResultSink, ...] = (),
        progress=None,
    ) -> SweepResult:
        """Resolve an explicit point list.

        With *profile* set, every point is simulated on that object (its
        ``cluster`` field is used only for cache keying/labels); without
        it, cluster names are resolved through the registry — unknown
        names fail fast here with the known-names message, never inside
        a worker.

        With *scenario* set (a :class:`~repro.scenario.ScenarioSpec`),
        the profile defaults to ``scenario.build_profile()``, cache keys
        additionally hash the scenario definition (so two different
        scenarios can never collide), and misses fan out to worker
        processes by shipping the spec dict instead of the profile.

        *sinks* receive one flat row per point, each write flushed, in
        **expansion order**: the contiguous prefix streams out as soon
        as its points land (so the files are byte-identical across
        executors and worker counts), and any landed-but-gapped rows
        are drained on close — an interrupted sweep keeps every
        completed row.  *progress* is called as
        ``progress(done, total, point_result)`` in live completion
        order.
        """
        start = time.perf_counter()
        if profile is None and scenario is not None:
            profile = scenario.build_profile()
        if profile is None and scenario is None:
            unknown = sorted({p.cluster for p in points if p.cluster not in CLUSTERS})
            if unknown:
                known = ", ".join(CLUSTERS.names())
                raise UnknownNameError(f"unknown clusters {unknown}; known: {known}")
        scenario_payload = (
            scenario.cache_payload() if scenario is not None else None
        )
        samples: dict[int, AlltoallSample] = {}
        cached: set[int] = set()
        keys: list[str] = []
        if self.cache is not None:
            # Each point is keyed against the fabric it actually
            # simulates: the profile fingerprint probed at the point's
            # own process count (memoised per (cluster, n)).
            fingerprints: dict[tuple[str, int], dict[str, object]] = {}

            def fingerprint_for(point: SweepPoint) -> dict[str, object]:
                memo = (point.cluster, point.n_processes)
                if memo not in fingerprints:
                    cluster = (
                        profile if profile is not None else get_cluster(point.cluster)
                    )
                    fingerprints[memo] = profile_fingerprint(
                        cluster, probe_sizes=(point.n_processes,)
                    )
                return fingerprints[memo]

            keys = [
                point_key(p, fingerprint_for(p), scenario_payload)
                for p in points
            ]
            for idx, key in enumerate(keys):
                hit = self.cache.get(key)
                if hit is not None:
                    samples[idx] = hit
                    cached.add(idx)
        misses = [idx for idx in range(len(points)) if idx not in samples]

        total = len(points)
        resolved: dict[int, PointResult] = {}
        opened: list[ResultSink] = []
        emitter = _OrderedEmitter(total, opened)
        try:
            for sink in sinks:
                sink.open(row_fields())
                opened.append(sink)
            for idx in sorted(cached):
                result = PointResult(
                    point=points[idx], sample=samples[idx], cached=True
                )
                resolved[idx] = result
                emitter.land(idx, result)
                if progress is not None:
                    progress(len(resolved), total, result)
            exec_start = time.perf_counter()
            for outcome in self._execute(misses, points, profile, scenario):
                idx = outcome.index
                if outcome.ok and self.cache is not None:
                    self.cache.put(keys[idx], points[idx], outcome.sample)
                result = PointResult(
                    point=points[idx],
                    sample=outcome.sample,
                    cached=False,
                    error=outcome.error,
                    error_type=outcome.error_type,
                    attempts=outcome.attempts,
                    elapsed=outcome.elapsed,
                )
                resolved[idx] = result
                emitter.land(idx, result)
                if progress is not None:
                    progress(len(resolved), total, result)
            exec_elapsed = time.perf_counter() - exec_start if misses else 0.0
        finally:
            # Drain landed-but-gapped rows (interrupted runs keep every
            # completed point), then release every successfully-opened
            # sink — a sink whose open() raised leaks nothing.
            emitter.drain()
            for sink in opened:
                sink.close()

        results = [resolved[idx] for idx in range(total)]
        failures = [r for r in results if not r.ok]
        if failures and self.on_error == "raise":
            raise self._rehydrate(failures[0])
        return SweepResult(
            results=results,
            elapsed=time.perf_counter() - start,
            workers=self.workers,
            exec_elapsed=exec_elapsed,
        )

    # -- streaming ------------------------------------------------------

    @staticmethod
    def _rehydrate(failure: PointResult) -> Exception:
        """Rebuild the exception a failed point's worker reported.

        Errors cross process boundaries as ``(message, type name)``
        strings; the type is looked up in :mod:`repro.exceptions`, then
        in builtins, else wrapped as
        :class:`~repro.exceptions.ExecutionError` — so call sites keep
        catching :class:`MeasurementError` & co. exactly as before the
        isolation boundary existed.
        """
        import builtins

        from .. import exceptions as _exceptions

        name = failure.error_type or ""
        cls = getattr(_exceptions, name, None) or getattr(builtins, name, None)
        if not (isinstance(cls, type) and issubclass(cls, Exception)):
            cls = ExecutionError
        try:
            return cls(failure.error)
        except Exception:
            # Some exception types need multiple constructor arguments
            # (e.g. UnicodeDecodeError); never let the re-raise path
            # itself blow up and mask the point's real failure.
            return ExecutionError(f"{name}: {failure.error}")

    # -- execution ------------------------------------------------------

    @staticmethod
    def _spawn_safe(points, cluster_names) -> bool:
        """Whether fresh worker processes can resolve the referenced plugins.

        ``fork`` workers inherit the parent's registries, so anything
        resolvable here is resolvable there; ``spawn``/``forkserver``
        workers start from a bare ``import repro`` and only see built-in
        registrations, so points referencing user-registered clusters or
        algorithms must stay in-process.
        """
        if multiprocessing.get_start_method() == "fork":
            return True
        from ..registry import ALGORITHMS, PATTERNS, PLACEMENTS

        objects = [CLUSTERS.get(n) for n in cluster_names]
        objects += [ALGORITHMS.get(p.algorithm) for p in points]
        objects += [
            PATTERNS.get(p.pattern.name)
            for p in points
            if p.pattern is not None
        ]
        objects += [
            PLACEMENTS.get(p.placement.name)
            for p in points
            if p.placement is not None and not p.placement.is_explicit
        ]
        return all(
            (getattr(obj, "__module__", "") or "").split(".")[0] == "repro"
            for obj in objects
        )

    def _parallel_safe(
        self, profile: ClusterProfile | None, points: list[SweepPoint]
    ) -> bool:
        """Whether misses may run in worker processes (registry-resolvable)."""
        names = {p.cluster for p in points} if profile is None else {profile.name}
        if any(name not in CLUSTERS for name in names):
            return False
        if not self._spawn_safe(points, names):
            return False
        if profile is None:
            return True
        if CLUSTERS.canonical(profile.name) != profile.name:
            # The name resolves through an alias to a different profile;
            # rebuilding by name would silently swap fabrics.
            return False
        # A profile object is safe to re-build by name only if it is
        # indistinguishable from the registry one *at every process
        # count actually being swept* (topology closures cannot be
        # hashed, so they are compared through probes at those sizes).
        sizes = tuple(sorted({p.n_processes for p in points}))
        return profile_fingerprint(
            get_cluster(profile.name), probe_sizes=sizes
        ) == profile_fingerprint(profile, probe_sizes=sizes)

    @staticmethod
    def _scenario_parallel_safe(scenario: ScenarioSpec) -> bool:
        """Whether workers can rebuild *scenario* from its spec dict.

        ``fork`` workers inherit the parent's registries, so any
        scenario is safe; ``spawn``/``forkserver`` workers start from a
        bare ``import repro`` and only see built-in registrations —
        scenarios referencing user plugins fall back to in-process
        execution there instead of crashing mid-sweep.
        """
        if multiprocessing.get_start_method() == "fork":
            return True
        return scenario.uses_only_builtin_plugins()

    def _plan(
        self,
        misses: list[int],
        points: list[SweepPoint],
        profile: ClusterProfile | None,
        scenario: ScenarioSpec | None,
    ) -> tuple[list[ExecutionTask], bool]:
        """Choose the rebuild recipe for a miss batch.

        Returns ``(tasks, fan_out)``; with ``fan_out`` false the batch
        runs on the in-process serial fallback regardless of the
        configured executor (unpicklable profiles, single misses,
        plugins a fresh worker could not resolve).
        """
        fan_out = (
            self.workers > 1
            and len(misses) > 1
            and getattr(self.executor, "distributed", False)
        )
        if scenario is not None:
            if fan_out and self._scenario_parallel_safe(scenario):
                # Scenario specs are picklable even when their profiles
                # are not: workers rebuild the profile from the dict.
                payload = scenario.to_dict()
                return (
                    [ExecutionTask(i, points[i], scenario=payload) for i in misses],
                    True,
                )
            return (
                [ExecutionTask(i, points[i], profile=profile) for i in misses],
                False,
            )
        if fan_out and self._parallel_safe(profile, [points[i] for i in misses]):
            # Registry-resolvable (by construction when profile is set:
            # it probed identical to the registry entry): workers
            # rebuild clusters by name.
            return [ExecutionTask(i, points[i]) for i in misses], True
        if profile is not None:
            return (
                [ExecutionTask(i, points[i], profile=profile) for i in misses],
                False,
            )
        return [ExecutionTask(i, points[i]) for i in misses], False

    def _execute(
        self,
        misses: list[int],
        points: list[SweepPoint],
        profile: ClusterProfile | None,
        scenario: ScenarioSpec | None = None,
    ):
        """Yield a final :class:`TaskOutcome` per miss (completion order)."""
        if not misses:
            return
        tasks, fan_out = self._plan(misses, points, profile, scenario)
        executor = self.executor if fan_out else _INLINE
        if fan_out:
            # Worker-side metric deltas ride back on the outcomes; fold
            # them into this process's registry.  In-process execution
            # already incremented it directly — merging there would
            # double-count, so the merge is fan-out-only.
            from ..obs.metrics import REGISTRY

            for outcome in self._with_retries(executor, tasks):
                REGISTRY.merge(outcome.metrics)
                yield outcome
        else:
            yield from self._with_retries(executor, tasks)

    def _with_retries(self, executor: Executor, tasks: list[ExecutionTask]):
        """Run *tasks*, re-submitting failures up to ``retries`` times."""
        by_index = {task.index: task for task in tasks}
        pending = tasks
        for attempt in range(1, self.retries + 2):
            last = attempt == self.retries + 1
            retry: list[ExecutionTask] = []
            for outcome in executor.run(pending):
                outcome = dataclasses.replace(outcome, attempts=attempt)
                if outcome.ok or last:
                    yield outcome
                else:
                    retry.append(by_index[outcome.index])
            if not retry:
                return
            pending = retry


# ----------------------------------------------------------------------
# Process-wide default runner (what library call sites route through).
# ----------------------------------------------------------------------

_default_runner: SweepRunner | None = None


def _env_int(name: str, default: int) -> int:
    """Parse a positive-integer env knob with a friendly error."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer >= 1, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"{name} must be an integer >= 1, got {raw!r}")
    return value


def configure_default_runner(
    *,
    workers: int | None = None,
    cache_dir: str | Path | None = None,
    enable_cache: bool | None = None,
    executor: str | Executor | None = None,
    retries: int | None = None,
) -> SweepRunner:
    """(Re)build the process-wide runner used by library sweep helpers.

    With no arguments, configuration comes from the environment:
    ``REPRO_SWEEP_WORKERS`` (default 1), ``REPRO_SWEEP_EXECUTOR``
    (an executor registry name; default ``process``/``serial`` by
    worker count) and ``REPRO_SWEEP_CACHE`` (a directory; unset
    disables caching).  Malformed values raise immediately with the
    offending variable named, instead of surfacing as a bare
    ``ValueError``/``KeyError`` at the first sweep.

    Replacing the runner closes the previous one (shutting down its
    warm worker pool, if any).
    """
    global _default_runner
    if workers is None:
        workers = _env_int("REPRO_SWEEP_WORKERS", 1)
    if executor is None:
        raw = os.environ.get("REPRO_SWEEP_EXECUTOR")
        if raw is not None and raw.strip():
            if raw not in EXECUTORS:
                known = ", ".join(EXECUTORS.names())
                raise UnknownNameError(
                    f"REPRO_SWEEP_EXECUTOR: unknown executor {raw!r}; known: {known}"
                )
            executor = raw
    if enable_cache is None:
        enable_cache = cache_dir is not None or bool(os.environ.get("REPRO_SWEEP_CACHE"))
    cache = ResultCache(cache_dir) if enable_cache else None
    if _default_runner is not None:
        _default_runner.close()
    _default_runner = SweepRunner(
        workers=workers,
        cache=cache,
        executor=executor,
        retries=retries if retries is not None else 0,
    )
    return _default_runner


def default_runner() -> SweepRunner:
    """The process-wide runner (built from the environment on first use)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = configure_default_runner()
    return _default_runner
