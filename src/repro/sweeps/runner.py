"""Parallel sweep execution with transparent result caching.

The runner resolves every point against the :class:`ResultCache` first,
fans the remaining (cache-miss) points out over a ``multiprocessing``
pool, then stores the fresh results back.  Simulation order never
affects results: each point's random streams are derived *by name* from
its own coordinates (see the package docstring), so a point simulated by
worker 3 of an 8-way pool is bit-identical to the same point simulated
serially.

Workers re-build cluster profiles from their registry names (profiles
hold topology closures and cannot be pickled).  Call sites that sweep a
*custom* profile object — ablations built with
``ClusterProfile.with_overrides`` — still get caching, and get
parallelism whenever the profile is provably the registry one (same
fingerprint); otherwise they fall back to in-process execution.
"""

from __future__ import annotations

import functools
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..analysis.io import write_csv
from ..clusters.profiles import ClusterProfile, get_cluster
from ..core.signature import AlltoallSample
from ..measure.alltoall import measure_alltoall
from ..registry import CLUSTERS
from ..scenario import ScenarioSpec
from .cache import ResultCache, point_key, profile_fingerprint
from .spec import SweepPoint, SweepSpec

__all__ = [
    "PointResult",
    "SweepResult",
    "SweepRunner",
    "configure_default_runner",
    "default_runner",
]


def _execute_point(point: SweepPoint) -> AlltoallSample:
    """Simulate one point (top-level so worker processes can pickle it)."""
    cluster = get_cluster(point.cluster)
    return measure_alltoall(
        cluster,
        point.n_processes,
        point.msg_size,
        reps=point.reps,
        seed=point.seed,
        algorithm=point.algorithm,
        pattern=point.pattern,
    )


def _execute_scenario_point(spec_dict: dict, point: SweepPoint) -> AlltoallSample:
    """Simulate one scenario point in a worker process.

    Scenario profiles hold topology closures and cannot be pickled, but
    their *specs* serialise to plain dicts: each worker rebuilds the
    profile from the dict, which is deterministic by construction.
    """
    profile = ScenarioSpec.from_dict(spec_dict).build_profile()
    return measure_alltoall(
        profile,
        point.n_processes,
        point.msg_size,
        reps=point.reps,
        seed=point.seed,
        algorithm=point.algorithm,
        pattern=point.pattern,
    )


@dataclass(frozen=True)
class PointResult:
    """One resolved point: where its sample came from."""

    point: SweepPoint
    sample: AlltoallSample
    cached: bool


@dataclass
class SweepResult:
    """All resolved points of one sweep, in spec expansion order."""

    results: list[PointResult]
    elapsed: float
    workers: int
    spec: SweepSpec | None = field(default=None, repr=False)

    @property
    def samples(self) -> list[AlltoallSample]:
        """The samples alone (expansion order)."""
        return [r.sample for r in self.results]

    @property
    def n_points(self) -> int:
        return len(self.results)

    @property
    def n_cached(self) -> int:
        """Points served from the cache."""
        return sum(1 for r in self.results if r.cached)

    @property
    def n_simulated(self) -> int:
        """Points that ran a fresh simulation."""
        return sum(1 for r in self.results if not r.cached)

    def to_rows(self) -> tuple[list[str], list[dict[str, object]]]:
        """Flat tabular view (CSV/JSONL-ready)."""
        fieldnames = [
            "cluster", "algorithm", "pattern", "n_processes", "msg_size",
            "seed", "reps", "mean_time", "std_time", "cached",
        ]
        rows: list[dict[str, object]] = []
        for r in self.results:
            rows.append(
                {
                    "cluster": r.point.cluster,
                    "algorithm": r.point.algorithm,
                    "pattern": (
                        "uniform" if r.point.pattern is None
                        else r.point.pattern.key()
                    ),
                    "n_processes": r.point.n_processes,
                    "msg_size": r.point.msg_size,
                    "seed": r.point.seed,
                    "reps": r.point.reps,
                    "mean_time": r.sample.mean_time,
                    "std_time": r.sample.std_time,
                    "cached": int(r.cached),
                }
            )
        return fieldnames, rows

    def save_csv(self, path: str | Path) -> Path:
        """Persist rows as CSV (parents created)."""
        fieldnames, rows = self.to_rows()
        return write_csv(path, fieldnames, rows)

    def save_jsonl(self, path: str | Path) -> Path:
        """Persist rows as JSON lines (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        _, rows = self.to_rows()
        with path.open("w") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")
        return path


class SweepRunner:
    """Execute sweep points over a worker pool, cache-first.

    Parameters
    ----------
    workers:
        Worker process count; ``1`` executes in-process (no pool).
    cache:
        Result cache, or ``None`` to always simulate.
    """

    def __init__(self, *, workers: int = 1, cache: ResultCache | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache = cache

    # -- public API -----------------------------------------------------

    def run(self, spec: SweepSpec) -> SweepResult:
        """Resolve every point of *spec* (cache hits + fresh simulations)."""
        unknown = [c for c in spec.clusters if c not in CLUSTERS]
        if unknown:
            known = ", ".join(CLUSTERS.names())
            raise KeyError(f"unknown clusters {unknown}; known: {known}")
        result = self.run_points(spec.points())
        result.spec = spec
        return result

    def run_points(
        self,
        points: list[SweepPoint],
        *,
        profile: ClusterProfile | None = None,
        scenario: ScenarioSpec | None = None,
    ) -> SweepResult:
        """Resolve an explicit point list.

        With *profile* set, every point is simulated on that object (its
        ``cluster`` field is used only for cache keying/labels); without
        it, cluster names are resolved through the registry, which is
        what allows fan-out to worker processes.

        With *scenario* set (a :class:`~repro.scenario.ScenarioSpec`),
        the profile defaults to ``scenario.build_profile()``, cache keys
        additionally hash the scenario definition (so two different
        scenarios can never collide), and misses fan out to worker
        processes by shipping the spec dict instead of the profile.
        """
        start = time.perf_counter()
        if profile is None and scenario is not None:
            profile = scenario.build_profile()
        scenario_payload = (
            scenario.cache_payload() if scenario is not None else None
        )
        samples: dict[int, AlltoallSample] = {}
        cached: set[int] = set()
        keys: list[str] = []
        if self.cache is not None:
            # Each point is keyed against the fabric it actually
            # simulates: the profile fingerprint probed at the point's
            # own process count (memoised per (cluster, n)).
            fingerprints: dict[tuple[str, int], dict[str, object]] = {}

            def fingerprint_for(point: SweepPoint) -> dict[str, object]:
                memo = (point.cluster, point.n_processes)
                if memo not in fingerprints:
                    cluster = (
                        profile if profile is not None else get_cluster(point.cluster)
                    )
                    fingerprints[memo] = profile_fingerprint(
                        cluster, probe_sizes=(point.n_processes,)
                    )
                return fingerprints[memo]

            keys = [
                point_key(p, fingerprint_for(p), scenario_payload)
                for p in points
            ]
            for idx, key in enumerate(keys):
                hit = self.cache.get(key)
                if hit is not None:
                    samples[idx] = hit
                    cached.add(idx)
        misses = [idx for idx in range(len(points)) if idx not in samples]

        for idx, sample in self._execute(misses, points, profile, scenario):
            samples[idx] = sample
            if self.cache is not None:
                self.cache.put(keys[idx], points[idx], sample)

        results = [
            PointResult(point=points[idx], sample=samples[idx], cached=idx in cached)
            for idx in range(len(points))
        ]
        return SweepResult(
            results=results,
            elapsed=time.perf_counter() - start,
            workers=self.workers,
        )

    # -- execution ------------------------------------------------------

    @staticmethod
    def _spawn_safe(points, cluster_names) -> bool:
        """Whether fresh worker processes can resolve the referenced plugins.

        ``fork`` workers inherit the parent's registries, so anything
        resolvable here is resolvable there; ``spawn``/``forkserver``
        workers start from a bare ``import repro`` and only see built-in
        registrations, so points referencing user-registered clusters or
        algorithms must stay in-process.
        """
        if multiprocessing.get_start_method() == "fork":
            return True
        from ..registry import ALGORITHMS, PATTERNS

        objects = [CLUSTERS.get(n) for n in cluster_names]
        objects += [ALGORITHMS.get(p.algorithm) for p in points]
        objects += [
            PATTERNS.get(p.pattern.name)
            for p in points
            if p.pattern is not None
        ]
        return all(
            (getattr(obj, "__module__", "") or "").split(".")[0] == "repro"
            for obj in objects
        )

    def _parallel_safe(
        self, profile: ClusterProfile | None, points: list[SweepPoint]
    ) -> bool:
        """Whether misses may run in worker processes (registry-resolvable)."""
        names = {p.cluster for p in points} if profile is None else {profile.name}
        if any(name not in CLUSTERS for name in names):
            return False
        if not self._spawn_safe(points, names):
            return False
        if profile is None:
            return True
        if CLUSTERS.canonical(profile.name) != profile.name:
            # The name resolves through an alias to a different profile;
            # rebuilding by name would silently swap fabrics.
            return False
        # A profile object is safe to re-build by name only if it is
        # indistinguishable from the registry one *at every process
        # count actually being swept* (topology closures cannot be
        # hashed, so they are compared through probes at those sizes).
        sizes = tuple(sorted({p.n_processes for p in points}))
        return profile_fingerprint(
            get_cluster(profile.name), probe_sizes=sizes
        ) == profile_fingerprint(profile, probe_sizes=sizes)

    @staticmethod
    def _scenario_parallel_safe(scenario: ScenarioSpec) -> bool:
        """Whether workers can rebuild *scenario* from its spec dict.

        ``fork`` workers inherit the parent's registries, so any
        scenario is safe; ``spawn``/``forkserver`` workers start from a
        bare ``import repro`` and only see built-in registrations —
        scenarios referencing user plugins fall back to in-process
        execution there instead of crashing mid-sweep.
        """
        if multiprocessing.get_start_method() == "fork":
            return True
        return scenario.uses_only_builtin_plugins()

    def _execute(
        self,
        misses: list[int],
        points: list[SweepPoint],
        profile: ClusterProfile | None,
        scenario: ScenarioSpec | None = None,
    ):
        """Yield ``(index, sample)`` for every cache-missed point."""
        if not misses:
            return
        parallel_wanted = self.workers > 1 and len(misses) > 1
        if (
            parallel_wanted
            and scenario is not None
            and self._scenario_parallel_safe(scenario)
        ):
            # Scenario specs are picklable even when their profiles are
            # not: workers rebuild the profile from the spec dict.
            todo = [points[idx] for idx in misses]
            worker = functools.partial(
                _execute_scenario_point, scenario.to_dict()
            )
            with multiprocessing.Pool(min(self.workers, len(todo))) as pool:
                for idx, sample in zip(
                    misses, pool.map(worker, todo, chunksize=1)
                ):
                    yield idx, sample
            return
        if parallel_wanted and self._parallel_safe(
            profile, [points[i] for i in misses]
        ):
            todo = [points[idx] for idx in misses]
            with multiprocessing.Pool(min(self.workers, len(todo))) as pool:
                for idx, sample in zip(
                    misses, pool.map(_execute_point, todo, chunksize=1)
                ):
                    yield idx, sample
            return
        for idx in misses:
            point = points[idx]
            if profile is not None:
                sample = measure_alltoall(
                    profile,
                    point.n_processes,
                    point.msg_size,
                    reps=point.reps,
                    seed=point.seed,
                    algorithm=point.algorithm,
                    pattern=point.pattern,
                )
            else:
                sample = _execute_point(point)
            yield idx, sample


# ----------------------------------------------------------------------
# Process-wide default runner (what library call sites route through).
# ----------------------------------------------------------------------

_default_runner: SweepRunner | None = None


def configure_default_runner(
    *,
    workers: int | None = None,
    cache_dir: str | Path | None = None,
    enable_cache: bool | None = None,
) -> SweepRunner:
    """(Re)build the process-wide runner used by library sweep helpers.

    With no arguments, configuration comes from the environment:
    ``REPRO_SWEEP_WORKERS`` (default 1) and ``REPRO_SWEEP_CACHE`` (a
    directory; unset disables caching).
    """
    global _default_runner
    if workers is None:
        workers = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))
    if enable_cache is None:
        enable_cache = cache_dir is not None or bool(os.environ.get("REPRO_SWEEP_CACHE"))
    cache = ResultCache(cache_dir) if enable_cache else None
    _default_runner = SweepRunner(workers=workers, cache=cache)
    return _default_runner


def default_runner() -> SweepRunner:
    """The process-wide runner (built from the environment on first use)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = configure_default_runner()
    return _default_runner
