"""Plugin registries: the repo's extension points as data, not edits.

Every axis a scenario can vary — the fabric shape, the calibrated
cluster, the collective algorithm, the measurement backend — is a named
entry in a :class:`Registry`.  Core modules register their built-ins at
import time with the ``@register_*`` decorators; downstream code (and
user scenarios, see :mod:`repro.scenario`) adds new entries the same
way, with zero core-module edits::

    from repro.api import register_topology

    @register_topology("torus-2d")
    def torus_2d(n_hosts, *, nic_bandwidth, ring_bandwidth):
        ...build and return a finalized Topology...

Lookups are *normalised*: case is folded and ``_``/space collapse to
``-``, so ``get_cluster("Fast_Ethernet")`` resolves the canonical
``fast-ethernet`` entry.  Explicit aliases resolve too, but enumeration
(:meth:`Registry.names`) lists canonical names only.

The five process-wide registries live here (:data:`TOPOLOGIES`,
:data:`CLUSTERS`, :data:`ALGORITHMS`, :data:`BACKENDS`,
:data:`PATTERNS`); the legacy
module-level dicts (``repro.clusters.profiles.CLUSTERS``,
``repro.simmpi.collectives.ALGORITHMS``) remain importable as
:class:`DeprecatedMapping` views that warn on access.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterator, Mapping
from typing import Callable, Generic, TypeVar

from .exceptions import DuplicateNameError, UnknownNameError

__all__ = [
    "Registry",
    "DeprecatedMapping",
    "normalize_name",
    "registry_epoch",
    "TOPOLOGIES",
    "CLUSTERS",
    "ALGORITHMS",
    "BACKENDS",
    "PATTERNS",
    "EXECUTORS",
    "MODELS",
    "ENGINES",
    "PLACEMENTS",
    "PLACEMENT_OPTIMIZERS",
    "register_topology",
    "register_cluster",
    "register_algorithm",
    "register_backend",
    "register_pattern",
    "register_executor",
    "register_model",
    "register_engine",
    "register_placement",
    "register_placement_optimizer",
]

T = TypeVar("T")

#: Monotonic counter bumped on every (un)registration, in any registry.
#: Long-lived worker pools compare it against the value they forked at:
#: a changed epoch means the parent gained (or lost) plugins the workers
#: never saw, so the pool must be recycled before reuse (see
#: :class:`repro.exec.ProcessExecutor`).
_epoch = 0


def registry_epoch() -> int:
    """Current plugin-registration epoch (see :data:`_epoch`)."""
    return _epoch


def normalize_name(name: str) -> str:
    """Fold case and separator style (``Fast_Ethernet`` → ``fast-ethernet``)."""
    return "-".join(str(name).strip().lower().replace("_", " ").replace("-", " ").split())


class Registry(Generic[T]):
    """A named collection of plugins with alias-tolerant lookup.

    Parameters
    ----------
    kind:
        Singular noun used in error messages (``"cluster"`` →
        ``unknown cluster 'x'; known: ...``).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, T] = {}  # canonical name -> object
        self._aliases: dict[str, str] = {}  # normalised alias -> canonical

    # -- registration ---------------------------------------------------

    def register(
        self,
        name: str,
        obj: T | None = None,
        *,
        aliases: tuple[str, ...] = (),
        replace: bool = False,
    ):
        """Register *obj* under *name* (decorator form when *obj* is omitted).

        *aliases* are extra lookup names; *replace* allows overwriting an
        existing entry (otherwise :class:`DuplicateNameError`).
        """
        canonical = normalize_name(name)
        if not canonical:
            raise ValueError(f"{self.kind} name must be non-empty")

        def _register(target: T) -> T:
            global _epoch
            all_names = {canonical, *(normalize_name(a) for a in aliases)}
            if not replace:
                taken = sorted(a for a in all_names if a in self._aliases)
                if taken:
                    raise DuplicateNameError(
                        f"{self.kind} name(s) already registered: {taken} "
                        f"(pass replace=True to overwrite)"
                    )
            self._entries[canonical] = target
            for alias in all_names:
                self._aliases[alias] = canonical
            _epoch += 1
            return target

        if obj is None:
            return _register
        return _register(obj)

    def unregister(self, name: str) -> None:
        """Remove an entry and all its aliases (testing/ablation helper)."""
        global _epoch
        canonical = self.canonical(name)
        del self._entries[canonical]
        self._aliases = {a: c for a, c in self._aliases.items() if c != canonical}
        _epoch += 1

    # -- lookup ---------------------------------------------------------

    def canonical(self, name: str) -> str:
        """Resolve *name* (canonical, alias, or near-miss) to the canonical name."""
        resolved = self._aliases.get(normalize_name(name))
        if resolved is None:
            known = ", ".join(self.names())
            raise UnknownNameError(
                f"unknown {self.kind} {str(name)!r}; known: {known}"
            )
        return resolved

    def get(self, name: str) -> T:
        """Look an entry up; raises :class:`UnknownNameError` with the known set."""
        return self._entries[self.canonical(name)]

    def names(self) -> list[str]:
        """Sorted canonical names."""
        return sorted(self._entries)

    def items(self) -> list[tuple[str, T]]:
        """Sorted ``(canonical name, object)`` pairs."""
        return sorted(self._entries.items())

    def __contains__(self, name: object) -> bool:
        try:
            self.canonical(str(name))
        except UnknownNameError:
            return False
        return True

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self.kind!r}, {self.names()})"


class DeprecatedMapping(Mapping):
    """Read-only dict facade over a :class:`Registry` that warns on use.

    Keeps ``CLUSTERS["myrinet"]``, ``sorted(ALGORITHMS)`` and
    ``name in CLUSTERS`` working for pre-registry call sites while
    steering them to the registry API.
    """

    def __init__(self, registry: Registry, old_name: str, new_name: str) -> None:
        self._registry = registry
        self._old = old_name
        self._new = new_name

    def _warn(self) -> None:
        warnings.warn(
            f"{self._old} is deprecated; use {self._new} instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def __getitem__(self, key: str):
        self._warn()
        try:
            return self._registry.get(key)
        except UnknownNameError as exc:
            raise KeyError(exc.args[0]) from None

    def __iter__(self) -> Iterator[str]:
        self._warn()
        return iter(self._registry.names())

    def __len__(self) -> int:
        self._warn()
        return len(self._registry)

    def __contains__(self, key: object) -> bool:
        self._warn()
        return key in self._registry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeprecatedMapping({self._old} -> {self._new})"


# ----------------------------------------------------------------------
# Process-wide registries.  Built-ins register at module import time
# (importing `repro` imports every core module, so the registries are
# fully populated whenever any public API is reachable).
# ----------------------------------------------------------------------

#: ``f(n_hosts, **params) -> Topology`` fabric builders.
TOPOLOGIES: Registry[Callable] = Registry("topology")

#: ``f() -> ClusterProfile`` calibrated cluster factories.
CLUSTERS: Registry[Callable] = Registry("cluster")

#: All-to-All rank programs (``f(ctx, msg_size)`` generators).
ALGORITHMS: Registry[Callable] = Registry("algorithm")

#: ``f(cluster=None) -> backend`` measurement-backend factories.
BACKENDS: Registry[Callable] = Registry("backend")

#: ``f(n_processes, msg_size, *, rng, **params) -> (n, n) byte matrix``
#: traffic-pattern generators (see :mod:`repro.traffic`).
PATTERNS: Registry[Callable] = Registry("pattern")

#: ``f(workers: int) -> Executor`` execution-backend factories for the
#: sweep engine (see :mod:`repro.exec`).
EXECUTORS: Registry[Callable] = Registry("executor")

#: ``CostModel`` classes — analytical performance models with a
#: ``fit(samples) -> FittedModel`` pipeline (see :mod:`repro.models`).
MODELS: Registry[Callable] = Registry("model")

#: ``f(cluster, n_processes, program, run_arg, seed) -> RunResult``
#: simulation engines (see :mod:`repro.engines`): how one rep of a
#: measurement point is actually simulated.
ENGINES: Registry[Callable] = Registry("engine")

#: ``f(n_processes, **params) -> permutation`` rank-placement strategies
#: (see :mod:`repro.placement`): rank *i* runs on host ``perm[i]``.
PLACEMENTS: Registry[Callable] = Registry("placement")

#: ``f(evaluate, n_processes, *, rng, **params) -> permutation``
#: placement-search procedures minimising a predicted-contention
#: objective (see :mod:`repro.placement.optimize`).
PLACEMENT_OPTIMIZERS: Registry[Callable] = Registry("placement optimizer")


def register_topology(name: str, *, aliases: tuple[str, ...] = (), replace: bool = False):
    """Decorator: register a topology factory ``f(n_hosts, **params)``."""
    return TOPOLOGIES.register(name, aliases=aliases, replace=replace)


def register_cluster(name: str, *, aliases: tuple[str, ...] = (), replace: bool = False):
    """Decorator: register a cluster-profile factory ``f() -> ClusterProfile``."""
    return CLUSTERS.register(name, aliases=aliases, replace=replace)


def register_algorithm(name: str, *, aliases: tuple[str, ...] = (), replace: bool = False):
    """Decorator: register an All-to-All rank program."""
    return ALGORITHMS.register(name, aliases=aliases, replace=replace)


def register_backend(name: str, *, aliases: tuple[str, ...] = (), replace: bool = False):
    """Decorator: register a measurement-backend factory."""
    return BACKENDS.register(name, aliases=aliases, replace=replace)


def register_pattern(name: str, *, aliases: tuple[str, ...] = (), replace: bool = False):
    """Decorator: register a traffic-pattern generator
    ``f(n_processes, msg_size, *, rng, **params) -> matrix``."""
    return PATTERNS.register(name, aliases=aliases, replace=replace)


def register_executor(name: str, *, aliases: tuple[str, ...] = (), replace: bool = False):
    """Decorator: register an executor factory ``f(workers) -> Executor``."""
    return EXECUTORS.register(name, aliases=aliases, replace=replace)


def register_model(name: str, *, aliases: tuple[str, ...] = (), replace: bool = False):
    """Decorator: register a :class:`~repro.models.CostModel` class."""
    return MODELS.register(name, aliases=aliases, replace=replace)


def register_engine(name: str, *, aliases: tuple[str, ...] = (), replace: bool = False):
    """Decorator: register a simulation engine
    ``f(cluster, n_processes, program, run_arg, seed) -> RunResult``."""
    return ENGINES.register(name, aliases=aliases, replace=replace)


def register_placement(name: str, *, aliases: tuple[str, ...] = (), replace: bool = False):
    """Decorator: register a rank-placement strategy
    ``f(n_processes, **params) -> permutation`` (rank *i* → host ``perm[i]``)."""
    return PLACEMENTS.register(name, aliases=aliases, replace=replace)


def register_placement_optimizer(
    name: str, *, aliases: tuple[str, ...] = (), replace: bool = False
):
    """Decorator: register a placement optimizer
    ``f(evaluate, n_processes, *, rng, **params) -> permutation``."""
    return PLACEMENT_OPTIMIZERS.register(name, aliases=aliases, replace=replace)
