"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation --no-use-pep517` uses this legacy
path (setup.py develop), which does not require building a wheel.  All
metadata lives in pyproject.toml (src layout, console entry point
``repro-alltoall``); this file only exists for offline editable installs.
"""

from setuptools import setup

setup()
