#!/usr/bin/env python3
"""Capacity planning with contention signatures (pure model, instant).

Scenario: an FFT-style code performs a 1 MiB-per-pair MPI_Alltoall every
iteration and must keep the exchange under a 1-second budget.  How many
nodes can each interconnect sustain?  Traditional contention-free models
(eq. 1) give wildly optimistic answers; the contention signature gives the
realistic ones.

This example uses the paper's *reported* signatures directly — no
simulation runs — demonstrating the intended downstream use of the
model: predict before you buy/queue.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import api, clusters
from repro.core import ContentionSignature, HockneyParams, alltoall_lower_bound

BUDGET_S = 1.0
MSG_SIZE = 1_048_576


def signature_from_paper(profile) -> ContentionSignature:
    """Build a signature object from the paper-reported parameters."""
    topology = profile.topology(2)
    nic = topology.links[topology.hosts[0].tx_link].capacity
    hockney = HockneyParams(
        alpha=profile.transport.base_latency,
        beta=1.0 / nic,
    )
    return ContentionSignature(
        gamma=profile.paper.gamma,
        delta=profile.paper.delta,
        threshold=profile.paper.threshold,
        hockney=hockney,
    )


def max_nodes_within_budget(predict, budget: float, n_max: int = 512) -> int:
    """Largest n whose predicted exchange time fits the budget."""
    best = 1
    for n in range(2, n_max + 1):
        if float(predict(n, MSG_SIZE)) <= budget:
            best = n
        else:
            break
    return best


def main() -> None:
    print(f"budget per All-to-All: {BUDGET_S:.1f} s at {MSG_SIZE} B/pair\n")
    header = (
        f"{'network':<18} {'naive model max n':>18} "
        f"{'signature max n':>16} {'overestimate':>13}"
    )
    print(header)
    print("-" * len(header))
    for name in api.list_clusters():
        profile = clusters.get_cluster(name)
        signature = signature_from_paper(profile)
        naive = max_nodes_within_budget(
            lambda n, m: alltoall_lower_bound(n, m, signature.hockney), BUDGET_S
        )
        realistic = max_nodes_within_budget(signature.predict, BUDGET_S)
        factor = naive / realistic if realistic else np.inf
        print(
            f"{name:<18} {naive:>18} {realistic:>16} {factor:>12.1f}x"
        )
    print(
        "\nThe contention-blind eq. 1 admits far more nodes than the "
        "network can actually serve; the gap is exactly the network's "
        "contention ratio gamma (plus the delta overheads)."
    )


if __name__ == "__main__":
    main()
