#!/usr/bin/env python3
"""Quickstart: characterise a network and predict MPI_Alltoall times.

This walks the paper's full §7/§8 procedure on the simulated Gigabit
Ethernet cluster:

1. ping-pong measurement          -> Hockney alpha, beta
2. All-to-All sweep at one n'     -> samples
3. GLS fit against Proposition 1  -> contention signature (gamma, delta, M)
4. prediction for unseen (n, m)   -> compare against fresh measurements

Run:  python examples/quickstart.py
(~1 minute; drop --nprocs for a faster demo)
"""

from __future__ import annotations

import argparse

from repro import api, clusters
from repro.core.errors import relative_error_percent
from repro.measure import characterize_cluster, measure_alltoall
from repro.units import format_size, format_time


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cluster", default="gigabit-ethernet",
                        choices=api.list_clusters())
    parser.add_argument("--nprocs", type=int, default=16,
                        help="sample size n' used for the fit")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    cluster = clusters.get_cluster(args.cluster)
    print(f"== characterising {cluster.name} ==")
    print(f"   ({cluster.description})")

    ch = characterize_cluster(
        cluster,
        sample_nprocs=args.nprocs,
        reps=2,
        seed=args.seed,
    )
    print(f"\nHockney point-to-point : {ch.hockney_fit.params}")
    print(f"Contention signature   : {ch.signature}")
    if cluster.paper:
        print(
            f"Paper reported         : gamma={cluster.paper.gamma} "
            f"delta={cluster.paper.delta * 1e3:.2f} ms M={cluster.paper.threshold} B"
        )

    # Predict sizes/process counts the fit never saw, then verify.
    print("\n== prediction vs fresh measurement ==")
    print(f"{'n':>4} {'message':>12} {'predicted':>12} {'measured':>12} {'err %':>8}")
    for n, m in [(args.nprocs + 8, 262_144), (args.nprocs + 8, 1_048_576),
                 (max(args.nprocs // 2, 4), 524_288)]:
        predicted = float(ch.predictor.predict(n, m))
        measured = measure_alltoall(
            cluster, n, m, reps=2, seed=args.seed + 1
        ).mean_time
        err = relative_error_percent(measured, predicted)
        print(
            f"{n:>4} {format_size(m):>12} {format_time(predicted):>12} "
            f"{format_time(measured):>12} {err:>+8.1f}"
        )
    print(
        "\n(the signature was fitted once at n'="
        f"{args.nprocs} and reused for every prediction — the paper's "
        "portability claim; errors are small once the network is saturated)"
    )
    if ch.signature.gamma < 1.2:
        print(
            "WARNING: fitted gamma ~ 1 suggests n' did not saturate the "
            "network — predictions for larger n will under-estimate "
            "(the paper's §8.3 caveat). Refit with a larger --nprocs."
        )


if __name__ == "__main__":
    main()
