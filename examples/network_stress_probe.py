#!/usr/bin/env python3
"""Reproduce the paper's §3 stress methodology on any profile.

Floods the network with an increasing number of simultaneous transfers
(Fig. 1), reports the average per-connection bandwidth curve (Fig. 2)
and the per-connection time spread (Fig. 3), and extracts the two-state
gap-per-byte parameters beta_F / beta_C that feed the §6 model.

Run:  python examples/network_stress_probe.py [--cluster myrinet]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import api, clusters
from repro.analysis import line_plot
from repro.core.throughput import two_beta_from_states
from repro.measure import stress_sweep
from repro.units import format_bandwidth


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cluster", default="gigabit-ethernet",
                        choices=api.list_clusters())
    parser.add_argument("--transfer-mb", type=int, default=32)
    parser.add_argument("--max-connections", type=int, default=40)
    args = parser.parse_args()

    cluster = clusters.get_cluster(args.cluster)
    transfer = args.transfer_mb * 1024 * 1024
    ks = [1, 2, 4, 8, 16, 24, 32, args.max_connections]
    ks = sorted({k for k in ks if 2 * k <= cluster.max_hosts})

    print(f"flooding {cluster.name} with up to {ks[-1]} simultaneous "
          f"{args.transfer_mb} MB transfers...\n")
    sweep = stress_sweep(cluster, ks, transfer, reps=2, seed=3)

    k_axis, bw = sweep.mean_throughput_curve()
    print(line_plot(
        {"average bandwidth (MB/s)": (k_axis, bw / 1e6)},
        title=f"Fig. 2 analogue — {cluster.name}",
        xlabel="connections", ylabel="MB/s",
    ))

    _, avg_time = sweep.average_time_curve()
    print()
    print(line_plot(
        {"average transfer time (s)": (k_axis, avg_time)},
        title=f"Fig. 3 analogue — {cluster.name}",
        xlabel="connections", ylabel="seconds",
    ))

    model = two_beta_from_states(
        transfer, sweep.runs[0][0].times, sweep.saturated_times(), alpha=50e-6
    )
    print(f"\nbeta_F (contention-free) : {model.beta_free:.3e} s/B "
          f"({format_bandwidth(1 / model.beta_free)})")
    print(f"beta_C (contended)       : {model.beta_contended:.3e} s/B "
          f"({format_bandwidth(1 / model.beta_contended)})")
    print(f"synthetic beta (rho=0.5) : {model.beta_synthetic:.3e} s/B")
    print("\n(the paper's GigE values: beta_F=8.502e-9, beta_C=8.498e-8)")


if __name__ == "__main__":
    main()
