#!/usr/bin/env python3
"""Compare All-to-All algorithms under network contention.

Runs the four implemented algorithms (LAM-style simultaneous direct
exchange, Algorithm-1 sendrecv rounds, Bruck, store-and-forward ring)
on the simulated Gigabit Ethernet cluster across message sizes, printing
the crossovers: Bruck wins the latency regime, direct exchange wins the
bandwidth regime, the ring loses whenever bandwidth matters (paper §4).

Run:  python examples/algorithm_comparison.py   (~1 minute)
"""

from __future__ import annotations

import argparse

from repro import api, clusters
from repro.measure import measure_alltoall

from repro.units import format_size


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cluster", default="gigabit-ethernet",
                        choices=api.list_clusters())
    parser.add_argument("--nprocs", type=int, default=12)
    parser.add_argument("--reps", type=int, default=2)
    args = parser.parse_args()

    cluster = clusters.get_cluster(args.cluster)
    sizes = [256, 4_096, 65_536, 524_288]
    # Scalar algorithms only: the alltoallv-* entries take a byte
    # matrix and are exercised by the traffic-pattern comparison below.
    from repro.simmpi import MATRIX_ALGORITHMS

    names = [n for n in api.list_algorithms() if n not in MATRIX_ALGORITHMS]

    print(f"MPI_Alltoall algorithms on {cluster.name}, n={args.nprocs}\n")
    header = f"{'message':>10} | " + " ".join(f"{n:>12}" for n in names)
    print(header)
    print("-" * len(header))
    winners = {}
    for m in sizes:
        times = {}
        for name in names:
            sample = measure_alltoall(
                cluster, args.nprocs, m, reps=args.reps, seed=7,
                algorithm=name,
            )
            times[name] = sample.mean_time
        winner = min(times, key=times.get)
        winners[m] = winner
        row = f"{format_size(m):>10} | " + " ".join(
            f"{times[n]:>11.5f}{'*' if n == winner else ' '}" for n in names
        )
        print(row)
    print("\n(* = fastest; times in seconds)")
    print(
        f"latency regime winner : {winners[sizes[0]]}   "
        f"bandwidth regime winner: {winners[sizes[-1]]}"
    )
    print(
        "\nNote how the simultaneous direct exchange — the algorithm LAM "
        "and MPICH shipped, and the one the paper models — loses ground "
        "at large messages precisely because it floods the fabric: the "
        "blocking per-round variant sidesteps part of the contention. "
        "That gap IS the contention effect the signature model (gamma, "
        "delta) quantifies; the store-and-forward ring loses on sheer "
        "bytes moved (paper section 4)."
    )

    # The same direct exchange under *irregular* traffic: an incast
    # hotspot concentrates receive-side contention on one rank, so the
    # completion time rises above the uniform exchange of equal
    # per-pair scale (see `repro-alltoall list patterns`).
    m = 32_768
    uniform = measure_alltoall(
        cluster, args.nprocs, m, reps=args.reps, seed=7
    )
    incast = measure_alltoall(
        cluster, args.nprocs, m, reps=args.reps, seed=7,
        pattern={"name": "hotspot", "params": {"targets": 1, "factor": 8.0}},
    )
    print(
        f"\nirregular traffic at {format_size(m)}: uniform "
        f"{uniform.mean_time:.5f} s vs 1-target 8x hotspot "
        f"{incast.mean_time:.5f} s "
        f"({incast.mean_time / uniform.mean_time:.1f}x slower)"
    )


if __name__ == "__main__":
    main()
