#!/usr/bin/env python3
"""Model your own cluster and fit its contention signature.

Shows the full extensibility path: define a topology (here a two-tier
10 GbE fat-tree-ish fabric with 3:1 oversubscription), a transport
stack, and a loss model; register the profile so every entry point (the
CLI included) can address it by name; then run the paper's
characterisation pipeline through the :class:`repro.api.Scenario`
facade and read off (gamma, delta, M) — all without touching a single
core module.

Run:  python examples/custom_cluster.py   (~1 minute)
"""

from __future__ import annotations

from repro.api import Scenario, register_cluster
from repro.clusters.profiles import ClusterProfile
from repro.simnet.entities import LinkKind
from repro.simnet.loss import LossParams
from repro.simnet.topology import edge_core
from repro.simmpi.transport import TransportParams

MB = 1_000_000.0


@register_cluster("custom-10gige", aliases=("10gige",))
def build_profile() -> ClusterProfile:
    """A 2010s-flavour 10 GbE cluster with oversubscribed uplinks."""
    return ClusterProfile(
        name="custom-10gige",
        description="hypothetical 10 GbE, 12 nodes/edge, 3:1 oversubscription",
        topology_factory=lambda n: edge_core(
            n,
            nic_bandwidth=1_170.0 * MB,
            hosts_per_edge=12,
            trunk_bandwidth=4_680.0 * MB,  # 3:1 oversubscribed uplink
            core_backplane=None,
            name="custom-10gige",
        ),
        transport=TransportParams(
            name="tcp-10gige",
            base_latency=12e-6,
            eager_threshold=65_536,
            envelope_bytes=64,
            mss=8_948,  # jumbo frames
            per_segment_wire_bytes=58,
            per_segment_host_time=0.2e-6,
            per_message_send_overhead=5e-6,
            ctrl_overhead=3e-6,
            mux_overhead=1.2e-3,
            mux_threshold=16_384,
            jitter_scale=5e-6,
        ),
        loss=LossParams(
            coeff_per_byte=6e-10,
            sat_flows={
                LinkKind.HOST_RX: 16,
                LinkKind.HOST_TX: 16,
                LinkKind.TRUNK: 32,
            },
            # Modern stacks: SACK/fast-recovery keeps timeout stalls short.
            rto_min=0.050,
            rto_max=0.200,
        ),
        start_skew_scale=100e-6,
        max_hosts=96,
    )


def main() -> None:
    # The registration above makes the profile addressable by name from
    # any entry point; the Scenario facade drives the whole pipeline.
    scenario = Scenario.from_name("custom-10gige")
    cluster = scenario.profile
    print(f"characterising {cluster.name} ({cluster.description})...\n")
    ch = scenario.fit_signature(sample_nprocs=24, reps=2, seed=0)
    print(f"hockney   : {ch.hockney_fit.params}")
    print(f"signature : {ch.signature}")
    print("\nsample fit points:")
    print(f"{'m (bytes)':>10} {'measured (s)':>13} {'predicted (s)':>14}")
    for sample in ch.samples:
        predicted = float(
            ch.predictor.predict(sample.n_processes, sample.msg_size)
        )
        print(f"{sample.msg_size:>10} {sample.mean_time:>13.5f} {predicted:>14.5f}")
    print(
        "\nOversubscribed uplinks push gamma above 1 even on 10 GbE — "
        "the contention signature quantifies how far."
    )


if __name__ == "__main__":
    main()
