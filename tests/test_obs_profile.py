"""Observability layer 3: sweep profiling — per-point in-worker timing,
cache effectiveness, and the ``sweep --profile`` surface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.exec.task import ExecutionTask, run_task
from repro.obs import SweepProfile
from repro.sweeps.cache import ResultCache
from repro.sweeps.runner import SweepRunner
from repro.sweeps.spec import SweepPoint


def _points(sizes=(2048, 8192)):
    return [
        SweepPoint(
            cluster="myrinet", n_processes=4, msg_size=size,
            algorithm="direct", seed=0, reps=1,
        )
        for size in sizes
    ]


class TestTaskElapsed:
    def test_successful_tasks_report_in_worker_time(self):
        outcome = run_task(ExecutionTask(index=0, point=_points()[0]))
        assert outcome.ok
        assert outcome.elapsed > 0

    def test_failed_tasks_still_report_time(self):
        bad = SweepPoint(
            cluster="no-such-cluster", n_processes=4, msg_size=1024,
            algorithm="direct", seed=0, reps=1,
        )
        outcome = run_task(ExecutionTask(index=0, point=bad))
        assert not outcome.ok
        assert outcome.elapsed > 0


class TestSweepTiming:
    def test_cold_run_times_every_simulated_point(self, tmp_path):
        runner = SweepRunner(cache=ResultCache(tmp_path))
        result = runner.run_points(_points())
        assert result.n_simulated == 2
        assert all(r.elapsed > 0 for r in result.results)
        assert result.sim_time >= max(r.elapsed for r in result.results)
        assert result.exec_elapsed > 0
        assert result.hit_rate == 0.0

    def test_warm_run_is_all_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache).run_points(_points())
        result = SweepRunner(cache=cache).run_points(_points())
        assert result.n_cached == 2
        assert result.hit_rate == 1.0
        assert all(r.elapsed == 0.0 for r in result.results)
        assert result.sim_time == 0.0
        assert result.exec_elapsed == 0.0

    def test_uncached_runner_still_profiles(self):
        result = SweepRunner().run_points(_points(sizes=(2048,)))
        profile = result.profile()
        assert profile.n_simulated == 1
        assert profile.sim_time > 0


class TestSweepProfile:
    def _profile(self, **overrides):
        kwargs = dict(
            n_points=4, n_cached=1, n_simulated=3, n_failed=0,
            elapsed=2.0, exec_elapsed=1.5, sim_time=1.2,
            workers=2, retries=0,
        )
        kwargs.update(overrides)
        return SweepProfile(**kwargs)

    def test_hit_rate_and_empty_sweeps(self):
        assert self._profile().hit_rate == 0.25
        empty = self._profile(
            n_points=0, n_cached=0, n_simulated=0,
            elapsed=0.0, exec_elapsed=0.0, sim_time=0.0,
        )
        assert empty.hit_rate == 0.0

    def test_queue_overhead_subtracts_ideal_wall(self):
        # 1.2 s of simulation over 2 workers → 0.6 s ideal; 1.5 s
        # observed → 0.9 s of scheduling/IPC.
        assert self._profile().queue_overhead == pytest.approx(0.9)
        # Timer noise never goes negative.
        fast = self._profile(exec_elapsed=0.1, sim_time=1.2, workers=1)
        assert fast.queue_overhead == 0.0

    def test_from_result_aggregates_and_ranks(self, tmp_path):
        runner = SweepRunner(cache=ResultCache(tmp_path))
        result = runner.run_points(_points())
        profile = result.profile(slowest=1)
        assert profile.n_points == 2
        assert profile.n_simulated == 2
        assert profile.sim_time == pytest.approx(result.sim_time)
        assert len(profile.slowest) == 1
        label, seconds = profile.slowest[0]
        assert "myrinet direct n=4" in label
        assert seconds == max(r.elapsed for r in result.results)

    def test_render_reports_cache_and_retries(self):
        text = self._profile(retries=2, slowest=(("myrinet n=4", 0.5),)).render()
        assert "1 hit / 3 miss" in text
        assert "25% hit rate" in text
        assert "retries : 2" in text
        assert "slowest : myrinet n=4" in text


class TestSweepCliProfile:
    def _sweep(self, tmp_path, *extra):
        return main([
            "sweep", "--clusters", "myrinet", "--nprocs", "4",
            "--sizes", "2kB,8kB", "--cache-dir", str(tmp_path), *extra,
        ])

    def test_summary_always_shows_the_hit_rate(self, tmp_path, capsys):
        assert self._sweep(tmp_path) == 0
        out = capsys.readouterr().out
        # The legacy grep targets stay intact...
        assert "simulated : 2" in out
        assert "cached    : 0" in out
        # ...and the cache-effectiveness one-liner rides along.
        assert "hit rate  : 0%" in out
        assert self._sweep(tmp_path) == 0
        assert "hit rate  : 100%" in capsys.readouterr().out

    def test_profile_flag_appends_the_breakdown(self, tmp_path, capsys):
        assert self._sweep(tmp_path, "--profile") == 0
        out = capsys.readouterr().out
        assert "profile   : 2 points" in out
        assert "0 hit / 2 miss" in out
        assert "slowest :" in out
        assert self._sweep(tmp_path, "--profile") == 0
        assert "2 hit / 0 miss (100% hit rate)" in capsys.readouterr().out
