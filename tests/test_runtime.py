"""Unit tests for the MPI-like runtime: matching, protocols, semantics."""

import pytest

from repro.exceptions import DeadlockError
from repro.simmpi.request import ANY_SOURCE, ANY_TAG
from repro.simmpi.runtime import Runtime
from repro.simmpi.transport import TransportParams
from repro.simnet.topology import single_switch


def make_runtime(n=2, nic=100e6, **transport_kwargs) -> Runtime:
    defaults = dict(
        name="test",
        base_latency=10e-6,
        eager_threshold=65_536,
        envelope_bytes=0,
        mss=1_000_000_000,  # effectively no segmentation
        per_segment_wire_bytes=0,
        per_segment_host_time=0.0,
        per_message_send_overhead=0.0,
        ctrl_overhead=0.0,
        jitter_scale=0.0,
    )
    defaults.update(transport_kwargs)
    topo = single_switch(n, nic_bandwidth=nic)
    return Runtime(topo, TransportParams(**defaults), nprocs=n, seed=0)


class TestBasicSendRecv:
    def test_eager_message_delivered(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.isend(1, 1000, tag=5)
            else:
                req = ctx.irecv(0, tag=5)
                yield req
                assert req.nbytes == 1000
                assert req.source == 0

        make_runtime().run(prog)

    def test_one_way_time_close_to_alpha_plus_m_beta(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.isend(1, 100_000_000)  # rendezvous path
            else:
                yield ctx.irecv(0)

        result = make_runtime().run(prog)
        # wire time 1s + handshake/latency epsilon
        assert result.duration == pytest.approx(1.0, rel=0.01)

    def test_recv_before_send_matches(self):
        def prog(ctx):
            if ctx.rank == 1:
                req = ctx.irecv(0, tag=1)
                yield req
            else:
                yield ctx.isend(1, 10, tag=1)

        make_runtime().run(prog)

    def test_unexpected_message_queued_until_recv(self):
        # Rank 1 posts its receive only after waiting on an unrelated
        # exchange, so rank 0's message sits in the unexpected queue.
        def prog(ctx):
            if ctx.rank == 0:
                early = ctx.isend(1, 10, tag=9)
                yield early
                yield ctx.irecv(1, tag=123)
            else:
                yield ctx.isend(0, 5, tag=123)
                late = ctx.irecv(0, tag=9)
                yield late
                assert late.nbytes == 10

        make_runtime().run(prog)


class TestMatchingSemantics:
    def test_tag_selectivity(self):
        def prog(ctx):
            if ctx.rank == 0:
                a = ctx.isend(1, 100, tag=1)
                b = ctx.isend(1, 200, tag=2)
                yield [a, b]
            else:
                two = ctx.irecv(0, tag=2)
                one = ctx.irecv(0, tag=1)
                yield [one, two]
                assert one.nbytes == 100
                assert two.nbytes == 200

        make_runtime().run(prog)

    def test_any_source_any_tag(self):
        def prog(ctx):
            if ctx.rank == 0:
                req = ctx.irecv(ANY_SOURCE, tag=ANY_TAG)
                yield req
                assert req.source == 1
                assert req.tag == 42
            else:
                yield ctx.isend(0, 77, tag=42)

        make_runtime().run(prog)

    def test_non_overtaking_same_pair_same_tag(self):
        # Two same-tag messages must match posted receives in order.
        def prog(ctx):
            if ctx.rank == 0:
                first = ctx.isend(1, 1000, tag=7)
                second = ctx.isend(1, 2000, tag=7)
                yield [first, second]
            else:
                r1 = ctx.irecv(0, tag=7)
                r2 = ctx.irecv(0, tag=7)
                yield [r1, r2]
                assert r1.nbytes == 1000
                assert r2.nbytes == 2000

        make_runtime().run(prog)

    def test_non_overtaking_eager_after_rendezvous(self):
        # A big rendezvous message followed by a small eager one on the
        # same pair: MPI order must still hold.
        def prog(ctx):
            if ctx.rank == 0:
                big = ctx.isend(1, 200_000, tag=7)  # rendezvous
                small = ctx.isend(1, 8, tag=7)  # eager
                yield [big, small]
            else:
                r1 = ctx.irecv(0, tag=7)
                r2 = ctx.irecv(0, tag=7)
                yield [r1, r2]
                assert r1.nbytes == 200_000
                assert r2.nbytes == 8

        make_runtime().run(prog)

    def test_wildcard_fifo_ordering(self):
        def prog(ctx):
            if ctx.rank == 0:
                a = ctx.isend(1, 10, tag=1)
                b = ctx.isend(1, 20, tag=2)
                yield [a, b]
            else:
                r1 = ctx.irecv(ANY_SOURCE, tag=ANY_TAG)
                r2 = ctx.irecv(ANY_SOURCE, tag=ANY_TAG)
                yield [r1, r2]
                assert (r1.nbytes, r2.nbytes) == (10, 20)

        make_runtime().run(prog)


class TestSelfMessages:
    def test_send_to_self_completes(self):
        def prog(ctx):
            if ctx.rank == 0:
                send = ctx.isend(0, 1234, tag=3)
                recv = ctx.irecv(0, tag=3)
                yield [send, recv]
                assert recv.nbytes == 1234
            else:
                return
                yield  # pragma: no cover

        make_runtime().run(prog)

    def test_self_message_never_touches_network(self):
        runtime = make_runtime()

        def prog(ctx):
            if ctx.rank == 0:
                send = ctx.isend(0, 10_000, tag=3)
                recv = ctx.irecv(0, tag=3)
                yield [send, recv]
            else:
                return
                yield  # pragma: no cover

        result = runtime.run(prog)
        assert result.flows_completed == 0


class TestProtocols:
    def test_rendezvous_slower_than_eager_for_same_payload(self):
        # Same payload, flip the protocol by moving the threshold.
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.isend(1, 50_000)
            else:
                yield ctx.irecv(0)

        eager = make_runtime(eager_threshold=1_000_000).run(prog)
        rendezvous = make_runtime(eager_threshold=1_000).run(prog)
        assert rendezvous.duration > eager.duration

    def test_envelope_bytes_slow_small_messages(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.isend(1, 100)
            else:
                yield ctx.irecv(0)

        lean = make_runtime(envelope_bytes=0).run(prog)
        fat = make_runtime(envelope_bytes=100_000).run(prog)
        assert fat.duration > lean.duration

    def test_sender_concurrency_serialises(self):
        def prog(ctx):
            if ctx.rank == 0:
                reqs = [ctx.isend(dst, 50_000_000) for dst in (1, 2)]
                yield reqs
            else:
                yield ctx.irecv(0)

        def run(concurrency):
            topo = single_switch(3, nic_bandwidth=100e6)
            params = TransportParams(
                name="t", base_latency=0.0, eager_threshold=10**9,
                envelope_bytes=0, mss=10**9, per_segment_wire_bytes=0,
                sender_concurrency=concurrency, jitter_scale=0.0,
                per_message_send_overhead=0.0, ctrl_overhead=0.0,
            )
            return Runtime(topo, params, nprocs=3, seed=0).run(prog)

        shared = run(None)  # both flows share the TX NIC: 1s total
        serial = run(1)  # one after the other: also 1s total... but
        # with eager_threshold high, rendezvous handshakes pipeline;
        # equal total is expected — check per-flow overlap instead via
        # duration equality.
        assert shared.duration == pytest.approx(serial.duration, rel=0.05)

    def test_mux_overhead_charged_above_threshold(self):
        def prog(ctx):
            n = ctx.size
            if ctx.rank < n - 1:
                yield ctx.isend(n - 1, 100_000)
            else:
                yield [ctx.irecv(src) for src in range(n - 1)]

        quiet = make_runtime(4, mux_overhead=0.0).run(prog)
        noisy = make_runtime(
            4, mux_overhead=0.05, mux_threshold=1_000
        ).run(prog)
        # 3 concurrent inbound messages, serialized 50 ms demux each.
        assert noisy.duration - quiet.duration > 0.09

    def test_mux_not_charged_below_threshold(self):
        def prog(ctx):
            n = ctx.size
            if ctx.rank < n - 1:
                yield ctx.isend(n - 1, 100)
            else:
                yield [ctx.irecv(src) for src in range(n - 1)]

        quiet = make_runtime(4, mux_overhead=0.0).run(prog)
        noisy = make_runtime(
            4, mux_overhead=0.05, mux_threshold=1_000
        ).run(prog)
        assert noisy.duration == pytest.approx(quiet.duration, rel=0.05)


class TestLifecycle:
    def test_deadlock_detected(self):
        def prog(ctx):
            yield ctx.irecv((ctx.rank + 1) % ctx.size, tag=1)

        with pytest.raises(DeadlockError):
            make_runtime().run(prog)

    def test_run_twice_rejected(self):
        def prog(ctx):
            return
            yield  # pragma: no cover

        runtime = make_runtime()
        runtime.run(prog)
        with pytest.raises(Exception, match="once"):
            runtime.run(prog)

    def test_non_generator_program_rejected(self):
        def prog(ctx):
            return None

        with pytest.raises(TypeError, match="generator"):
            make_runtime().run(prog)

    def test_bad_yield_type_rejected(self):
        def prog(ctx):
            yield 42

        with pytest.raises(TypeError):
            make_runtime().run(prog)

    def test_invalid_destination_rejected(self):
        def prog(ctx):
            yield ctx.isend(99, 10)

        with pytest.raises(ValueError, match="destination"):
            make_runtime().run(prog)

    def test_rank_finish_times_recorded(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.isend(1, 1000)
            else:
                yield ctx.irecv(0)

        result = make_runtime().run(prog)
        assert len(result.rank_finish_times) == 2
        assert result.duration == max(result.rank_finish_times)

    def test_nprocs_beyond_hosts_rejected(self):
        topo = single_switch(2, nic_bandwidth=1e8)
        with pytest.raises(ValueError, match="exceeds"):
            Runtime(topo, TransportParams(), nprocs=5)

    def test_sendrecv_helper(self):
        def prog(ctx):
            partner = 1 - ctx.rank
            recv = yield from ctx.sendrecv(partner, 500, partner, tag=4)
            assert recv.nbytes == 500

        make_runtime().run(prog)

    def test_start_skew_shifts_completion(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.isend(1, 1000)
            else:
                yield ctx.irecv(0)

        topo = single_switch(2, nic_bandwidth=100e6)
        params = TransportParams(jitter_scale=0.0)
        no_skew = Runtime(topo, params, nprocs=2, seed=1).run(prog)
        topo2 = single_switch(2, nic_bandwidth=100e6)
        skewed = Runtime(
            topo2, params, nprocs=2, seed=1, start_skew_scale=0.5
        ).run(prog)
        assert skewed.duration > no_skew.duration
