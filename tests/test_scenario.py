"""Unit tests for declarative scenario specs (dict/TOML/JSON)."""

import json

import pytest

from repro.exceptions import ScenarioError
from repro.scenario import ScenarioSpec, TopologySpec, WorkloadSpec


def spec_dict(**overrides):
    base = {
        "name": "edge-gige",
        "description": "test scenario",
        "base": "gigabit-ethernet",
        "topology": {
            "factory": "edge-core",
            "params": {
                "nic_bandwidth": 117.6e6,
                "hosts_per_edge": 4,
                "trunk_bandwidth": 200e6,
            },
        },
        "transport": {"mux_overhead": 7.5e-3},
        "loss": {"coeff_per_byte": 4.0e-9},
        "start_skew_scale": 150e-6,
        "max_hosts": 64,
        "algorithm": "direct",
        "workload": {
            "nprocs": [4, 6],
            "sizes": ["2kB", "8kB", "32kB", "128kB"],
            "seeds": [0],
            "reps": 1,
        },
    }
    base.update(overrides)
    return base


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = ScenarioSpec.from_dict(spec_dict())
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_toml_round_trip(self):
        spec = ScenarioSpec.from_dict(spec_dict())
        assert ScenarioSpec.from_toml(spec.to_toml()) == spec

    def test_json_file_round_trip(self, tmp_path):
        spec = ScenarioSpec.from_dict(spec_dict())
        path = spec.save(tmp_path / "scenario.json")
        assert ScenarioSpec.from_file(path) == spec
        json.loads(path.read_text())  # valid JSON document

    def test_toml_file_round_trip(self, tmp_path):
        spec = ScenarioSpec.from_dict(spec_dict())
        path = spec.save(tmp_path / "scenario.toml")
        assert ScenarioSpec.from_file(path) == spec

    def test_wrapped_scenario_table_accepted(self):
        # TOML files use a top-level [scenario] table.
        wrapped = {"scenario": spec_dict()}
        assert ScenarioSpec.from_dict(wrapped) == ScenarioSpec.from_dict(spec_dict())

    def test_minimal_spec_round_trips(self):
        spec = ScenarioSpec.from_dict({"name": "plain", "base": "myrinet"})
        assert ScenarioSpec.from_toml(spec.to_toml()) == spec
        assert spec.workload == WorkloadSpec()

    def test_unsupported_suffix_rejected(self, tmp_path):
        spec = ScenarioSpec.from_dict(spec_dict())
        with pytest.raises(ScenarioError, match="file type"):
            spec.save(tmp_path / "scenario.yaml")
        (tmp_path / "s.yaml").write_text("x")
        with pytest.raises(ScenarioError, match="file type"):
            ScenarioSpec.from_file(tmp_path / "s.yaml")


class TestValidation:
    def test_needs_base_or_topology(self):
        with pytest.raises(ScenarioError, match="base cluster and/or a topology"):
            ScenarioSpec.from_dict({"name": "empty"})

    def test_base_name_normalised_and_checked(self):
        spec = ScenarioSpec.from_dict({"name": "s", "base": "Gigabit_Ethernet"})
        assert spec.base == "gigabit-ethernet"
        with pytest.raises(ScenarioError, match="unknown cluster"):
            ScenarioSpec.from_dict({"name": "s", "base": "infiniband"})

    def test_algorithm_checked_and_canonicalised(self):
        spec = ScenarioSpec.from_dict(spec_dict(algorithm="Direct"))
        assert spec.algorithm == "direct"
        with pytest.raises(ScenarioError, match="unknown algorithm"):
            ScenarioSpec.from_dict(spec_dict(algorithm="teleport"))

    def test_unknown_fields_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario field"):
            ScenarioSpec.from_dict(spec_dict(typo_field=1))
        with pytest.raises(ScenarioError, match="unknown transport field"):
            ScenarioSpec.from_dict(spec_dict(transport={"warp_factor": 9}))
        with pytest.raises(ScenarioError, match="unknown workload field"):
            ScenarioSpec.from_dict(spec_dict(workload={"nprocs": [4], "sizes": [1], "speed": 1}))

    def test_workload_validation(self):
        with pytest.raises(ScenarioError, match="nprocs"):
            WorkloadSpec(nprocs=(1,))
        with pytest.raises(ScenarioError, match="sizes"):
            WorkloadSpec(sizes=())
        with pytest.raises(ScenarioError, match="reps"):
            WorkloadSpec(reps=0)

    def test_sizes_accept_strings(self):
        workload = WorkloadSpec(sizes=("2kB", 100))
        assert workload.sizes == (2_048, 100)

    def test_invalid_toml_reported(self):
        with pytest.raises(ScenarioError, match="invalid scenario TOML"):
            ScenarioSpec.from_toml("[scenario\nname=")


class TestBuildProfile:
    def test_base_with_overrides(self):
        profile = ScenarioSpec.from_dict(spec_dict()).build_profile()
        assert profile.name == "edge-gige"
        assert profile.transport.mux_overhead == 7.5e-3
        # Inherited from the gigabit-ethernet base:
        assert profile.transport.base_latency == 50e-6
        assert profile.loss.coeff_per_byte == 4.0e-9
        assert profile.loss.rto_min == 0.200  # inherited
        assert profile.start_skew_scale == 150e-6
        assert profile.max_hosts == 64
        # A modified fabric no longer carries the paper's signature.
        assert profile.paper is None

    def test_topology_params_reach_the_fabric(self):
        profile = ScenarioSpec.from_dict(spec_dict()).build_profile()
        topo = profile.topology(10)
        # 4 hosts per edge -> 3 edge switches + 1 core for 10 hosts.
        assert len(topo.switches) == 4

    def test_pure_base_keeps_paper_signature(self):
        spec = ScenarioSpec.from_dict({"name": "gdx", "base": "gigabit-ethernet"})
        profile = spec.build_profile()
        assert spec.is_pure_base
        assert profile.paper is not None
        assert profile.name == "gdx"

    def test_loss_disabled_removes_mechanism(self):
        spec = ScenarioSpec.from_dict(
            spec_dict(loss={"enabled": False})
        )
        assert spec.build_profile().loss is None

    def test_scratch_profile_without_base(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "scratch",
                "topology": {
                    "factory": "single-switch",
                    "params": {"nic_bandwidth": 100e6},
                },
                "transport": {"base_latency": 20e-6},
            }
        )
        profile = spec.build_profile()
        assert profile.loss is None and profile.hol is None
        assert profile.transport.base_latency == 20e-6
        assert profile.transport.name == "scratch"
        assert profile.topology(4).n_hosts == 4

    def test_hol_override_builds_penalty(self):
        spec = ScenarioSpec.from_dict(
            spec_dict(hol={"eta": {"HOST_RX": 0.5}})
        )
        profile = spec.build_profile()
        assert profile.hol is not None and profile.hol.enabled

    def test_unknown_link_kind_rejected(self):
        with pytest.raises(ScenarioError, match="unknown link kind"):
            ScenarioSpec.from_dict(
                spec_dict(loss={"sat_flows": {"WORMHOLE": 4}})
            ).build_profile()


class TestCachePayload:
    def test_payload_excludes_presentation_fields(self):
        a = ScenarioSpec.from_dict(spec_dict())
        b = ScenarioSpec.from_dict(spec_dict(name="other", description="zzz"))
        assert a.cache_payload() == b.cache_payload()

    def test_payload_tracks_every_definition_field(self):
        base = ScenarioSpec.from_dict(spec_dict()).cache_payload()
        variants = [
            spec_dict(transport={"mux_overhead": 9e-3}),
            spec_dict(loss={"coeff_per_byte": 5e-9}),
            spec_dict(start_skew_scale=1e-3),
            spec_dict(max_hosts=32),
            spec_dict(
                topology={
                    "factory": "edge-core",
                    "params": {
                        "nic_bandwidth": 117.6e6,
                        "hosts_per_edge": 5,
                        "trunk_bandwidth": 200e6,
                    },
                }
            ),
        ]
        for variant in variants:
            assert ScenarioSpec.from_dict(variant).cache_payload() != base

    def test_payload_is_jsonable(self):
        json.dumps(ScenarioSpec.from_dict(spec_dict()).cache_payload())


class TestTopologySpec:
    def test_build_uses_registry(self):
        topo = TopologySpec("single_switch", {"nic_bandwidth": 1e8}).build(3)
        assert topo.n_hosts == 3

    def test_missing_factory_rejected(self):
        with pytest.raises(ScenarioError, match="factory"):
            TopologySpec("")


class TestLoadTimeValidation:
    def test_unknown_topology_factory_fails_at_load(self):
        with pytest.raises(ScenarioError, match="unknown topology 'torus2d'"):
            ScenarioSpec.from_dict(
                spec_dict(topology={"factory": "torus2d", "params": {}})
            )

    def test_builtin_plugin_detection(self):
        assert ScenarioSpec.from_dict(spec_dict()).uses_only_builtin_plugins()

    def test_user_plugin_detection(self):
        from repro.registry import TOPOLOGIES, register_topology

        @register_topology("test-user-topo")
        def user_topo(n_hosts, **params):
            pass

        try:
            spec = ScenarioSpec.from_dict(
                spec_dict(topology={"factory": "test-user-topo", "params": {}})
            )
            assert not spec.uses_only_builtin_plugins()
        finally:
            TOPOLOGIES.unregister("test-user-topo")
