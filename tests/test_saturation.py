"""Unit tests for the saturation-aware signature (paper future work)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.hockney import HockneyParams
from repro.core.saturation import SaturatedSignature, SaturationRamp, fit_knee
from repro.core.signature import ContentionSignature
from repro.exceptions import FittingError

HOCKNEY = HockneyParams(alpha=50e-6, beta=8.5e-9)
BASE = ContentionSignature(
    gamma=4.36, delta=4.9e-3, threshold=8192, hockney=HOCKNEY
)


class TestRamp:
    def test_zero_below_free(self):
        ramp = SaturationRamp(n_free=2, n_sat=10)
        assert ramp(2) == 0.0
        assert ramp(1) == 0.0

    def test_one_above_sat(self):
        ramp = SaturationRamp(n_free=2, n_sat=10)
        assert ramp(10) == 1.0
        assert ramp(50) == 1.0

    def test_linear_midpoint(self):
        ramp = SaturationRamp(n_free=2, n_sat=10, power=1.0)
        assert ramp(6) == pytest.approx(0.5)

    def test_power_shapes_ramp(self):
        soft = SaturationRamp(n_free=2, n_sat=10, power=2.0)
        assert soft(6) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            SaturationRamp(n_free=10, n_sat=10)
        with pytest.raises(ValueError):
            SaturationRamp(power=0.0)

    @given(st.floats(min_value=1.0, max_value=100.0))
    def test_ramp_bounded(self, n):
        ramp = SaturationRamp(n_free=2, n_sat=20)
        assert 0.0 <= float(ramp(n)) <= 1.0


class TestSaturatedSignature:
    MODEL = SaturatedSignature(
        base=BASE, ramp=SaturationRamp(n_free=2, n_sat=12)
    )

    def test_unsaturated_equals_lower_bound_plus_delta(self):
        n, m = 2, 65536
        expected = BASE.lower_bound(n, m) + BASE.delta * (n - 1)
        assert self.MODEL.predict(n, m) == pytest.approx(float(expected))

    def test_saturated_equals_plain_signature(self):
        n, m = 40, 1_048_576
        assert self.MODEL.predict(n, m) == pytest.approx(
            float(BASE.predict(n, m))
        )

    def test_gamma_effective_monotone(self):
        ns = np.arange(2, 30)
        gammas = self.MODEL.gamma_effective(ns)
        assert np.all(np.diff(gammas) >= 0)
        assert gammas[0] == pytest.approx(1.0)
        assert gammas[-1] == pytest.approx(BASE.gamma)

    def test_improves_small_n_error_against_synthetic_truth(self):
        # Ground truth: a network whose true contention follows a ramp.
        truth = SaturatedSignature(
            base=BASE, ramp=SaturationRamp(n_free=2, n_sat=14)
        )
        n, m = 6, 262_144
        measured = float(truth.predict(n, m))
        plain_err = abs(measured - float(BASE.predict(n, m)))
        ramped_err = abs(measured - float(self.MODEL.predict(n, m)))
        assert ramped_err < plain_err


class TestFitKnee:
    def test_recovers_knee_from_error_curve(self):
        truth = SaturatedSignature(
            base=BASE, ramp=SaturationRamp(n_free=2, n_sat=15)
        )
        ns = np.arange(3, 41)
        measured = np.array([float(truth.predict(n, 524_288)) for n in ns])
        plain = np.array([float(BASE.predict(n, 524_288)) for n in ns])
        errors = (measured / plain - 1.0) * 100.0
        fitted = fit_knee(ns, errors, BASE, msg_size=524_288)
        assert fitted.ramp.n_sat == pytest.approx(15.0, abs=2.0)

    def test_delta_dominated_signature_regression(self):
        # Regression: on δ>0 networks the δ start-up term appears in both
        # measured and estimated times, so the measured/estimated ratio is
        # far closer to 1 than γ_eff/γ.  Comparing γ ratios alone (the old
        # behaviour) biases the knee; comparing full predictions recovers
        # it even when δ dominates the message cost.
        base = ContentionSignature(
            gamma=4.36, delta=30e-3, threshold=8192, hockney=HOCKNEY
        )
        true_knee = 18.0
        truth = SaturatedSignature(
            base=base, ramp=SaturationRamp(n_free=2, n_sat=true_knee)
        )
        ns = np.arange(3, 41)
        m = 131_072  # δ(n-1) ≈ 6x the bandwidth term here
        measured = np.asarray(truth.predict(ns, m))
        plain = np.asarray(base.predict(ns, m))
        errors = (measured / plain - 1.0) * 100.0
        fitted = fit_knee(ns, errors, base, msg_size=m)
        assert fitted.ramp.n_sat == pytest.approx(true_knee, abs=1.5)

    def test_knee_depends_on_message_size_for_delta_networks(self):
        # The same error curve read at the wrong m fits a different ramp
        # magnitude, so msg_size is part of the fit's contract.
        truth = SaturatedSignature(
            base=BASE, ramp=SaturationRamp(n_free=2, n_sat=15)
        )
        ns = np.arange(3, 41)
        m = 131_072
        errors = (
            np.asarray(truth.predict(ns, m)) / np.asarray(BASE.predict(ns, m))
            - 1.0
        ) * 100.0
        fitted = fit_knee(ns, errors, BASE, msg_size=m)
        assert fitted.ramp.n_sat == pytest.approx(15.0, abs=2.0)

    def test_needs_three_points(self):
        with pytest.raises(FittingError):
            fit_knee([4, 8], [-50.0, -20.0], BASE, msg_size=524_288)

    def test_rejects_bad_msg_size(self):
        with pytest.raises(FittingError):
            fit_knee([4, 8, 12], [-50.0, -20.0, -5.0], BASE, msg_size=0)
