"""Unit tests for the discrete-event kernel."""

import math

import pytest

from repro.exceptions import SimulationError
from repro.simnet.engine import Engine


class TestScheduling:
    def test_runs_single_event(self, engine):
        fired = []
        engine.schedule(1.5, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [1.5]

    def test_clock_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_events_fire_in_time_order(self, engine):
        order = []
        engine.schedule(2.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(3.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_fifo_tie_break_at_equal_times(self, engine):
        order = []
        for tag in range(5):
            engine.schedule(1.0, lambda t=tag: order.append(t))
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_orders_same_timestamp(self, engine):
        order = []
        engine.schedule(1.0, lambda: order.append("late"), priority=10)
        engine.schedule(1.0, lambda: order.append("early"), priority=-10)
        engine.run()
        assert order == ["early", "late"]

    def test_schedule_after_uses_relative_delay(self, engine):
        seen = []
        engine.schedule(1.0, lambda: engine.schedule_after(0.5, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [1.5]

    def test_schedule_into_past_raises(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule(0.5, lambda: None)

    def test_negative_delay_raises(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda: None)

    def test_non_finite_time_raises(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule(math.nan, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule(math.inf, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, engine):
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self, engine):
        handle = engine.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        engine.run()

    def test_other_events_survive_cancellation(self, engine):
        fired = []
        engine.schedule(1.0, lambda: fired.append("a"))
        victim = engine.schedule(1.0, lambda: fired.append("b"))
        engine.schedule(1.0, lambda: fired.append("c"))
        victim.cancel()
        engine.run()
        assert fired == ["a", "c"]


class TestRunControl:
    def test_run_until_stops_before_future_events(self, engine):
        fired = []
        engine.schedule(5.0, lambda: fired.append(1))
        engine.run(until=2.0)
        assert fired == []
        assert engine.now == 2.0
        engine.run()
        assert fired == [1]

    def test_step_returns_false_when_empty(self, engine):
        assert engine.step() is False

    def test_events_processed_counter(self, engine):
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, lambda: None)
        engine.run()
        assert engine.events_processed == 3

    def test_max_events_guard(self, engine):
        def reschedule():
            engine.schedule_after(1.0, reschedule)

        engine.schedule(0.0, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            engine.run(max_events=10)

    def test_peek_time_skips_cancelled(self, engine):
        victim = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        victim.cancel()
        assert engine.peek_time() == 2.0

    def test_nested_scheduling_during_event(self, engine):
        seen = []

        def outer():
            engine.schedule(engine.now, lambda: seen.append("inner"))
            seen.append("outer")

        engine.schedule(1.0, outer)
        engine.run()
        assert seen == ["outer", "inner"]
