"""Unit tests for topologies, routing and entities."""

import pytest

from repro.exceptions import RoutingError
from repro.simnet.entities import Link, LinkKind
from repro.simnet.topology import Topology, edge_core, single_switch


class TestEntities:
    def test_link_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            Link(0, 0.0, LinkKind.TRUNK, "bad")

    def test_link_is_frozen(self):
        link = Link(0, 10.0, LinkKind.HOST_TX, "l")
        with pytest.raises(AttributeError):
            link.capacity = 5.0


class TestSingleSwitch:
    def test_counts(self):
        topo = single_switch(4, nic_bandwidth=1e8)
        assert topo.n_hosts == 4
        assert len(topo.switches) == 1
        # 2 NIC directions per host, no backplane.
        assert topo.n_links == 8

    def test_backplane_adds_shared_link(self):
        topo = single_switch(4, nic_bandwidth=1e8, backplane_capacity=1e9)
        assert topo.n_links == 9
        assert topo.switches[0].has_backplane

    def test_route_without_backplane(self):
        topo = single_switch(3, nic_bandwidth=1e8)
        route = topo.route(0, 2)
        assert route == (topo.hosts[0].tx_link, topo.hosts[2].rx_link)

    def test_route_with_backplane(self):
        topo = single_switch(3, nic_bandwidth=1e8, backplane_capacity=1e9)
        route = topo.route(0, 2)
        assert len(route) == 3
        assert topo.links[route[1]].kind is LinkKind.BACKPLANE

    def test_self_route_is_empty(self):
        topo = single_switch(3, nic_bandwidth=1e8)
        assert topo.route(1, 1) == ()

    def test_invalid_host_raises(self):
        topo = single_switch(3, nic_bandwidth=1e8)
        with pytest.raises(RoutingError):
            topo.route(0, 99)

    def test_capacities_align_with_links(self):
        topo = single_switch(2, nic_bandwidth=5e7)
        caps = topo.capacities()
        assert len(caps) == topo.n_links
        assert all(c == 5e7 for c in caps)

    def test_needs_at_least_one_host(self):
        with pytest.raises(ValueError):
            single_switch(0, nic_bandwidth=1e8)


class TestEdgeCore:
    def test_host_placement_in_blocks(self):
        topo = edge_core(
            24, nic_bandwidth=12.5e6, hosts_per_edge=20,
            trunk_bandwidth=125e6,
        )
        # 24 hosts, 20 per edge -> 2 edge switches + core.
        assert len(topo.switches) == 3
        assert topo.hosts[0].switch == 1
        assert topo.hosts[19].switch == 1
        assert topo.hosts[20].switch == 2

    def test_same_edge_route_stays_local(self):
        topo = edge_core(
            24, nic_bandwidth=12.5e6, hosts_per_edge=20,
            trunk_bandwidth=125e6,
        )
        route = topo.route(0, 1)
        kinds = [topo.links[l].kind for l in route]
        assert LinkKind.TRUNK not in kinds

    def test_cross_edge_route_uses_two_trunks(self):
        topo = edge_core(
            24, nic_bandwidth=12.5e6, hosts_per_edge=20,
            trunk_bandwidth=125e6,
        )
        route = topo.route(0, 23)
        kinds = [topo.links[l].kind for l in route]
        assert kinds.count(LinkKind.TRUNK) == 2

    def test_core_backplane_on_cross_edge_path(self):
        topo = edge_core(
            24, nic_bandwidth=12.5e6, hosts_per_edge=20,
            trunk_bandwidth=125e6, core_backplane=2e9,
        )
        route = topo.route(0, 23)
        kinds = [topo.links[l].kind for l in route]
        assert LinkKind.BACKPLANE in kinds

    def test_route_symmetry_of_length(self):
        topo = edge_core(
            30, nic_bandwidth=12.5e6, hosts_per_edge=10,
            trunk_bandwidth=125e6,
        )
        assert len(topo.route(0, 25)) == len(topo.route(25, 0))


class TestManualConstruction:
    def test_unfinalized_route_raises(self):
        topo = Topology()
        sw = topo.add_switch()
        topo.add_host(sw, nic_bandwidth=1e6)
        topo.add_host(sw, nic_bandwidth=1e6)
        with pytest.raises(RoutingError, match="finalize"):
            topo.route(0, 1)

    def test_disconnected_switches_raise_on_route(self):
        topo = Topology()
        a = topo.add_switch()
        b = topo.add_switch()
        topo.add_host(a, nic_bandwidth=1e6)
        topo.add_host(b, nic_bandwidth=1e6)
        topo.finalize()
        with pytest.raises(RoutingError, match="no switch path"):
            topo.route(0, 1)

    def test_adding_host_to_missing_switch_raises(self):
        topo = Topology()
        with pytest.raises(ValueError):
            topo.add_host(0, nic_bandwidth=1e6)

    def test_multi_hop_switch_chain(self):
        topo = Topology()
        switches = [topo.add_switch() for _ in range(3)]
        topo.connect_switches(switches[0], switches[1], bandwidth=1e9)
        topo.connect_switches(switches[1], switches[2], bandwidth=1e9)
        topo.add_host(switches[0], nic_bandwidth=1e8)
        topo.add_host(switches[2], nic_bandwidth=1e8)
        topo.finalize()
        route = topo.route(0, 1)
        kinds = [topo.links[l].kind for l in route]
        assert kinds.count(LinkKind.TRUNK) == 2
