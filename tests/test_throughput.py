"""Unit tests for the §6 two-β throughput model."""

import numpy as np
import pytest

from repro.core.throughput import (
    TwoBetaModel,
    extract_two_beta,
    two_beta_from_states,
)
from repro.exceptions import FittingError


class TestModel:
    def test_paper_numbers(self):
        # The paper's exact blend: 8.502e-9 and 8.498189e-8 at rho 0.5
        # give the synthetic 4.6742e-8 gap per byte (§6).
        model = TwoBetaModel(
            alpha=1e-4, beta_free=8.502e-9, beta_contended=8.498189e-8
        )
        assert model.beta_synthetic == pytest.approx(4.67419e-8, rel=1e-4)

    def test_rho_extremes(self):
        model_free = TwoBetaModel(1e-4, 1e-9, 1e-7, rho=0.0)
        model_cont = TwoBetaModel(1e-4, 1e-9, 1e-7, rho=1.0)
        assert model_free.beta_synthetic == pytest.approx(1e-9)
        assert model_cont.beta_synthetic == pytest.approx(1e-7)

    def test_predict_formula(self):
        model = TwoBetaModel(1e-4, 1e-9, 3e-9, rho=0.5)
        n, m = 40, 1_000_000
        expected = 39 * (1e-4 + m * 2e-9)
        assert model.predict(n, m) == pytest.approx(expected)

    def test_predict_vectorised(self):
        model = TwoBetaModel(1e-4, 1e-9, 3e-9)
        out = model.predict(8, np.array([1e3, 1e6]))
        assert out.shape == (2,)

    def test_as_hockney(self):
        model = TwoBetaModel(1e-4, 1e-9, 3e-9)
        h = model.as_hockney()
        assert h.alpha == 1e-4
        assert h.beta == pytest.approx(model.beta_synthetic)

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoBetaModel(1e-4, 1e-9, 1e-7, rho=1.5)
        with pytest.raises(ValueError):
            TwoBetaModel(1e-4, 0.0, 1e-7)


class TestExtraction:
    def test_two_state_split(self):
        # 90 fast transfers at ~1 s, 10 slow at ~6 s over 32 MB.
        times = np.concatenate([np.full(90, 1.0), np.full(10, 6.0)])
        model = extract_two_beta(32e6, times, alpha=1e-4)
        assert model.beta_free == pytest.approx(1.0 / 32e6, rel=1e-6)
        assert model.beta_contended == pytest.approx(6.0 / 32e6, rel=1e-6)

    def test_quantiles_configurable(self):
        times = np.linspace(1.0, 2.0, 50)
        model = extract_two_beta(
            1e6, times, alpha=0.0, fast_quantile=0.5, slow_quantile=0.5
        )
        assert model.beta_free < model.beta_contended

    def test_needs_enough_samples(self):
        with pytest.raises(FittingError):
            extract_two_beta(1e6, [1.0, 2.0], alpha=0.0)

    def test_positive_bytes_required(self):
        with pytest.raises(FittingError):
            extract_two_beta(0, [1.0] * 10, alpha=0.0)


class TestTwoStateExtraction:
    def test_states_kept_separate(self):
        # One fast unloaded sample must not be polluted by 40 slow ones.
        model = two_beta_from_states(
            32e6, [0.30], np.full(40, 1.7), alpha=1e-4
        )
        assert model.beta_free == pytest.approx(0.30 / 32e6)
        assert model.beta_contended == pytest.approx(1.7 / 32e6)

    def test_slow_quantile_takes_tail(self):
        contended = np.concatenate([np.full(9, 1.0), [3.0]])
        model = two_beta_from_states(
            1e6, [0.5], contended, alpha=0.0, slow_quantile=0.95
        )
        assert model.beta_contended == pytest.approx(3.0 / 1e6)

    def test_empty_regime_rejected(self):
        with pytest.raises(FittingError):
            two_beta_from_states(1e6, [], [1.0], alpha=0.0)
        with pytest.raises(FittingError):
            two_beta_from_states(0, [1.0], [1.0], alpha=0.0)
