"""The rank-placement subsystem: specs, strategies, placed topologies,
the MED contention objective, optimizers, cache-key identity, the sweep
axis / row columns, typed readback, and the CLI surface."""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import api
from repro.analysis.io import read_sweep_rows, write_csv
from repro.cli import main
from repro.clusters.profiles import get_cluster
from repro.exceptions import MeasurementError, ScenarioError
from repro.measure.alltoall import measure_alltoall
from repro.models import samples_from_rows
from repro.placement import (
    PlacedTopology,
    PlacementSpec,
    apply_placement,
    as_placement,
    contention_objective,
    optimize_placement,
    placed_matrix,
    traffic_matrix,
)
from repro.registry import PLACEMENT_OPTIMIZERS, PLACEMENTS
from repro.scenario import ScenarioSpec
from repro.simnet.topology import edge_core, single_switch
from repro.sweeps.cache import point_key, profile_fingerprint
from repro.sweeps.runner import SweepRunner
from repro.sweeps.spec import SweepPoint, SweepSpec

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: The PR 2 stress fabric: 4-node edges behind oversubscribed trunks.
EDGE_CORE_KW = dict(
    nic_bandwidth=117.6e6, hosts_per_edge=4,
    trunk_bandwidth=120e6, core_backplane=2000e6,
)

#: Cross-switch shift: every identity flow crosses two trunks.
SHIFT = {"name": "shift", "params": {"offset": 4}}


def _stress_cluster():
    return get_cluster("gigabit-ethernet").with_overrides(
        topology_factory=lambda n: edge_core(n, **EDGE_CORE_KW),
    )


class TestPlacementSpec:
    def test_registries_expose_builtins(self):
        assert api.list_placements() == [
            "block", "identity", "random", "round-robin",
        ]
        assert api.list_placement_optimizers() == ["anneal", "greedy"]

    def test_param_canonicalization(self):
        a = PlacementSpec("round-robin", {"groups": 4})
        b = PlacementSpec("rr", {"groups": 4.0})
        assert a == b
        assert a.key() == "round-robin(groups=4)"
        assert hash(a) == hash(b)

    def test_param_order_is_canonical(self):
        a = PlacementSpec("block", {"size": 4, "shift": 2})
        b = PlacementSpec("block", {"shift": 2, "size": 4})
        assert a == b and a.key() == "block(shift=2,size=4)"

    def test_unknown_name_rejected(self):
        with pytest.raises(ScenarioError, match="unknown placement"):
            PlacementSpec("nosuch")

    def test_unknown_param_rejected_at_construction(self):
        with pytest.raises(ScenarioError, match="unknown param"):
            PlacementSpec("round-robin", {"grops": 4})

    def test_dict_round_trip(self):
        spec = PlacementSpec("block", {"size": 4, "shift": 2})
        assert PlacementSpec.from_dict(spec.to_dict()) == spec

    def test_explicit_perm_round_trip(self):
        spec = PlacementSpec(perm=(2, 0, 1))
        assert spec.is_explicit and spec.name == "explicit"
        assert spec.key() == "explicit[2,0,1]"
        assert PlacementSpec.from_dict(spec.to_dict()) == spec
        assert spec.permutation(3) == (2, 0, 1)

    def test_explicit_perm_validated(self):
        with pytest.raises(ScenarioError, match="rearrange"):
            PlacementSpec(perm=(0, 0, 2))
        with pytest.raises(ScenarioError, match="n=3"):
            PlacementSpec(perm=(2, 0, 1)).permutation(4)

    def test_as_placement_collapses_identity(self):
        assert as_placement(None) is None
        assert as_placement("identity") is None
        assert as_placement("none") is None
        assert as_placement({"name": "identity"}) is None
        assert as_placement([0, 1, 2, 3]) is None  # explicit identity
        assert as_placement("round-robin") is not None
        assert as_placement([1, 0]).is_explicit

    def test_divisibility_failures_surface_as_scenario_errors(self):
        with pytest.raises(ScenarioError, match="divide"):
            PlacementSpec("round-robin", {"groups": 3}).permutation(8)
        with pytest.raises(ScenarioError, match="divide"):
            PlacementSpec("block", {"size": 3}).permutation(8)


class TestStrategies:
    @pytest.mark.parametrize("name,params,n", [
        ("block", {"size": 4}, 16),
        ("block", {"size": 4, "shift": 2}, 16),
        ("round-robin", {"groups": 4}, 16),
        ("random", {}, 16),
        ("random", {"seed": 7}, 16),
    ])
    def test_strategies_emit_permutations(self, name, params, n):
        perm = PlacementSpec(name, params).permutation(n)
        assert sorted(perm) == list(range(n))

    def test_round_robin_groups_shift_cycles_onto_one_edge(self):
        # Shift cycles {i, i+4, i+8, i+12} map into one 4-host block.
        perm = PlacementSpec("round-robin", {"groups": 4}).permutation(16)
        for rank in range(16):
            assert perm[rank] // 4 == perm[(rank + 4) % 16] // 4

    def test_random_is_seed_deterministic(self):
        a = PLACEMENTS.get("random")(16, seed=3)
        b = PLACEMENTS.get("random")(16, seed=3)
        c = PLACEMENTS.get("random")(16, seed=4)
        assert tuple(a) == tuple(b)
        assert tuple(a) != tuple(c)

    def test_aliases(self):
        assert PLACEMENTS.canonical("rr") == "round-robin"
        assert PLACEMENTS.canonical("cyclic") == "round-robin"
        assert PLACEMENTS.canonical("shuffle") == "random"
        assert PLACEMENT_OPTIMIZERS.canonical("sa") == "anneal"
        assert PLACEMENT_OPTIMIZERS.canonical("swap") == "greedy"


class TestPlacedTopology:
    def test_routes_remap_through_the_permutation(self):
        base = edge_core(8, **EDGE_CORE_KW)
        perm = (4, 5, 6, 7, 0, 1, 2, 3)
        placed = PlacedTopology(base, perm)
        assert placed.route(0, 1) == base.route(4, 5)
        assert placed.route(3, 4) == base.route(7, 0)
        assert placed.route(2, 2) == base.route(6, 6)

    def test_structure_is_delegated_not_copied(self):
        base = edge_core(8, **EDGE_CORE_KW)
        placed = PlacedTopology(base, tuple(range(7, -1, -1)))
        assert placed.n_hosts == base.n_hosts
        assert placed.n_links == base.n_links
        assert placed.links is base.links
        np.testing.assert_array_equal(placed.capacities(), base.capacities())

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="8 hosts"):
            PlacedTopology(edge_core(8, **EDGE_CORE_KW), (1, 0))

    def test_apply_identity_returns_profile_unchanged(self):
        cluster = _stress_cluster()
        assert apply_placement(cluster, None) is cluster
        assert apply_placement(cluster, "identity") is cluster

    def test_apply_placement_wraps_factory(self):
        cluster = _stress_cluster()
        placed = apply_placement(cluster, {"name": "round-robin",
                                           "params": {"groups": 4}})
        topo = placed.topology(16)
        assert isinstance(topo, PlacedTopology)
        assert sorted(topo.perm) == list(range(16))


class TestObjective:
    def test_single_switch_is_placement_invariant(self):
        topo = single_switch(8, nic_bandwidth=1e8)
        W = traffic_matrix(8, 65536, SHIFT)
        base = contention_objective(topo, W)
        rng = np.random.default_rng(0)
        for _ in range(5):
            perm = tuple(rng.permutation(8))
            assert contention_objective(topo, W, perm) == pytest.approx(base)

    def test_uniform_alltoall_is_permutation_invariant(self):
        topo = edge_core(16, **EDGE_CORE_KW)
        W = traffic_matrix(16, 65536)
        base = contention_objective(topo, W)
        perm = tuple(np.random.default_rng(1).permutation(16))
        assert contention_objective(topo, W, perm) == pytest.approx(base)

    def test_placed_matrix_conserves_the_med(self):
        # A permutation relabels hosts; it must conserve total bytes and
        # the multiset of per-endpoint degrees (the MED digraph itself).
        W = traffic_matrix(16, 32768, SHIFT, seed=3)
        perm = tuple(np.random.default_rng(2).permutation(16))
        H = placed_matrix(W, perm)
        assert H.sum() == W.sum()
        assert sorted(H.sum(axis=1)) == sorted(W.sum(axis=1))
        assert sorted(H.sum(axis=0)) == sorted(W.sum(axis=0))
        # Rank pair (i, j) traffic lands on host pair (perm[i], perm[j]).
        for i, j in ((0, 4), (3, 7), (5, 1)):
            assert H[perm[i], perm[j]] == W[i, j]

    def test_round_robin_beats_identity_on_cross_switch_shift(self):
        topo = edge_core(16, **EDGE_CORE_KW)
        W = traffic_matrix(16, 524288, SHIFT)
        identity = contention_objective(topo, W)
        placed = contention_objective(
            topo, W, {"name": "round-robin", "params": {"groups": 4}}
        )
        # Trunk-bound (4 x 512 kB over 120 MB/s) vs NIC-bound.
        assert identity == pytest.approx(4 * 524288 / 120e6, rel=1e-3)
        assert placed == pytest.approx(524288 / 117.6e6, rel=1e-3)


class TestOptimizers:
    def test_greedy_finds_the_nic_bound_optimum(self):
        result = optimize_placement(
            _stress_cluster(), 16, 524288, pattern=SHIFT, seed=0
        )
        assert result.objective < result.identity_objective
        assert result.ratio == pytest.approx(3.92, abs=0.01)
        assert result.evaluations > 0
        assert result.placement.is_explicit

    @pytest.mark.parametrize("optimizer", ["greedy", "anneal"])
    def test_optimized_never_exceeds_identity(self, optimizer):
        for n in (8, 16):
            result = optimize_placement(
                _stress_cluster(), n, 131072,
                pattern=SHIFT, optimizer=optimizer, seed=1,
            )
            assert result.objective <= result.identity_objective

    @pytest.mark.parametrize("optimizer", ["greedy", "anneal"])
    def test_same_seed_same_result_in_process(self, optimizer):
        runs = [
            optimize_placement(
                _stress_cluster(), 16, 131072,
                pattern=SHIFT, optimizer=optimizer, seed=5,
            )
            for _ in range(2)
        ]
        assert runs[0].permutation == runs[1].permutation
        assert runs[0].objective == runs[1].objective
        assert runs[0].evaluations == runs[1].evaluations

    def test_anneal_is_deterministic_across_processes(self):
        # PYTHONHASHSEED varies between interpreter runs; the search
        # (rng streams, param canonicalisation) must not notice.
        code = (
            "from repro.clusters.profiles import get_cluster\n"
            "from repro.simnet.topology import edge_core\n"
            "from repro.placement import optimize_placement\n"
            f"kw = dict({', '.join(f'{k}={v}' for k, v in EDGE_CORE_KW.items())})\n"
            "cluster = get_cluster('gigabit-ethernet').with_overrides(\n"
            "    topology_factory=lambda n: edge_core(n, **kw))\n"
            "r = optimize_placement(cluster, 16, 131072,\n"
            "    pattern={'name': 'shift', 'params': {'offset': 4}},\n"
            "    optimizer='anneal', seed=5)\n"
            "print(list(r.permutation), r.evaluations)\n"
        )
        outs = set()
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED=hash_seed)
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env, check=True,
            )
            outs.add(proc.stdout.strip())
        assert len(outs) == 1
        local = optimize_placement(
            _stress_cluster(), 16, 131072,
            pattern=SHIFT, optimizer="anneal", seed=5,
        )
        assert outs.pop() == f"{list(local.permutation)} {local.evaluations}"

    def test_scenario_entry_point(self):
        scenario = api.Scenario.from_file(
            "examples/scenarios/placed_edge_core_stress.toml"
        )
        result = scenario.optimize_placement()
        assert result.ratio == pytest.approx(3.92, abs=0.01)


class TestCacheIdentity:
    """Identity placement must be byte-invisible; non-identity must miss."""

    #: Pinned in tests/test_engines.py since PR 5; placement threading
    #: must not move it.
    EXPECTED_GIGE = (
        "85b64bc1fb89a639f7835b46e012923c2e3e06f008fb844be02128ec9827ac94"
    )

    def _point(self, **overrides):
        kwargs = dict(
            cluster="gigabit-ethernet", n_processes=8, msg_size=4096,
            algorithm="direct", seed=0, reps=3,
        )
        kwargs.update(overrides)
        return SweepPoint(**kwargs)

    def test_identity_point_key_is_the_pre_placement_key(self):
        fingerprint = profile_fingerprint(get_cluster("gigabit-ethernet"))
        bare = self._point()
        placed = self._point(placement="identity")
        explicit = self._point(placement=list(range(8)))
        assert "placement" not in bare.key_payload()
        assert point_key(bare, fingerprint) == self.EXPECTED_GIGE
        assert point_key(placed, fingerprint) == self.EXPECTED_GIGE
        assert point_key(explicit, fingerprint) == self.EXPECTED_GIGE

    def test_non_identity_placement_changes_the_key(self):
        fingerprint = profile_fingerprint(get_cluster("gigabit-ethernet"))
        bare = self._point()
        placed = self._point(
            placement={"name": "round-robin", "params": {"groups": 4}}
        )
        assert placed.key_payload()["placement"] == {
            "name": "round-robin", "params": {"groups": 4},
        }
        assert point_key(bare, fingerprint) != point_key(placed, fingerprint)

    def test_identity_measure_is_bit_identical(self):
        cluster = _stress_cluster()
        bare = measure_alltoall(cluster, 8, 32768, reps=1, pattern=SHIFT)
        placed = measure_alltoall(
            cluster, 8, 32768, reps=1, pattern=SHIFT, placement="identity"
        )
        assert placed == bare

    def test_placed_measure_differs_and_wins_on_the_stress_fabric(self):
        cluster = _stress_cluster()
        identity = measure_alltoall(cluster, 16, 131072, reps=1, pattern=SHIFT)
        placed = measure_alltoall(
            cluster, 16, 131072, reps=1, pattern=SHIFT,
            placement={"name": "round-robin", "params": {"groups": 4}},
        )
        assert placed.mean_time < identity.mean_time / 2

    def test_placement_validated_before_simulation(self):
        cluster = _stress_cluster()
        with pytest.raises(MeasurementError, match="n=4"):
            measure_alltoall(cluster, 8, 4096, placement=[1, 0, 3, 2])
        with pytest.raises(MeasurementError, match="divide"):
            measure_alltoall(
                cluster, 8, 4096,
                placement={"name": "round-robin", "params": {"groups": 3}},
            )

    def test_scenario_cache_payload_omits_identity(self):
        base = ScenarioSpec(name="demo", base="gigabit-ethernet")
        placed = dataclasses.replace(base, placement="identity")
        assert placed.placement is None
        assert base.cache_payload() == placed.cache_payload()
        assert "placement" not in base.to_dict()
        rr = dataclasses.replace(
            base, placement={"name": "round-robin", "params": {"groups": 4}}
        )
        assert rr.cache_payload()["placement"] == {
            "name": "round-robin", "params": {"groups": 4},
        }

    def test_scenario_dict_round_trip_with_placement(self):
        spec = ScenarioSpec(
            name="demo", base="gigabit-ethernet",
            placement={"name": "block", "params": {"size": 4}},
        )
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again.placement == spec.placement
        assert "placement=block(size=4)" in api.Scenario(again).describe()

    def test_placed_example_scenario_loads(self):
        scenario = api.Scenario.from_file(
            "examples/scenarios/placed_edge_core_stress.toml"
        )
        assert scenario.spec.placement.key() == "round-robin(groups=4)"
        roundtrip = ScenarioSpec.from_toml(scenario.spec.to_toml())
        assert roundtrip.placement == scenario.spec.placement


class TestSweepAxis:
    def test_placements_axis_expands_and_collapses_identity(self):
        spec = SweepSpec(
            clusters=("gigabit-ethernet",), nprocs=(8,), sizes=(4096,),
            placements=("identity", {"name": "round-robin",
                                     "params": {"groups": 4}}),
            reps=1,
        )
        assert spec.n_points == 2
        assert "2 placements" in spec.describe()
        placements = [p.placement for p in spec.points()]
        assert placements[0] is None
        assert placements[1].key() == "round-robin(groups=4)"

    def test_bad_placement_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            SweepSpec(
                clusters=("gigabit-ethernet",), nprocs=(8,), sizes=(4096,),
                placements=("nosuch",),
            )

    def test_rows_carry_the_placement_column(self, tmp_path):
        spec = SweepSpec(
            clusters=("gigabit-ethernet",), nprocs=(8,), sizes=(2048,),
            patterns=(SHIFT,),
            placements=(None, {"name": "round-robin", "params": {"groups": 2}}),
            reps=1,
        )
        result = SweepRunner(cache=None).run(spec)
        rows = [r.to_row() for r in result.results]
        assert [row["placement"] for row in rows] == [
            "identity", "round-robin(groups=2)",
        ]

    def test_typed_readback_and_model_row_filtering(self, tmp_path):
        rows = [
            {
                "cluster": "gigabit-ethernet", "algorithm": "direct",
                "pattern": "", "placement": "identity", "n_processes": 8,
                "msg_size": 4096, "seed": 0, "reps": 1,
                "mean_time": 0.001, "std_time": 0.0, "cached": 0, "error": "",
            },
            {
                "cluster": "gigabit-ethernet", "algorithm": "direct",
                "pattern": "", "placement": "round-robin(groups=4)",
                "n_processes": 8, "msg_size": 4096, "seed": 0, "reps": 1,
                "mean_time": 0.0005, "std_time": 0.0, "cached": 0, "error": "",
            },
        ]
        path = tmp_path / "rows.csv"
        write_csv(path, list(rows[0]), rows)
        back = read_sweep_rows(path)
        assert back[0]["placement"] == "identity"
        assert isinstance(back[0]["n_processes"], int)
        assert isinstance(back[0]["mean_time"], float)
        # The placed row must not leak into model fitting samples.
        samples = samples_from_rows(back, cluster="gigabit-ethernet")
        assert len(samples) == 1
        assert samples[0].mean_time == pytest.approx(0.001)

    def test_pre_placement_files_still_read(self, tmp_path):
        legacy = [{
            "cluster": "gigabit-ethernet", "algorithm": "direct",
            "n_processes": 8, "msg_size": 4096, "seed": 0, "reps": 1,
            "mean_time": 0.001, "std_time": 0.0, "cached": 0, "error": "",
        }]
        path = tmp_path / "legacy.csv"
        write_csv(path, list(legacy[0]), legacy)
        back = read_sweep_rows(path)
        assert "placement" not in back[0]
        assert isinstance(back[0]["msg_size"], int)
        assert len(samples_from_rows(back, cluster="gigabit-ethernet")) == 1


class TestCli:
    def test_list_placements_sorted(self, capsys):
        assert main(["list", "placements"]) == 0
        names = [
            line.split()[0] for line in capsys.readouterr().out.splitlines()
        ]
        assert names == sorted(names)
        assert "round-robin" in names

    def test_list_all_sections_sorted_and_stable(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        sections = [
            line[:-1] for line in out.splitlines()
            if line.endswith(":") and not line.startswith(" ")
        ]
        assert sections == sorted(sections)
        assert "placements" in sections and "placement-optimizers" in sections

    def test_unknown_placement_exits_2(self, capsys):
        assert main([
            "sweep", "--clusters", "gigabit-ethernet", "--placement", "nosuch",
        ]) == 2
        assert "unknown placement" in capsys.readouterr().err

    def test_run_placement_requires_scenario(self, capsys):
        assert main(["run", "fig02", "--placement", "identity"]) == 2
        assert "--placement needs --scenario" in capsys.readouterr().err

    def test_optimize_placement_cli(self, capsys, tmp_path):
        out_json = tmp_path / "placement.json"
        code = main([
            "optimize-placement",
            "examples/scenarios/placed_edge_core_stress.toml",
            "--json", str(out_json),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "identity" in out and "optimized" in out
        entry = json.loads(out_json.read_text())
        assert entry["objective"] < entry["identity_objective"]
        assert sorted(entry["placement"]["perm"]) == list(range(16))

    def test_optimize_placement_unknown_optimizer(self, capsys):
        assert main([
            "optimize-placement", "gigabit-ethernet", "--optimizer", "nosuch",
        ]) == 2
        assert "unknown placement optimizer" in capsys.readouterr().err

    def test_optimize_placement_bad_optimizer_param(self, capsys):
        assert main([
            "optimize-placement", "gigabit-ethernet",
            "--optimizer", "greedy:temperature=2",
        ]) == 2
        assert "invalid optimizer parameters" in capsys.readouterr().err

    def test_sweep_placement_axis_end_to_end(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        code = main([
            "sweep", "--clusters", "gigabit-ethernet",
            "--nprocs", "4", "--sizes", "2kB", "--reps", "1",
            "--pattern", "shift:offset=2",
            "--placement", "identity", "--placement", "random:seed=3",
            "--no-cache", "--csv", str(csv_path),
        ])
        assert code == 0
        rows = read_sweep_rows(csv_path)
        assert {row["placement"] for row in rows} == {
            "identity", "random(seed=3)",
        }

    def test_scenario_sweep_rejects_placement_flag(self, capsys):
        code = main([
            "sweep", "--scenario",
            "examples/scenarios/placed_edge_core_stress.toml",
            "--placement", "identity",
        ])
        assert code == 2
        assert "--placement" in capsys.readouterr().err
