"""Byte-conservation property tests for the All-to-All algorithms.

Every algorithm realises the same logical operation: each rank
contributes one *msg_size* block per peer and must end up holding one
block per peer.  The algorithms differ wildly in how many bytes they
put on the wire (Bruck and ring forward blocks through intermediate
ranks), but the *retained* payload — bytes received and not forwarded
onwards, plus the rank's own originated data — is invariant:

    retained(rank) = received(rank) - (sent(rank) - originated(rank))
                   = (n - 1) * msg_size        (= direct's received total)

The harness below executes the real generator programs against a fake
context that records every isend/irecv and matches them up by
(src, dst, tag), so the assertions exercise the actual send sizes the
implementations emit.
"""

import pytest

from repro.registry import ALGORITHMS


class _RecordingContext:
    """Stand-in for RankContext: records traffic, never simulates."""

    def __init__(self, rank: int, size: int, log: dict) -> None:
        self.rank = rank
        self._size = size
        self._log = log

    @property
    def size(self) -> int:
        return self._size

    def isend(self, dst, nbytes, *, tag=0):
        self._log["sends"].append((self.rank, dst, tag, int(nbytes)))
        return object()

    def irecv(self, src, *, tag=0):
        self._log["recvs"].append((src, self.rank, tag))
        return object()

    def local_copy(self, nbytes):
        self._log["local"].append((self.rank, int(nbytes)))


def run_algorithm(name: str, n: int, msg_size: int) -> dict:
    """Exhaust every rank's program; return matched traffic totals."""
    log = {"sends": [], "recvs": [], "local": []}
    program = ALGORITHMS.get(name)
    for rank in range(n):
        ctx = _RecordingContext(rank, n, log)
        for _ in program(ctx, msg_size):
            pass  # requests would be waited on; accounting already done

    # Match receives to sends by (src, dst, tag), FIFO per channel.
    channels: dict[tuple, list[int]] = {}
    for src, dst, tag, nbytes in log["sends"]:
        channels.setdefault((src, dst, tag), []).append(nbytes)
    received = [0] * n
    for src, dst, tag in log["recvs"]:
        queue = channels.get((src, dst, tag))
        assert queue, f"{name}: recv ({src}->{dst}, tag {tag}) has no matching send"
        received[dst] += queue.pop(0)
    unmatched = {k: v for k, v in channels.items() if v}
    assert not unmatched, f"{name}: sends never received: {unmatched}"

    sent = [0] * n
    for src, _dst, _tag, nbytes in log["sends"]:
        sent[src] += nbytes
    return {"sent": sent, "received": received, "local": log["local"]}


NS = [2, 3, 4, 5, 8, 9, 16]


class TestByteConservation:
    @pytest.mark.parametrize("n", NS)
    @pytest.mark.parametrize("name", ["rounds", "bruck", "ring"])
    def test_retained_payload_matches_direct(self, name, n):
        m = 1_000
        direct = run_algorithm("direct", n, m)
        other = run_algorithm(name, n, m)
        originated = (n - 1) * m  # every rank contributes n-1 remote blocks
        for rank in range(n):
            retained = other["received"][rank] - (other["sent"][rank] - originated)
            assert retained == direct["received"][rank] == originated, (
                f"{name}: rank {rank} retains {retained} B, "
                f"direct delivers {direct['received'][rank]} B"
            )

    @pytest.mark.parametrize("n", NS)
    @pytest.mark.parametrize("name", sorted(ALGORITHMS.names()))
    def test_send_receive_symmetry(self, name, n):
        totals = run_algorithm(name, n, 999)
        assert totals["sent"] == totals["received"]

    @pytest.mark.parametrize("n", NS)
    def test_wire_totals_document_the_tradeoffs(self, n):
        m = 512
        per_rank = {
            name: run_algorithm(name, n, m)["received"][0] for name in ALGORITHMS.names()
        }
        assert per_rank["direct"] == (n - 1) * m
        assert per_rank["rounds"] == (n - 1) * m
        # Bruck: round k moves the blocks whose offset has bit k set.
        bruck_blocks = sum(
            sum(1 for j in range(1, n) if (j >> k) & 1)
            for k in range((n - 1).bit_length())
        )
        assert per_rank["bruck"] == bruck_blocks * m
        # Ring: step s forwards (n - s) blocks one hop.
        assert per_rank["ring"] == n * (n - 1) // 2 * m

    @pytest.mark.parametrize("name", sorted(ALGORITHMS.names()))
    def test_local_copy_once_per_rank(self, name):
        n, m = 5, 777
        totals = run_algorithm(name, n, m)
        assert sorted(totals["local"]) == [(rank, m) for rank in range(n)]
