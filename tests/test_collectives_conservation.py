"""Byte-conservation property tests for the All-to-All algorithms.

Every scalar algorithm realises the same logical operation: each rank
contributes one *msg_size* block per peer and must end up holding one
block per peer.  The algorithms differ wildly in how many bytes they
put on the wire (Bruck and ring forward blocks through intermediate
ranks), but the *retained* payload — bytes received and not forwarded
onwards, plus the rank's own originated data — is invariant:

    retained(rank) = received(rank) - (sent(rank) - originated(rank))
                   = (n - 1) * msg_size        (= direct's received total)

The alltoallv algorithms generalise this to arbitrary (n, n) byte
matrices: they must deliver *exactly* the arc weights of the matrix's
MED — per ordered pair, not just in aggregate — including matrices with
whole zero rows/columns (ranks that send or receive nothing).

The harness below executes the real generator programs against a fake
context that records every isend/irecv and matches them up by
(src, dst, tag), so the assertions exercise the actual send sizes the
implementations emit.
"""

import numpy as np
import pytest

from repro.core.med import MED
from repro.registry import ALGORITHMS
from repro.simmpi.collectives import MATRIX_ALGORITHMS

#: Scalar (uniform msg_size) algorithms — the historical four.
SCALAR_ALGORITHMS = sorted(set(ALGORITHMS.names()) - set(MATRIX_ALGORITHMS))


class _RecordingContext:
    """Stand-in for RankContext: records traffic, never simulates."""

    def __init__(self, rank: int, size: int, log: dict) -> None:
        self.rank = rank
        self._size = size
        self._log = log

    @property
    def size(self) -> int:
        return self._size

    def isend(self, dst, nbytes, *, tag=0):
        self._log["sends"].append((self.rank, dst, tag, int(nbytes)))
        return object()

    def irecv(self, src, *, tag=0):
        self._log["recvs"].append((src, self.rank, tag))
        return object()

    def local_copy(self, nbytes):
        self._log["local"].append((self.rank, int(nbytes)))


def run_algorithm(name: str, n: int, arg) -> dict:
    """Exhaust every rank's program; return matched traffic totals.

    *arg* is the scalar msg_size for uniform algorithms or the byte
    matrix for alltoallv ones — exactly what the runtime would pass.
    """
    log = {"sends": [], "recvs": [], "local": [], "pairs": {}}
    program = ALGORITHMS.get(name)
    for rank in range(n):
        ctx = _RecordingContext(rank, n, log)
        for _ in program(ctx, arg):
            pass  # requests would be waited on; accounting already done

    # Match receives to sends by (src, dst, tag), FIFO per channel.
    channels: dict[tuple, list[int]] = {}
    for src, dst, tag, nbytes in log["sends"]:
        channels.setdefault((src, dst, tag), []).append(nbytes)
    received = [0] * n
    for src, dst, tag in log["recvs"]:
        queue = channels.get((src, dst, tag))
        assert queue, f"{name}: recv ({src}->{dst}, tag {tag}) has no matching send"
        nbytes = queue.pop(0)
        received[dst] += nbytes
        log["pairs"][(src, dst)] = log["pairs"].get((src, dst), 0) + nbytes
    unmatched = {k: v for k, v in channels.items() if v}
    assert not unmatched, f"{name}: sends never received: {unmatched}"

    sent = [0] * n
    for src, _dst, _tag, nbytes in log["sends"]:
        sent[src] += nbytes
    return {
        "sent": sent,
        "received": received,
        "local": log["local"],
        "pairs": log["pairs"],
    }


NS = [2, 3, 4, 5, 8, 9, 16]


class TestByteConservation:
    @pytest.mark.parametrize("n", NS)
    @pytest.mark.parametrize("name", ["rounds", "bruck", "ring"])
    def test_retained_payload_matches_direct(self, name, n):
        m = 1_000
        direct = run_algorithm("direct", n, m)
        other = run_algorithm(name, n, m)
        originated = (n - 1) * m  # every rank contributes n-1 remote blocks
        for rank in range(n):
            retained = other["received"][rank] - (other["sent"][rank] - originated)
            assert retained == direct["received"][rank] == originated, (
                f"{name}: rank {rank} retains {retained} B, "
                f"direct delivers {direct['received'][rank]} B"
            )

    @pytest.mark.parametrize("n", NS)
    @pytest.mark.parametrize("name", SCALAR_ALGORITHMS)
    def test_send_receive_symmetry(self, name, n):
        totals = run_algorithm(name, n, 999)
        assert totals["sent"] == totals["received"]

    @pytest.mark.parametrize("n", NS)
    def test_wire_totals_document_the_tradeoffs(self, n):
        m = 512
        per_rank = {
            name: run_algorithm(name, n, m)["received"][0]
            for name in SCALAR_ALGORITHMS
        }
        assert per_rank["direct"] == (n - 1) * m
        assert per_rank["rounds"] == (n - 1) * m
        # Bruck: round k moves the blocks whose offset has bit k set.
        bruck_blocks = sum(
            sum(1 for j in range(1, n) if (j >> k) & 1)
            for k in range((n - 1).bit_length())
        )
        assert per_rank["bruck"] == bruck_blocks * m
        # Ring: step s forwards (n - s) blocks one hop.
        assert per_rank["ring"] == n * (n - 1) // 2 * m

    @pytest.mark.parametrize("name", SCALAR_ALGORITHMS)
    def test_local_copy_once_per_rank(self, name):
        n, m = 5, 777
        totals = run_algorithm(name, n, m)
        assert sorted(totals["local"]) == [(rank, m) for rank in range(n)]


def random_matrix(n: int, seed: int, *, zero_row=None, zero_col=None) -> np.ndarray:
    """A seeded irregular matrix, optionally with a zero row/column."""
    rng = np.random.default_rng(seed)
    W = rng.integers(0, 5_000, size=(n, n)).astype(np.int64)
    # Sprinkle extra zeros so sparsity is the norm, not the exception.
    W[rng.random((n, n)) < 0.3] = 0
    if zero_row is not None:
        W[zero_row, :] = 0
    if zero_col is not None:
        W[:, zero_col] = 0
    return W


class TestAlltoallvConservation:
    """Every alltoallv algorithm delivers exactly the MED's arc weights."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 13])
    @pytest.mark.parametrize("name", sorted(MATRIX_ALGORITHMS))
    def test_delivers_exact_med_arcs(self, name, n, seed):
        W = random_matrix(n, seed, zero_row=seed % n, zero_col=(seed + 1) % n)
        med = MED.from_matrix(W)
        totals = run_algorithm(name, n, W)
        # Per ordered pair: wire bytes == MED arc weight (0 means no arc,
        # and no message at all).
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                assert totals["pairs"].get((i, j), 0) == med.weight(i, j), (
                    f"{name}: pair {i}->{j} moved "
                    f"{totals['pairs'].get((i, j), 0)} B, MED says "
                    f"{med.weight(i, j)} B"
                )
        # Per rank: totals match the MED's send/recv byte sums.
        for rank in range(n):
            assert totals["sent"][rank] == med.send_bytes(rank)
            assert totals["received"][rank] == med.recv_bytes(rank)

    @pytest.mark.parametrize("name", sorted(MATRIX_ALGORITHMS))
    def test_all_zero_matrix_is_silent(self, name):
        n = 4
        totals = run_algorithm(name, n, np.zeros((n, n), dtype=np.int64))
        assert totals["sent"] == [0] * n
        assert totals["received"] == [0] * n

    @pytest.mark.parametrize("name", sorted(MATRIX_ALGORITHMS))
    def test_diagonal_lowers_to_local_copy(self, name):
        n = 5
        W = random_matrix(n, seed=7)
        np.fill_diagonal(W, [10, 20, 30, 40, 50])
        totals = run_algorithm(name, n, W)
        assert sorted(totals["local"]) == [
            (rank, (rank + 1) * 10) for rank in range(n)
        ]

    @pytest.mark.parametrize("name", sorted(MATRIX_ALGORITHMS))
    def test_uniform_matrix_matches_scalar_counterpart(self, name):
        from repro.simmpi.collectives import ALLTOALLV_VARIANTS

        scalar = {v: k for k, v in ALLTOALLV_VARIANTS.items()}[name]
        n, m = 6, 321
        W = np.full((n, n), m, dtype=np.int64)
        irregular = run_algorithm(name, n, W)
        uniform = run_algorithm(scalar, n, m)
        assert irregular["sent"] == uniform["sent"]
        assert irregular["received"] == uniform["received"]
        assert irregular["local"] == uniform["local"]

    @pytest.mark.parametrize("name", sorted(MATRIX_ALGORITHMS))
    def test_wrong_shape_rejected(self, name):
        program = ALGORITHMS.get(name)
        log = {"sends": [], "recvs": [], "local": [], "pairs": {}}
        ctx = _RecordingContext(0, 4, log)
        with pytest.raises(ValueError, match="matrix"):
            list(program(ctx, np.zeros((3, 3))))
        with pytest.raises(ValueError, match=">= 0"):
            list(program(ctx, np.full((4, 4), -1)))
