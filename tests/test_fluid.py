"""Unit tests for the fluid network simulation."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simnet.engine import Engine
from repro.simnet.entities import LinkKind
from repro.simnet.fluid import FlowState, FluidNetwork
from repro.simnet.loss import LossParams
from repro.simnet.penalty import HolPenalty
from repro.simnet.rng import RngFactory
from repro.simnet.topology import single_switch
from repro.simnet.trace import Trace


def make_net(n_hosts=4, nic=100e6, backplane=None, loss=None, hol=None, seed=0):
    engine = Engine()
    topo = single_switch(n_hosts, nic_bandwidth=nic, backplane_capacity=backplane)
    net = FluidNetwork(
        engine,
        topo,
        loss_params=loss,
        hol_penalty=hol,
        rng=RngFactory(seed).stream("loss"),
        trace=Trace(),
    )
    return engine, net


class TestSingleFlow:
    def test_transfer_time_is_bytes_over_bandwidth(self):
        engine, net = make_net(nic=100e6)
        flow = net.inject(0, 1, 100e6)
        engine.run()
        assert flow.state is FlowState.DONE
        assert flow.duration == pytest.approx(1.0, rel=1e-9)

    def test_completion_callback_fires_at_completion_time(self):
        engine, net = make_net()
        seen = []
        net.inject(0, 1, 50e6, on_complete=lambda f: seen.append(engine.now))
        engine.run()
        assert seen == [pytest.approx(0.5)]

    def test_rejects_self_flow(self):
        _, net = make_net()
        with pytest.raises(SimulationError, match="same-host"):
            net.inject(0, 0, 100)

    def test_rejects_non_positive_size(self):
        _, net = make_net()
        with pytest.raises(ValueError):
            net.inject(0, 1, 0)

    def test_flow_accounting(self):
        engine, net = make_net()
        net.inject(0, 1, 10e6)
        engine.run()
        assert net.flows_completed == 1
        assert net.active_count == 0


class TestSharing:
    def test_two_flows_same_source_share_tx(self):
        engine, net = make_net(nic=100e6)
        f1 = net.inject(0, 1, 100e6)
        f2 = net.inject(0, 2, 100e6)
        engine.run()
        # Each gets 50 MB/s on the shared TX NIC.
        assert f1.duration == pytest.approx(2.0, rel=1e-6)
        assert f2.duration == pytest.approx(2.0, rel=1e-6)

    def test_disjoint_pairs_full_rate(self):
        engine, net = make_net(nic=100e6)
        f1 = net.inject(0, 1, 100e6)
        f2 = net.inject(2, 3, 100e6)
        engine.run()
        assert f1.duration == pytest.approx(1.0, rel=1e-6)
        assert f2.duration == pytest.approx(1.0, rel=1e-6)

    def test_rate_reallocation_after_completion(self):
        # A short and a long flow from the same host: the long flow
        # speeds up after the short one finishes.
        engine, net = make_net(nic=100e6)
        short = net.inject(0, 1, 50e6)
        long = net.inject(0, 2, 100e6)
        engine.run()
        # Phase 1: both at 50 MB/s until short finishes at t=1.
        assert short.duration == pytest.approx(1.0, rel=1e-6)
        # Long moved 50 MB in phase 1, then 50 MB at 100 MB/s -> 1.5 s.
        assert long.duration == pytest.approx(1.5, rel=1e-6)

    def test_backplane_is_shared_bottleneck(self):
        engine, net = make_net(n_hosts=8, nic=100e6, backplane=200e6)
        flows = [net.inject(2 * i, 2 * i + 1, 100e6) for i in range(4)]
        engine.run()
        # 4 disjoint pairs but a 200 MB/s fabric: 50 MB/s each.
        for flow in flows:
            assert flow.duration == pytest.approx(2.0, rel=1e-6)

    def test_staggered_injection(self):
        engine, net = make_net(nic=100e6)
        first = net.inject(0, 1, 100e6)
        engine.schedule(0.5, lambda: net.inject(0, 2, 25e6))
        engine.run()
        # First runs alone 0.5s (50MB), shares 0.5s.. second finishes
        # at 0.5 + 25/50 = 1.0, first completes remaining 25MB at full rate.
        assert first.duration == pytest.approx(1.25, rel=1e-6)

    def test_inbound_open_count_tracks_flows(self):
        engine, net = make_net()
        net.inject(0, 1, 100e6)
        net.inject(2, 1, 100e6)
        assert net.inbound_open_count(1) == 2
        engine.run()
        assert net.inbound_open_count(1) == 0

    def test_open_counts_include_pending_flows(self):
        # Documented semantics: a flow is "open" from injection, so the
        # counts include PENDING flows (not only ACTIVE/STALLED) — the
        # demux-concurrency snapshot taken at completion relies on it.
        _, net = make_net()
        flow = net.inject(0, 1, 100e6)
        assert flow.state is FlowState.PENDING
        assert net.inbound_open_count(1) == 1
        assert net.outbound_open_count(0) == 1


class TestLossProcess:
    @staticmethod
    def lossy_params():
        return LossParams(
            coeff_per_byte=1e-6,
            sat_flows={
                LinkKind.HOST_RX: 1,
                LinkKind.HOST_TX: 1,
                LinkKind.BACKPLANE: 1,
            },
            rto_min=0.1,
            rto_max=0.4,
        )

    def test_no_loss_without_saturation_overload(self):
        # One flow per link: counts never exceed sat threshold of 1.
        engine, net = make_net(loss=self.lossy_params())
        flow = net.inject(0, 1, 10e6)
        engine.run()
        assert flow.losses == 0

    def test_overloaded_receiver_causes_losses(self):
        engine, net = make_net(loss=self.lossy_params(), seed=3)
        flows = [net.inject(src, 3, 50e6) for src in (0, 1, 2)]
        engine.run()
        assert net.total_losses > 0
        assert sum(f.losses for f in flows) == net.total_losses

    def test_losses_extend_completion_time(self):
        engine_clean, net_clean = make_net()
        for src in (0, 1, 2):
            net_clean.inject(src, 3, 50e6)
        engine_clean.run()
        clean_time = engine_clean.now

        engine_lossy, net_lossy = make_net(loss=self.lossy_params(), seed=3)
        for src in (0, 1, 2):
            net_lossy.inject(src, 3, 50e6)
        engine_lossy.run()
        assert net_lossy.total_losses > 0
        assert engine_lossy.now > clean_time

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            engine, net = make_net(loss=self.lossy_params(), seed=7)
            flows = [net.inject(src, 3, 50e6) for src in (0, 1, 2)]
            engine.run()
            results.append([f.duration for f in flows])
        assert results[0] == results[1]

    def test_different_seeds_differ(self):
        durations = []
        for seed in (1, 2):
            engine, net = make_net(loss=self.lossy_params(), seed=seed)
            [net.inject(src, 3, 50e6) for src in (0, 1, 2)]
            engine.run()
            durations.append(engine.now)
        assert durations[0] != durations[1]

    def test_stall_and_resume_traced(self):
        engine, net = make_net(loss=self.lossy_params(), seed=3)
        [net.inject(src, 3, 50e6) for src in (0, 1, 2)]
        engine.run()
        losses = net.trace.by_category("flow.loss")
        resumes = net.trace.by_category("flow.resume")
        assert len(losses) == net.total_losses
        # Every stall eventually resumed (no flow left stranded).
        assert len(resumes) == len(losses)

    def test_loss_requires_rng(self):
        engine = Engine()
        topo = single_switch(2, nic_bandwidth=1e6)
        with pytest.raises(ValueError, match="rng"):
            FluidNetwork(engine, topo, loss_params=self.lossy_params())


class TestHolPenalty:
    def test_penalty_slows_contended_port(self):
        engine, net = make_net()
        [net.inject(src, 3, 50e6) for src in (0, 1)]
        engine.run()
        base = engine.now

        engine2, net2 = make_net(
            hol=HolPenalty(eta={LinkKind.HOST_RX: 1.0})
        )
        [net2.inject(src, 3, 50e6) for src in (0, 1)]
        engine2.run()
        # eta=1, two flows -> effective rx capacity halved.
        assert engine2.now == pytest.approx(2 * base, rel=1e-6)

    def test_penalty_inactive_for_single_flow(self):
        engine, net = make_net(hol=HolPenalty(eta={LinkKind.HOST_RX: 1.0}))
        flow = net.inject(0, 1, 100e6)
        engine.run()
        assert flow.duration == pytest.approx(1.0, rel=1e-6)


class TestConservation:
    def test_bytes_conserved_across_many_flows(self, rng):
        engine, net = make_net(n_hosts=6, backplane=300e6)
        sizes = rng.uniform(1e6, 50e6, size=12)
        pairs = [(int(a), int(b)) for a, b in rng.integers(0, 6, size=(12, 2)) if a != b]
        flows = [
            net.inject(src, dst, s)
            for (src, dst), s in zip(pairs, sizes)
        ]
        engine.run()
        for flow in flows:
            assert flow.state is FlowState.DONE
            assert flow.remaining == 0.0
