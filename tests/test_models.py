"""Cost-model zoo: registry, built-ins, round-trips, selection pipeline."""

import numpy as np
import pytest

from repro.core import (
    MED,
    AlltoallSample,
    ContentionSignature,
    HockneyParams,
    combined_lower_bound,
    fit_signature,
)
from repro.exceptions import FittingError, ScenarioError
from repro.models import (
    DEFAULT_MODELS,
    FittedModel,
    ModelComparison,
    compare_models,
    fabric_rates,
    get_model,
    kfold_errors,
    leave_one_n_out_errors,
    list_models,
    samples_from_rows,
    score_fit,
)


HOCKNEY = HockneyParams(alpha=50e-6, beta=8.5e-9)
SIGNATURE = ContentionSignature(
    gamma=4.36, delta=4.9e-3, threshold=8192, hockney=HOCKNEY
)


def signature_samples(
    nprocs=(4, 8, 16), sizes=(2_048, 8_192, 65_536, 524_288), noise=0.0
):
    """Samples drawn exactly (or nearly) from the reference signature."""
    rng = np.random.default_rng(7)
    samples = []
    for n in nprocs:
        for m in sizes:
            t = float(SIGNATURE.predict(n, m))
            if noise:
                t *= 1.0 + noise * float(rng.standard_normal())
            samples.append(
                AlltoallSample(
                    n_processes=n, msg_size=m, mean_time=abs(t),
                    std_time=abs(t) * 0.01, reps=3,
                )
            )
    return samples


class TestRegistry:
    def test_builtins_registered(self):
        assert set(DEFAULT_MODELS) <= set(list_models())
        assert {"hockney", "signature", "loggp", "max-rate", "knee"} <= set(
            list_models()
        )

    def test_aliases_resolve(self):
        assert get_model("naive").name == "hockney"
        assert get_model("contention-signature").name == "signature"
        assert get_model("min-bandwidth").name == "max-rate"
        assert get_model("Max_Rate").name == "max-rate"

    def test_unknown_model_lists_known(self):
        with pytest.raises(Exception, match="unknown model"):
            get_model("does-not-exist")

    def test_param_schema_exposed(self):
        schema = get_model("signature").param_schema
        assert {"alpha", "beta", "gamma", "delta", "threshold", "delta_mode"} == {
            p.name for p in schema
        }


class TestFittedModelRoundTrip:
    def test_dict_round_trip_every_builtin(self):
        samples = signature_samples()
        cluster = None
        for name in DEFAULT_MODELS:
            try:
                fitted = get_model(name).fit(
                    samples, hockney=HOCKNEY, cluster=cluster
                )
            except FittingError:
                continue
            data = fitted.to_dict()
            rebuilt = FittedModel.from_dict(data)
            assert rebuilt == fitted
            # Bit-exact params and identical predictions.
            assert rebuilt.params == fitted.params
            assert float(rebuilt.predict(12, 100_000)) == float(
                fitted.predict(12, 100_000)
            )

    def test_from_dict_resolves_aliases(self):
        fitted = FittedModel.from_dict(
            {"model": "naive", "params": {"alpha": 1e-5, "beta": 1e-9}}
        )
        assert fitted.model == "hockney"

    def test_validate_rejects_unknown_and_missing(self):
        with pytest.raises(FittingError, match="unknown param"):
            FittedModel(model="hockney", params={"alpha": 1e-5, "beta": 1e-9, "x": 1})
        with pytest.raises(FittingError, match="missing"):
            FittedModel(model="hockney", params={"alpha": 1e-5})

    def test_validate_rejects_non_finite(self):
        with pytest.raises(FittingError, match="finite"):
            FittedModel(
                model="hockney", params={"alpha": float("nan"), "beta": 1e-9}
            )

    def test_from_dict_rejects_junk(self):
        with pytest.raises(FittingError):
            FittedModel.from_dict({"params": {}})
        with pytest.raises(FittingError):
            FittedModel.from_dict({"model": "hockney", "extra": 1})


class TestPortedBuiltinsBitIdentical:
    """The ported models must reproduce the legacy fits exactly."""

    def test_signature_port_matches_fit_signature(self):
        samples = signature_samples(noise=0.05)
        legacy = fit_signature(samples, HOCKNEY).signature
        ported = get_model("signature").fit(samples, hockney=HOCKNEY)
        assert ported.params["gamma"] == legacy.gamma
        assert ported.params["delta"] == legacy.delta
        assert ported.params["threshold"] == legacy.threshold
        assert ported.params["alpha"] == legacy.hockney.alpha
        assert ported.params["beta"] == legacy.hockney.beta
        # And identical predictions, bit for bit, scalar and vector.
        n = np.array([4.0, 12.0, 40.0])
        m = np.array([1_024.0, 65_536.0, 1_048_576.0])
        np.testing.assert_array_equal(ported.predict(n, m), legacy.predict(n, m))
        assert float(ported.predict(24, 262_144)) == float(
            legacy.predict(24, 262_144)
        )

    def test_signature_fit_options_pass_through(self):
        samples = signature_samples(noise=0.05)
        legacy = fit_signature(samples, HOCKNEY, delta_mode="global").signature
        ported = get_model("signature").fit(
            samples, hockney=HOCKNEY, delta_mode="global"
        )
        assert ported.params["delta_mode"] == "global"
        assert ported.params["gamma"] == legacy.gamma

    def test_hockney_port_adopts_pingpong_params_verbatim(self):
        samples = signature_samples()
        ported = get_model("hockney").fit(samples, hockney=HOCKNEY)
        assert ported.params["alpha"] == HOCKNEY.alpha
        assert ported.params["beta"] == HOCKNEY.beta
        # eq. 1 exactly: the Proposition-1 bound.
        assert float(ported.predict(8, 4_096)) == float(
            SIGNATURE.lower_bound(8, 4_096)
        )

    def test_hockney_regression_without_context(self):
        h = HockneyParams(alpha=2e-4, beta=3e-8)
        samples = [
            AlltoallSample(n, m, float((n - 1) * (h.alpha + m * h.beta)))
            for n in (4, 8) for m in (1_024, 32_768, 262_144)
        ]
        fitted = get_model("hockney").fit(samples)
        assert fitted.params["alpha"] == pytest.approx(h.alpha, rel=1e-6)
        assert fitted.params["beta"] == pytest.approx(h.beta, rel=1e-6)


class TestHockneySignatureDictRoundTrip:
    def test_hockney_params_round_trip(self):
        rebuilt = HockneyParams.from_dict(HOCKNEY.to_dict())
        assert rebuilt == HOCKNEY

    def test_hockney_params_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown"):
            HockneyParams.from_dict({"alpha": 1e-5, "beta": 1e-9, "gamma": 2})
        with pytest.raises(ValueError, match="missing"):
            HockneyParams.from_dict({"alpha": 1e-5})

    def test_contention_signature_round_trip(self):
        rebuilt = ContentionSignature.from_dict(SIGNATURE.to_dict())
        assert rebuilt == SIGNATURE
        assert float(rebuilt.predict(40, 1_048_576)) == float(
            SIGNATURE.predict(40, 1_048_576)
        )

    def test_contention_signature_rejects_unknown(self):
        data = SIGNATURE.to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="unknown"):
            ContentionSignature.from_dict(data)


class TestLogGP:
    def test_exact_recovery(self):
        L, o, G = 3e-4, 2e-5, 4e-8
        samples = [
            AlltoallSample(n, m, L + (n - 1) * (o + m * G))
            for n in (4, 8, 16) for m in (2_048, 65_536, 524_288)
        ]
        fitted = get_model("loggp").fit(samples)
        assert fitted.params["latency"] == pytest.approx(L, rel=1e-5)
        assert fitted.params["overhead"] == pytest.approx(o, rel=1e-5)
        assert fitted.params["gap"] == pytest.approx(G, rel=1e-5)

    def test_single_n_unfittable(self):
        samples = [
            AlltoallSample(8, m, 1e-3 + m * 1e-8)
            for m in (1_024, 8_192, 65_536, 524_288)
        ]
        with pytest.raises(FittingError, match=">= 2 process counts"):
            get_model("loggp").fit(samples)

    def test_predict_med_uniform_matches_grid(self):
        fitted = FittedModel(
            model="loggp",
            params={"latency": 1e-4, "overhead": 2e-5, "gap": 3e-8},
        )
        med = MED.alltoall(6, 10_000)
        assert fitted.predict_med(med) == pytest.approx(
            float(fitted.predict(6, 10_000))
        )


class TestMaxRate:
    def test_fabric_rates_gige(self, gige_cluster):
        nic, capacity = fabric_rates(gige_cluster, 8)
        assert nic == pytest.approx(117.6e6)
        assert capacity == pytest.approx(1_200e6)

    def test_fabric_rates_trunks_counted_per_direction(self, fe_cluster):
        # One edge switch cabled to the core: one full-duplex trunk
        # (two directed links) must count once, not twice.
        nic, capacity = fabric_rates(fe_cluster, 8)
        assert nic == pytest.approx(12.2e6)
        assert capacity == pytest.approx(117.0e6)

    def test_capacity_bottleneck_kinks_predictions(self):
        params = {"alpha": 1e-4, "kappa": 1.0, "rate": 1e8, "capacity": 1e9}
        fitted = FittedModel(model="max-rate", params=params)
        m = 1_000_000
        below = float(fitted.predict(8, m))  # 8/1e9 < 1/1e8: NIC-bound
        above = float(fitted.predict(20, m))  # 20/1e9 > 1/1e8: fabric-bound
        nic_only = FittedModel(
            model="max-rate",
            params={**params, "capacity": 0.0},
        )
        assert below == pytest.approx(float(nic_only.predict(8, m)))
        assert above > float(nic_only.predict(20, m))

    def test_fit_uses_cluster_topology(self, gige_cluster):
        samples = signature_samples(nprocs=(4, 8, 16))
        fitted = get_model("max-rate").fit(samples, cluster=gige_cluster)
        assert fitted.params["rate"] == pytest.approx(117.6e6)
        assert fitted.params["capacity"] == pytest.approx(1_200e6)
        assert fitted.params["kappa"] > 0

    def test_fit_without_any_rate_context_fails(self):
        with pytest.raises(FittingError, match="max-rate needs"):
            get_model("max-rate").fit(signature_samples())

    def test_hockney_fallback_rate(self):
        fitted = get_model("max-rate").fit(signature_samples(), hockney=HOCKNEY)
        assert fitted.params["rate"] == pytest.approx(HOCKNEY.bandwidth)
        assert fitted.params["capacity"] == 0.0


class TestKnee:
    def test_requires_three_process_counts(self):
        samples = signature_samples(nprocs=(4, 8))
        with pytest.raises(FittingError, match=">= 3 process counts"):
            get_model("knee").fit(samples, hockney=HOCKNEY)

    def test_requires_hockney(self):
        with pytest.raises(FittingError, match="hockney"):
            get_model("knee").fit(signature_samples())

    def test_ramp_recovers_saturation_shape(self):
        # Data generated from a ramped signature: small n behave
        # contention-free, large n fully saturated.
        from repro.core import SaturatedSignature, SaturationRamp

        truth = SaturatedSignature(
            base=SIGNATURE, ramp=SaturationRamp(n_free=2, n_sat=12, power=1.0)
        )
        samples = [
            AlltoallSample(n, m, float(truth.predict(n, m)))
            for n in (4, 6, 8, 12, 16)
            for m in (2_048, 65_536, 262_144, 1_048_576)
        ]
        fitted = get_model("knee").fit(samples, hockney=HOCKNEY)
        assert 2.0 < fitted.params["n_sat"] <= 16.0
        # The ramped model must beat the plain signature on these samples.
        plain = get_model("signature").fit(samples, hockney=HOCKNEY)
        assert score_fit(fitted, samples).mape < score_fit(plain, samples).mape

    def test_predict_med_uniform_consistent(self):
        samples = signature_samples(nprocs=(4, 8, 16), noise=0.02)
        fitted = get_model("knee").fit(samples, hockney=HOCKNEY)
        med = MED.alltoall(8, 65_536)
        grid = float(fitted.predict(8, 65_536))
        assert fitted.predict_med(med) == pytest.approx(grid, rel=0.05)


class TestPredictMed:
    def test_hockney_med_is_combined_bound(self):
        fitted = get_model("hockney").fit(signature_samples(), hockney=HOCKNEY)
        med = MED.from_matrix([[0, 100, 0], [0, 0, 200], [50, 0, 0]])
        assert fitted.predict_med(med) == pytest.approx(
            combined_lower_bound(med, HOCKNEY)
        )

    def test_signature_med_delegates(self):
        fitted = get_model("signature").fit(
            signature_samples(noise=0.02), hockney=HOCKNEY
        )
        sig = get_model("signature").signature(fitted.params)
        med = MED.alltoall(6, 32_768)
        assert fitted.predict_med(med) == pytest.approx(sig.predict_med(med))

    def test_empty_exchange_predicts_zero(self):
        med = MED(4)  # no arcs at all
        for name, params in (
            ("hockney", {"alpha": 1e-5, "beta": 1e-9}),
            ("loggp", {"latency": 1e-4, "overhead": 1e-5, "gap": 1e-9}),
            ("max-rate", {"alpha": 1e-5, "kappa": 1.0, "rate": 1e8,
                          "capacity": 0.0}),
        ):
            fitted = FittedModel(model=name, params=params)
            assert fitted.predict_med(med) == 0.0


class TestSelection:
    def test_comparison_ranks_signature_above_hockney(self):
        samples = signature_samples(noise=0.03)
        comp = compare_models(samples, hockney=HOCKNEY)
        ranking = comp.ranking
        assert ranking.index("signature") < ranking.index("hockney")
        assert comp.best.model == ranking[0]
        report = comp.report("signature")
        assert report.cv_mape is not None
        assert report.cv_mape < comp.report("hockney").cv_mape

    def test_comparison_is_deterministic(self):
        samples = signature_samples(noise=0.03)
        a = compare_models(samples, hockney=HOCKNEY)
        b = compare_models(samples, hockney=HOCKNEY)
        assert a.ranking == b.ranking
        for ra, rb in zip(a.reports, b.reports):
            assert ra.cv_mape == rb.cv_mape
            assert ra.lono_mape == rb.lono_mape
            if ra.fitted is not None:
                assert ra.fitted.params == rb.fitted.params

    def test_unfittable_model_ranked_last_with_error(self):
        samples = signature_samples(nprocs=(8,))  # single n: loggp unfittable
        comp = compare_models(
            samples, ("hockney", "loggp"), hockney=HOCKNEY
        )
        assert comp.ranking == ["hockney", "loggp"]
        report = comp.report("loggp")
        assert not report.ok
        assert "process counts" in report.error
        assert "unfittable" in comp.render()

    def test_ranking_never_mixes_cv_and_in_sample(self):
        # 4 samples: hockney (no refit) cross-validates, signature's
        # 3-sample training folds all fail.  The ranking must fall back
        # to in-sample MAPE for *everyone*, not hand signature a win by
        # comparing its optimistic in-sample score against hockney's CV.
        samples = signature_samples(nprocs=(8,), sizes=(2_048, 8_192,
                                                        65_536, 524_288))
        comp = compare_models(samples, ("hockney", "signature"),
                              hockney=HOCKNEY)
        assert comp.report("signature").cv_mape is None
        assert comp.report("hockney").cv_mape is not None
        assert comp.ranked_by == "mape"
        assert "(by mape)" in comp.render()
        # With enough samples every fitted model cross-validates.
        full = compare_models(
            signature_samples(noise=0.02), ("hockney", "signature"),
            hockney=HOCKNEY,
        )
        assert full.ranked_by == "cv-mape"

    def test_alias_plus_canonical_deduplicated(self):
        # Same policy as SweepSpec.models: one model, fitted once.
        comp = compare_models(
            signature_samples(), ("hockney", "naive"), hockney=HOCKNEY
        )
        assert comp.ranking == ["hockney"]

    def test_empty_samples_rejected(self):
        with pytest.raises(FittingError, match="no samples"):
            compare_models([], hockney=HOCKNEY)

    def test_render_and_to_dict(self):
        samples = signature_samples(noise=0.03)
        comp = compare_models(samples, ("hockney", "signature"), hockney=HOCKNEY)
        text = comp.render()
        assert "ranking: signature > hockney" in text
        data = comp.to_dict()
        assert data["ranking"] == ["signature", "hockney"]
        assert data["reports"][0]["model"] == "signature"
        assert np.isfinite(
            list(data["reports"][0]["params"].values())[0]
        )

    def test_kfold_deterministic_and_bounded(self):
        samples = signature_samples(noise=0.03)
        a = kfold_errors("signature", samples, k=4, hockney=HOCKNEY)
        b = kfold_errors("signature", samples, k=4, hockney=HOCKNEY)
        assert a == b
        assert a is not None and a[0] >= 0

    def test_kfold_too_few_samples_returns_none(self):
        samples = signature_samples(nprocs=(4,), sizes=(2_048,))
        assert kfold_errors("hockney", samples, k=4, hockney=HOCKNEY) is None

    def test_leave_one_n_out_single_n_returns_none(self):
        samples = signature_samples(nprocs=(8,))
        assert leave_one_n_out_errors("hockney", samples, hockney=HOCKNEY) is None

    def test_leave_one_n_out_scores_extrapolation(self):
        samples = signature_samples(noise=0.02)
        lono = leave_one_n_out_errors("signature", samples, hockney=HOCKNEY)
        assert lono is not None and 0 <= lono < 50


class TestSamplesFromRows:
    def test_typed_rows_convert(self):
        rows = [
            {"cluster": "x", "n_processes": 4, "msg_size": 2048,
             "mean_time": 0.01, "std_time": 0.001, "reps": 2,
             "pattern": "uniform", "error": ""},
            {"cluster": "x", "n_processes": 8, "msg_size": 2048,
             "mean_time": 0.02, "std_time": "", "reps": 2,
             "pattern": "", "error": None},
        ]
        samples = samples_from_rows(rows)
        assert [s.n_processes for s in samples] == [4, 8]
        assert samples[1].std_time == 0.0

    def test_error_and_pattern_rows_skipped(self):
        rows = [
            {"n_processes": 4, "msg_size": 1024, "mean_time": 0.01,
             "error": "boom"},
            {"n_processes": 4, "msg_size": 1024, "mean_time": 0.01,
             "pattern": "hotspot(factor=8)"},
            {"n_processes": 4, "msg_size": 1024, "mean_time": ""},
            {"n_processes": 4, "msg_size": 1024, "mean_time": 0.01},
        ]
        assert len(samples_from_rows(rows)) == 1

    def test_multi_cluster_rows_rejected(self):
        rows = [
            {"cluster": "a", "n_processes": 4, "msg_size": 1024,
             "mean_time": 0.01},
            {"cluster": "b", "n_processes": 4, "msg_size": 1024,
             "mean_time": 0.01},
        ]
        with pytest.raises(FittingError, match="several clusters"):
            samples_from_rows(rows)
        assert len(samples_from_rows(rows, cluster="a")) == 1

    def test_non_finite_mean_time_rows_skipped(self):
        rows = [
            {"n_processes": 4, "msg_size": 1024, "mean_time": float("nan")},
            {"n_processes": 4, "msg_size": 1024, "mean_time": float("inf")},
            {"n_processes": 4, "msg_size": 1024, "mean_time": 0.01,
             "std_time": float("nan")},
        ]
        samples = samples_from_rows(rows)
        assert len(samples) == 1  # one poisoned cell never kills the set
        assert samples[0].std_time == 0.0

    def test_malformed_row_raises(self):
        with pytest.raises(FittingError, match="malformed"):
            samples_from_rows(
                [{"n_processes": "four", "msg_size": 1024, "mean_time": 0.01}]
            )


class TestScenarioIntegration:
    def test_scenario_spec_model_field_round_trips(self):
        from repro.scenario import ScenarioSpec

        spec = ScenarioSpec.from_dict(
            {"name": "zoo", "base": "myrinet", "model": "LogGP"}
        )
        assert spec.model == "loggp"
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert 'model = "loggp"' in spec.to_toml()
        # The default model is omitted from serialized forms.
        default = ScenarioSpec.from_dict({"name": "d", "base": "myrinet"})
        assert default.model == "signature"
        assert "model" not in default.to_dict()

    def test_scenario_spec_unknown_model_rejected(self):
        from repro.scenario import ScenarioSpec

        with pytest.raises(ScenarioError, match="unknown model"):
            ScenarioSpec.from_dict(
                {"name": "zoo", "base": "myrinet", "model": "nope"}
            )

    def test_model_field_does_not_change_cache_payload(self):
        from repro.scenario import ScenarioSpec

        a = ScenarioSpec.from_dict({"name": "zoo", "base": "myrinet"})
        b = ScenarioSpec.from_dict(
            {"name": "zoo", "base": "myrinet", "model": "loggp"}
        )
        assert a.cache_payload() == b.cache_payload()

    def test_scenario_fit_and_compare(self):
        from repro.api import Scenario

        sc = Scenario.from_name(
            "myrinet", nprocs=(4, 6), sizes=(2_048, 32_768, 262_144), reps=1
        )
        fitted = sc.fit_model()  # the spec default: signature
        assert fitted.model == "signature"
        assert np.isfinite(fitted.params["gamma"])
        comp = sc.compare_models(("hockney", "signature"))
        assert comp.ranking.index("signature") < comp.ranking.index("hockney")
        assert comp.cluster == "myrinet"
        # Grid samples are measured once and reused across fits.
        assert sc.grid_samples() is sc.grid_samples()

    def test_scenario_fit_model_override_and_rows(self):
        from repro.api import Scenario

        sc = Scenario.from_name("myrinet")
        samples = signature_samples(noise=0.02)
        fitted = sc.fit_model("loggp", samples=samples)
        assert fitted.model == "loggp"
        # An offline fit of a context-free model runs no simulated
        # ping-pong (requires_hockney gates the measurement).
        assert sc._hockney is None
        comp = sc.compare_models(("loggp", "max-rate"), samples=samples)
        assert sc._hockney is None
        assert set(comp.ranking) == {"loggp", "max-rate"}
        # A signature fit on the same rows does need the context.
        sc.fit_model("signature", samples=samples)
        assert sc._hockney is not None

    def test_offline_fit_is_order_independent(self):
        # A warm instance (ping-pong already measured) must produce the
        # same offline context-free fit as a fresh one: the cached
        # hockney context is never silently substituted for the rows.
        from repro.api import Scenario

        h = HockneyParams(alpha=2e-4, beta=4e-8)
        rows = [
            AlltoallSample(n, m, float((n - 1) * (h.alpha + m * h.beta)))
            for n in (4, 8) for m in (1_024, 32_768, 262_144)
        ]
        fresh = Scenario.from_name("fast-ethernet").fit_model(
            "hockney", samples=rows
        )
        warm_sc = Scenario.from_name("fast-ethernet")
        warm_sc.hockney()  # simulate prior context measurement
        warm = warm_sc.fit_model("hockney", samples=rows)
        assert warm.params == fresh.params
        assert warm.params["alpha"] == pytest.approx(2e-4, rel=1e-5)


class TestSweepIntegration:
    def test_sweep_spec_models_canonicalised(self):
        from repro.sweeps import SweepSpec

        spec = SweepSpec(
            clusters=("myrinet",), nprocs=(4,), sizes=(2_048,),
            models=("Contention_Signature", "naive"),
        )
        assert spec.models == ("signature", "hockney")

    def test_sweep_spec_models_deduplicated(self):
        # An alias plus its canonical name is one model, not a
        # post-sweep comparison crash.
        from repro.sweeps import SweepSpec

        spec = SweepSpec(
            clusters=("myrinet",), nprocs=(4,), sizes=(2_048,),
            models=("hockney", "naive", "signature"),
        )
        assert spec.models == ("hockney", "signature")

    def test_sweep_spec_unknown_model_rejected(self):
        from repro.sweeps import SweepSpec

        with pytest.raises(ValueError, match="unknown models"):
            SweepSpec(
                clusters=("myrinet",), nprocs=(4,), sizes=(2_048,),
                models=("bogus",),
            )

    def test_models_hook_is_not_an_axis(self):
        from repro.sweeps import SweepSpec

        bare = SweepSpec(clusters=("myrinet",), nprocs=(4,), sizes=(2_048,))
        hooked = SweepSpec(
            clusters=("myrinet",), nprocs=(4,), sizes=(2_048,),
            models=("hockney",),
        )
        assert hooked.n_points == bare.n_points
        assert [p.key_payload() for p in hooked.points()] == [
            p.key_payload() for p in bare.points()
        ]

    def test_scenario_sweep_with_models_flag(self, capsys, tmp_path):
        # --models is a post-processing hook, not a grid axis, so it
        # composes with --scenario sweeps (under the scenario's own
        # profile/ping-pong context).
        from repro.cli import main
        from repro.scenario import ScenarioSpec

        path = tmp_path / "sc.toml"
        ScenarioSpec.from_dict({
            "name": "zoo-sweep", "base": "myrinet",
            "workload": {"nprocs": [4, 6], "sizes": [2048, 32768],
                         "reps": 1},
        }).save(path)
        assert main([
            "sweep", "--scenario", str(path), "--no-cache",
            "--models", "hockney,signature",
        ]) == 0
        out = capsys.readouterr().out
        assert "model comparison — zoo-sweep:" in out
        ranking = next(
            line for line in out.splitlines() if line.startswith("ranking:")
        )
        assert ranking.index("signature") < ranking.index("hockney")

    def test_models_hook_on_pattern_sweep_warns_not_crashes(self, capsys):
        # A pure-irregular sweep has no uniform samples to fit on; the
        # CLI must say so instead of silently dropping the flag.
        from repro.cli import main

        assert main([
            "sweep", "--clusters", "myrinet", "--nprocs", "4",
            "--sizes", "2kB", "--reps", "1", "--no-cache",
            "--pattern", "permutation", "--models", "hockney",
        ]) == 0
        captured = capsys.readouterr()
        assert "model comparison skipped" in captured.err
        assert "model comparison —" not in captured.out

    def test_runner_attaches_comparisons(self):
        from repro.sweeps import SweepRunner, SweepSpec

        spec = SweepSpec(
            clusters=("myrinet",), nprocs=(4, 6),
            sizes=(2_048, 32_768), reps=1,
            models=("hockney", "signature"),
        )
        result = SweepRunner(workers=1).run(spec)
        assert result.comparisons is not None
        comp = result.comparisons["myrinet"]
        assert isinstance(comp, ModelComparison)
        assert comp.ranking.index("signature") < comp.ranking.index("hockney")
        # On-demand comparison over a finished sweep matches the hook.
        again = result.compare_models(("hockney", "signature"))
        assert again["myrinet"].ranking == comp.ranking


class TestCli:
    def test_list_models(self, capsys):
        from repro.cli import main

        assert main(["list", "models"]) == 0
        out = capsys.readouterr().out
        for name in ("hockney", "signature", "loggp", "max-rate", "knee"):
            assert name in out

    def test_compare_models_edge_core_ranks_signature_above_hockney(
        self, capsys
    ):
        # The acceptance grid: fast-ethernet is the edge-core fabric.
        from repro.cli import main

        assert main([
            "compare-models", "fast-ethernet",
            "--nprocs", "4,6", "--sizes", "2kB,8kB,32kB,131072",
            "--reps", "1", "--models", "hockney,signature,loggp",
        ]) == 0
        out = capsys.readouterr().out
        ranking = next(
            line for line in out.splitlines() if line.startswith("ranking:")
        )
        assert ranking.index("signature") < ranking.index("hockney")
        assert "best      : " in out

    def test_fit_named_model(self, capsys):
        from repro.cli import main

        assert main([
            "fit", "myrinet", "--model", "loggp",
            "--nprocs", "4,6", "--sizes", "2kB,32kB,262144", "--reps", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "model     : loggp" in out
        assert "gap" in out
        assert "in-sample : mape=" in out

    def test_fit_unknown_model_exits_2(self, capsys):
        from repro.cli import main

        assert main(["fit", "myrinet", "--model", "bogus"]) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_fit_unknown_cluster_exits_2(self, capsys):
        from repro.cli import main

        assert main(["fit", "not-a-cluster"]) == 2
        assert "unknown cluster" in capsys.readouterr().err

    def test_compare_models_from_rows(self, capsys, tmp_path):
        from repro.analysis.io import write_csv
        from repro.cli import main
        from repro.exec.sinks import ROW_FIELDS

        # A multi-cluster sweep file: only the target's rows are fitted.
        rows = [
            {
                "cluster": cluster, "algorithm": "direct",
                "pattern": "uniform", "n_processes": s.n_processes,
                "msg_size": s.msg_size, "seed": 0, "reps": s.reps,
                "mean_time": s.mean_time, "std_time": s.std_time,
                "cached": 0, "error": "",
            }
            for cluster in ("gigabit-ethernet", "myrinet")
            for s in signature_samples(noise=0.02)
        ]
        path = tmp_path / "sweep.csv"
        write_csv(path, ROW_FIELDS, rows)
        assert main([
            "compare-models", "gigabit-ethernet",
            "--from-rows", str(path),
            "--models", "hockney,signature",
        ]) == 0
        out = capsys.readouterr().out
        assert "ranking: signature > hockney" in out
        assert "over 12 samples" in out  # half the file: one cluster

    def test_from_rows_wrong_cluster_rejected(self, capsys, tmp_path):
        # A file measured on a different cluster must not silently fit
        # under this target's ping-pong/topology context.
        from repro.analysis.io import write_csv
        from repro.cli import main
        from repro.exec.sinks import ROW_FIELDS

        rows = [
            {
                "cluster": "gigabit-ethernet", "algorithm": "direct",
                "pattern": "uniform", "n_processes": s.n_processes,
                "msg_size": s.msg_size, "seed": 0, "reps": s.reps,
                "mean_time": s.mean_time, "std_time": s.std_time,
                "cached": 0, "error": "",
            }
            for s in signature_samples()
        ]
        path = tmp_path / "sweep.csv"
        write_csv(path, ROW_FIELDS, rows)
        assert main([
            "compare-models", "myrinet", "--from-rows", str(path),
        ]) == 1
        err = capsys.readouterr().err
        assert "no usable" in err and "myrinet" in err

    def test_compare_models_json_report(self, capsys, tmp_path):
        import json

        from repro.cli import main

        out_path = tmp_path / "report.json"
        assert main([
            "compare-models", "myrinet",
            "--nprocs", "4,6", "--sizes", "2kB,32kB,262144", "--reps", "1",
            "--models", "hockney,signature", "--json", str(out_path),
        ]) == 0
        data = json.loads(out_path.read_text())
        assert set(data["ranking"]) == {"hockney", "signature"}

    def test_compare_models_all_unfittable_exits_1(self, capsys, tmp_path):
        # One usable row: every model is unfittable; a comparison that
        # produced zero fits must not exit 0 over a name-order ranking.
        from repro.analysis.io import write_csv
        from repro.cli import main
        from repro.exec.sinks import ROW_FIELDS

        rows = [{
            "cluster": "myrinet", "algorithm": "direct",
            "pattern": "uniform", "n_processes": 4, "msg_size": 2_048,
            "seed": 0, "reps": 1, "mean_time": 0.001, "std_time": 0.0,
            "cached": 0, "error": "",
        }]
        path = tmp_path / "one.csv"
        write_csv(path, ROW_FIELDS, rows)
        assert main([
            "compare-models", "myrinet", "--from-rows", str(path),
            "--models", "loggp,knee",
        ]) == 1
        captured = capsys.readouterr()
        assert "unfittable" in captured.out
        assert "no model could be fitted" in captured.err

    def test_from_rows_missing_file_exits_2(self, capsys):
        from repro.cli import main

        assert main([
            "compare-models", "myrinet", "--from-rows", "/nonexistent.csv",
        ]) == 2

    def test_scenario_file_rejects_workload_flags(self, capsys, tmp_path):
        from repro.cli import main
        from repro.scenario import ScenarioSpec

        path = tmp_path / "sc.toml"
        ScenarioSpec.from_dict({"name": "s", "base": "myrinet"}).save(path)
        assert main(["fit", str(path), "--nprocs", "4,8"]) == 2
        assert "its own workload" in capsys.readouterr().err
