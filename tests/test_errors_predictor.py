"""Unit tests for error metrics and the predictor façade."""

import numpy as np
import pytest

from repro.core.errors import (
    mae,
    mean_absolute_percentage_error,
    relative_error_percent,
    rmse,
)
from repro.core.hockney import HockneyParams
from repro.core.predictor import AlltoallPredictor
from repro.core.signature import AlltoallSample, ContentionSignature

HOCKNEY = HockneyParams(alpha=50e-6, beta=8.5e-9)


class TestErrors:
    def test_relative_error_sign_convention(self):
        # measured < estimated -> negative (model over-predicts).
        assert relative_error_percent(0.5, 1.0) == pytest.approx(-50.0)
        assert relative_error_percent(2.0, 1.0) == pytest.approx(100.0)

    def test_relative_error_vectorised(self):
        err = relative_error_percent([1.0, 2.0], [2.0, 2.0])
        assert err == pytest.approx([-50.0, 0.0])

    def test_zero_estimate_rejected(self):
        with pytest.raises(ValueError):
            relative_error_percent(1.0, 0.0)

    def test_mape(self):
        assert mean_absolute_percentage_error(
            [0.5, 2.0], [1.0, 1.0]
        ) == pytest.approx(75.0)

    def test_mae_rmse(self):
        measured = np.array([1.0, 2.0, 3.0])
        estimated = np.array([1.5, 2.0, 2.0])
        assert mae(measured, estimated) == pytest.approx(0.5)
        assert rmse(measured, estimated) == pytest.approx(
            np.sqrt((0.25 + 0 + 1.0) / 3)
        )


class TestPredictor:
    SIG = ContentionSignature(
        gamma=4.36, delta=4.9e-3, threshold=8192, hockney=HOCKNEY
    )

    def test_predict_above_lower_bound(self):
        p = AlltoallPredictor(signature=self.SIG)
        assert p.predict(40, 1_048_576) > p.lower_bound(40, 1_048_576)

    def test_grid_shape_and_monotonicity(self):
        p = AlltoallPredictor(signature=self.SIG)
        grid = p.predict_grid([4, 8, 16], [1e3, 1e5, 1e6])
        assert grid.shape == (3, 3)
        assert np.all(np.diff(grid, axis=0) > 0)  # grows with n
        assert np.all(np.diff(grid, axis=1) > 0)  # grows with m

    def test_error_against_samples(self):
        p = AlltoallPredictor(signature=self.SIG)
        perfect = AlltoallSample(
            n_processes=10,
            msg_size=65536,
            mean_time=float(p.predict(10, 65536)),
        )
        [(sample, err)] = p.error_against([perfect])
        assert err == pytest.approx(0.0, abs=1e-9)

    def test_hockney_passthrough(self):
        p = AlltoallPredictor(signature=self.SIG)
        assert p.hockney is HOCKNEY


class TestPredictorEdgeCases:
    SIG = ContentionSignature(
        gamma=4.36, delta=4.9e-3, threshold=8192, hockney=HOCKNEY
    )

    def test_error_against_empty_samples(self):
        p = AlltoallPredictor(signature=self.SIG)
        assert p.error_against([]) == []

    def test_error_against_preserves_sample_order(self):
        p = AlltoallPredictor(signature=self.SIG)
        samples = [
            AlltoallSample(n_processes=n, msg_size=m, mean_time=1e-3)
            for n, m in ((16, 1_024), (4, 65_536), (8, 2_048))
        ]
        pairs = p.error_against(samples)
        assert [s for s, _ in pairs] == samples
        for sample, err in pairs:
            expected = (1e-3 / float(p.predict(sample.n_processes,
                                               sample.msg_size)) - 1) * 100
            assert err == pytest.approx(expected)

    def test_error_against_consumes_generators_once(self):
        p = AlltoallPredictor(signature=self.SIG)
        gen = (
            AlltoallSample(n_processes=4, msg_size=m, mean_time=1e-3)
            for m in (1_024, 8_192)
        )
        assert len(p.error_against(gen)) == 2

    def test_error_sign_matches_over_under_prediction(self):
        p = AlltoallPredictor(signature=self.SIG)
        slow = AlltoallSample(
            n_processes=8, msg_size=65_536,
            mean_time=float(p.predict(8, 65_536)) * 2,
        )
        fast = AlltoallSample(
            n_processes=8, msg_size=65_536,
            mean_time=float(p.predict(8, 65_536)) / 2,
        )
        [(_, err_slow), (_, err_fast)] = p.error_against([slow, fast])
        assert err_slow == pytest.approx(100.0)
        assert err_fast == pytest.approx(-50.0)
