"""Tests for the traffic-pattern subsystem (repro.traffic).

Covers the pattern registry and generators, PatternSpec round-trips,
cross-process determinism (the sweep-cache soundness guard), the
uniform-pattern ⇔ legacy-scalar bit-for-bit equivalence, pattern-aware
measurement/sweeps/scenarios, and the MED-based signature prediction.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.api import Scenario
from repro.clusters.profiles import gigabit_ethernet
from repro.core.bounds import combined_lower_bound, delta_eligible_rounds
from repro.core.hockney import HockneyParams
from repro.core.med import MED
from repro.core.signature import ContentionSignature
from repro.exceptions import MeasurementError, ScenarioError
from repro.measure.alltoall import measure_alltoall
from repro.registry import PATTERNS
from repro.scenario import ScenarioSpec, WorkloadSpec
from repro.sweeps import (
    ResultCache,
    SweepPoint,
    SweepRunner,
    SweepSpec,
    point_key,
    profile_fingerprint,
)
from repro.traffic import PatternSpec, as_pattern

SEEDED_SIZES = [(4, 1_000), (7, 4_096), (12, 65_536)]


class TestPatternSpec:
    def test_name_canonicalised(self):
        assert PatternSpec("Random_Sparse").name == "random-sparse"
        assert PatternSpec("incast").name == "hotspot"

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ScenarioError, match="unknown pattern"):
            PatternSpec("teleport")

    def test_unknown_param_rejected_at_construction(self):
        with pytest.raises(ScenarioError, match="unknown param"):
            PatternSpec("hotspot", {"victims": 3})

    def test_user_generator_without_star_separator_accepted(self):
        # The extension point must not require keyword-only params.
        from repro.registry import PATTERNS, register_pattern

        @register_pattern("test-plain-params")
        def plain(n_processes, msg_size, rng=None, skew=1.0):
            return np.full((n_processes, n_processes), int(msg_size * skew))

        try:
            spec = PatternSpec("test-plain-params", {"skew": 2.0})
            assert spec.matrix(3, 100)[0, 1] == 200
            with pytest.raises(ScenarioError, match="unknown param"):
                PatternSpec("test-plain-params", {"n_processes": 5})
        finally:
            PATTERNS.unregister("test-plain-params")

    def test_non_scalar_param_rejected(self):
        with pytest.raises(ScenarioError, match="scalar"):
            PatternSpec("hotspot", {"targets": [1, 2]})

    def test_params_canonicalise_to_sorted_pairs(self):
        a = PatternSpec("hotspot", {"targets": 2, "factor": 4.0})
        b = PatternSpec("hotspot", {"factor": 4.0, "targets": 2})
        assert a == b
        assert hash(a) == hash(b)
        assert a.key() == "hotspot(factor=4,targets=2)"

    def test_integral_floats_collapse_to_ints(self):
        # 8 and 8.0 must be one identity: same key (RNG stream), same
        # cache payload — CLI int parses and TOML float literals meet.
        a = PatternSpec("zipf", {"exponent": 1})
        b = PatternSpec("zipf", {"exponent": 1.0})
        assert a == b
        assert a.key() == b.key() == "zipf(exponent=1)"
        assert a.cache_payload() == b.cache_payload()
        np.testing.assert_array_equal(
            a.matrix(6, 1_000, seed=3), b.matrix(6, 1_000, seed=3)
        )
        assert PatternSpec("zipf", {"exponent": 1.5}).key() == "zipf(exponent=1.5)"

    def test_dict_round_trip(self):
        spec = PatternSpec("zipf", {"exponent": 1.5})
        assert PatternSpec.from_dict(spec.to_dict()) == spec
        assert PatternSpec.from_dict("shift") == PatternSpec("shift")

    def test_uniform_collapses_to_none(self):
        assert as_pattern(None) is None
        assert as_pattern("uniform") is None
        assert as_pattern({"name": "uniform"}) is None
        assert as_pattern("hotspot") == PatternSpec("hotspot")

    def test_matrix_validates_coordinates(self):
        with pytest.raises(ValueError, match="msg_size"):
            PatternSpec("shift").matrix(4, 0)
        with pytest.raises(ValueError, match="n_processes"):
            PatternSpec("shift").matrix(0, 128)

    def test_med_lowering_drops_diagonal_and_zeros(self):
        med = PatternSpec("shift", {"offset": 1}).med(5, 100)
        assert med.n_messages == 5
        assert med.max_out_degree == 1
        assert med.max_in_degree == 1


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(PATTERNS.names()))
    @pytest.mark.parametrize("n,m", SEEDED_SIZES)
    def test_shape_dtype_and_nonnegative(self, name, n, m):
        W = PatternSpec(name).matrix(n, m, seed=3)
        assert W.shape == (n, n)
        assert W.dtype == np.int64
        assert np.all(W >= 0)

    def test_uniform_is_the_regular_alltoall(self):
        W = PatternSpec("uniform").matrix(5, 777)
        assert np.all(W == 777)

    def test_zipf_preserves_total_volume_approximately(self):
        n, m = 8, 10_000
        W = PatternSpec("zipf", {"exponent": 1.2}).matrix(n, m, seed=1)
        off_diag = W.sum() - np.trace(W)
        uniform_volume = n * (n - 1) * m
        # floor() rounding loses at most one byte per pair.
        assert uniform_volume - n * n <= off_diag <= uniform_volume
        # And it is genuinely skewed: receive columns differ.
        col_bytes = W.sum(axis=0) - np.diag(W)
        assert col_bytes.max() > 2 * col_bytes.min()

    def test_hotspot_concentrates_receive_bytes(self):
        n, m = 8, 1_000
        med = PatternSpec("hotspot", {"targets": 2, "factor": 8.0}).med(n, m)
        hot = [med.recv_bytes(0), med.recv_bytes(1)]
        cold = [med.recv_bytes(r) for r in range(2, n)]
        assert min(hot) > max(cold)
        with pytest.raises(ValueError, match="targets"):
            PatternSpec("hotspot", {"targets": 99}).matrix(4, 100)

    def test_shift_and_permutation_are_single_destination(self):
        for name in ("shift", "permutation"):
            W = PatternSpec(name).matrix(9, 512, seed=5)
            assert np.all((W > 0).sum(axis=1) == 1)
            assert np.all((W > 0).sum(axis=0) == 1)

    def test_permutation_has_no_fixed_points(self):
        for seed in range(6):
            W = PatternSpec("permutation").matrix(7, 100, seed=seed)
            assert np.all(np.diag(W) == 0)

    def test_block_sparse_structure(self):
        W = PatternSpec("block-sparse", {"block": 3}).matrix(7, 100)
        assert W[0, 2] == 100 and W[0, 3] == 0
        assert W[6, 6] == 100 and W[6, 0] == 0  # tail block of one

    def test_random_sparse_has_zero_arcs(self):
        W = PatternSpec("random-sparse", {"density": 0.2}).matrix(10, 1_000, seed=2)
        off_diag = W[~np.eye(10, dtype=bool)]
        assert np.any(off_diag == 0)
        assert np.any(off_diag > 0)
        assert np.all(np.diag(W) == 0)


class TestDeterminism:
    """Same seed ⇒ identical matrix, in-process and across processes."""

    @pytest.mark.parametrize("name", sorted(PATTERNS.names()))
    def test_same_seed_same_matrix(self, name):
        a = PatternSpec(name).matrix(9, 4_096, seed=42)
        b = PatternSpec(name).matrix(9, 4_096, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_changes_random_patterns(self):
        spec = PatternSpec("random-sparse", {"density": 0.5})
        a = spec.matrix(10, 4_096, seed=0)
        b = spec.matrix(10, 4_096, seed=1)
        assert not np.array_equal(a, b)

    def test_every_pattern_identical_across_two_processes(self):
        """Guards the sweep cache against seed leakage: a worker process
        must derive bit-identical matrices from the same coordinates."""
        script = (
            "import hashlib, json, sys\n"
            "from repro.registry import PATTERNS\n"
            "from repro.traffic import PatternSpec\n"
            "out = {}\n"
            "for name in PATTERNS.names():\n"
            "    W = PatternSpec(name).matrix(11, 8_192, seed=1234)\n"
            "    out[name] = hashlib.sha256(W.tobytes()).hexdigest()\n"
            "print(json.dumps(out))\n"
        )
        src = str(Path(repro.__file__).resolve().parents[1])
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
            check=True,
        )
        remote = json.loads(result.stdout)
        import hashlib

        for name in PATTERNS.names():
            W = PatternSpec(name).matrix(11, 8_192, seed=1234)
            assert remote[name] == hashlib.sha256(W.tobytes()).hexdigest(), (
                f"pattern {name!r} is not cross-process deterministic"
            )


class TestMeasureIntegration:
    @pytest.fixture(scope="class")
    def gige(self):
        return gigabit_ethernet()

    def test_uniform_pattern_bit_for_bit_legacy(self, gige):
        legacy = measure_alltoall(gige, 4, 2_048, reps=2, seed=0)
        via_pattern = measure_alltoall(
            gige, 4, 2_048, reps=2, seed=0, pattern="uniform"
        )
        assert legacy == via_pattern

    def test_irregular_pattern_changes_result(self, gige):
        legacy = measure_alltoall(gige, 4, 2_048, reps=1, seed=0)
        hot = measure_alltoall(
            gige, 4, 2_048, reps=1, seed=0,
            pattern={"name": "hotspot", "params": {"targets": 1, "factor": 16.0}},
        )
        assert hot.mean_time != legacy.mean_time

    def test_incast_slower_than_uniform(self, gige):
        uniform = measure_alltoall(gige, 8, 32_768, reps=1, seed=0)
        incast = measure_alltoall(
            gige, 8, 32_768, reps=1, seed=0,
            pattern={"name": "hotspot", "params": {"targets": 1, "factor": 8.0}},
        )
        assert incast.mean_time > uniform.mean_time

    def test_matrix_algorithm_without_pattern_rejected(self, gige):
        with pytest.raises(MeasurementError, match="byte matrix"):
            measure_alltoall(gige, 4, 2_048, reps=1, algorithm="alltoallv-direct")

    def test_forwarding_algorithm_with_pattern_rejected(self, gige):
        with pytest.raises(MeasurementError, match="no alltoallv variant"):
            measure_alltoall(
                gige, 4, 2_048, reps=1, algorithm="bruck", pattern="hotspot"
            )

    def test_explicit_alltoallv_algorithm_accepted(self, gige):
        sample = measure_alltoall(
            gige, 4, 2_048, reps=1, algorithm="vdirect", pattern="shift"
        )
        assert sample.mean_time > 0

    def test_empty_exchange_rejected_cleanly(self, gige):
        # shift:offset=0 degenerates to pure local copies — nothing on
        # the wire, so there is no completion time to measure.
        with pytest.raises(MeasurementError, match="no network traffic"):
            measure_alltoall(
                gige, 4, 2_048, reps=1,
                pattern={"name": "shift", "params": {"offset": 0}},
            )

    def test_rounds_variant_runs_irregular(self, gige):
        sample = measure_alltoall(
            gige, 5, 2_048, reps=1, algorithm="rounds",
            pattern={"name": "random-sparse", "params": {"density": 0.5}},
        )
        assert sample.mean_time > 0


class TestSweepIntegration:
    def test_patterns_axis_expands_grid(self):
        spec = SweepSpec(
            clusters=("gigabit-ethernet",),
            nprocs=(4,),
            sizes=(2_048,),
            algorithms=("direct",),
            patterns=(None, "hotspot", {"name": "zipf"}),
            seeds=(0,),
            reps=1,
        )
        assert spec.n_points == 3
        points = spec.points()
        assert points[0].pattern is None
        assert points[1].pattern == PatternSpec("hotspot")
        assert "patterns" in spec.describe()

    def test_matrix_algorithm_needs_pattern_in_spec(self):
        with pytest.raises(ValueError, match="byte matrix"):
            SweepSpec(
                clusters=("gigabit-ethernet",), nprocs=(4,), sizes=(2_048,),
                algorithms=("alltoallv-direct",), reps=1,
            )
        with pytest.raises(ValueError, match="no alltoallv variant"):
            SweepSpec(
                clusters=("gigabit-ethernet",), nprocs=(4,), sizes=(2_048,),
                algorithms=("ring",), patterns=("hotspot",), reps=1,
            )

    def test_uniform_point_key_matches_patternless_key(self):
        """`uniform` must hit the very same cache entries as the legacy
        scalar path (the acceptance-criterion regression test)."""
        fp = profile_fingerprint(gigabit_ethernet())
        legacy = SweepPoint("gigabit-ethernet", 4, 2_048, "direct", 0, 1)
        uniform = SweepPoint(
            "gigabit-ethernet", 4, 2_048, "direct", 0, 1, pattern="uniform"
        )
        assert uniform.pattern is None
        assert point_key(legacy, fp) == point_key(uniform, fp)

    def test_pattern_points_never_collide_with_uniform(self):
        fp = profile_fingerprint(gigabit_ethernet())
        base = SweepPoint("gigabit-ethernet", 4, 2_048, "direct", 0, 1)
        hot = SweepPoint(
            "gigabit-ethernet", 4, 2_048, "direct", 0, 1, pattern="hotspot"
        )
        tuned = SweepPoint(
            "gigabit-ethernet", 4, 2_048, "direct", 0, 1,
            pattern={"name": "hotspot", "params": {"factor": 2.0}},
        )
        keys = {point_key(p, fp) for p in (base, hot, tuned)}
        assert len(keys) == 3

    def test_pattern_sweep_caches_and_reruns_zero_simulations(self, tmp_path):
        spec = SweepSpec(
            clusters=("gigabit-ethernet",),
            nprocs=(4,),
            sizes=(2_048, 4_096),
            algorithms=("direct",),
            patterns=("hotspot", None),
            seeds=(0,),
            reps=1,
        )
        runner = SweepRunner(workers=1, cache=ResultCache(tmp_path))
        first = runner.run(spec)
        assert first.n_simulated == 4
        second = runner.run(spec)
        assert second.n_simulated == 0
        assert second.n_cached == 4
        assert [r.sample for r in first.results] == [
            r.sample for r in second.results
        ]

    def test_rows_carry_pattern_column(self, tmp_path):
        spec = SweepSpec(
            clusters=("gigabit-ethernet",), nprocs=(4,), sizes=(2_048,),
            algorithms=("direct",), patterns=("shift",), reps=1,
        )
        result = SweepRunner(workers=1).run(spec)
        fieldnames, rows = result.to_rows()
        assert "pattern" in fieldnames
        assert rows[0]["pattern"] == "shift"


class TestScenarioIntegration:
    def scenario_dict(self, **workload_extra):
        workload = {
            "nprocs": [4],
            "sizes": ["2kB", "4kB"],
            "seeds": [0],
            "reps": 1,
        }
        workload.update(workload_extra)
        return {
            "name": "pattern-test",
            "base": "gigabit-ethernet",
            "workload": workload,
        }

    def test_workload_pattern_round_trips(self):
        spec = ScenarioSpec.from_dict(
            self.scenario_dict(
                pattern={"name": "hotspot", "params": {"targets": 2, "factor": 8.0}}
            )
        )
        assert spec.workload.pattern == PatternSpec(
            "hotspot", {"targets": 2, "factor": 8.0}
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_toml(spec.to_toml()) == spec

    def test_workload_pattern_accepts_bare_name(self):
        spec = ScenarioSpec.from_dict(self.scenario_dict(pattern="zipf"))
        assert spec.workload.pattern == PatternSpec("zipf")
        assert ScenarioSpec.from_toml(spec.to_toml()) == spec

    def test_uniform_pattern_normalises_away(self):
        spec = ScenarioSpec.from_dict(self.scenario_dict(pattern="uniform"))
        assert spec.workload.pattern is None
        assert "pattern" not in spec.to_dict()["workload"]

    def test_unknown_pattern_fails_at_load(self):
        with pytest.raises(ScenarioError, match="unknown pattern"):
            ScenarioSpec.from_dict(self.scenario_dict(pattern="teleport"))

    def test_matrix_algorithm_requires_pattern(self):
        data = self.scenario_dict()
        data["algorithm"] = "alltoallv-direct"
        with pytest.raises(ScenarioError, match="byte matrix"):
            ScenarioSpec.from_dict(data)

    def test_forwarding_algorithm_rejects_pattern(self):
        data = self.scenario_dict(pattern="hotspot")
        data["algorithm"] = "bruck"
        with pytest.raises(ScenarioError, match="no alltoallv variant"):
            ScenarioSpec.from_dict(data)

    def test_sample_nprocs_must_be_swept(self):
        # Regression: silently accepting an unswept n' made the fit
        # sample a column the grid never measured.
        with pytest.raises(ScenarioError, match="sample_nprocs 16"):
            WorkloadSpec(nprocs=(4, 8), sizes=(2_048,) * 4, sample_nprocs=16)
        # A swept value is still fine.
        workload = WorkloadSpec(nprocs=(4, 8), sizes=(2_048,) * 4, sample_nprocs=8)
        assert workload.fit_nprocs == 8

    def test_scenario_sweep_points_carry_pattern(self):
        sc = Scenario.from_dict(self.scenario_dict(pattern="hotspot"))
        points = sc.sweep_points()
        assert all(p.pattern == PatternSpec("hotspot") for p in points)
        assert "pattern=hotspot" in sc.describe()

    def test_scenario_sweep_executes_pattern(self, tmp_path):
        sc = Scenario.from_dict(
            self.scenario_dict(
                pattern={"name": "hotspot", "params": {"targets": 1}}
            )
        )
        runner = SweepRunner(workers=1, cache=ResultCache(tmp_path))
        first = sc.sweep(runner=runner)
        assert first.n_simulated == 2
        second = sc.sweep(runner=runner)
        assert second.n_simulated == 0 and second.n_cached == 2


class TestMedPrediction:
    HOCKNEY = HockneyParams(alpha=50e-6, beta=8.5e-9)

    def test_predict_med_reduces_to_predict_on_uniform(self):
        sig = ContentionSignature(
            gamma=4.36, delta=4.9e-3, threshold=8_192, hockney=self.HOCKNEY
        )
        for n, m in ((4, 2_048), (8, 8_192), (16, 1_048_576)):
            med = MED.alltoall(n, m)
            assert sig.predict_med(med) == pytest.approx(sig.predict(n, m))

    def test_predict_med_global_mode(self):
        sig = ContentionSignature(
            gamma=2.0, delta=3e-3, threshold=1_024,
            hockney=self.HOCKNEY, delta_mode="global",
        )
        med = MED.alltoall(6, 4_096)
        assert sig.predict_med(med) == pytest.approx(sig.predict(6, 4_096))

    def test_delta_eligible_rounds_counts_bottleneck(self):
        med = PatternSpec("hotspot", {"targets": 1, "factor": 8.0}).med(6, 1_000)
        # Only the 8000-byte messages into the hotspot cross M=4000;
        # the bottleneck is the hotspot's in-degree.
        assert delta_eligible_rounds(med, 4_000) == 5
        assert delta_eligible_rounds(med, 10_000) == 0
        assert delta_eligible_rounds(med, 0) == 5  # every arc counts

    def test_incast_prediction_exceeds_uniform(self):
        sig = ContentionSignature(
            gamma=4.36, delta=4.9e-3, threshold=8_192, hockney=self.HOCKNEY
        )
        uniform = MED.alltoall(8, 32_768)
        incast = PatternSpec("hotspot", {"targets": 1, "factor": 8.0}).med(8, 32_768)
        assert sig.predict_med(incast) > sig.predict_med(uniform)
        assert combined_lower_bound(incast, self.HOCKNEY) > combined_lower_bound(
            uniform, self.HOCKNEY
        )


class TestCliIntegration:
    def test_list_patterns_section(self, capsys):
        from repro.cli import main

        assert main(["list", "patterns"]) == 0
        out = capsys.readouterr().out
        for name in ("uniform", "hotspot", "zipf", "random-sparse"):
            assert name in out

    def test_sweep_pattern_flag(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "sweep", "--clusters", "gigabit-ethernet", "--nprocs", "4",
            "--sizes", "2kB", "--pattern", "hotspot:targets=2,factor=4",
            "--pattern", "shift", "--reps", "1",
            "--cache-dir", str(tmp_path),
            "--csv", str(tmp_path / "rows.csv"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "simulated : 2" in out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "simulated : 0" in out
        assert "cached    : 2" in out
        text = (tmp_path / "rows.csv").read_text()
        assert "hotspot(factor=4,targets=2)" in text
        assert "shift" in text

    def test_sweep_bad_pattern_param_is_clean_exit(self, capsys):
        from repro.cli import main

        assert main(
            ["sweep", "--pattern", "hotspot:targets", "--reps", "1"]
        ) == 2
        assert "pattern" in capsys.readouterr().err

    def test_sweep_unknown_pattern_is_clean_exit(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--pattern", "teleport", "--reps", "1"]) == 2
        assert "unknown pattern" in capsys.readouterr().err
