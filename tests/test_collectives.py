"""Unit tests for the All-to-All algorithms."""

import pytest

from repro.registry import ALGORITHMS
from repro.simmpi.collectives import (
    MATRIX_ALGORITHMS,
    alltoall_bruck,
    alltoall_direct,
    alltoall_ring,
    alltoall_rounds,
)
from repro.simmpi.runtime import Runtime
from repro.simmpi.transport import TransportParams
from repro.simnet.topology import single_switch
from repro.simnet.trace import Trace

SCALAR_ALGORITHMS = sorted(set(ALGORITHMS.names()) - set(MATRIX_ALGORITHMS))


def run_algorithm(program, n=4, msg_size=10_000, nic=100e6, trace=None, **tp):
    defaults = dict(
        name="t", base_latency=10e-6, eager_threshold=65_536,
        envelope_bytes=0, mss=10**9, per_segment_wire_bytes=0,
        per_message_send_overhead=0.0, ctrl_overhead=0.0, jitter_scale=0.0,
    )
    defaults.update(tp)
    topo = single_switch(n, nic_bandwidth=nic)
    runtime = Runtime(
        topo, TransportParams(**defaults), nprocs=n, seed=0, trace=trace
    )
    return runtime.run(program, msg_size)


class TestCompletion:
    @pytest.mark.parametrize("name", SCALAR_ALGORITHMS)
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8])
    def test_all_algorithms_complete(self, name, n):
        result = run_algorithm(ALGORITHMS.get(name), n=n, msg_size=5_000)
        assert result.duration > 0

    @pytest.mark.parametrize("name", SCALAR_ALGORITHMS)
    def test_single_rank_trivial(self, name):
        result = run_algorithm(ALGORITHMS.get(name), n=1)
        assert result.duration == 0.0
        assert result.flows_completed == 0

    @pytest.mark.parametrize("name", sorted(MATRIX_ALGORITHMS))
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8])
    def test_alltoallv_algorithms_complete(self, name, n):
        import numpy as np

        rng = np.random.default_rng(n)
        matrix = rng.integers(0, 5_000, size=(n, n))
        matrix[0, :] = 0  # rank 0 sends nothing — still must terminate
        result = run_algorithm(ALGORITHMS.get(name), n=n, msg_size=matrix)
        if matrix.sum() - np.trace(matrix) > 0:
            assert result.duration > 0

    @pytest.mark.parametrize("name", sorted(MATRIX_ALGORITHMS))
    def test_alltoallv_single_rank_trivial(self, name):
        import numpy as np

        result = run_algorithm(
            ALGORITHMS.get(name), n=1, msg_size=np.array([[123]])
        )
        assert result.duration == 0.0
        assert result.flows_completed == 0


class TestTrafficAccounting:
    def test_direct_sends_n_minus_1_squared_messages(self):
        trace = Trace()
        n = 5
        run_algorithm(alltoall_direct, n=n, trace=trace)
        sends = [
            r for r in trace.by_category("mpi.isend")
            if r["src"] != r["dst"]
        ]
        assert len(sends) == n * (n - 1)

    def test_rounds_same_message_count_as_direct(self):
        trace = Trace()
        n = 5
        run_algorithm(alltoall_rounds, n=n, trace=trace)
        sends = trace.by_category("mpi.isend")
        assert len(sends) == n * (n - 1)

    def test_bruck_log_rounds(self):
        trace = Trace()
        n = 8
        run_algorithm(alltoall_bruck, n=n, trace=trace)
        sends = trace.by_category("mpi.isend")
        assert len(sends) == n * 3  # log2(8) rounds

    def test_bruck_total_bytes_exceed_direct(self):
        # Bruck trades bandwidth for start-ups: total bytes moved is
        # m·n·ceil(log n)·~n/2 > m·n·(n-1) for small m... compare per rank.
        n, m = 8, 1_000
        trace_b = Trace()
        run_algorithm(alltoall_bruck, n=n, msg_size=m, trace=trace_b)
        bytes_bruck = sum(r["nbytes"] for r in trace_b.by_category("mpi.isend"))
        trace_d = Trace()
        run_algorithm(alltoall_direct, n=n, msg_size=m, trace=trace_d)
        bytes_direct = sum(
            r["nbytes"] for r in trace_d.by_category("mpi.isend")
            if r["src"] != r["dst"]
        )
        assert bytes_bruck > bytes_direct

    def test_ring_total_bytes_match_formula(self):
        n, m = 6, 1_000
        trace = Trace()
        run_algorithm(alltoall_ring, n=n, msg_size=m, trace=trace)
        total = sum(r["nbytes"] for r in trace.by_category("mpi.isend"))
        # Each rank forwards (n-s)·m at step s: total n·m·n(n-1)/2... per
        # rank sum_{s=1}^{n-1}(n-s)·m = m·n(n-1)/2.
        assert total == n * m * n * (n - 1) // 2

    def test_bruck_block_counts_cover_all_offsets(self):
        # Sum over rounds of blocks sent equals total blocks n-1 per rank
        # ... in Bruck each offset j is sent once per set bit of j.
        n = 6
        total_blocks = 0
        k = 0
        while (1 << k) < n:
            total_blocks += sum(1 for j in range(1, n) if (j >> k) & 1)
            k += 1
        expected = sum(bin(j).count("1") for j in range(1, n))
        assert total_blocks == expected


class TestRelativePerformance:
    def test_bruck_beats_direct_for_tiny_messages(self):
        # Latency-dominated regime: fewer start-ups win.
        n, m = 8, 64
        t_bruck = run_algorithm(
            alltoall_bruck, n=n, msg_size=m, base_latency=5e-3
        ).duration
        t_direct = run_algorithm(
            alltoall_rounds, n=n, msg_size=m, base_latency=5e-3
        ).duration
        assert t_bruck < t_direct

    def test_direct_beats_ring_for_large_messages(self):
        # Bandwidth-dominated regime: store-and-forward loses (§4).
        n, m = 8, 2_000_000
        t_direct = run_algorithm(alltoall_direct, n=n, msg_size=m).duration
        t_ring = run_algorithm(alltoall_ring, n=n, msg_size=m).duration
        assert t_direct < t_ring

    def test_direct_close_to_bandwidth_bound_on_clean_network(self):
        # On an ideal switch with no overheads, direct exchange should
        # approach (n-1)·m/NIC.
        n, m, nic = 6, 1_000_000, 100e6
        t = run_algorithm(alltoall_direct, n=n, msg_size=m, nic=nic).duration
        bound = (n - 1) * m / nic
        assert t == pytest.approx(bound, rel=0.05)
